// vcmp_sim: the command-line driver for the simulator. Runs any
// (system, dataset, task, cluster, schedule) combination, optionally
// auto-tunes the batch schedule (Section 5) or searches the batch count,
// and can export reports as JSON and per-round statistics as CSV.
//
//   vcmp_sim --dataset=DBLP --task=BPPR --system="Pregel+" --machines=8
//            --cluster=galaxy --workload=10240 --batches=2
//   vcmp_sim --workload=5120 --machines=4 --tune
//   vcmp_sim --workload=12288 --search --chart
//   vcmp_sim --workload=2048 --batches=4 --json=report.json

#include <iostream>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/units.h"
#include "core/batch_search.h"
#include "core/runner.h"
#include "core/tuning/tuner.h"
#include "engine/sync_engine.h"
#include "graph/datasets.h"
#include "metrics/ascii_chart.h"
#include "metrics/export.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "sim/monetary_model.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

Result<ClusterSpec> MakeCluster(const std::string& name,
                                int64_t machines) {
  ClusterSpec spec;
  if (name == "galaxy") {
    spec = ClusterSpec::Galaxy8();
  } else if (name == "galaxy27") {
    spec = ClusterSpec::Galaxy27();
  } else if (name == "docker") {
    spec = ClusterSpec::Docker32();
  } else {
    return Status::InvalidArgument(
        "unknown cluster '" + name + "' (galaxy | galaxy27 | docker)");
  }
  if (machines > 0) {
    spec = spec.WithMachines(static_cast<uint32_t>(machines));
  }
  return spec;
}

void PrintReport(const RunReport& report, const BatchSchedule& schedule) {
  std::cout << "\n" << report.ToString() << "\n";
  std::cout << StrFormat(
      "  schedule: %s\n  peak memory/machine: %.2fGB  residual: %.2fGB\n",
      schedule.ToString().c_str(), BytesToGiB(report.peak_memory_bytes),
      BytesToGiB(report.peak_residual_bytes));
  if (report.disk_utilization > 0.0) {
    std::cout << StrFormat("  disk utilisation: %.0f%%%s\n",
                           100.0 * report.disk_utilization,
                           report.disk_saturated ? " (saturated)" : "");
  }
  if (report.spilled_bytes > 0.0) {
    std::cout << StrFormat("  spilled to disk: %.2fGB\n",
                           BytesToGiB(report.spilled_bytes));
  }
  if (report.monetary_cost > 0.0) {
    std::cout << "  cloud cost: "
              << MonetaryModel::Format(report.monetary_cost,
                                       report.overloaded)
              << "\n";
  }
}

int Main(int argc, char** argv) {
  FlagParser flags("vcmp_sim",
                   "simulate multi-task processing on a VC-system");
  flags.Define("dataset", "DBLP",
               "Web-St | DBLP | LiveJournal | Orkut | Twitter | Friendster");
  flags.Define("task", "BPPR", "BPPR | MSSP | BKHS | PageRank");
  flags.Define("system", "Pregel+",
               "Giraph | Giraph(async) | Pregel+ | Pregel+(mirror) | "
               "GraphD | GraphLab | GraphLab(async)");
  flags.Define("cluster", "galaxy", "galaxy | galaxy27 | docker");
  flags.Define("machines", "0", "override the cluster's machine count");
  flags.Define("workload", "1024", "total workload W");
  flags.Define("batches", "1", "equal-batch count (the k-batch scheme)");
  flags.Define("delta", "0",
               "two-batch mode with W1 - W2 = delta (overrides --batches)");
  flags.Define("tune", "false",
               "learn the batch schedule with the Section-5 tuner");
  flags.Define("search", "false",
               "search the optimal batch count by simulation");
  flags.Define("scale", "0",
               "dataset generation scale override (0 = default)");
  flags.Define("seed", "1", "simulation seed");
  flags.Define("threads", "0",
               "engine threads (0 = one per hardware core; results are "
               "identical for any value)");
  flags.Define("memory-budget", "",
               "hard per-machine memory budget enabling real out-of-core "
               "execution (unit suffixes: 512MiB, 2.5GiB; requires an "
               "out-of-core system such as GraphD; empty = off)");
  flags.Define("ooc-dir", "",
               "directory for out-of-core spill/state files (empty = a "
               "fresh temp directory, removed on exit)");
  flags.Define("chart", "false", "render an ASCII chart of the sweep");
  flags.Define("json", "", "write the run report as JSON to this path");
  flags.Define("csv", "",
               "write per-round statistics as CSV to this path "
               "(single-schedule runs only)");
  flags.Define("trace-out", "",
               "write a deterministic Chrome/Perfetto trace of the run "
               "to this path (load in ui.perfetto.dev)");
  flags.Define("list-tasks", "false",
               "print the registered task names and exit");
  flags.Define("list-datasets", "false",
               "print the registered dataset names and exit");

  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (flags.GetBool("list-tasks")) {
    for (const std::string& name : RegisteredTaskNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flags.GetBool("list-datasets")) {
    for (const DatasetInfo& info : AllDatasets()) {
      std::cout << info.name << "\n";
    }
    return 0;
  }

  // Validate every name before the (comparatively expensive) stand-in
  // generation so typos fail fast with the registry's Status message.
  auto info = FindDataset(flags.GetString("dataset"));
  if (!info.ok()) {
    std::cerr << info.status().ToString() << "\n";
    return 2;
  }
  auto task = MakeTask(flags.GetString("task"));
  if (!task.ok()) {
    std::cerr << task.status().ToString() << "\n";
    return 2;
  }
  auto cluster =
      MakeCluster(flags.GetString("cluster"), flags.GetInt("machines"));
  if (!cluster.ok()) {
    std::cerr << cluster.status().ToString() << "\n";
    return 2;
  }
  SystemKind system = SystemKind::kPregelPlus;
  if (!SystemKindFromName(flags.GetString("system"), &system)) {
    std::cerr << "unknown system '" << flags.GetString("system") << "'\n";
    return 2;
  }
  Dataset dataset =
      LoadDataset(info.value().id, flags.GetDouble("scale"));
  std::cout << "Dataset: " << dataset.info.name << " stand-in "
            << dataset.graph.ToString() << " (scale " << dataset.scale
            << ")\n";

  RunnerOptions options;
  options.cluster = cluster.value();
  options.system = system;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.execution_threads =
      static_cast<uint32_t>(flags.GetInt("threads"));
  if (!flags.GetString("memory-budget").empty()) {
    auto budget = ParseByteSize(flags.GetString("memory-budget"));
    if (!budget.ok()) {
      std::cerr << budget.status().ToString() << "\n";
      return 2;
    }
    options.ooc.enabled = true;
    options.ooc.memory_budget_bytes = budget.value();
    options.ooc.directory = flags.GetString("ooc-dir");
  } else if (!flags.GetString("ooc-dir").empty()) {
    std::cerr << "--ooc-dir requires --memory-budget\n";
    return 2;
  }
  const double workload = flags.GetDouble("workload");
  std::cout << "Cluster: " << options.cluster.ToString() << ", system "
            << SystemName(system) << ", task "
            << flags.GetString("task") << ", workload "
            << StrFormat("%.0f", workload) << "\n";

  if (flags.GetBool("search")) {
    auto search = FindOptimalBatchCount(dataset, options, *task.value(),
                                        workload);
    if (!search.ok()) {
      std::cerr << search.status().ToString() << "\n";
      return 1;
    }
    std::vector<ChartBar> bars;
    for (const BatchProbe& probe : search.value().probes) {
      bars.push_back({StrFormat("%u-batch", probe.batches), probe.seconds,
                      probe.overloaded,
                      probe.batches == search.value().best_batches});
    }
    if (flags.GetBool("chart")) {
      std::cout << "\n" << RenderBarChart(bars);
    } else {
      for (const ChartBar& bar : bars) {
        std::cout << "  " << bar.label << ": "
                  << (bar.saturated ? "Overload"
                                    : StrFormat("%.1fs", bar.value))
                  << (bar.highlight ? "  <== optimal" : "") << "\n";
      }
    }
    std::cout << StrFormat("Optimal batch count: %u (%.1fs)\n",
                           search.value().best_batches,
                           search.value().best_seconds);
    return 0;
  }

  BatchSchedule schedule;
  if (flags.GetBool("tune")) {
    Tuner tuner(dataset, options);
    auto plan = tuner.Tune(*task.value(), workload);
    if (!plan.ok()) {
      std::cerr << "tuning failed: " << plan.status().ToString() << "\n";
      return 1;
    }
    std::cout << "Fitted models: " << plan.value().models.ToString()
              << "\nLearned schedule: "
              << plan.value().schedule.ToString() << "\n";
    schedule = plan.value().schedule;
  } else if (flags.IsSet("delta")) {
    schedule = BatchSchedule::TwoBatch(workload, flags.GetDouble("delta"));
  } else {
    schedule = BatchSchedule::Equal(
        workload, static_cast<uint32_t>(flags.GetInt("batches")));
  }

  // The tracer attaches only to the final run: --tune/--search probes
  // above are exploration and stay untraced.
  Tracer tracer;
  if (!flags.GetString("trace-out").empty()) {
    options.tracer = &tracer;
    options.trace_label = "run";
  }

  MultiProcessingRunner runner(dataset, options);
  auto report = runner.Run(*task.value(), schedule);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  PrintReport(report.value(), schedule);

  if (!flags.GetString("trace-out").empty()) {
    Status written = WriteTraceJson(tracer, flags.GetString("trace-out"));
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("trace-out") << " ("
              << tracer.events().size() << " trace events)\n";
  }

  if (!flags.GetString("json").empty()) {
    Status written =
        WriteRunReportJson(report.value(), flags.GetString("json"));
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("json") << "\n";
  }
  if (!flags.GetString("csv").empty()) {
    // Re-run the first batch through the engine to capture round stats
    // (the runner aggregates; the engine keeps the full trace).
    TaskContext context{&dataset.graph, &runner.partition(), dataset.scale,
                        runner.profile().combines_messages};
    auto program = task.value()->MakeProgram(
        context,
        runner.profile().mirroring ? ProgramFlavor::kBroadcast
                                   : ProgramFlavor::kPointToPoint,
        schedule.workloads().front(), options.seed);
    if (program.ok()) {
      EngineOptions engine_options;
      engine_options.cluster = options.cluster;
      engine_options.profile = runner.profile();
      engine_options.stat_scale = dataset.scale;
      engine_options.ooc = options.ooc;
      SyncEngine engine(dataset.graph, runner.partition(), engine_options);
      auto result = engine.Run(*program.value());
      if (result.ok()) {
        Status written = WriteRoundStatsCsv(result.value().rounds,
                                            flags.GetString("csv"));
        if (!written.ok()) {
          std::cerr << written.ToString() << "\n";
          return 1;
        }
        std::cout << "wrote " << flags.GetString("csv") << " ("
                  << result.value().rounds.size() << " rounds)\n";
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
