// vcmp_batch: replay a saved experiment suite from an INI config and
// print a result table (optionally exporting each run's report as JSON).
//
//   vcmp_batch --config=configs/fig04_workload_sweep.ini
//   vcmp_batch --config=suite.ini --json-dir=/tmp/results

#include <iostream>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/units.h"
#include "core/experiment_spec.h"
#include "graph/datasets.h"
#include "metrics/export.h"
#include "metrics/table_printer.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags("vcmp_batch", "run an INI-defined experiment suite");
  flags.Define("config", "", "path to the experiment INI file (required)");
  flags.Define("json-dir", "",
               "write one <experiment>.json report per run to this "
               "directory");
  flags.Define("trace-out", "",
               "write one deterministic Chrome/Perfetto trace covering "
               "the whole suite to this path (one process per "
               "experiment; load in ui.perfetto.dev)");
  flags.Define("memory-budget", "",
               "suite-wide hard per-machine memory budget enabling real "
               "out-of-core execution (unit suffixes: 512MiB, 2.5GiB; "
               "overrides each spec's memory_budget key; requires "
               "out-of-core systems such as GraphD)");
  flags.Define("ooc-dir", "",
               "directory for out-of-core spill/state files (empty = a "
               "fresh temp directory per run)");
  flags.Define("list-tasks", "false",
               "print the registered task names and exit");
  flags.Define("list-datasets", "false",
               "print the registered dataset names and exit");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (flags.GetBool("list-tasks")) {
    for (const std::string& name : RegisteredTaskNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flags.GetBool("list-datasets")) {
    for (const DatasetInfo& info : AllDatasets()) {
      std::cout << info.name << "\n";
    }
    return 0;
  }
  if (flags.GetString("config").empty()) {
    std::cout << flags.HelpText();
    return 2;
  }

  auto document = IniDocument::Load(flags.GetString("config"));
  if (!document.ok()) {
    std::cerr << document.status().ToString() << "\n";
    return 1;
  }
  auto specs = ParseExperimentSpecs(document.value());
  if (!specs.ok()) {
    std::cerr << specs.status().ToString() << "\n";
    return 1;
  }
  if (!flags.GetString("memory-budget").empty()) {
    // Fail fast on a malformed size before any experiment runs; the
    // per-run feasibility floor is checked by the engine with the
    // machine layout in hand.
    auto budget = ParseByteSize(flags.GetString("memory-budget"));
    if (!budget.ok()) {
      std::cerr << budget.status().ToString() << "\n";
      return 2;
    }
    for (ExperimentSpec& spec : specs.value()) {
      spec.memory_budget = flags.GetString("memory-budget");
      spec.ooc_dir = flags.GetString("ooc-dir");
    }
  } else if (!flags.GetString("ooc-dir").empty()) {
    std::cerr << "--ooc-dir requires --memory-budget\n";
    return 2;
  }
  std::cout << "Running " << specs.value().size() << " experiments from "
            << flags.GetString("config") << "\n";

  // One shared tracer across the suite: each experiment becomes its own
  // process group (named by the spec) in the exported trace.
  Tracer tracer;
  Tracer* trace_ptr =
      flags.GetString("trace-out").empty() ? nullptr : &tracer;

  TablePrinter table({"Experiment", "Setting", "Schedule", "Time",
                      "Peak mem", "Msgs/round"});
  for (const ExperimentSpec& spec : specs.value()) {
    auto result = RunExperiment(spec, trace_ptr);
    if (!result.ok()) {
      std::cerr << "experiment '" << spec.name
                << "' failed: " << result.status().ToString() << "\n";
      return 1;
    }
    const RunReport& report = result.value().report;
    table.AddRow({
        spec.name,
        StrFormat("%s/%s/%s W=%.0f", spec.task.c_str(),
                  spec.system.c_str(), spec.dataset.c_str(),
                  spec.workload),
        result.value().schedule.ToString(),
        report.overloaded ? "Overload"
                          : StrFormat("%.1fs", report.total_seconds),
        StrFormat("%.1fGB", BytesToGiB(report.peak_memory_bytes)),
        FormatCount(report.MessagesPerRound()),
    });
    if (!flags.GetString("json-dir").empty()) {
      std::string path =
          flags.GetString("json-dir") + "/" + spec.name + ".json";
      Status written = WriteRunReportJson(report, path);
      if (!written.ok()) {
        std::cerr << written.ToString() << "\n";
        return 1;
      }
    }
  }
  table.Print(std::cout);
  if (trace_ptr != nullptr) {
    Status written = WriteTraceJson(tracer, flags.GetString("trace-out"));
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("trace-out") << " ("
              << tracer.events().size() << " trace events)\n";
  }
  return 0;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
