// vcmp_batch: replay a saved experiment suite from an INI config and
// print a result table (optionally exporting each run's report as JSON).
//
//   vcmp_batch --config=configs/fig04_workload_sweep.ini
//   vcmp_batch --config=suite.ini --json-dir=/tmp/results
//   vcmp_batch --config=suite.ini --concurrency=4 --trace-out=suite.trace

#include <atomic>
#include <cctype>
#include <deque>
#include <iostream>
#include <thread>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/units.h"
#include "core/experiment_spec.h"
#include "graph/datasets.h"
#include "metrics/export.h"
#include "metrics/table_printer.h"
#include "obs/trace_merge.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

/// Strict parse of --concurrency: the whole string must be a decimal
/// integer in [1, 1024]. atoll-style silent fallbacks to 0 would turn a
/// typo into a confusing "concurrency must be at least 1" rather than
/// naming the malformed value.
Result<uint32_t> ParseConcurrency(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("--concurrency must not be empty");
  }
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("--concurrency expects a positive "
                                     "integer, got '" + text + "'");
    }
  }
  if (text.size() > 4) {
    return Status::InvalidArgument("--concurrency out of range (1..1024): '" +
                                   text + "'");
  }
  const long value = std::atol(text.c_str());
  if (value < 1 || value > 1024) {
    return Status::InvalidArgument("--concurrency out of range (1..1024): '" +
                                   text + "'");
  }
  return static_cast<uint32_t>(value);
}

int Main(int argc, char** argv) {
  FlagParser flags("vcmp_batch", "run an INI-defined experiment suite");
  flags.Define("config", "", "path to the experiment INI file (required)");
  flags.Define("json-dir", "",
               "write one <experiment>.json report per run to this "
               "directory");
  flags.Define("trace-out", "",
               "write one deterministic Chrome/Perfetto trace covering "
               "the whole suite to this path (one process per "
               "experiment; load in ui.perfetto.dev)");
  flags.Define("memory-budget", "",
               "suite-wide hard per-machine memory budget enabling real "
               "out-of-core execution (unit suffixes: 512MiB, 2.5GiB; "
               "overrides each spec's memory_budget key; requires "
               "out-of-core systems such as GraphD)");
  flags.Define("ooc-dir", "",
               "directory for out-of-core spill/state files (empty = a "
               "fresh temp directory per run)");
  flags.Define("concurrency", "1",
               "experiments in flight at once (1..1024). Every output — "
               "table, JSON reports, --trace-out bytes — is identical at "
               "every concurrency level; experiments record into private "
               "tracers merged in suite order");
  flags.Define("list-tasks", "false",
               "print the registered task names and exit");
  flags.Define("list-datasets", "false",
               "print the registered dataset names and exit");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (flags.GetBool("list-tasks")) {
    for (const std::string& name : RegisteredTaskNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flags.GetBool("list-datasets")) {
    for (const DatasetInfo& info : AllDatasets()) {
      std::cout << info.name << "\n";
    }
    return 0;
  }
  auto concurrency = ParseConcurrency(flags.GetString("concurrency"));
  if (!concurrency.ok()) {
    std::cerr << concurrency.status().ToString() << "\n";
    return 2;
  }
  if (flags.GetString("config").empty()) {
    std::cout << flags.HelpText();
    return 2;
  }

  auto document = IniDocument::Load(flags.GetString("config"));
  if (!document.ok()) {
    std::cerr << document.status().ToString() << "\n";
    return 1;
  }
  auto specs = ParseExperimentSpecs(document.value());
  if (!specs.ok()) {
    std::cerr << specs.status().ToString() << "\n";
    return 1;
  }
  if (!flags.GetString("memory-budget").empty()) {
    // Fail fast on a malformed size before any experiment runs; the
    // per-run feasibility floor is checked by the engine with the
    // machine layout in hand.
    auto budget = ParseByteSize(flags.GetString("memory-budget"));
    if (!budget.ok()) {
      std::cerr << budget.status().ToString() << "\n";
      return 2;
    }
    for (ExperimentSpec& spec : specs.value()) {
      spec.memory_budget = flags.GetString("memory-budget");
      spec.ooc_dir = flags.GetString("ooc-dir");
    }
  } else if (!flags.GetString("ooc-dir").empty()) {
    std::cerr << "--ooc-dir requires --memory-budget\n";
    return 2;
  }
  std::cout << "Running " << specs.value().size() << " experiments from "
            << flags.GetString("config") << "\n";

  // One exported tracer across the suite: each experiment becomes its
  // own process group (named by the spec) in the trace. Experiments
  // record into PRIVATE tracers (the recorder is not thread-safe) that
  // are replayed into the suite tracer in spec order after all runs
  // finish — for K=1 that replay appends exactly what recording directly
  // into the shared tracer used to append, so the exported bytes match
  // the historical single-tracer path at every concurrency level.
  const bool want_trace = !flags.GetString("trace-out").empty();
  const std::vector<ExperimentSpec>& suite = specs.value();
  std::deque<Tracer> tracers(want_trace ? suite.size() : 0);

  struct ExperimentOutcome {
    Status status = Status::OK();
    ExperimentResult result;
    Status json_status = Status::OK();
  };
  std::deque<ExperimentOutcome> outcomes(suite.size());
  // First failure (in any slot) stops every slot from STARTING further
  // experiments — the sequential loop's fail-fast, generalized. In-flight
  // neighbors still finish; their outputs are simply not reported.
  std::atomic<bool> failed{false};
  const uint32_t slots = static_cast<uint32_t>(std::min<size_t>(
      concurrency.value(), suite.size()));
  const std::string json_dir = flags.GetString("json-dir");
  // Static round-robin: slot s owns experiments s, s+K, ... — disjoint
  // outcome slots, no locking, and identical assignment on every run.
  const auto drive_slot = [&](uint32_t slot) {
    for (size_t i = slot; i < suite.size(); i += slots) {
      if (failed.load(std::memory_order_relaxed)) break;
      ExperimentOutcome& outcome = outcomes[i];
      auto result = RunExperiment(suite[i],
                                  want_trace ? &tracers[i] : nullptr);
      if (!result.ok()) {
        outcome.status = result.status();
        failed.store(true, std::memory_order_relaxed);
        break;
      }
      outcome.result = std::move(result.value());
      if (!json_dir.empty()) {
        // Distinct files per experiment; safe from concurrent slots.
        outcome.json_status = WriteRunReportJson(
            outcome.result.report, json_dir + "/" + suite[i].name + ".json");
        if (!outcome.json_status.ok()) {
          failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
  };
  if (slots <= 1) {
    drive_slot(0);
  } else {
    std::vector<std::thread> drivers;
    drivers.reserve(slots);
    for (uint32_t s = 0; s < slots; ++s) drivers.emplace_back(drive_slot, s);
    for (std::thread& driver : drivers) driver.join();
  }
  for (size_t i = 0; i < suite.size(); ++i) {
    if (!outcomes[i].status.ok()) {
      std::cerr << "experiment '" << suite[i].name
                << "' failed: " << outcomes[i].status.ToString() << "\n";
      return 1;
    }
    if (!outcomes[i].json_status.ok()) {
      std::cerr << outcomes[i].json_status.ToString() << "\n";
      return 1;
    }
  }

  TablePrinter table({"Experiment", "Setting", "Schedule", "Time",
                      "Peak mem", "Msgs/round"});
  for (size_t i = 0; i < suite.size(); ++i) {
    const ExperimentSpec& spec = suite[i];
    const RunReport& report = outcomes[i].result.report;
    table.AddRow({
        spec.name,
        StrFormat("%s/%s/%s W=%.0f", spec.task.c_str(),
                  spec.system.c_str(), spec.dataset.c_str(),
                  spec.workload),
        outcomes[i].result.schedule.ToString(),
        report.overloaded ? "Overload"
                          : StrFormat("%.1fs", report.total_seconds),
        StrFormat("%.1fGB", BytesToGiB(report.peak_memory_bytes)),
        FormatCount(report.MessagesPerRound()),
    });
  }
  table.Print(std::cout);
  if (want_trace) {
    Tracer merged;
    for (const Tracer& tracer : tracers) MergeTraceInto(merged, tracer);
    Status written = WriteTraceJson(merged, flags.GetString("trace-out"));
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("trace-out") << " ("
              << merged.events().size() << " trace events)\n";
  }
  return 0;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
