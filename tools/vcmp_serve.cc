// vcmp_serve: the online serving driver. Replays INI-defined serving
// scenarios — continuous query arrival, admission control, and online
// batch formation — and prints per-scenario latency/throughput tables.
//
//   vcmp_serve --config=configs/serve_steady_vs_burst.ini
//   vcmp_serve --config=serve.ini --json-dir=/tmp/results
//
// Each INI section is one scenario:
//
//   [burst-dynamic]
//   dataset  = DBLP
//   task     = BPPR
//   system   = Pregel+
//   cluster  = galaxy          # galaxy | galaxy27 | docker
//   machines = 8               # optional override
//   scale    = 64              # stand-in generation scale
//   seed     = 7
//   horizon  = 120             # arrival window (simulated seconds)
//   clients  = 4               # identical per-tenant streams
//   rate     = 2.0             # queries/second per client (steady)
//   trace    = 40x1,20x12,60x1 # optional DURxRATE segments (burst)
//   units    = 16              # workload units per query
//   policy   = dynamic         # dynamic | fixed:UNITS
//   max_wait = 2.0             # age trigger (anti-starvation deadline)
//   drain_delay = 4.0          # residual hold after batch completion
//   train_target = 4096        # tuner training target for `dynamic`
//
// The dynamic policy trains the paper's memory models on light workloads
// first (Section 5), then inverts them online against current free
// memory; fixed:UNITS is the k-batch mechanism applied online.

#include <iostream>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/units.h"
#include "core/tuning/memory_fit.h"
#include "core/tuning/trainer.h"
#include "graph/datasets.h"
#include "metrics/service_report.h"
#include "metrics/table_printer.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "service/serve_spec.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags("vcmp_serve",
                   "replay an INI-defined online-serving suite");
  flags.Define("config", "", "path to the serving INI file (required)");
  flags.Define("json-dir", "",
               "write one <scenario>.json service report per run to this "
               "directory");
  flags.Define("csv-dir", "",
               "write one <scenario>.csv per-query outcome file per run "
               "to this directory");
  flags.Define("trace-out", "",
               "write one deterministic Chrome/Perfetto lifecycle trace "
               "covering every scenario to this path (load in "
               "ui.perfetto.dev)");
  flags.Define("list-tasks", "false",
               "print the registered task names and exit");
  flags.Define("list-datasets", "false",
               "print the registered dataset names and exit");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (flags.GetBool("list-tasks")) {
    for (const std::string& name : RegisteredTaskNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flags.GetBool("list-datasets")) {
    for (const DatasetInfo& info : AllDatasets()) {
      std::cout << info.name << "\n";
    }
    return 0;
  }
  if (flags.GetString("config").empty()) {
    std::cout << flags.HelpText();
    return 2;
  }

  auto document = IniDocument::Load(flags.GetString("config"));
  if (!document.ok()) {
    std::cerr << document.status().ToString() << "\n";
    return 1;
  }
  auto specs = ParseServeSpecs(document.value());
  if (!specs.ok()) {
    std::cerr << specs.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Serving " << specs.value().size() << " scenarios from "
            << flags.GetString("config") << "\n";

  // One shared tracer across the suite: each scenario becomes its own
  // process group (named by the spec) in the exported trace.
  Tracer tracer;
  Tracer* trace_ptr =
      flags.GetString("trace-out").empty() ? nullptr : &tracer;

  TablePrinter table({"Scenario", "Policy", "Done", "Shed", "p50", "p95",
                      "p99", "q/s", "Util", "Peak mem"});
  for (const ServeSpec& spec : specs.value()) {
    auto result = RunServeScenario(spec, trace_ptr);
    if (!result.ok()) {
      std::cerr << "scenario '" << spec.name
                << "' failed: " << result.status().ToString() << "\n";
      return 1;
    }
    const ServiceReport& report = result.value();
    table.AddRow({
        spec.name,
        report.policy + (report.memory_overload ? " OVERLOAD" : ""),
        StrFormat("%llu", (unsigned long long)report.completed),
        StrFormat("%llu", (unsigned long long)report.shed),
        StrFormat("%.2fs", report.p50_latency_seconds),
        StrFormat("%.2fs", report.p95_latency_seconds),
        StrFormat("%.2fs", report.p99_latency_seconds),
        StrFormat("%.2f", report.throughput_qps),
        StrFormat("%.0f%%", 100.0 * report.utilization),
        StrFormat("%.1fGB", BytesToGiB(report.peak_memory_bytes)),
    });
    if (!flags.GetString("json-dir").empty()) {
      std::string path =
          flags.GetString("json-dir") + "/" + spec.name + ".json";
      Status written = WriteServiceReportJson(report, path);
      if (!written.ok()) {
        std::cerr << written.ToString() << "\n";
        return 1;
      }
    }
    if (!flags.GetString("csv-dir").empty()) {
      std::string path =
          flags.GetString("csv-dir") + "/" + spec.name + ".csv";
      Status written = WriteQueryOutcomesCsv(report.queries, path);
      if (!written.ok()) {
        std::cerr << written.ToString() << "\n";
        return 1;
      }
    }
  }
  table.Print(std::cout);
  if (trace_ptr != nullptr) {
    Status written = WriteTraceJson(tracer, flags.GetString("trace-out"));
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.GetString("trace-out") << " ("
              << tracer.events().size() << " trace events)\n";
  }
  return 0;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
