// vcmp_lint: the project's determinism & concurrency static analyzer.
// Walks C++ sources and enforces the contract that makes vcmp runs
// byte-identical across reruns and thread counts (DESIGN.md §10, §15).
//
// Token-pattern rules:
//   D1  no wall-clock reads outside common/wall_clock
//   D2  no unseeded or global RNG
//   D3  no unordered-container iteration in output-feeding files
//   D4  no shared accumulation in ParallelFor without a
//       deterministic-reduction annotation
//   D5  no direct file I/O in the engine outside the src/ooc seam
//   C1  no naked new/delete in engine hot paths
//   C2  no volatile-as-synchronization
//   C3  no mutable static/member scratch in query compute paths
//   P1  no AoS std::vector<Message> buffers in engine hot paths
//   A1  annotations parse, carry a reason, and match a finding
//
// Flow-aware rules (symbol tables + whole-tree call graph):
//   C4  no unsynchronized shared-state writes in parallel regions
//   D6  no calls into functions that transitively reach nondeterminism
//   D7  no pointer-identity ordering (keys, comparisons, hashing)
//
// Suppress a finding only in source, where reviewers see it:
//   // vcmp:lint-allow(RULE, justification a reviewer would accept)
//
//   vcmp_lint                          # lint src/ tools/ bench/
//   vcmp_lint src/engine --json=lint.json
//   vcmp_lint src tools bench --baseline=tools/lint_baseline.txt
//   vcmp_lint --explain=C4             # rationale + remediation
//   vcmp_lint src --callgraph=cg.json  # dump call graph + taint state
//
// Exits 0 when clean, 1 on open findings, 2 on usage/IO errors.

#include <iostream>
#include <string>
#include <vector>

#include "lint/analyzer.h"
#include "metrics/export.h"

namespace vcmp {
namespace lint {
namespace {

constexpr const char* kUsage =
    "usage: vcmp_lint [paths...] [--json=FILE] [--baseline=FILE]\n"
    "                 [--write-baseline=FILE] [--callgraph=FILE]\n"
    "                 [--explain=RULE] [--list-rules] [--help]\n"
    "  paths            files or directories (default: src tools bench)\n"
    "  --json=FILE      write the machine-readable report to FILE\n"
    "  --baseline=FILE  known legacy findings (file:line:RULE per line)\n"
    "                   that are reported but do not fail the run\n"
    "  --write-baseline=FILE  snapshot current open findings as the\n"
    "                   baseline and exit 0\n"
    "  --callgraph=FILE write the whole-tree call graph + D6 taint state\n"
    "                   for the given paths as JSON and exit 0\n"
    "  --explain=RULE   print a rule's rationale and remediation, exit 0\n"
    "  --list-rules     print the rule set and exit\n";

int Run(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  std::string callgraph_path;
  std::string baseline_path;
  std::string write_baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--list-rules") {
      for (const RuleInfo& rule : AllRules()) {
        std::cout << rule.id << "  " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--explain=", 0) == 0) {
      const std::string id = value_of("--explain=");
      for (const RuleInfo& rule : AllRules()) {
        if (id != rule.id) continue;
        std::cout << rule.id << ": " << rule.summary << "\n\n"
                  << rule.detail << "\n";
        return 0;
      }
      std::cerr << "vcmp_lint: unknown rule '" << id
                << "' (see --list-rules)\n";
      return 2;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json=");
    } else if (arg.rfind("--callgraph=", 0) == 0) {
      callgraph_path = value_of("--callgraph=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value_of("--baseline=");
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = value_of("--write-baseline=");
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "vcmp_lint: unknown flag '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  if (!callgraph_path.empty()) {
    auto json = CallGraphJson(paths);
    if (!json.ok()) {
      std::cerr << "vcmp_lint: " << json.status().ToString() << "\n";
      return 2;
    }
    Status s = WriteTextFile(json.value(), callgraph_path);
    if (!s.ok()) {
      std::cerr << "vcmp_lint: " << s.ToString() << "\n";
      return 2;
    }
    std::cout << "vcmp_lint: call graph written to " << callgraph_path
              << "\n";
    return 0;
  }

  AnalyzerOptions options;
  if (!baseline_path.empty()) {
    auto baseline = LoadBaseline(baseline_path);
    if (!baseline.ok()) {
      std::cerr << "vcmp_lint: " << baseline.status().ToString() << "\n";
      return 2;
    }
    options.baseline = std::move(baseline).value();
  }

  auto report = AnalyzePaths(paths, options);
  if (!report.ok()) {
    std::cerr << "vcmp_lint: " << report.status().ToString() << "\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    Status s = WriteTextFile(ToBaseline(report.value()),
                             write_baseline_path);
    if (!s.ok()) {
      std::cerr << "vcmp_lint: " << s.ToString() << "\n";
      return 2;
    }
    std::cout << "vcmp_lint: baseline written to " << write_baseline_path
              << "\n";
    return 0;
  }
  if (!json_path.empty()) {
    Status s = WriteTextFile(ToJson(report.value()), json_path);
    if (!s.ok()) {
      std::cerr << "vcmp_lint: " << s.ToString() << "\n";
      return 2;
    }
  }
  std::cout << FormatText(report.value());
  return report.value().UnsuppressedCount() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lint
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::lint::Run(argc, argv); }
