// Finer-granularity batch exploration (the paper's additional materials:
// "we include more results for batch settings with finer granularity").
// The doubling sweep {1,2,4,8,16} brackets the optimum; this bench runs
// the automated search (core/batch_search.h) to pin it down between the
// doubling points, and renders the probes as the paper-style bar chart.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/batch_search.h"
#include "metrics/ascii_chart.h"
#include "tasks/bppr.h"

namespace vcmp {
namespace bench {
namespace {

void Explore(const std::string& title, double workload,
             uint32_t machines) {
  PrintBanner(std::cout, title);
  const Dataset& dataset = CachedDataset(DatasetId::kDblp);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8().WithMachines(machines);
  BpprTask task;
  auto search = FindOptimalBatchCount(dataset, options, task, workload);
  VCMP_CHECK(search.ok()) << search.status().ToString();

  std::vector<BatchProbe> probes = search.value().probes;
  std::sort(probes.begin(), probes.end(),
            [](const BatchProbe& a, const BatchProbe& b) {
              return a.batches < b.batches;
            });
  std::vector<ChartBar> bars;
  for (const BatchProbe& probe : probes) {
    bars.push_back({StrFormat("%u-batch", probe.batches), probe.seconds,
                    probe.overloaded,
                    probe.batches == search.value().best_batches});
  }
  std::cout << RenderBarChart(bars);
  std::cout << StrFormat("Refined optimum: %u batches (%.1fs) from %zu "
                         "simulated probes\n",
                         search.value().best_batches,
                         search.value().best_seconds, probes.size());
}

void Run() {
  Explore("Fine-grained batch search: BPPR W=10240, Galaxy-8", 10240.0, 8);
  Explore("Fine-grained batch search: BPPR W=12288, Galaxy-8", 12288.0, 8);
  Explore("Fine-grained batch search: BPPR W=5120, 4 machines", 5120.0, 4);
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
