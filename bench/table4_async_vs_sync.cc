// Reproduces Table 4: GraphLab(sync) vs GraphLab(async) on the DBLP
// dataset — the classic single task (PageRank) against the heavy
// multi-processing task (BPPR at workloads 8/32/128/512), over 1..16
// machines, reporting seconds and network bytes per machine. Paper shape:
// async wins PageRank (and the gap grows with machines: barrier removal);
// async LOSES heavy BPPR (lock overhead ~ fibers, no message combining,
// more bytes on the wire).

#include <iostream>

#include "bench_util.h"
#include "engine/gas_engine.h"
#include "tasks/gas_tasks.h"

namespace vcmp {
namespace bench {
namespace {

struct Cell {
  double seconds = 0.0;
  double bytes_per_machine = 0.0;
};

Cell RunGas(const Dataset& dataset, bool synchronous, bool pagerank,
            double workload, uint32_t machines) {
  GreedyEdgeCutPartitioner partitioner;
  Partitioning partition = partitioner.Partition(dataset.graph, machines);
  GasOptions options;
  options.cluster = ClusterSpec::Galaxy8().WithMachines(machines);
  options.profile = ProfileFor(synchronous ? SystemKind::kGraphLab
                                           : SystemKind::kGraphLabAsync);
  options.stat_scale = dataset.scale;
  GasEngine engine(dataset.graph, partition, options);
  Cell cell;
  if (pagerank) {
    GasPageRank program(dataset.graph, partition, {});
    auto result = engine.Run(program);
    VCMP_CHECK(result.ok()) << result.status().ToString();
    cell.seconds = result.value().seconds;
    cell.bytes_per_machine = result.value().network_bytes_per_machine;
  } else {
    GasBpprWalks program(dataset.graph, partition, workload, {}, 7);
    auto result = engine.Run(program);
    VCMP_CHECK(result.ok()) << result.status().ToString();
    cell.seconds = result.value().seconds;
    cell.bytes_per_machine = result.value().network_bytes_per_machine;
  }
  return cell;
}

std::string Format(const Cell& cell) {
  return StrFormat("%.1fs/%s", cell.seconds,
                   FormatBytes(cell.bytes_per_machine).c_str());
}

void Run() {
  PrintBanner(std::cout,
              "Table 4: GraphLab(sync) vs GraphLab(async) "
              "(seconds / network-bytes-per-machine, DBLP)");
  const Dataset& dataset = CachedDataset(DatasetId::kDblp);
  TablePrinter table({"Machines", "PR sync", "PR async", "BPPR(8) sync",
                      "BPPR(8) async", "BPPR(128) sync", "BPPR(128) async",
                      "BPPR(512) sync", "BPPR(512) async"});
  for (uint32_t machines : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<std::string> row = {StrFormat("%u", machines)};
    row.push_back(Format(RunGas(dataset, true, true, 0, machines)));
    row.push_back(Format(RunGas(dataset, false, true, 0, machines)));
    for (double workload : {8.0, 128.0, 512.0}) {
      row.push_back(
          Format(RunGas(dataset, true, false, workload, machines)));
      row.push_back(
          Format(RunGas(dataset, false, false, workload, machines)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nPaper anchors (16 machines): PageRank 9.6s sync vs 3.9s "
               "async; BPPR(512) 88s sync vs 245s async with 1.0GB vs "
               "6.4GB per machine.\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
