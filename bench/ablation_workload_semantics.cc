// Ablation: the paper's "Alternative Workload Settings" (Section 4.9) —
// batching BPPR by splitting every vertex's walk budget (the default used
// throughout the evaluation) versus batching by source subsets (each unit
// task is one PPR query; a batch is a subset of the query sources). Both
// schemes process the same total walk volume; they differ in how a batch's
// congestion and residual memory are composed.

#include <iostream>

#include "bench_util.h"
#include "common/units.h"
#include "tasks/bppr.h"
#include "tasks/bppr_source_batch.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  const Dataset& dataset = CachedDataset(DatasetId::kDblp);
  const double n = dataset.PaperScaleVertices();
  // Equal total walk volume: walk-split runs W walks from every vertex;
  // source-split runs n queries of W walks each.
  const double walks_per_vertex = 10240.0;

  PrintBanner(
      std::cout,
      StrFormat("Ablation: batching semantics (BPPR, DBLP, Galaxy-8; total "
                "= %.0f walks/vertex x %.0f vertices)",
                walks_per_vertex, n));
  TablePrinter table({"#Batches", "walk-split time", "walk-split mem",
                      "source-split time", "source-split mem"});

  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8();
  BpprTask walk_task;
  BpprSourceBatchTask::Params source_params;
  source_params.walks_per_source =
      static_cast<uint64_t>(walks_per_vertex);
  BpprSourceBatchTask source_task(source_params);

  for (uint32_t batches : DoublingBatches()) {
    MultiProcessingRunner walk_runner(dataset, options);
    auto walk_report = walk_runner.Run(
        walk_task, BatchSchedule::Equal(walks_per_vertex, batches));
    VCMP_CHECK(walk_report.ok());

    MultiProcessingRunner source_runner(dataset, options);
    auto source_report =
        source_runner.Run(source_task, BatchSchedule::Equal(n, batches));
    VCMP_CHECK(source_report.ok());

    table.AddRow(
        {StrFormat("%u", batches), TimeCell(walk_report.value()),
         StrFormat("%.1fGB",
                   BytesToGiB(walk_report.value().peak_memory_bytes)),
         TimeCell(source_report.value()),
         StrFormat("%.1fGB",
                   BytesToGiB(source_report.value().peak_memory_bytes))});
  }
  table.Print(std::cout);
  std::cout
      << "\nBoth semantics hit the same congestion wall at 1 batch; they "
         "differ in residual\ncomposition — walk-split batches leave "
         "records at every vertex after every batch,\nsource-split "
         "batches only for the sources processed so far.\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
