// google-benchmark microbenchmarks of inbox grouping: each of the four
// GroupInbox strategies in isolation (sorted fast path, small
// comparison sort, dense counting, radix pair-sort) and the pool-wide
// ParallelGroupInboxes pass driver across thread counts. These isolate
// the group phase the engine benches (perf_engine) only report in
// aggregate, so a grouping regression is attributable without rerunning
// a full workload.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/worker.h"

namespace vcmp {
namespace {

std::vector<Message> RandomInbox(size_t size, uint32_t num_targets,
                                 uint32_t num_tags, uint64_t seed) {
  Rng rng(seed);
  std::vector<Message> inbox;
  inbox.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    inbox.push_back(
        Message{static_cast<VertexId>(rng.NextBounded(num_targets)),
                static_cast<uint32_t>(rng.NextBounded(num_tags)),
                static_cast<double>(i), 1.0});
  }
  return inbox;
}

/// Pre-sorted distinct keys: the shape the unified combine path emits,
/// which GroupInbox must recognise and run-build without sorting.
std::vector<Message> SortedInbox(size_t size, uint32_t num_tags) {
  std::vector<Message> inbox;
  inbox.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    inbox.push_back(Message{static_cast<VertexId>(i / num_tags),
                            static_cast<uint32_t>(i % num_tags),
                            static_cast<double>(i), 1.0});
  }
  return inbox;
}

void FillWorker(Worker& worker, const std::vector<Message>& inbox,
                VertexId vertex_space) {
  worker.Reset(1);
  if (vertex_space > 0) worker.set_vertex_space(vertex_space);
  for (const Message& message : inbox) worker.inbox().PushBack(message);
}

void RunSerialGrouping(benchmark::State& state,
                       const std::vector<Message>& inbox,
                       VertexId vertex_space) {
  Worker worker;
  for (auto _ : state) {
    state.PauseTiming();
    FillWorker(worker, inbox, vertex_space);
    state.ResumeTiming();
    worker.GroupInbox();
    benchmark::DoNotOptimize(worker.runs().size());
  }
  state.SetItemsProcessed(state.iterations() * inbox.size());
}

void BM_GroupSorted(benchmark::State& state) {
  RunSerialGrouping(state,
                    SortedInbox(static_cast<size_t>(state.range(0)), 4),
                    /*vertex_space=*/0);
}
BENCHMARK(BM_GroupSorted)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_GroupSmall(benchmark::State& state) {
  // Below the sort cutoff: the comparison-sort strategy.
  RunSerialGrouping(state, RandomInbox(static_cast<size_t>(state.range(0)),
                                       16, 3, /*seed=*/9),
                    /*vertex_space=*/0);
}
BENCHMARK(BM_GroupSmall)->Arg(16)->Arg(48);

void BM_GroupDense(benchmark::State& state) {
  // Single tag, n >= vertex space: the dense counting strategy.
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t space = static_cast<uint32_t>(n / 4);
  RunSerialGrouping(state, RandomInbox(n, space, 1, /*seed=*/11), space);
}
BENCHMARK(BM_GroupDense)->Arg(1 << 14)->Arg(1 << 18);

void BM_GroupRadix(benchmark::State& state) {
  // Many targets, several tags, no usable vertex space: the radix
  // pair-sort strategy.
  RunSerialGrouping(state, RandomInbox(static_cast<size_t>(state.range(0)),
                                       1 << 18, 16, /*seed=*/13),
                    /*vertex_space=*/0);
}
BENCHMARK(BM_GroupRadix)->Arg(1 << 14)->Arg(1 << 18);

void BM_GroupParallel(benchmark::State& state) {
  // The engine's per-round call: one worker per machine, grouped in
  // pool-wide lockstep passes. range(0) = pool workers (0 = inline).
  constexpr uint32_t kMachines = 8;
  constexpr size_t kPerMachine = 1 << 16;
  std::vector<std::vector<Message>> inboxes;
  for (uint32_t m = 0; m < kMachines; ++m) {
    inboxes.push_back(RandomInbox(kPerMachine, 1 << 18, 16, 17 + m));
  }
  ThreadPool pool(static_cast<uint32_t>(state.range(0)));
  std::vector<Worker> workers(kMachines);
  for (auto _ : state) {
    state.PauseTiming();
    for (uint32_t m = 0; m < kMachines; ++m) {
      FillWorker(workers[m], inboxes[m], 0);
    }
    state.ResumeTiming();
    ParallelGroupInboxes(pool, std::span<Worker>(workers),
                         /*steal=*/true, /*collect_timing=*/false);
    benchmark::DoNotOptimize(workers[0].runs().size());
  }
  state.SetItemsProcessed(state.iterations() * kMachines * kPerMachine);
}
BENCHMARK(BM_GroupParallel)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace vcmp

BENCHMARK_MAIN();
