// Reproduces Figure 11: the correlation diagram of a typical synchronous
// VC-system. Each arrow of the diagram is verified empirically with a
// controlled two-point experiment; the table reports the measured sign
// and whether it agrees with the paper's diagram.

#include <functional>
#include <iostream>

#include "bench_util.h"

namespace vcmp {
namespace bench {
namespace {

RunReport Measure(SystemKind system, double workload, uint32_t machines,
                  double memory_gib = 16.0) {
  PanelSetting setting{"", DatasetId::kDblp,
                       ClusterSpec::Galaxy8().WithMachines(machines),
                       system, "BPPR", workload};
  setting.cluster.machine.memory_bytes = memory_gib * (1ULL << 30);
  setting.cluster.machine.usable_memory_bytes =
      (memory_gib - 2.0) * (1ULL << 30);
  return RunSetting(setting, BatchSchedule::FullParallelism(workload));
}

struct Arrow {
  std::string description;
  char expected;  // '+' or '-'.
  std::function<std::pair<double, double>()> measure;  // (low, high).
};

void Run() {
  PrintBanner(std::cout,
              "Figure 11: measured correlation signs for the diagram's "
              "arrows");

  std::vector<Arrow> arrows = {
      {"workload -> message congestion (per round)", '+',
       [] {
         return std::make_pair(
             Measure(SystemKind::kPregelPlus, 512, 8).MessagesPerRound(),
             Measure(SystemKind::kPregelPlus, 2048, 8).MessagesPerRound());
       }},
      {"#machines -> per-machine congestion (memory share)", '-',
       [] {
         return std::make_pair(
             Measure(SystemKind::kPregelPlus, 1024, 4).peak_memory_bytes,
             Measure(SystemKind::kPregelPlus, 1024, 8).peak_memory_bytes);
       }},
      {"message congestion -> memory used (non-out-of-core)", '+',
       [] {
         return std::make_pair(
             Measure(SystemKind::kPregelPlus, 512, 8).peak_memory_bytes,
             Measure(SystemKind::kPregelPlus, 4096, 8).peak_memory_bytes);
       }},
      {"memory used rate -> time (memory-bound state)", '+',
       [] {
         return std::make_pair(
             Measure(SystemKind::kPregelPlus, 4096, 8).total_seconds /
                 4096.0,
             Measure(SystemKind::kPregelPlus, 10240, 8).total_seconds /
                 10240.0);
       }},
      {"memory size -> memory-bound state (larger keeps it away)", '-',
       [] {
         // Pair ordered (small memory, large memory): expect the
         // per-unit time to DROP, i.e. a '-' correlation.
         return std::make_pair(
             Measure(SystemKind::kPregelPlus, 10240, 8, 16.0)
                     .total_seconds /
                 10240.0,
             Measure(SystemKind::kPregelPlus, 10240, 8, 48.0)
                     .total_seconds /
                 10240.0);
       }},
      {"message congestion -> disk utilization (out-of-core)", '+',
       [] {
         return std::make_pair(
             Measure(SystemKind::kGraphD, 256, 8).disk_utilization,
             Measure(SystemKind::kGraphD, 4096, 8).disk_utilization);
       }},
      {"disk-bound state -> time (out-of-core)", '+',
       [] {
         return std::make_pair(
             Measure(SystemKind::kGraphD, 1024, 8).total_seconds / 1024.0,
             Measure(SystemKind::kGraphD, 8192, 8).total_seconds / 8192.0);
       }},
  };

  TablePrinter table({"Arrow", "Expected", "Measured(low)", "Measured(high)",
                      "Sign", "Agrees"});
  for (const Arrow& arrow : arrows) {
    auto [low, high] = arrow.measure();
    // Pairs are ordered (factor low, factor high); the sign of the
    // response is the measured correlation direction.
    char sign = high > low ? '+' : '-';
    bool agrees = sign == arrow.expected;
    table.AddRow({arrow.description, std::string(1, arrow.expected),
                  StrFormat("%.3g", low), StrFormat("%.3g", high),
                  std::string(1, sign),
                  agrees ? "yes" : "NO"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
