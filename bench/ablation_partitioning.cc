// Ablation: partitioning strategies across the dataset stand-ins — random
// hash (Pregel+'s default), edge-balanced LDG (our GraphLab edge-cut), and
// PowerGraph-style vertex cuts (greedy vs random edge placement). The
// classic result this reproduces: on skewed social graphs, vertex cuts
// bound the replication factor where edge cuts leave most edges crossing
// machines — the design space behind the paper's mirroring and GraphLab
// comparisons.

#include <iostream>

#include "bench_util.h"
#include "graph/vertex_cut.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  PrintBanner(std::cout,
              "Ablation: partitioning strategies (8 machines)");
  TablePrinter table({"Dataset", "hash cross-edge %", "LDG cross-edge %",
                      "greedy-cut replication", "random-cut replication",
                      "greedy edge imbalance"});
  for (DatasetId id : {DatasetId::kDblp, DatasetId::kWebSt,
                       DatasetId::kOrkut, DatasetId::kTwitter}) {
    const Dataset& dataset = CachedDataset(id);
    const Graph& graph = dataset.graph;
    Partitioning hash = HashPartitioner().Partition(graph, 8);
    Partitioning ldg = GreedyEdgeCutPartitioner().Partition(graph, 8);
    VertexCut greedy = GreedyVertexCut(graph, 8);
    VertexCut random = RandomVertexCut(graph, 8);
    double edges = static_cast<double>(graph.NumEdges());
    table.AddRow({
        dataset.info.name,
        StrFormat("%.0f%%", 100.0 * hash.CountCrossEdges(graph) / edges),
        StrFormat("%.0f%%", 100.0 * ldg.CountCrossEdges(graph) / edges),
        StrFormat("%.2f", greedy.ReplicationFactor()),
        StrFormat("%.2f", random.ReplicationFactor()),
        StrFormat("%.2f", greedy.EdgeImbalance(graph)),
    });
  }
  table.Print(std::cout);
  std::cout << "\nHash leaves ~7/8 of edges crossing machines; LDG "
               "recovers locality where it\nexists; greedy vertex cuts "
               "keep the replication factor (and with it the\n"
               "replica-sync traffic) low even on celebrity-skewed "
               "graphs.\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
