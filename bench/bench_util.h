#ifndef VCMP_BENCH_BENCH_UTIL_H_
#define VCMP_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/batch_schedule.h"
#include "core/runner.h"
#include "graph/datasets.h"
#include "metrics/table_printer.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace bench {

/// Generation scales for bench runs. The simulator reports paper-scale
/// statistics regardless of the stand-in's generation scale (see
/// datasets.h); these values keep every bench binary under ~2 minutes.
inline double BenchScale(DatasetId id) {
  switch (id) {
    case DatasetId::kWebSt:
      return 32.0;
    case DatasetId::kDblp:
      return 64.0;
    case DatasetId::kLiveJournal:
      return 256.0;
    case DatasetId::kOrkut:
      return 512.0;
    case DatasetId::kTwitter:
      return 2048.0;
    case DatasetId::kFriendster:
      return 2048.0;
  }
  return 64.0;
}

/// Cache of generated stand-ins (several benches sweep one dataset many
/// times). `scale_override` > 0 replaces the bench default — used for
/// settings whose traffic is quadratic in the generated size (per-source
/// BPPR on GraphLab, mirror diffusion).
inline const Dataset& CachedDataset(DatasetId id,
                                    double scale_override = 0.0) {
  double scale = scale_override > 0.0 ? scale_override : BenchScale(id);
  static auto& cache = *new std::map<std::pair<DatasetId, double>, Dataset>();
  auto key = std::make_pair(id, scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, LoadDataset(id, scale)).first;
  }
  return it->second;
}

/// One experimental setting in a figure panel, e.g.
/// "(Workload,#Machines,System)=(10240,8,Pregel+)".
struct PanelSetting {
  std::string label;
  DatasetId dataset = DatasetId::kDblp;
  ClusterSpec cluster = ClusterSpec::Galaxy8();
  SystemKind system = SystemKind::kPregelPlus;
  std::string task = "BPPR";
  double workload = 1024.0;
  /// Optional generation-scale override (0 = bench default).
  double scale_override = 0.0;
};

/// Runs one setting under a schedule and returns the report (CHECK-fails
/// on configuration errors: benches are not user-input surfaces).
inline RunReport RunSetting(const PanelSetting& setting,
                            const BatchSchedule& schedule) {
  const Dataset& dataset =
      CachedDataset(setting.dataset, setting.scale_override);
  RunnerOptions options;
  options.cluster = setting.cluster;
  options.system = setting.system;
  options.execution_threads = 6;  // Thread-count invariant (see engine).
  MultiProcessingRunner runner(dataset, options);
  auto task = MakeTask(setting.task);
  VCMP_CHECK(task.ok()) << task.status().ToString();
  auto report = runner.Run(*task.value(), schedule);
  VCMP_CHECK(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

/// Renders a run's wall-clock the way the paper's figures do.
inline std::string TimeCell(const RunReport& report) {
  if (report.overloaded) return "Overload";
  return StrFormat("%.1fs", report.total_seconds);
}

/// Prints one figure panel: rows = settings, columns = batch counts, cells
/// = running time; the best batch count per row is marked with '*' (the
/// paper's yellow arrows).
inline void PrintBatchSweepPanel(const std::string& title,
                                 const std::vector<PanelSetting>& settings,
                                 const std::vector<uint32_t>& batch_counts) {
  PrintBanner(std::cout, title);
  std::vector<std::string> headers = {"(Workload,#Machines,...)"};
  for (uint32_t batches : batch_counts) {
    headers.push_back(StrFormat("%u-batch", batches));
  }
  TablePrinter table(std::move(headers));
  for (const PanelSetting& setting : settings) {
    std::vector<RunReport> reports;
    reports.reserve(batch_counts.size());
    size_t best = 0;
    for (size_t i = 0; i < batch_counts.size(); ++i) {
      reports.push_back(RunSetting(
          setting,
          BatchSchedule::Equal(setting.workload, batch_counts[i])));
      bool better =
          !reports[i].overloaded &&
          (reports[best].overloaded ||
           reports[i].total_seconds < reports[best].total_seconds);
      if (better) best = i;
    }
    std::vector<std::string> row = {setting.label};
    for (size_t i = 0; i < batch_counts.size(); ++i) {
      row.push_back(TimeCell(reports[i]) + (i == best ? " *" : ""));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

/// The doubling batch counts the paper sweeps.
inline std::vector<uint32_t> DoublingBatches() { return {1, 2, 4, 8, 16}; }

}  // namespace bench
}  // namespace vcmp

#endif  // VCMP_BENCH_BENCH_UTIL_H_
