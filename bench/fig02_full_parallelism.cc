// Reproduces Figure 2: "Full-Parallelism may be sub-optimal" — BPPR on
// DBLP over Galaxy-8 for Pregel+ (W=10240), GraphD (W=6144) and
// Pregel+(mirror) (W=160), swept over doubling batch counts. The paper's
// bars show 1-batch (Full-Parallelism) losing badly to 2-4 batches.

#include <iostream>

#include "bench_util.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  std::vector<PanelSetting> settings = {
      {"(10240,8,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 10240},
      {"(6144,8,GraphD)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kGraphD, "BPPR", 6144},
      {"(160,8,Pregel+(mirror))", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlusMirror, "BPPR", 160},
  };
  PrintBatchSweepPanel(
      "Figure 2: Full-Parallelism may be sub-optimal (BPPR, DBLP, "
      "Galaxy-8); '*' marks the optimal batch count",
      settings, DoublingBatches());
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
