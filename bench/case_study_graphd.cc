// Second tuning case study (the paper's additional materials promise
// "more case studies"): the disk-bound tuner for GraphD. Where Section
// 5's tuner models peak/residual MEMORY, the out-of-core planner models
// the per-batch buffered-message demand and picks the smallest equal
// split that stays below the disk-saturation edge — the optimization
// strategy of Section 4.4 automated end-to-end.

#include <iostream>

#include "bench_util.h"
#include "common/units.h"
#include "core/tuning/disk_planner.h"
#include "tasks/bppr.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  PrintBanner(std::cout,
              "Case study: disk-bound tuning of GraphD (BPPR, Orkut, "
              "Galaxy-27)");
  const Dataset& dataset = CachedDataset(DatasetId::kOrkut);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy27();
  options.system = SystemKind::kGraphD;
  BpprTask task;

  TablePrinter table({"Workload", "Full-Parallelism", "util",
                      "Tuned", "util'", "Learned schedule"});
  for (double workload : {1024.0, 2048.0, 4096.0, 8192.0}) {
    MultiProcessingRunner full_runner(dataset, options);
    auto full =
        full_runner.Run(task, BatchSchedule::FullParallelism(workload));
    VCMP_CHECK(full.ok());

    DiskTuner tuner(dataset, options);
    auto plan = tuner.Tune(task, workload);
    VCMP_CHECK(plan.ok()) << plan.status().ToString();
    MultiProcessingRunner tuned_runner(dataset, options);
    auto tuned = tuned_runner.Run(task, plan.value().schedule);
    VCMP_CHECK(tuned.ok());

    auto util_cell = [](const RunReport& report) {
      return report.disk_saturated
                 ? std::string("> 100%")
                 : StrFormat("%.0f%%", 100.0 * report.disk_utilization);
    };
    table.AddRow({StrFormat("%.0f", workload), TimeCell(full.value()),
                  util_cell(full.value()), TimeCell(tuned.value()),
                  util_cell(tuned.value()),
                  StrFormat("%zu x %.0f",
                            plan.value().schedule.NumBatches(),
                            plan.value().schedule.workloads().front())});
  }
  table.Print(std::cout);
  std::cout << "\nThe planner trains on light 1-batch runs, fits the "
               "buffered-demand model Mbuf(W),\nand stops shrinking "
               "batches exactly at the disk-saturation edge (Section "
               "4.4's strategy).\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
