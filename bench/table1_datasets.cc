// Reproduces Table 1 (the dataset inventory): for each paper dataset, the
// synthetic stand-in's measured properties next to the paper's numbers,
// plus the skew and effective-diameter statistics that make the stand-in
// faithful for congestion purposes (DESIGN.md section 2).

#include <iostream>

#include "bench_util.h"
#include "graph/analysis.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  PrintBanner(std::cout,
              "Table 1: paper datasets vs generated stand-ins");
  TablePrinter table({"Name", "paper n", "paper m", "paper d_avg",
                      "stand-in n (scale)", "d_avg", "E[d2]/E[d]",
                      "eff. diameter"});
  for (const DatasetInfo& info : AllDatasets()) {
    const Dataset& dataset = CachedDataset(info.id);
    DegreeStats stats = ComputeDegreeStats(dataset.graph);
    DiameterEstimate diameter = EstimateDiameter(dataset.graph, 4);
    table.AddRow({
        info.name,
        FormatCount(static_cast<double>(info.paper_nodes)),
        FormatCount(static_cast<double>(info.paper_edges)),
        StrFormat("%.1f", info.paper_avg_degree),
        StrFormat("%s (1/%.0f)",
                  FormatCount(dataset.graph.NumVertices()).c_str(),
                  dataset.scale),
        StrFormat("%.1f", stats.mean_degree),
        StrFormat("%.0f", stats.neighbor_degree_bias),
        StrFormat("%u", diameter.effective_diameter),
    });
  }
  table.Print(std::cout);
  std::cout << "\nStand-ins match node/edge counts (after the recorded "
               "scale) and average degree;\nthe neighbour-degree bias "
               "column shows the social-graph skew that drives hub\n"
               "congestion and mirroring benefit. (Friendster's paper "
               "d_avg=46.1 is inconsistent\nwith its own m/n=27.4; the "
               "stand-in matches m/n.)\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
