// Reproduces Figure 10: the whole-graph-access mode — the graph is
// replicated to every machine, the workload is partitioned instead, and a
// final aggregation merges per-machine partial BPPR estimates. Same
// settings as Figure 5(c). The paper: the mode overloads more easily at
// small batch counts (full graph resident per machine) but with a proper
// batch scheme it can beat the default partitioned deployment.

#include <iostream>

#include "bench_util.h"
#include "core/whole_graph.h"
#include "tasks/bppr.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  PrintBanner(std::cout,
              "Figure 10: whole-graph access mode (BPPR, DBLP); cells are "
              "algorithm+aggregation seconds");
  struct Setting {
    std::string label;
    ClusterSpec cluster;
    double workload;
  };
  std::vector<Setting> settings = {
      {"(10240,8,Pregel+)", ClusterSpec::Galaxy8(), 10240},
      {"(20480,16,Pregel+)", ClusterSpec::Galaxy27().WithMachines(16),
       20480},
      {"(34560,27,Pregel+)", ClusterSpec::Galaxy27(), 34560},
  };
  std::vector<uint32_t> batches = DoublingBatches();
  std::vector<std::string> headers = {"(Workload,#Machines,System)"};
  for (uint32_t b : batches) headers.push_back(StrFormat("%u-batch", b));
  TablePrinter table(std::move(headers));

  const Dataset& dataset = CachedDataset(DatasetId::kDblp);
  BpprTask task;
  for (const Setting& setting : settings) {
    std::vector<std::string> row = {setting.label};
    double best = 1e300;
    size_t best_index = 0;
    std::vector<std::string> cells;
    for (size_t i = 0; i < batches.size(); ++i) {
      WholeGraphOptions options;
      options.cluster = setting.cluster;
      WholeGraphRunner runner(dataset, options);
      auto report = runner.Run(
          task, BatchSchedule::Equal(setting.workload, batches[i]));
      VCMP_CHECK(report.ok()) << report.status().ToString();
      const WholeGraphReport& r = report.value();
      if (r.overloaded) {
        cells.push_back("Overload");
      } else {
        cells.push_back(StrFormat("%.1fs (alg %.1f + agg %.1f)",
                                  r.TotalSeconds(), r.algorithm_seconds,
                                  r.aggregation_seconds));
        if (r.TotalSeconds() < best) {
          best = r.TotalSeconds();
          best_index = i;
        }
      }
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      row.push_back(cells[i] + (i == best_index ? " *" : ""));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Contrast with the default (partitioned) deployment of Fig. 5(c).
  PrintBanner(std::cout,
              "Reference: default partitioned deployment, same settings");
  std::vector<PanelSetting> partitioned = {
      {"(10240,8,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 10240},
      {"(20480,16,Pregel+)", DatasetId::kDblp,
       ClusterSpec::Galaxy27().WithMachines(16), SystemKind::kPregelPlus,
       "BPPR", 20480},
      {"(34560,27,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BPPR", 34560},
  };
  PrintBatchSweepPanel("Figure 5(c) baseline", partitioned, batches);
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
