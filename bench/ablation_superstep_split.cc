// Ablation: Facebook's Giraph superstep splitting (Section 2.2, improvement
// (iii): "split a message-heavy superstep into several sub-steps for
// message reduction"). The paper evaluates stock system defaults; this
// bench quantifies what the mechanism would change: per-round buffer
// memory is capped at the threshold (sub-steps pay extra barriers), which
// moves the overload boundary upward — an automatic, engine-internal
// sibling of the paper's batch-level tuning.

#include <iostream>

#include "bench_util.h"
#include "common/units.h"
#include "tasks/bppr.h"

namespace vcmp {
namespace bench {
namespace {

RunReport RunGiraph(double workload, double split_threshold) {
  const Dataset& dataset = CachedDataset(DatasetId::kDblp);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8();
  options.system = SystemKind::kGiraph;
  SystemProfile profile = ProfileFor(SystemKind::kGiraph);
  profile.superstep_split_threshold_bytes = split_threshold;
  options.profile_override = profile;
  MultiProcessingRunner runner(dataset, options);
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::FullParallelism(workload));
  VCMP_CHECK(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

void Run() {
  PrintBanner(std::cout,
              "Ablation: Giraph superstep splitting (BPPR, DBLP, Galaxy-8, "
              "Full-Parallelism)");
  const double threshold = 2.0 * static_cast<double>(1ULL << 30);
  TablePrinter table({"Workload", "stock time", "stock mem", "split time",
                      "split mem", "verdict"});
  for (double workload : {512.0, 1024.0, 2048.0, 4096.0, 8192.0}) {
    RunReport stock = RunGiraph(workload, 0.0);
    RunReport split = RunGiraph(workload, threshold);
    std::string verdict;
    if (stock.overloaded && !split.overloaded) {
      verdict = "splitting rescues the run";
    } else if (!stock.overloaded &&
               split.total_seconds > stock.total_seconds) {
      verdict = "sub-step barriers cost a little";
    } else {
      verdict = "-";
    }
    table.AddRow({StrFormat("%.0f", workload), TimeCell(stock),
                  StrFormat("%.1fGB", BytesToGiB(stock.peak_memory_bytes)),
                  TimeCell(split),
                  StrFormat("%.1fGB", BytesToGiB(split.peak_memory_bytes)),
                  verdict});
  }
  table.Print(std::cout);
  std::cout << "\nSplitting caps per-round message memory at "
            << FormatBytes(threshold)
            << ": it trades barriers for headroom, independently of (and "
               "composable with) the paper's batch-level tuning.\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
