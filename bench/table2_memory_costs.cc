// Reproduces Table 2: (workload, #batches) -> per-machine memory / time /
// network-overuse time on 4 and 8 Galaxy machines (BPPR, DBLP, Pregel+).
// Paper shape: memory grows with workload, shrinks with batches and with
// machines; the optimal batch count is the one whose memory lands just
// below the ~14GB usable capacity; network overuse varies far less than
// total time (memory dominates network, Section 4.3).

#include <iostream>

#include "bench_util.h"
#include "common/units.h"

namespace vcmp {
namespace bench {
namespace {

std::string Cell(const RunReport& report) {
  if (report.overloaded) {
    return StrFormat("Overflow/Overload/-");
  }
  return StrFormat("%.1fGB/%.1fmin/%.1fmin",
                   BytesToGiB(report.peak_memory_bytes),
                   report.total_seconds / 60.0,
                   report.network_overuse_seconds / 60.0);
}

void Run() {
  PrintBanner(std::cout,
              "Table 2: memory / time / network-overuse per machine "
              "(BPPR, DBLP, Pregel+)");
  TablePrinter table(
      {"Workload", "Batches", "4 machines", "8 machines"});
  for (double workload : {1024.0, 4096.0, 12288.0}) {
    for (uint32_t batches : {1u, 2u, 4u}) {
      std::vector<std::string> row = {
          batches == 1 ? StrFormat("%.0f", workload) : "",
          StrFormat("%u", batches)};
      for (uint32_t machines : {4u, 8u}) {
        PanelSetting setting{"", DatasetId::kDblp,
                             ClusterSpec::Galaxy8().WithMachines(machines),
                             SystemKind::kPregelPlus, "BPPR", workload};
        RunReport report =
            RunSetting(setting, BatchSchedule::Equal(workload, batches));
        row.push_back(Cell(report));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper anchors (4 machines): W=1024 -> 4.3/3.6/3.0GB over "
               "1/2/4 batches; W=4096 -> 15.0/12.1/9.6GB;\n"
               "W=12288 -> Overflow / Overflow / 15.1GB-Overload. Optimal "
               "batches use just under the ~14GB usable memory.\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
