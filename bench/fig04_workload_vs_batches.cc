// Reproduces Figure 4: "Optimal batching is workload-dependent" — BPPR on
// DBLP, Galaxy-8, Pregel+, workloads {1024, 10240, 12288}. The paper:
// W=1024 is best at 1 batch, W=10240 at 2 batches, W=12288 at 4 batches.

#include <iostream>

#include "bench_util.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  std::vector<PanelSetting> settings = {
      {"(1024,8,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 1024},
      {"(10240,8,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 10240},
      {"(12288,8,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 12288},
  };
  PrintBatchSweepPanel(
      "Figure 4: a larger workload favours more batches (BPPR, DBLP, "
      "Galaxy-8)",
      settings, DoublingBatches());
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
