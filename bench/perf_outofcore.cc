// perf_outofcore: the standing out-of-core benchmark. Runs PageRank on
// the Web-St stand-in under the GraphD profile across cache policies —
// budget levels x prefetch on/off x section counts — plus the purely
// modeled baseline, and writes the measured I/O to BENCH_outofcore.json
// so successive src/ooc changes can be compared run-over-run:
//
//   perf_outofcore
//   perf_outofcore --json=/tmp/ooc.json --iterations=20
//
// Everything in the JSON is deterministic (simulated seconds, paper-scale
// spilled bytes, real spill/state file traffic, cache counters); only the
// wall-clock printed to stdout varies between runs. The benchmark itself
// enforces the OOC determinism contract: every configuration must produce
// the same rounds, messages and total PageRank mass as the uncapped run,
// and the tight budgets must actually spill.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/wall_clock.h"
#include "engine/sync_engine.h"
#include "engine/system_profile.h"
#include "graph/datasets.h"
#include "graph/partition.h"
#include "metrics/export.h"
#include "tasks/pagerank.h"

namespace vcmp {
namespace {

struct BenchConfig {
  const char* name;
  uint64_t budget_bytes;  // 0 = real OOC off (modeled baseline).
  bool prefetch;
  uint32_t sections;
};

struct BenchResult {
  BenchConfig config;
  EngineResult engine;
  double total_rank = 0.0;
  double wall_ms = 0.0;
};

constexpr uint64_t kMiB = 1ull << 20;
constexpr uint64_t kGiB = 1ull << 30;

// Budget levels are paper-scale bytes, like the cost model. The bench
// uses a 256-message spill page so the feasibility floor at stat scale
// 64 is 640KiB: 1MiB then forces every round to page most of its inbox
// out, 4MiB spills a moderate tail, and 4GiB runs the full OOC
// machinery without ever exceeding the resident cap.
constexpr uint32_t kSpillPageMessages = 256;
const BenchConfig kConfigs[] = {
    {"modeled_baseline", 0, false, 0},
    {"budget_4GiB_prefetch", 4 * kGiB, true, 64},
    {"budget_4MiB_prefetch", 4 * kMiB, true, 64},
    {"budget_1MiB_prefetch", 1 * kMiB, true, 64},
    {"budget_1MiB_prefetch_s256", 1 * kMiB, true, 256},
    // 700KiB: the 35% cache share no longer holds each machine's whole
    // vertex state, so sections evict and the prefetcher has real work.
    {"budget_700KiB_prefetch", 700 * 1024, true, 64},
    {"budget_700KiB_noprefetch", 700 * 1024, false, 64},
};

BenchResult RunConfig(const Dataset& dataset, const Partitioning& part,
                      const BenchConfig& config, uint32_t iterations) {
  EngineOptions options;
  options.cluster = ClusterSpec::Galaxy8();
  options.profile = ProfileFor(SystemKind::kGraphD);
  options.stat_scale = dataset.scale;
  options.execution_threads = 4;
  if (config.budget_bytes > 0) {
    options.ooc.enabled = true;
    options.ooc.memory_budget_bytes = config.budget_bytes;
    options.ooc.cache_sections = config.sections;
    options.ooc.prefetch = config.prefetch;
    options.ooc.spill_page_messages = kSpillPageMessages;
  }
  SyncEngine engine(dataset.graph, part, options);
  TaskContext context{&dataset.graph, &part, dataset.scale,
                      options.profile.combines_messages};
  PageRankProgram::Params params;
  params.iterations = iterations;
  PageRankProgram program(context, params);

  BenchResult out;
  out.config = config;
  const uint64_t start_ns = wallclock::NowNs();
  auto result = engine.Run(program);
  out.wall_ms = wallclock::SecondsSince(start_ns) * 1e3;
  if (!result.ok()) {
    std::cerr << config.name << ": " << result.status().ToString() << "\n";
    std::exit(1);
  }
  out.engine = result.value();
  out.total_rank = program.TotalRank();
  return out;
}

std::string ConfigJson(const BenchResult& r) {
  JsonWriter json(/*with_schema_version=*/false);
  json.Field("name", r.config.name);
  json.Field("budget_bytes", r.config.budget_bytes);
  json.Field("prefetch", r.config.prefetch ? "on" : "off");
  json.Field("cache_sections", static_cast<uint64_t>(r.config.sections));
  json.Field("simulated_seconds", r.engine.seconds);
  json.Field("rounds", r.engine.num_rounds);
  json.Field("messages", r.engine.total_messages);
  json.Field("spilled_paper_bytes", r.engine.spilled_bytes);
  json.Field("spill_file_mib",
             (r.engine.ooc.spill_bytes_written +
              r.engine.ooc.spill_bytes_read) /
                 static_cast<double>(kMiB));
  json.Field("state_file_mib",
             r.engine.ooc.state_bytes_read / static_cast<double>(kMiB));
  json.Field("restored_messages", r.engine.ooc.restored_messages);
  json.Field("cache_hits", r.engine.ooc.cache_hits);
  json.Field("cache_misses", r.engine.ooc.cache_misses);
  json.Field("prefetch_loads", r.engine.ooc.prefetch_loads);
  json.Field("cache_evictions", r.engine.ooc.cache_evictions);
  return json.Close();
}

int Main(int argc, char** argv) {
  FlagParser flags("perf_outofcore",
                   "out-of-core cache-policy benchmark (PageRank, GraphD)");
  flags.Define("iterations", "20", "PageRank iterations per run");
  flags.Define("json", "BENCH_outofcore.json",
               "write measured I/O per configuration to this path "
               "(empty = skip)");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  const uint32_t iterations =
      static_cast<uint32_t>(flags.GetInt("iterations"));

  Dataset dataset = LoadDataset(DatasetId::kWebSt, 64.0);
  Partitioning part = HashPartitioner().Partition(dataset.graph, 8);
  std::printf("dataset: %s stand-in %s (scale %.0f)\n", dataset.info.name,
              dataset.graph.ToString().c_str(), dataset.scale);

  std::vector<BenchResult> results;
  for (const BenchConfig& config : kConfigs) {
    results.push_back(RunConfig(dataset, part, config, iterations));
    const BenchResult& r = results.back();
    std::printf(
        "%-28s wall %7.1fms  sim %9.1fs  spilled %8.1fMiB paper "
        "(%7.1fMiB spill files, %llu restored msgs, hit/miss/prefetch "
        "%llu/%llu/%llu)\n",
        r.config.name, r.wall_ms, r.engine.seconds,
        r.engine.spilled_bytes / static_cast<double>(kMiB),
        (r.engine.ooc.spill_bytes_written + r.engine.ooc.spill_bytes_read) /
            static_cast<double>(kMiB),
        static_cast<unsigned long long>(r.engine.ooc.restored_messages),
        static_cast<unsigned long long>(r.engine.ooc.cache_hits),
        static_cast<unsigned long long>(r.engine.ooc.cache_misses),
        static_cast<unsigned long long>(r.engine.ooc.prefetch_loads));
  }

  // Determinism contract: a hard budget changes costs, never answers.
  const BenchResult& baseline = results.front();
  for (const BenchResult& r : results) {
    if (r.engine.num_rounds != baseline.engine.num_rounds ||
        r.engine.total_messages != baseline.engine.total_messages ||
        r.total_rank != baseline.total_rank) {
      std::fprintf(stderr,
                   "FAIL: %s diverged from the modeled baseline "
                   "(rounds %llu vs %llu, rank %.17g vs %.17g)\n",
                   r.config.name,
                   static_cast<unsigned long long>(r.engine.num_rounds),
                   static_cast<unsigned long long>(baseline.engine.num_rounds),
                   r.total_rank, baseline.total_rank);
      return 1;
    }
    if (r.config.budget_bytes > 0 && r.config.budget_bytes <= kMiB &&
        r.engine.ooc.spill_bytes_written <= 0.0) {
      std::fprintf(stderr, "FAIL: %s did not spill under a tight budget\n",
                   r.config.name);
      return 1;
    }
  }
  std::printf("all configurations produced identical task results\n");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    JsonWriter json;
    json.Field("workload",
               StrFormat("PageRank %u iterations, Web-St scale 64, "
                         "Galaxy8, GraphD",
                         iterations));
    json.Field("simulated_seconds_uncapped", baseline.engine.seconds);
    json.Field("rounds", baseline.engine.num_rounds);
    json.Field("messages", baseline.engine.total_messages);
    std::string configs = "[";
    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) configs += ", ";
      configs += ConfigJson(results[i]);
    }
    configs += "]";
    json.RawField("configs", configs);
    Status written = WriteTextFile(json.Close(), json_path);
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
