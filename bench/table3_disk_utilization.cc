// Reproduces Table 3: "#Batches vs. disk utilization vs. network" for
// GraphD on 27 machines (BPPR). The paper reports workload 2048 without
// naming the dataset; on our DBLP stand-in that never exceeds GraphD's
// message-buffer budget, so we use the Orkut stand-in at W=4096, which
// lands in the same spill regime the paper measured. Paper shape:
// 1-2 batches saturate the disk (>100% utilisation, huge I/O queue, long
// I/O overuse); from 4 batches on the utilisation drops to a stable ~27%
// and the queue collapses; past the optimum (4 batches) the added
// synchronisation rounds grow the total time again.

#include <iostream>

#include "bench_util.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  PrintBanner(std::cout,
              "Table 3: #batches vs disk utilisation (GraphD, Orkut, "
              "Galaxy-27, workload 4096; paper ran W=2048)");
  TablePrinter table({"#Batches", "Overuse(Network)", "Overuse(I/O)",
                      "MaxDiskUtil", "I/OQueueLen", "TotalTime"});
  double best_seconds = 1e300;
  uint32_t best_batches = 0;
  std::vector<std::pair<uint32_t, RunReport>> rows;
  for (uint32_t batches : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    PanelSetting setting{"", DatasetId::kOrkut, ClusterSpec::Galaxy27(),
                         SystemKind::kGraphD, "BPPR", 4096};
    RunReport report =
        RunSetting(setting, BatchSchedule::Equal(4096, batches));
    if (!report.overloaded && report.total_seconds < best_seconds) {
      best_seconds = report.total_seconds;
      best_batches = batches;
    }
    rows.emplace_back(batches, std::move(report));
  }
  for (const auto& [batches, report] : rows) {
    table.AddRow({
        StrFormat("%u%s", batches,
                  batches == best_batches ? " (OPT)" : ""),
        StrFormat("%.0fs", report.network_overuse_seconds),
        StrFormat("%.0fs", report.disk_overuse_seconds),
        report.disk_saturated &&
                report.disk_overuse_seconds > 0.02 * report.total_seconds
            ? "> 100%"
            : StrFormat("%.0f%%", 100.0 * report.disk_utilization),
        StrFormat("%.0f", report.max_io_queue_length),
        TimeCell(report),
    });
  }
  table.Print(std::cout);
  std::cout << "\nPaper anchors: 1-batch > 100% util / queue 20256 / 285s; "
               "4-batch (OPT) 27% / queue 19 / 201s; 128-batch 26% / "
               "632s.\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
