// Reproduces Figure 8: the three tasks on the billion-edge Twitter
// stand-in, Docker-32. The paper's finding: for BPPR even a small
// per-vertex workload (128) is message-heavy (messages scale with the
// vertex count) and the residual memory of earlier batches makes LATER
// batches peak higher, so Full-Parallelism is optimal; MSSP/BKHS have
// small residual (proportional to the source count) and behave like the
// earlier figures.

#include <iostream>

#include "bench_util.h"
#include "common/units.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  std::vector<PanelSetting> settings = {
      {"(128,32,BPPR)", DatasetId::kTwitter, ClusterSpec::Docker32(),
       SystemKind::kPregelPlus, "BPPR", 128},
      {"(16,32,MSSP)", DatasetId::kTwitter, ClusterSpec::Docker32(),
       SystemKind::kPregelPlus, "MSSP", 16},
      {"(4096,32,BKHS)", DatasetId::kTwitter, ClusterSpec::Docker32(),
       SystemKind::kPregelPlus, "BKHS", 4096},
  };
  PrintBatchSweepPanel(
      "Figure 8: tasks on the Twitter stand-in (Docker-32)", settings,
      DoublingBatches());

  // The residual-memory mechanism behind the BPPR result.
  PrintBanner(std::cout,
              "Figure 8 mechanism: BPPR residual memory vs batches "
              "(Twitter)");
  TablePrinter table({"#Batches", "PeakResidual/machine", "PeakMem/machine",
                      "Time"});
  for (uint32_t batches : {1u, 2u, 4u}) {
    PanelSetting setting = {"", DatasetId::kTwitter,
                            ClusterSpec::Docker32(),
                            SystemKind::kPregelPlus, "BPPR", 128};
    RunReport report =
        RunSetting(setting, BatchSchedule::Equal(128, batches));
    table.AddRow({StrFormat("%u", batches),
                  StrFormat("%.1fGB", BytesToGiB(report.peak_residual_bytes)),
                  StrFormat("%.1fGB", BytesToGiB(report.peak_memory_bytes)),
                  TimeCell(report)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
