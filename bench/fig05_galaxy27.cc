// Reproduces Figure 5: batch sweeps on Galaxy-27 — varying task (a),
// dataset (b, including the billion-edge Twitter/Friendster stand-ins),
// machine count (c) and system (d). Defaults: DBLP / BPPR / Pregel+.

#include <iostream>

#include "bench_util.h"

namespace vcmp {
namespace bench {
namespace {

void PanelA() {
  std::vector<PanelSetting> settings = {
      {"(34560,27,BPPR)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BPPR", 34560},
      {"(3456,27,MSSP)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "MSSP", 3456},
      {"(25600,27,BKHS)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BKHS", 25600},
  };
  PrintBatchSweepPanel("Figure 5(a): varying task (Galaxy-27)", settings,
                       DoublingBatches());
}

void PanelB() {
  std::vector<PanelSetting> settings = {
      {"(34560,27,DBLP)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BPPR", 34560},
      {"(69120,27,Web-St)", DatasetId::kWebSt, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BPPR", 69120},
      {"(3000,27,Orkut)", DatasetId::kOrkut, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BPPR", 3000},
      {"(8192,27,LiveJournal)", DatasetId::kLiveJournal,
       ClusterSpec::Galaxy27(), SystemKind::kPregelPlus, "BPPR", 8192},
      {"(128,27,Twitter)", DatasetId::kTwitter, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BPPR", 128},
      {"(16,27,Friendster)", DatasetId::kFriendster,
       ClusterSpec::Galaxy27(), SystemKind::kPregelPlus, "BPPR", 16},
  };
  PrintBatchSweepPanel("Figure 5(b): varying dataset (Galaxy-27)",
                       settings, DoublingBatches());
}

void PanelC() {
  std::vector<PanelSetting> settings = {
      {"(10240,8,Pregel+)", DatasetId::kDblp,
       ClusterSpec::Galaxy8(), SystemKind::kPregelPlus, "BPPR", 10240},
      {"(20480,16,Pregel+)", DatasetId::kDblp,
       ClusterSpec::Galaxy27().WithMachines(16), SystemKind::kPregelPlus,
       "BPPR", 20480},
      {"(34560,27,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BPPR", 34560},
  };
  PrintBatchSweepPanel("Figure 5(c): varying #machines (Galaxy-27)",
                       settings, DoublingBatches());
}

void PanelD() {
  std::vector<PanelSetting> settings = {
      {"(34560,27,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kPregelPlus, "BPPR", 34560},
      {"(6400,27,Giraph)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kGiraph, "BPPR", 6400},
      {"(6400,27,Giraph-async)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kGiraphAsync, "BPPR", 6400},
      {"(256,27,Pregel+(mirror))", DatasetId::kDblp,
       ClusterSpec::Galaxy27(), SystemKind::kPregelPlusMirror, "BPPR", 256},
      {"(5120,27,GraphD)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kGraphD, "BPPR", 5120},
      {"(1600,27,GraphLab)", DatasetId::kDblp, ClusterSpec::Galaxy27(),
       SystemKind::kGraphLab, "BPPR", 1600, /*scale_override=*/512.0},
  };
  PrintBatchSweepPanel("Figure 5(d): varying system (Galaxy-27)", settings,
                       DoublingBatches());
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::PanelA();
  vcmp::bench::PanelB();
  vcmp::bench::PanelC();
  vcmp::bench::PanelD();
  return 0;
}
