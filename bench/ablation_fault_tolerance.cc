// Ablation: Pregel's checkpoint-based fault tolerance under the
// multi-processing workloads. The paper's systems all checkpoint (Pregel
// writes state to GFS between supersteps); this bench quantifies the
// interval tradeoff on a heavy BPPR batch: frequent checkpoints pay write
// time every k rounds, sparse ones pay long replays when a machine dies.

#include <iostream>

#include "bench_util.h"
#include "engine/sync_engine.h"
#include "tasks/bppr.h"

namespace vcmp {
namespace bench {
namespace {

EngineResult RunWith(uint64_t checkpoint_interval, uint64_t failure_round) {
  const Dataset& dataset = CachedDataset(DatasetId::kDblp);
  static auto& partition = *new Partitioning(
      HashPartitioner().Partition(dataset.graph, 8));
  EngineOptions options;
  options.cluster = ClusterSpec::Galaxy8();
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  options.stat_scale = dataset.scale;
  options.checkpoint_interval_rounds = checkpoint_interval;
  options.inject_failure_at_round = failure_round;
  TaskContext context{&dataset.graph, &partition, dataset.scale, false};
  BpprTask task;
  auto program =
      task.MakeProgram(context, ProgramFlavor::kPointToPoint, 2048, 7);
  VCMP_CHECK(program.ok());
  SyncEngine engine(dataset.graph, partition, options);
  auto result = engine.Run(*program.value());
  VCMP_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void Run() {
  PrintBanner(std::cout,
              "Ablation: checkpoint interval under a machine failure "
              "(BPPR W=2048, DBLP, Galaxy-8, failure at round 40)");
  TablePrinter table({"Interval", "Checkpoints", "CkptTime", "Recovery",
                      "Total"});
  double best = 1e300;
  uint64_t best_interval = 0;
  std::vector<std::pair<uint64_t, EngineResult>> rows;
  for (uint64_t interval : {0ULL, 2ULL, 5ULL, 10ULL, 20ULL, 40ULL}) {
    EngineResult result = RunWith(interval, /*failure_round=*/40);
    if (result.seconds < best) {
      best = result.seconds;
      best_interval = interval;
    }
    rows.emplace_back(interval, std::move(result));
  }
  for (const auto& [interval, result] : rows) {
    table.AddRow({interval == 0 ? "none"
                                : StrFormat("%llu", (unsigned long long)
                                                        interval),
                  StrFormat("%llu",
                            (unsigned long long)result.checkpoints_taken),
                  StrFormat("%.1fs", result.checkpoint_seconds),
                  StrFormat("%.1fs", result.recovery_seconds),
                  StrFormat("%.1fs%s", result.seconds,
                            interval == best_interval ? " *" : "")});
  }
  table.Print(std::cout);
  std::cout << "\nNo checkpoints replay the expensive early rounds; "
               "frequent checkpoints re-write\nthe heavy early-round state "
               "over and over. Because BPPR's round cost decays\n"
               "geometrically, sparse checkpointing wins here — the "
               "interval should track the\nworkload's round-cost profile, "
               "not a fixed period.\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
