// Reproduces Figure 6: the per-round message counts behind Figure 4,
// "illustrating that the processing time is not linear with the number of
// messages per round". Rows: workloads {1024, 10240, 12288}; per batch
// count we print avg messages/round and running time. The paper's anchors:
// (1024, 1-batch) = 63.7M msgs/round, 173.3s; (10240, 1-batch) = 633.2M,
// 6641.5s; (12288, 1-batch) = 754.0M, Overload.

#include <iostream>

#include "bench_util.h"

namespace vcmp {
namespace bench {
namespace {

void Run() {
  PrintBanner(std::cout,
              "Figure 6: message congestion vs time (BPPR, DBLP, Galaxy-8)");
  TablePrinter table({"Workload", "Metric", "1-batch", "2-batch",
                      "4-batch"});
  for (double workload : {1024.0, 10240.0, 12288.0}) {
    PanelSetting setting{"", DatasetId::kDblp, ClusterSpec::Galaxy8(),
                         SystemKind::kPregelPlus, "BPPR", workload};
    std::vector<RunReport> reports;
    for (uint32_t batches : {1u, 2u, 4u}) {
      reports.push_back(
          RunSetting(setting, BatchSchedule::Equal(workload, batches)));
    }
    std::vector<std::string> message_row = {StrFormat("%.0f", workload),
                                            "#Msgs/round"};
    std::vector<std::string> time_row = {"", "Time"};
    for (const RunReport& report : reports) {
      if (report.overloaded) {
        // Overloaded runs stop within the first rounds; the average is
        // not meaningful, so report the congestion observed before the
        // cut (or the overflow point).
        message_row.push_back(
            report.total_messages > 0.0
                ? FormatCount(report.MessagesPerRound()) + " (pre-cut)"
                : "Overflow@seed");
      } else {
        message_row.push_back(FormatCount(report.MessagesPerRound()));
      }
      time_row.push_back(TimeCell(report));
    }
    table.AddRow(std::move(message_row));
    table.AddRow(std::move(time_row));
  }
  table.Print(std::cout);
  std::cout << "\nPaper anchors: (1024,1b)=63.7M/173.3s, "
               "(10240,1b)=633.2M/6641.5s, (12288,1b)=754.0M/Overload;\n"
               "time rises super-linearly once congestion crosses the "
               "memory threshold.\n";
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
