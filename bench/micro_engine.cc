// google-benchmark microbenchmarks of the engine primitives: message
// staging/combining, inbox grouping, partitioning, counting-mode walk
// transitions, mirror-plan construction, and LMA fitting. These quantify
// the cost of the building blocks the figure benches compose.

#include <benchmark/benchmark.h>

#include "common/math/lma.h"
#include "common/rng.h"
#include "engine/mirror_engine.h"
#include "engine/worker.h"
#include "graph/generators.h"
#include "graph/partition.h"

namespace vcmp {
namespace {

const Graph& BenchGraph() {
  static const auto& graph = *new Graph(GenerateRmat({.num_vertices = 1 << 15,
                                                      .num_edges = 1 << 18,
                                                      .seed = 5}));
  return graph;
}

void BM_WorkerStage(benchmark::State& state) {
  const bool combine = state.range(0) != 0;
  SumCombiner combiner;
  Worker worker;
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    worker.Reset(8);
    worker.SetCombiner(combine ? &combiner : nullptr);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      worker.Stage(static_cast<uint32_t>(rng.NextBounded(8)),
                   static_cast<VertexId>(rng.NextBounded(1024)), 0, 1.0,
                   1.0);
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_WorkerStage)->Arg(0)->Arg(1);

void BM_WorkerStageSkewed(benchmark::State& state) {
  // Combining-heavy: 10k messages over only `range(0)` distinct targets,
  // so most Stage calls hit an existing combiner-index entry. Exercises
  // the flat-hash probe/combine path rather than the append path.
  const uint32_t distinct = static_cast<uint32_t>(state.range(0));
  SumCombiner combiner;
  Worker worker;
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    worker.Reset(8);
    worker.SetCombiner(&combiner);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      worker.Stage(static_cast<uint32_t>(rng.NextBounded(8)),
                   static_cast<VertexId>(rng.NextBounded(distinct)), 0,
                   1.0, 1.0);
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_WorkerStageSkewed)->Arg(16)->Arg(256)->Arg(4096);

void BM_WorkerDrain(benchmark::State& state) {
  // Measures delivery: append each staged outbox into a destination inbox
  // and reset combiner state. Worker buffers are reused across
  // iterations, so steady-state cost (no per-round allocation) is what
  // gets measured.
  SumCombiner combiner;
  Worker worker;
  worker.Reset(8);
  worker.SetCombiner(&combiner);
  Rng rng(5);
  MessageBlock inbox;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 10000; ++i) {
      worker.Stage(static_cast<uint32_t>(rng.NextBounded(8)),
                   static_cast<VertexId>(rng.NextBounded(1 << 14)), 0,
                   1.0, 1.0);
    }
    state.ResumeTiming();
    for (uint32_t machine = 0; machine < 8; ++machine) {
      inbox.Clear();
      worker.Drain(machine, &inbox);
      benchmark::DoNotOptimize(inbox.targets());
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_WorkerDrain);

void BM_WorkerSwapOutbox(benchmark::State& state) {
  // The single-sender delivery path: an O(1) buffer exchange instead of
  // a column append. The contrast with BM_WorkerDrain quantifies what
  // single-machine (or single-active-sender) rounds save.
  Worker worker;
  worker.Reset(1);
  worker.SetCombiner(nullptr);
  Rng rng(6);
  MessageBlock inbox;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 10000; ++i) {
      worker.Stage(0, static_cast<VertexId>(rng.NextBounded(1 << 14)), 0,
                   1.0, 1.0);
    }
    inbox.Clear();
    state.ResumeTiming();
    worker.SwapOutbox(0, &inbox);
    benchmark::DoNotOptimize(inbox.targets());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_WorkerSwapOutbox);

void BM_InboxGrouping(benchmark::State& state) {
  // range(1) selects the dense counting-sort strategy (vertex space
  // declared and n >= V) versus the sparse pair-radix strategy.
  const bool dense = state.range(1) != 0;
  Rng rng(2);
  std::vector<VertexId> targets(static_cast<size_t>(state.range(0)));
  for (VertexId& target : targets) {
    target = static_cast<VertexId>(rng.NextBounded(1 << 12));
  }
  Worker worker;
  for (auto _ : state) {
    state.PauseTiming();
    worker.Reset(1);
    if (dense) worker.set_vertex_space(1 << 12);
    for (VertexId target : targets) {
      worker.inbox().PushBack(target, 0, 1.0, 1.0);
    }
    state.ResumeTiming();
    worker.GroupInbox();
    benchmark::DoNotOptimize(worker.runs().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InboxGrouping)
    ->Args({1 << 12, 0})
    ->Args({1 << 16, 0})
    ->Args({1 << 20, 0})
    ->Args({1 << 16, 1})
    ->Args({1 << 20, 1});

void BM_HashPartition(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  HashPartitioner partitioner;
  for (auto _ : state) {
    Partitioning part = partitioner.Partition(graph, 8);
    benchmark::DoNotOptimize(part.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.NumVertices());
}
BENCHMARK(BM_HashPartition);

void BM_GreedyEdgeCutPartition(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  GreedyEdgeCutPartitioner partitioner;
  for (auto _ : state) {
    Partitioning part = partitioner.Partition(graph, 8);
    benchmark::DoNotOptimize(part.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.NumEdges());
}
BENCHMARK(BM_GreedyEdgeCutPartition);

void BM_MirrorPlan(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Partitioning part = HashPartitioner().Partition(graph, 8);
  for (auto _ : state) {
    MirrorPlan plan(graph, part, 64);
    benchmark::DoNotOptimize(plan.TotalMirrors());
  }
  state.SetItemsProcessed(state.iterations() * graph.NumEdges());
}
BENCHMARK(BM_MirrorPlan);

void BM_BinomialWalkSplit(benchmark::State& state) {
  // The inner loop of counting-mode BPPR: multinomial split via
  // conditional binomials over a degree-32 vertex.
  Rng rng(3);
  const uint64_t walks = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    uint64_t remaining = walks;
    uint64_t out = 0;
    for (int left = 32; left > 0 && remaining > 0; --left) {
      uint64_t portion =
          left == 1 ? remaining : rng.NextBinomial(remaining, 1.0 / left);
      out += portion;
      remaining -= portion;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_BinomialWalkSplit)->Arg(100)->Arg(100000)->Arg(100000000);

void BM_LmaPowerLawFit(benchmark::State& state) {
  std::vector<double> xs;
  std::vector<double> ys;
  double x = 2.0;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.2) + 40.0);
    x *= 2.0;
  }
  for (auto _ : state) {
    auto fit = FitPowerLaw(xs, ys);
    benchmark::DoNotOptimize(fit.ok());
  }
}
BENCHMARK(BM_LmaPowerLawFit);

}  // namespace
}  // namespace vcmp

BENCHMARK_MAIN();
