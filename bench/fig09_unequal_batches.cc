// Reproduces Figure 9: "Unequal batches are beneficial" — BPPR on DBLP,
// two batches W1 + W2 with varying delta = W1 - W2, on Galaxy-8 (total
// 12800) and Galaxy-27 (total 40960). For each delta we print the
// two-batch execution time alongside the times of running each batch
// alone (the stacked right-hand bars of the paper's figure). The optimum
// sits at delta > 0 because batch 2 pays batch 1's residual memory.

#include <iostream>

#include "bench_util.h"
#include "tasks/bppr.h"

namespace vcmp {
namespace bench {
namespace {

void Sweep(const std::string& title, const ClusterSpec& cluster,
           double total, const std::vector<double>& deltas) {
  PrintBanner(std::cout, title);
  TablePrinter table({"delta=W1-W2", "W1", "W2", "Two-batch", "1st(alone)",
                      "2nd(alone)"});
  double best_seconds = 1e300;
  double best_delta = 0.0;
  for (double delta : deltas) {
    PanelSetting setting{"", DatasetId::kDblp, cluster,
                         SystemKind::kPregelPlus, "BPPR", total};
    BatchSchedule schedule = BatchSchedule::TwoBatch(total, delta);
    RunReport combined = RunSetting(setting, schedule);
    double w1 = schedule.workloads()[0];
    double w2 = schedule.workloads()[1];
    std::string first = "-";
    std::string second = "-";
    if (w1 >= 1.0) {
      first = TimeCell(
          RunSetting(setting, BatchSchedule::FullParallelism(w1)));
    }
    if (w2 >= 1.0) {
      second = TimeCell(
          RunSetting(setting, BatchSchedule::FullParallelism(w2)));
    }
    if (!combined.overloaded && combined.total_seconds < best_seconds) {
      best_seconds = combined.total_seconds;
      best_delta = delta;
    }
    table.AddRow({StrFormat("%.0f", delta), StrFormat("%.0f", w1),
                  StrFormat("%.0f", w2), TimeCell(combined), first,
                  second});
  }
  table.Print(std::cout);
  std::cout << StrFormat(
      "Optimum at delta = %.0f (paper: optimum at W1 > W2, e.g. delta = "
      "2560 on Galaxy-8)\n",
      best_delta);
}

void Run() {
  const double g8_total = 12800.0;
  std::vector<double> g8_deltas;
  for (double d = -10240.0; d <= 10240.0; d += 2560.0) {
    g8_deltas.push_back(d);
  }
  Sweep("Figure 9(a): unequal two-batch BPPR, Galaxy-8 (total 12800)",
        ClusterSpec::Galaxy8(), g8_total, g8_deltas);

  const double g27_total = 40960.0;
  std::vector<double> g27_deltas;
  for (double d = -32768.0; d <= 32768.0; d += 8192.0) {
    g27_deltas.push_back(d);
  }
  Sweep("Figure 9(b): unequal two-batch BPPR, Galaxy-27 (total 40960)",
        ClusterSpec::Galaxy27(), g27_total, g27_deltas);
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
