// serve_throughput: the standing serving-layer benchmark. Replays the
// steady and bursty arrival scenarios of configs/serve_steady_vs_burst.ini
// against a fixed-k sweep and the model-driven dynamic batcher, prints
// the latency/throughput comparison, and writes BENCH_serve.json.
//
//   serve_throughput                     # BENCH_serve.json
//   serve_throughput --json=/tmp/s.json
//
// Every number in the output is simulated (no wall-clock), so the JSON
// is bit-identical across runs — diff it run-over-run to catch serving
// regressions. The binary exits non-zero when the serving layer's
// headline claim fails: under the burst trace the dynamic policy must
// beat every fixed k on p99 latency without ever entering the memory
// overload state, and every batch it forms must satisfy the Eq.-6-style
// feasibility bound peak + residual <= p * M at formation time.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/units.h"
#include "metrics/export.h"
#include "service/serve_spec.h"
#include "sim/cluster_spec.h"

namespace vcmp {
namespace {

struct BenchRow {
  std::string scenario;
  ServiceReport report;
};

ServeSpec BaseSpec() {
  ServeSpec spec;
  spec.dataset = "DBLP";
  spec.scale = 256.0;
  spec.task = "BPPR";
  spec.cluster = "galaxy";
  spec.seed = 7;
  spec.threads = 1;
  spec.clients = 4;
  spec.units_per_query = 64.0;
  spec.horizon_seconds = 600.0;
  spec.job_overhead_seconds = 30.0;
  spec.drain_delay_seconds = 3600.0;
  spec.max_wait_seconds = 8.0;
  spec.safety_fraction = 0.2;
  spec.train_target = 6144.0;
  return spec;
}

std::string RowJson(const BenchRow& row) {
  const ServiceReport& r = row.report;
  JsonWriter json(/*with_schema_version=*/false);
  json.Field("scenario", row.scenario);
  json.Field("policy", r.policy);
  json.Field("completed", r.completed);
  json.Field("shed", r.shed);
  json.Field("num_batches", static_cast<uint64_t>(r.batches.size()));
  json.Field("mean_batch_units", r.mean_batch_units);
  json.Field("p50_latency_seconds", r.p50_latency_seconds);
  json.Field("p95_latency_seconds", r.p95_latency_seconds);
  json.Field("p99_latency_seconds", r.p99_latency_seconds);
  json.Field("max_latency_seconds", r.max_latency_seconds);
  json.Field("mean_queue_seconds", r.mean_queue_seconds);
  json.Field("throughput_qps", r.throughput_qps);
  json.Field("makespan_seconds", r.makespan_seconds);
  json.Field("utilization", r.utilization);
  json.Field("peak_memory_bytes", r.peak_memory_bytes);
  json.Field("peak_residual_bytes", r.peak_residual_bytes);
  json.Field("memory_overload", r.memory_overload);
  return json.Close();
}

int Main(int argc, char** argv) {
  FlagParser flags("serve_throughput",
                   "serving-layer benchmark (fixed-k sweep vs dynamic)");
  flags.Define("json", "BENCH_serve.json",
               "write the comparison to this path (empty = skip)");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  const char* kBurstTrace = "240x0.01,120x0.5,240x0.01";
  // fixed:64 is the no-batching baseline (one 64-unit query per job).
  const std::vector<std::string> policies = {
      "dynamic",   "fixed:64",   "fixed:128",
      "fixed:512", "fixed:2048", "fixed:8192"};

  std::vector<BenchRow> rows;
  for (const char* scenario : {"steady", "burst"}) {
    for (const std::string& policy : policies) {
      ServeSpec spec = BaseSpec();
      spec.name = std::string(scenario) + "/" + policy;
      spec.policy = policy;
      if (std::string(scenario) == "steady") {
        spec.rate_per_second = 0.012;
      } else {
        spec.trace = kBurstTrace;
      }
      auto report = RunServeScenario(spec);
      if (!report.ok()) {
        std::cerr << spec.name << ": " << report.status().ToString()
                  << "\n";
        return 1;
      }
      report.value().policy = policy;  // Stable key (vs display name).
      rows.push_back({scenario, std::move(report.value())});
      const ServiceReport& r = rows.back().report;
      std::printf("%-8s %-11s p50 %8.1fs  p99 %8.1fs  batches %3zu "
                  "(mean %6.0f units)  peak %5.2fGB%s\n",
                  scenario, policy.c_str(), r.p50_latency_seconds,
                  r.p99_latency_seconds, r.batches.size(),
                  r.mean_batch_units, BytesToGiB(r.peak_memory_bytes),
                  r.memory_overload ? "  OVERLOAD" : "");
    }
  }

  // The headline comparison: on the burst trace, dynamic must beat the
  // best fixed k on p99 without overloading, and every batch it formed
  // must have been feasible (peak incl. residual <= p * M).
  const double budget_bytes =
      0.85 * ClusterSpec::Galaxy8().machine.memory_bytes;
  const ServiceReport* burst_dynamic = nullptr;
  const ServiceReport* best_fixed = nullptr;
  for (const BenchRow& row : rows) {
    if (row.scenario != "burst") continue;
    if (row.report.policy == "dynamic") {
      burst_dynamic = &row.report;
    } else if (best_fixed == nullptr ||
               row.report.p99_latency_seconds <
                   best_fixed->p99_latency_seconds) {
      best_fixed = &row.report;
    }
  }
  bool feasible = true;
  for (const ServiceBatchTrace& batch : burst_dynamic->batches) {
    if (batch.peak_memory_bytes > budget_bytes) feasible = false;
  }
  const bool beats = burst_dynamic->p99_latency_seconds <
                     best_fixed->p99_latency_seconds;
  const bool clean = !burst_dynamic->memory_overload;
  std::printf(
      "\nburst: dynamic p99 %.1fs vs best fixed (%s) p99 %.1fs -> %s\n"
      "dynamic overload-free: %s   batch feasibility (peak <= p*M): %s\n",
      burst_dynamic->p99_latency_seconds, best_fixed->policy.c_str(),
      best_fixed->p99_latency_seconds, beats ? "BEATS" : "LOSES",
      clean ? "yes" : "NO", feasible ? "holds" : "VIOLATED");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    JsonWriter json;
    json.Field("bench", "serve_throughput");
    json.Field("workload",
               "BPPR 64-unit queries, 4 clients, DBLP scale 256, "
               "Galaxy8, job overhead 30s, drain delay 3600s");
    json.Field("burst_trace", kBurstTrace);
    json.Field("seed", static_cast<uint64_t>(7));
    std::string rows_json = "[";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) rows_json += ",";
      rows_json += RowJson(rows[i]);
    }
    rows_json += "]";
    json.RawField("runs", rows_json);
    JsonWriter verdict(/*with_schema_version=*/false);
    verdict.Field("best_fixed_policy", best_fixed->policy);
    verdict.Field("best_fixed_p99_seconds",
                  best_fixed->p99_latency_seconds);
    verdict.Field("dynamic_p99_seconds",
                  burst_dynamic->p99_latency_seconds);
    verdict.Field("dynamic_beats_best_fixed", beats);
    verdict.Field("dynamic_overload_free", clean);
    verdict.Field("dynamic_batches_feasible", feasible);
    json.RawField("burst_verdict", verdict.Close());
    Status written = WriteTextFile(json.Close(), json_path);
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return (beats && clean && feasible) ? 0 : 1;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
