// perf_concurrent: the standing concurrent multi-query benchmark. Runs a
// seeded mix of multi-processing queries (BPPR/MSSP/BKHS over the DBLP
// stand-in) through the ConcurrentRunner across a concurrency x threads
// sweep and writes BENCH_concurrent.json so successive engine/runner
// changes can be compared run-over-run:
//
//   perf_concurrent
//   perf_concurrent --json=/tmp/conc.json --repeats=5
//   perf_concurrent --deterministic-json   # CI run-twice-diff mode
//
// Per-query simulated seconds are deterministic at every point of the
// sweep — the benchmark itself enforces that every (concurrency, threads)
// combination reproduces the serial single-threaded reports bit for bit,
// and exits nonzero on the first divergence. Measured numbers (per-config
// wall-clock, queries/second, the 8-thread concurrency speedup) vary
// between runs; --deterministic-json excludes them so CI can diff two
// runs byte for byte. CI's bench-smoke job also gates on
// concurrent_speedup_8t: with 8 threads, running the mix at concurrency
// >= 2 must beat running it serially.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/wall_clock.h"
#include "core/concurrent_runner.h"
#include "metrics/export.h"
#include "sim/cluster_spec.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

struct SweepPoint {
  uint32_t concurrency;
  uint32_t threads;
};

// Concurrency sweeps past the thread count on purpose: K=8 at T=8 gives
// every query its own driver and an empty shared pool — pure inter-query
// parallelism with zero per-round barrier traffic, the throughput end of
// the intra/inter-query tradeoff.
const SweepPoint kSweep[] = {
    {1, 1}, {2, 1}, {4, 1}, {8, 1}, {1, 2}, {2, 2}, {4, 2}, {8, 2},
    {1, 8}, {2, 8}, {4, 8}, {8, 8},
};

struct SweepResult {
  SweepPoint point;
  ConcurrentRunReport report;
  double best_wall_seconds = 0.0;
};

/// The benchmark's query mix: one seed names the whole workload (task,
/// batch count, workload per query), same derivation as the concurrent
/// engine test suite.
struct QueryMix {
  std::vector<std::unique_ptr<MultiTask>> tasks;
  std::vector<ConcurrentQuery> queries;
};

QueryMix MakeMix(uint64_t mix_seed, size_t count) {
  QueryMix mix;
  Rng rng(mix_seed);
  const std::vector<std::string>& names = BenchmarkTaskNames();
  for (size_t i = 0; i < count; ++i) {
    auto task = MakeTask(names[rng.NextBounded(names.size())]);
    if (!task.ok()) {
      std::cerr << task.status().ToString() << "\n";
      std::exit(1);
    }
    const double workload = 128.0 + 128.0 * rng.NextBounded(3);
    const uint32_t batches = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    mix.tasks.push_back(std::move(task.value()));
    ConcurrentQuery query;
    query.task = mix.tasks.back().get();
    query.schedule = BatchSchedule::Equal(workload, batches);
    mix.queries.push_back(std::move(query));
  }
  return mix;
}

RunnerOptions BaseOptions(uint32_t threads) {
  RunnerOptions base;
  base.cluster = ClusterSpec::Galaxy8();
  base.system = SystemKind::kPregelPlus;
  base.seed = 7;
  base.execution_threads = threads;
  return base;
}

/// Runs one sweep point `repeats` times; reports are identical across
/// repeats (checked), the wall-clock keeps the best.
SweepResult RunPoint(const Dataset& dataset, const QueryMix& mix,
                     const SweepPoint& point, uint32_t repeats) {
  SweepResult out;
  out.point = point;
  for (uint32_t r = 0; r < repeats; ++r) {
    ConcurrentRunnerOptions options;
    options.base = BaseOptions(point.threads);
    options.concurrency = point.concurrency;
    ConcurrentRunner runner(dataset, options);
    auto report = runner.Run(mix.queries);
    if (!report.ok()) {
      std::cerr << "K=" << point.concurrency << " T=" << point.threads
                << ": " << report.status().ToString() << "\n";
      std::exit(1);
    }
    if (report.value().queries_failed != 0) {
      std::cerr << "K=" << point.concurrency << " T=" << point.threads
                << ": a query failed\n";
      std::exit(1);
    }
    const double wall = report.value().wall_seconds;
    if (r == 0 || wall < out.best_wall_seconds) {
      out.best_wall_seconds = wall;
    }
    out.report = std::move(report.value());
  }
  return out;
}

/// The determinism contract at benchmark scale: every sweep point must
/// agree with the serial single-threaded baseline on every deterministic
/// per-query statistic.
bool MatchesBaseline(const SweepResult& r, const SweepResult& baseline) {
  for (size_t q = 0; q < r.report.queries.size(); ++q) {
    const RunReport& a = r.report.queries[q].report;
    const RunReport& b = baseline.report.queries[q].report;
    if (a.total_seconds != b.total_seconds ||
        a.total_messages != b.total_messages ||
        a.total_rounds != b.total_rounds ||
        a.spilled_bytes != b.spilled_bytes ||
        a.peak_residual_bytes != b.peak_residual_bytes) {
      std::fprintf(stderr,
                   "FAIL: K=%u T=%u query %zu diverged from the serial "
                   "baseline (%.17g s vs %.17g s, %.17g vs %.17g msgs)\n",
                   r.point.concurrency, r.point.threads, q, a.total_seconds,
                   b.total_seconds, a.total_messages, b.total_messages);
      return false;
    }
  }
  return true;
}

std::string PointJson(const SweepResult& r, bool deterministic_only) {
  JsonWriter json(/*with_schema_version=*/false);
  json.Field("concurrency", static_cast<uint64_t>(r.point.concurrency));
  json.Field("threads", static_cast<uint64_t>(r.point.threads));
  json.Field("queries", static_cast<uint64_t>(r.report.queries.size()));
  json.Field("total_simulated_seconds", r.report.total_simulated_seconds);
  json.Field("max_simulated_seconds", r.report.max_simulated_seconds);
  if (!deterministic_only) {
    json.Field("wall_ms", r.best_wall_seconds * 1e3);
    json.Field("queries_per_second",
               r.best_wall_seconds > 0.0
                   ? r.report.queries.size() / r.best_wall_seconds
                   : 0.0);
    json.Field("mean_query_wall_ms", r.report.queries.empty()
                                         ? 0.0
                                         : r.best_wall_seconds * 1e3 /
                                               r.report.queries.size());
  }
  return json.Close();
}

int Main(int argc, char** argv) {
  FlagParser flags("perf_concurrent",
                   "concurrent multi-query benchmark (seeded mix, "
                   "concurrency x threads sweep)");
  flags.Define("queries", "8", "number of queries in the seeded mix");
  flags.Define("mix-seed", "42", "seed naming the query mix");
  flags.Define("repeats", "3",
               "runs per sweep point (wall-clock keeps the best)");
  flags.Define("json", "BENCH_concurrent.json",
               "write the sweep to this path (empty = skip)");
  flags.Define("deterministic-json", "false",
               "exclude measured wall-clock fields from the JSON so two "
               "runs diff byte-for-byte (CI determinism check)");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  const uint32_t repeats =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("repeats")));
  const bool deterministic_only = flags.GetBool("deterministic-json");

  Dataset dataset = LoadDataset(DatasetId::kDblp, 256.0);
  QueryMix mix = MakeMix(flags.GetInt("mix-seed"),
                         static_cast<size_t>(flags.GetInt("queries")));
  std::printf("dataset: %s stand-in %s (scale %.0f), %zu queries\n",
              dataset.info.name, dataset.graph.ToString().c_str(),
              dataset.scale, mix.queries.size());

  std::vector<SweepResult> results;
  for (const SweepPoint& point : kSweep) {
    results.push_back(RunPoint(dataset, mix, point, repeats));
    const SweepResult& r = results.back();
    std::printf(
        "K=%u T=%u  wall %7.1fms  %6.1f queries/s  sim total %9.1fs  "
        "sim max %8.1fs\n",
        r.point.concurrency, r.point.threads, r.best_wall_seconds * 1e3,
        r.report.queries.size() / r.best_wall_seconds,
        r.report.total_simulated_seconds, r.report.max_simulated_seconds);
  }

  for (const SweepResult& r : results) {
    if (!MatchesBaseline(r, results.front())) return 1;
  }
  std::printf("all sweep points produced identical per-query results\n");

  // The throughput claim: at 8 threads, some concurrency >= 2 beats
  // serial execution of the same mix.
  double serial_8t = 0.0;
  double best_concurrent_8t = 0.0;
  for (const SweepResult& r : results) {
    if (r.point.threads != 8) continue;
    if (r.point.concurrency == 1) {
      serial_8t = r.best_wall_seconds;
    } else if (best_concurrent_8t == 0.0 ||
               r.best_wall_seconds < best_concurrent_8t) {
      best_concurrent_8t = r.best_wall_seconds;
    }
  }
  const double speedup_8t =
      best_concurrent_8t > 0.0 ? serial_8t / best_concurrent_8t : 0.0;
  std::printf("concurrent_speedup_8t: %.2fx\n", speedup_8t);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    JsonWriter json;
    json.Field("workload",
               StrFormat("%zu seeded queries (BPPR/MSSP/BKHS), DBLP "
                         "scale 256, Galaxy8, Pregel+, mix seed %lld",
                         mix.queries.size(),
                         static_cast<long long>(flags.GetInt("mix-seed"))));
    json.Field("total_simulated_seconds",
               results.front().report.total_simulated_seconds);
    if (!deterministic_only) {
      json.Field("concurrent_speedup_8t", speedup_8t);
    }
    std::string points = "[";
    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) points += ", ";
      points += PointJson(results[i], deterministic_only);
    }
    points += "]";
    json.RawField("sweep", points);
    Status written = WriteTextFile(json.Close(), json_path);
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
