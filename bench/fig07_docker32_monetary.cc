// Reproduces Figure 7: running times AND monetary costs on the Docker-32
// cloud cluster, four panels (task / dataset / #machines / system). Each
// batch-count column also accumulates the credit cost of running every
// row's experiment at that setting, as the paper's x-axis labels do; the
// caption reports the optimal total (each row billed at its own best
// batch count).

#include <iostream>

#include "bench_util.h"
#include "sim/monetary_model.h"

namespace vcmp {
namespace bench {
namespace {

void MonetaryPanel(const std::string& title,
                   const std::vector<PanelSetting>& settings) {
  PrintBanner(std::cout, title);
  std::vector<uint32_t> batch_counts = DoublingBatches();
  std::vector<std::string> headers = {"(Workload,#Machines,...)"};
  for (uint32_t batches : batch_counts) {
    headers.push_back(StrFormat("%u-batch", batches));
  }
  TablePrinter table(std::move(headers));

  std::vector<double> column_cost(batch_counts.size(), 0.0);
  std::vector<bool> column_lower_bound(batch_counts.size(), false);
  double optimal_total = 0.0;
  for (const PanelSetting& setting : settings) {
    std::vector<std::string> row = {setting.label};
    double row_best = 1e300;
    for (size_t i = 0; i < batch_counts.size(); ++i) {
      RunReport report = RunSetting(
          setting, BatchSchedule::Equal(setting.workload, batch_counts[i]));
      row.push_back(TimeCell(report) + " " +
                    MonetaryModel::Format(report.monetary_cost,
                                          report.overloaded));
      column_cost[i] += report.monetary_cost;
      column_lower_bound[i] = column_lower_bound[i] || report.overloaded;
      if (!report.overloaded) {
        row_best = std::min(row_best, report.monetary_cost);
      }
    }
    optimal_total += row_best;
    table.AddRow(std::move(row));
  }
  std::vector<std::string> totals = {"column credit total"};
  for (size_t i = 0; i < batch_counts.size(); ++i) {
    totals.push_back(
        MonetaryModel::Format(column_cost[i], column_lower_bound[i]));
  }
  table.AddRow(std::move(totals));
  table.Print(std::cout);
  std::cout << "Optimal monetary cost (per-row best batch): "
            << MonetaryModel::Format(optimal_total, false) << "\n";
}

void Run() {
  MonetaryPanel(
      "Figure 7(a): varying task (Docker-32) — paper optimum $57",
      {
          {"(40960,32,BPPR)", DatasetId::kDblp, ClusterSpec::Docker32(),
           SystemKind::kPregelPlus, "BPPR", 40960},
          {"(4096,32,MSSP)", DatasetId::kDblp, ClusterSpec::Docker32(),
           SystemKind::kPregelPlus, "MSSP", 4096},
          {"(8192,32,BKHS)", DatasetId::kDblp, ClusterSpec::Docker32(),
           SystemKind::kPregelPlus, "BKHS", 8192},
      });
  MonetaryPanel(
      "Figure 7(b): varying dataset (Docker-32) — paper optimum $94",
      {
          {"(40960,32,DBLP)", DatasetId::kDblp, ClusterSpec::Docker32(),
           SystemKind::kPregelPlus, "BPPR", 40960},
          {"(81920,32,Web-St)", DatasetId::kWebSt, ClusterSpec::Docker32(),
           SystemKind::kPregelPlus, "BPPR", 81920},
          {"(4096,32,Orkut)", DatasetId::kOrkut, ClusterSpec::Docker32(),
           SystemKind::kPregelPlus, "BPPR", 4096},
          {"(128,32,Twitter)", DatasetId::kTwitter,
           ClusterSpec::Docker32(), SystemKind::kPregelPlus, "BPPR", 128},
      });
  MonetaryPanel(
      "Figure 7(c): varying #machines (Docker) — paper optimum $44",
      {
          {"(10240,8,Pregel+)", DatasetId::kDblp,
           ClusterSpec::Docker32().WithMachines(8),
           SystemKind::kPregelPlus, "BPPR", 10240},
          {"(20480,16,Pregel+)", DatasetId::kDblp,
           ClusterSpec::Docker32().WithMachines(16),
           SystemKind::kPregelPlus, "BPPR", 20480},
          {"(40960,32,Pregel+)", DatasetId::kDblp, ClusterSpec::Docker32(),
           SystemKind::kPregelPlus, "BPPR", 40960},
      });
  MonetaryPanel(
      "Figure 7(d): varying system (Docker-32) — paper optimum $52",
      {
          {"(40960,32,Pregel+)", DatasetId::kDblp, ClusterSpec::Docker32(),
           SystemKind::kPregelPlus, "BPPR", 40960},
          {"(4096,32,GraphD)", DatasetId::kDblp, ClusterSpec::Docker32(),
           SystemKind::kGraphD, "BPPR", 4096},
          {"(8192,32,Giraph)", DatasetId::kDblp, ClusterSpec::Docker32(),
           SystemKind::kGiraph, "BPPR", 8192},
          {"(160,32,Pregel+(mirror))", DatasetId::kDblp,
           ClusterSpec::Docker32(), SystemKind::kPregelPlusMirror, "BPPR",
           160},
      });
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
