// perf_engine: the standing engine-performance benchmark. Runs the
// multi-batch B-PPR + MSSP workload on the LiveJournal stand-in and
// reports real wall-clock per engine phase (compute, group, stage,
// deliver), writing the numbers to a JSON file so successive engine
// changes can be compared run-over-run:
//
//   perf_engine                      # sweep 1,2,4 + headline 8 threads
//   perf_engine --threads=1 --json=/tmp/t1.json
//   perf_engine --threads-sweep=1,2,8   # per-thread-count blocks in JSON
//
// When the sweep covers both 1 and 8 threads (the default), the JSON
// gains top-level wall_ms_1t / wall_ms_8t / speedup_8t fields — the
// scaling headline CI's bench-smoke job gates on.
//
// The simulated seconds printed at the end are thread-count invariant
// (the engine's determinism contract); the benchmark verifies this across
// the sweep and fails if any thread count disagrees. Only the wall-clock
// changes with --threads. Total workload: 3 reps x (B-PPR W=4096 in 4
// batches + MSSP W=2048 in 4 batches) on Galaxy8 under Pregel+, seed 11.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "common/wall_clock.h"
#include "core/runner.h"
#include "graph/datasets.h"
#include "metrics/export.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

struct Measurement {
  uint32_t threads = 0;            // Requested configuration.
  uint32_t effective_threads = 0;  // After the (optional) hardware clamp.
  double wall_ms = 0.0;
  EnginePhaseTimes phase;
  double sim_seconds = 0.0;
  // Sender-side combining effectiveness: logical messages emitted vs.
  // wire messages after the combiner (1.0 when combining is off).
  double logical_sent = 0.0;
  double wire_messages = 0.0;

  double CombinedRatio() const {
    return wire_messages > 0.0 ? logical_sent / wire_messages : 1.0;
  }
  double MessagePathMs() const {
    return 1e3 * (phase.group_seconds + phase.stage_seconds +
                  phase.deliver_seconds);
  }
};

/// Runs the whole workload at one thread count. With `timed` the engine
/// collects its per-phase breakdown, which itself costs wall-clock (two
/// clock reads per staged message), so the headline wall time comes from
/// a separate untimed pass.
Measurement MeasureThreads(const Dataset& dataset, int reps,
                           uint32_t threads, bool clamp_to_hardware,
                           bool combining) {
  Measurement out;
  out.threads = threads;
  out.effective_threads = ThreadPool::ResolveThreads(threads,
                                                     clamp_to_hardware);
  auto run_workload = [&](bool timed) -> double {
    RunnerOptions options;
    options.cluster = ClusterSpec::Galaxy8();
    options.system = SystemKind::kPregelPlus;
    options.seed = 11;
    options.execution_threads = threads;
    options.clamp_threads_to_hardware = clamp_to_hardware;
    options.collect_phase_times = timed;
    options.sender_combining = combining;
    options.engine_observer = [&out, timed](const EngineResult& result) {
      if (timed) {
        out.phase.compute_seconds += result.phase.compute_seconds;
        out.phase.group_seconds += result.phase.group_seconds;
        out.phase.stage_seconds += result.phase.stage_seconds;
        out.phase.deliver_seconds += result.phase.deliver_seconds;
        return;
      }
      // Message counts come off the untimed (headline) pass; both passes
      // run the identical schedule.
      out.logical_sent += result.total_logical_sent;
      out.wire_messages += result.total_wire_messages;
    };
    MultiProcessingRunner runner(dataset, options);
    out.sim_seconds = 0.0;
    const uint64_t start_ns = wallclock::NowNs();
    for (int rep = 0; rep < reps; ++rep) {
      auto bppr = MakeTask("BPPR");
      auto r1 = runner.Run(*bppr.value(), BatchSchedule::Equal(4096, 4));
      if (!r1.ok()) {
        std::cerr << r1.status().ToString() << "\n";
        std::exit(1);
      }
      out.sim_seconds += r1.value().total_seconds;
      auto mssp = MakeTask("MSSP");
      auto r2 = runner.Run(*mssp.value(), BatchSchedule::Equal(2048, 4));
      if (!r2.ok()) {
        std::cerr << r2.status().ToString() << "\n";
        std::exit(1);
      }
      out.sim_seconds += r2.value().total_seconds;
    }
    return wallclock::SecondsSince(start_ns) * 1e3;
  };
  out.wall_ms = run_workload(/*timed=*/false);
  run_workload(/*timed=*/true);  // Phase breakdown (instrumented).
  return out;
}

void PrintMeasurement(const Measurement& m) {
  std::printf(
      "threads %u (effective %u)  wall %.1fms  (compute %.1fms, "
      "group %.1fms, stage %.1fms, deliver %.1fms)  combined_ratio %.3f\n",
      m.threads, m.effective_threads, m.wall_ms,
      1e3 * m.phase.compute_seconds,
      1e3 * m.phase.group_seconds, 1e3 * m.phase.stage_seconds,
      1e3 * m.phase.deliver_seconds, m.CombinedRatio());
}

/// Serialises one measurement as a nested JSON object (no schema stamp).
std::string MeasurementJson(const Measurement& m) {
  JsonWriter json(/*with_schema_version=*/false);
  json.Field("threads", static_cast<uint64_t>(m.threads));
  json.Field("effective_threads", static_cast<uint64_t>(m.effective_threads));
  json.Field("wall_ms", m.wall_ms);
  json.Field("compute_ms", 1e3 * m.phase.compute_seconds);
  json.Field("group_ms", 1e3 * m.phase.group_seconds);
  json.Field("stage_ms", 1e3 * m.phase.stage_seconds);
  json.Field("deliver_ms", 1e3 * m.phase.deliver_seconds);
  json.Field("message_path_ms", m.MessagePathMs());
  return json.Close();
}

std::vector<uint32_t> ParseSweep(const std::string& sweep) {
  std::vector<uint32_t> counts;
  std::stringstream in(sweep);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    counts.push_back(static_cast<uint32_t>(std::stoul(item)));
  }
  return counts;
}

int Main(int argc, char** argv) {
  FlagParser flags("perf_engine",
                   "engine hot-path benchmark (multi-batch BPPR + MSSP)");
  flags.Define("threads", "8", "headline engine execution threads");
  flags.Define("reps", "3", "workload repetitions");
  flags.Define("threads-sweep", "1,2,4",
               "comma-separated extra thread counts to measure; each gets a"
               " block in the JSON sweep array (the headline count is always"
               " appended). Empty = headline only.");
  flags.Define("json", "BENCH_engine.json",
               "write phase timings to this path (empty = skip)");
  flags.Define("combining", "true",
               "engine-level sender-side combining (the default engine"
               " configuration). Off reproduces the plain send path;"
               " task results are bit-identical either way.");
  flags.Define("clamp-to-hardware", "false",
               "silently cap thread counts at the hardware concurrency "
               "(the engine's default). Off here: a scaling benchmark must"
               " measure the configuration it claims to, so on a small box"
               " the 8-thread point oversubscribes rather than silently"
               " re-measuring 1 thread. The JSON records hardware_threads"
               " and each point's effective_threads either way.");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  Dataset dataset = LoadDataset(DatasetId::kLiveJournal, 256.0);
  std::printf("dataset: %s stand-in %s (scale %.0f)\n", dataset.info.name,
              dataset.graph.ToString().c_str(), dataset.scale);

  const int reps = static_cast<int>(flags.GetInt("reps"));
  const uint32_t headline_threads =
      static_cast<uint32_t>(flags.GetInt("threads"));

  // The sweep always includes the headline count (measured exactly once).
  std::vector<uint32_t> sweep = ParseSweep(flags.GetString("threads-sweep"));
  bool headline_in_sweep = false;
  for (uint32_t t : sweep) headline_in_sweep |= (t == headline_threads);
  if (!headline_in_sweep) sweep.push_back(headline_threads);

  const bool clamp = flags.GetBool("clamp-to-hardware");
  const uint32_t hardware = ThreadPool::HardwareThreads();
  if (!clamp) {
    for (uint32_t t : sweep) {
      if (t > hardware) {
        std::printf(
            "note: %u threads oversubscribe this machine (%u hardware); "
            "measuring the requested configuration anyway\n",
            t, hardware);
      }
    }
  }

  const bool combining = flags.GetBool("combining");
  std::vector<Measurement> measurements;
  for (uint32_t threads : sweep) {
    measurements.push_back(
        MeasureThreads(dataset, reps, threads, clamp, combining));
    PrintMeasurement(measurements.back());
  }
  const Measurement* headline = &measurements.front();
  for (const Measurement& m : measurements) {
    if (m.threads == headline_threads) headline = &m;
  }

  // Determinism contract: the simulated schedule must be bit-identical
  // for every thread count (DESIGN.md section 7).
  for (const Measurement& m : measurements) {
    if (m.sim_seconds != headline->sim_seconds) {
      std::fprintf(stderr,
                   "FAIL: simulated seconds differ across thread counts "
                   "(%u threads: %.6f vs %u threads: %.6f)\n",
                   m.threads, m.sim_seconds, headline->threads,
                   headline->sim_seconds);
      return 1;
    }
  }
  std::printf("simulated seconds %.3f (thread-count invariant)\n",
              headline->sim_seconds);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    JsonWriter json;
    json.Field("workload",
               "3x (BPPR W=4096 4-batch + MSSP W=2048 4-batch), "
               "LiveJournal scale 256, Galaxy8, Pregel+");
    json.Field("seed", static_cast<uint64_t>(11));
    json.Field("threads", static_cast<uint64_t>(headline->threads));
    json.Field("effective_threads",
               static_cast<uint64_t>(headline->effective_threads));
    json.Field("hardware_threads", static_cast<uint64_t>(hardware));
    json.Field("clamped_to_hardware", clamp);
    json.Field("combining", combining);
    json.Field("combined_ratio", headline->CombinedRatio());
    json.Field("wall_ms", headline->wall_ms);
    json.Field("compute_ms", 1e3 * headline->phase.compute_seconds);
    json.Field("group_ms", 1e3 * headline->phase.group_seconds);
    json.Field("stage_ms", 1e3 * headline->phase.stage_seconds);
    json.Field("deliver_ms", 1e3 * headline->phase.deliver_seconds);
    json.Field("message_path_ms", headline->MessagePathMs());
    json.Field("simulated_seconds", headline->sim_seconds);
    // Scaling headline: single-thread vs eight-thread wall-clock from the
    // same sweep. CI's bench-smoke job gates on speedup_8t, so these stay
    // top-level scalars rather than buried in the sweep array.
    const Measurement* one_thread = nullptr;
    const Measurement* eight_threads = nullptr;
    for (const Measurement& m : measurements) {
      if (m.threads == 1) one_thread = &m;
      if (m.threads == 8) eight_threads = &m;
    }
    if (one_thread != nullptr && eight_threads != nullptr &&
        eight_threads->wall_ms > 0.0) {
      json.Field("wall_ms_1t", one_thread->wall_ms);
      json.Field("wall_ms_8t", eight_threads->wall_ms);
      json.Field("speedup_8t", one_thread->wall_ms / eight_threads->wall_ms);
      // Per-phase scaling, same two points: where the round's wall time
      // actually goes as threads grow (a flat wall with a rising
      // compute speedup means the message path is the new bottleneck).
      auto speedup = [](double one, double eight) {
        return eight > 0.0 ? one / eight : 0.0;
      };
      json.Field("compute_speedup_8t",
                 speedup(1e3 * one_thread->phase.compute_seconds,
                         1e3 * eight_threads->phase.compute_seconds));
      json.Field("group_speedup_8t",
                 speedup(1e3 * one_thread->phase.group_seconds,
                         1e3 * eight_threads->phase.group_seconds));
      json.Field("stage_speedup_8t",
                 speedup(1e3 * one_thread->phase.stage_seconds,
                         1e3 * eight_threads->phase.stage_seconds));
      json.Field("deliver_speedup_8t",
                 speedup(1e3 * one_thread->phase.deliver_seconds,
                         1e3 * eight_threads->phase.deliver_seconds));
      json.Field("message_path_speedup_8t",
                 speedup(one_thread->MessagePathMs(),
                         eight_threads->MessagePathMs()));
    }
    std::string sweep_json = "[";
    for (size_t i = 0; i < measurements.size(); ++i) {
      if (i > 0) sweep_json += ", ";
      sweep_json += MeasurementJson(measurements[i]);
    }
    sweep_json += "]";
    json.RawField("sweep", sweep_json);
    // Historical reference points, emitted verbatim so regenerating the
    // checked-in BENCH_engine.json keeps the comparison anchors. The
    // pre-overhaul engine is the PR4 hot path (AoS message vectors, no
    // frontier, virtual per-message Compute); the seed baseline predates
    // even that (per-round thread spawn, std::sort grouping).
    json.RawField(
        "pre_combining",
        "{\"note\": \"same workload on the engine immediately before "
        "sender-side combining and parallel grouping/delivery (serial "
        "per-machine grouping, per-dest serial drain, no send-path "
        "combiner under Pregel+)\", \"wall_ms\": 1487.4, "
        "\"wall_ms_1t\": 1495.2, \"group_ms_1t\": 236.3, "
        "\"stage_ms_1t\": 113.2, \"deliver_ms_1t\": 51.6, "
        "\"stage_ms_8t\": 173.5, \"simulated_seconds\": 41938.144}");
    json.RawField(
        "pre_overhaul",
        "{\"note\": \"same workload on the pre-overhaul engine (AoS "
        "std::vector<Message> buffers, no active-vertex frontier, virtual "
        "per-message Compute dispatch, conditional-binomial walk splits)\", "
        "\"wall_ms\": 1814.6, \"compute_ms\": 2972.1, \"group_ms\": 258.7, "
        "\"stage_ms\": 648.2, \"deliver_ms\": 74.1, "
        "\"simulated_seconds\": 41941.452}");
    json.RawField(
        "seed_baseline",
        "{\"note\": \"same workload on the pre-PR4 engine (per-round thread "
        "spawn, std::sort grouping, unordered_map combiner index); phase "
        "breakdown unavailable there\", \"wall_ms_8_threads\": 2947.0, "
        "\"wall_ms_1_thread\": 2643.0, \"speedup_8_threads\": 1.62}");
    Status written = WriteTextFile(json.Close(), json_path);
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
