// perf_engine: the standing engine-performance benchmark. Runs the
// multi-batch B-PPR + MSSP workload on the LiveJournal stand-in and
// reports real wall-clock per engine phase (compute, group, stage,
// deliver), writing the numbers to a JSON file so successive engine
// changes can be compared run-over-run:
//
//   perf_engine                      # 3 reps, 8 threads, BENCH_engine.json
//   perf_engine --threads=1 --json=/tmp/t1.json
//
// The simulated seconds printed at the end are thread-count invariant
// (the engine's determinism contract); only the wall-clock changes with
// --threads. Total workload: 3 reps x (B-PPR W=4096 in 4 batches +
// MSSP W=2048 in 4 batches) on Galaxy8 under Pregel+, seed 11.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/wall_clock.h"
#include "core/runner.h"
#include "graph/datasets.h"
#include "metrics/export.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags("perf_engine",
                   "engine hot-path benchmark (multi-batch BPPR + MSSP)");
  flags.Define("threads", "8", "engine execution threads");
  flags.Define("reps", "3", "workload repetitions");
  flags.Define("json", "BENCH_engine.json",
               "write phase timings to this path (empty = skip)");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  Dataset dataset = LoadDataset(DatasetId::kLiveJournal, 256.0);
  std::printf("dataset: %s stand-in %s (scale %.0f)\n", dataset.info.name,
              dataset.graph.ToString().c_str(), dataset.scale);

  const int reps = static_cast<int>(flags.GetInt("reps"));
  EnginePhaseTimes phase;
  double sim_seconds = 0.0;
  // Runs the whole workload once. With `timed` the engine collects its
  // per-phase breakdown, which itself costs wall-clock (two clock reads
  // per staged message), so the headline wall time comes from a separate
  // untimed pass.
  auto run_workload = [&](bool timed) -> double {
    RunnerOptions options;
    options.cluster = ClusterSpec::Galaxy8();
    options.system = SystemKind::kPregelPlus;
    options.seed = 11;
    options.execution_threads =
        static_cast<uint32_t>(flags.GetInt("threads"));
    options.collect_phase_times = timed;
    if (timed) {
      options.engine_observer = [&phase](const EngineResult& result) {
        phase.compute_seconds += result.phase.compute_seconds;
        phase.group_seconds += result.phase.group_seconds;
        phase.stage_seconds += result.phase.stage_seconds;
        phase.deliver_seconds += result.phase.deliver_seconds;
      };
    }
    MultiProcessingRunner runner(dataset, options);
    sim_seconds = 0.0;
    const uint64_t start_ns = wallclock::NowNs();
    for (int rep = 0; rep < reps; ++rep) {
      auto bppr = MakeTask("BPPR");
      auto r1 = runner.Run(*bppr.value(), BatchSchedule::Equal(4096, 4));
      if (!r1.ok()) {
        std::cerr << r1.status().ToString() << "\n";
        std::exit(1);
      }
      sim_seconds += r1.value().total_seconds;
      auto mssp = MakeTask("MSSP");
      auto r2 = runner.Run(*mssp.value(), BatchSchedule::Equal(2048, 4));
      if (!r2.ok()) {
        std::cerr << r2.status().ToString() << "\n";
        std::exit(1);
      }
      sim_seconds += r2.value().total_seconds;
    }
    return wallclock::SecondsSince(start_ns) * 1e3;
  };

  const double wall_ms = run_workload(/*timed=*/false);
  run_workload(/*timed=*/true);  // Phase breakdown (instrumented).

  const uint32_t threads = static_cast<uint32_t>(flags.GetInt("threads"));
  std::printf(
      "threads %u  wall %.1fms  (compute %.1fms, group %.1fms, "
      "stage %.1fms, deliver %.1fms)\n",
      threads, wall_ms, 1e3 * phase.compute_seconds,
      1e3 * phase.group_seconds, 1e3 * phase.stage_seconds,
      1e3 * phase.deliver_seconds);
  std::printf("simulated seconds %.3f (thread-count invariant)\n",
              sim_seconds);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    JsonWriter json;
    json.Field("workload",
               "3x (BPPR W=4096 4-batch + MSSP W=2048 4-batch), "
               "LiveJournal scale 256, Galaxy8, Pregel+");
    json.Field("seed", static_cast<uint64_t>(11));
    json.Field("threads", static_cast<uint64_t>(threads));
    json.Field("wall_ms", wall_ms);
    json.Field("compute_ms", 1e3 * phase.compute_seconds);
    json.Field("group_ms", 1e3 * phase.group_seconds);
    json.Field("stage_ms", 1e3 * phase.stage_seconds);
    json.Field("deliver_ms", 1e3 * phase.deliver_seconds);
    json.Field("simulated_seconds", sim_seconds);
    Status written = WriteTextFile(json.Close(), json_path);
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace vcmp

int main(int argc, char** argv) { return vcmp::Main(argc, argv); }
