// Reproduces Figure 3: batch sweeps on Galaxy-8, four panels — varying
// task (a), dataset (b), machine count (c) and system (d). Defaults are
// DBLP / BPPR / Pregel+ unless a panel varies them. The paper's summary:
// running times are mostly NOT monotone in the batch count; the optimum
// sits at an intermediate batch count except for a few light settings.

#include <iostream>

#include "bench_util.h"

namespace vcmp {
namespace bench {
namespace {

void PanelA() {
  std::vector<PanelSetting> settings = {
      {"(12288,8,BPPR)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 12288},
      {"(4096,8,MSSP)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "MSSP", 4096},
      {"(655368,8,BKHS)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BKHS", 655368},
  };
  PrintBatchSweepPanel("Figure 3(a): varying task (Galaxy-8)", settings,
                       DoublingBatches());
}

void PanelB() {
  std::vector<PanelSetting> settings = {
      {"(10240,8,DBLP)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 10240},
      {"(20480,8,Web-St)", DatasetId::kWebSt, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 20480},
      {"(512,8,Orkut)", DatasetId::kOrkut, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 512},
  };
  PrintBatchSweepPanel("Figure 3(b): varying dataset (Galaxy-8)", settings,
                       DoublingBatches());
}

void PanelC() {
  std::vector<PanelSetting> settings = {
      {"(2048,2,Pregel+)", DatasetId::kDblp,
       ClusterSpec::Galaxy8().WithMachines(2), SystemKind::kPregelPlus,
       "BPPR", 2048},
      {"(5120,4,Pregel+)", DatasetId::kDblp,
       ClusterSpec::Galaxy8().WithMachines(4), SystemKind::kPregelPlus,
       "BPPR", 5120},
      {"(10240,8,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 10240},
  };
  PrintBatchSweepPanel("Figure 3(c): varying #machines (Galaxy-8)",
                       settings, DoublingBatches());
}

void PanelD() {
  std::vector<PanelSetting> settings = {
      {"(10240,8,Pregel+)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlus, "BPPR", 10240},
      {"(2048,8,Giraph)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kGiraph, "BPPR", 2048},
      {"(1024,8,Giraph-async)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kGiraphAsync, "BPPR", 1024},
      {"(160,8,Pregel+(mirror))", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kPregelPlusMirror, "BPPR", 160},
      {"(2048,8,GraphD)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kGraphD, "BPPR", 2048},
      {"(20480,8,GraphLab)", DatasetId::kDblp, ClusterSpec::Galaxy8(),
       SystemKind::kGraphLab, "BPPR", 20480, /*scale_override=*/512.0},
  };
  PrintBatchSweepPanel("Figure 3(d): varying system (Galaxy-8)", settings,
                       DoublingBatches());
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::PanelA();
  vcmp::bench::PanelB();
  vcmp::bench::PanelC();
  vcmp::bench::PanelD();
  return 0;
}
