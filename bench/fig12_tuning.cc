// Reproduces Figure 12: the cost-based tuning case study — Optimized
// (the learned batch schedule of Section 5) vs Full-Parallelism for BPPR
// and MSSP on DBLP over 2/4/8 Galaxy machines, across workload sweeps.
// Paper shape: Optimized stays flat and low as the workload grows while
// Full-Parallelism blows up / overloads; the learned schedules decrease
// monotonically (e.g. [2747, 1388, 644, 266, 75] for W=5120 on 4
// machines).

#include <iostream>

#include "bench_util.h"
#include "core/tuning/tuner.h"

namespace vcmp {
namespace bench {
namespace {

void Panel(const std::string& title, const std::string& task_name,
           uint32_t machines, const std::vector<double>& workloads) {
  PrintBanner(std::cout, title);
  TablePrinter table({"Workload", "Full-Parallelism", "Optimized",
                      "Learned schedule"});
  const Dataset& dataset = CachedDataset(DatasetId::kDblp);
  auto task = MakeTask(task_name);
  VCMP_CHECK(task.ok());

  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8().WithMachines(machines);
  for (double workload : workloads) {
    MultiProcessingRunner full_runner(dataset, options);
    auto full =
        full_runner.Run(*task.value(),
                        BatchSchedule::FullParallelism(workload));
    VCMP_CHECK(full.ok()) << full.status().ToString();

    Tuner tuner(dataset, options);
    auto plan = tuner.Tune(*task.value(), workload);
    VCMP_CHECK(plan.ok()) << plan.status().ToString();
    MultiProcessingRunner tuned_runner(dataset, options);
    auto tuned = tuned_runner.Run(*task.value(), plan.value().schedule);
    VCMP_CHECK(tuned.ok()) << tuned.status().ToString();

    table.AddRow({StrFormat("%.0f", workload), TimeCell(full.value()),
                  TimeCell(tuned.value()),
                  plan.value().schedule.ToString()});
  }
  table.Print(std::cout);
}

void Run() {
  Panel("Figure 12(a): BPPR, 2 machines", "BPPR", 2,
        {1280, 1536, 1792, 2048, 2304, 2560, 3072});
  Panel("Figure 12(b): BPPR, 4 machines", "BPPR", 4,
        {3584, 4096, 4608, 5120, 6144});
  Panel("Figure 12(c): BPPR, 8 machines", "BPPR", 8,
        {4096, 5120, 6144, 7168, 8192});
  // The paper's MSSP ranges end right at its clusters' overload
  // boundary; our calibration sits slightly below it at those values, so
  // each panel extends the sweep upward until Full-Parallelism breaks.
  Panel("Figure 12(d): MSSP, 2 machines", "MSSP", 2,
        {136, 144, 152, 160, 320, 640});
  Panel("Figure 12(e): MSSP, 4 machines", "MSSP", 4,
        {384, 416, 448, 480, 512, 1024});
  Panel("Figure 12(f): MSSP, 8 machines", "MSSP", 8,
        {832, 896, 960, 1024, 2048, 4096});
}

}  // namespace
}  // namespace bench
}  // namespace vcmp

int main() {
  vcmp::bench::Run();
  return 0;
}
