#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace vcmp {
namespace {

ClusterRoundLoad UniformLoad(uint32_t machines, double messages) {
  ClusterRoundLoad loads(machines);
  for (MachineRoundLoad& load : loads) {
    load.recv_messages = messages;
    load.processed_messages = messages;
    load.buffered_message_bytes = messages * 20.0;
    load.active_vertices = 1000.0;
    load.state_bytes = 1.0 * kMiB;
  }
  return loads;
}

TEST(CostModelTest, TimeScalesWithMessages) {
  CostModel model(ClusterSpec::Galaxy8(),
                  ProfileFor(SystemKind::kPregelPlus));
  RoundStats light = model.EvaluateRound(UniformLoad(8, 1e6), 0.0);
  RoundStats heavy = model.EvaluateRound(UniformLoad(8, 1e7), 0.0);
  EXPECT_GT(heavy.compute_seconds, 9.0 * light.compute_seconds);
  EXPECT_DOUBLE_EQ(light.messages, 8e6);
}

TEST(CostModelTest, BarrierGrowsWithMachines) {
  RoundStats small =
      CostModel(ClusterSpec::Galaxy8().WithMachines(2),
                ProfileFor(SystemKind::kPregelPlus))
          .EvaluateRound(UniformLoad(2, 1e5), 0.0);
  RoundStats large =
      CostModel(ClusterSpec::Galaxy27(),
                ProfileFor(SystemKind::kPregelPlus))
          .EvaluateRound(UniformLoad(27, 1e5), 0.0);
  EXPECT_GT(large.barrier_seconds, small.barrier_seconds);
}

TEST(CostModelTest, GiraphProfileCostsMore) {
  ClusterRoundLoad loads = UniformLoad(8, 1e7);
  RoundStats pregel = CostModel(ClusterSpec::Galaxy8(),
                                ProfileFor(SystemKind::kPregelPlus))
                          .EvaluateRound(loads, 0.0);
  RoundStats giraph = CostModel(ClusterSpec::Galaxy8(),
                                ProfileFor(SystemKind::kGiraph))
                          .EvaluateRound(loads, 0.0);
  EXPECT_GT(giraph.compute_seconds, 2.0 * pregel.compute_seconds);
  // Same buffered bytes demand far more memory on the JVM.
  EXPECT_GT(giraph.max_memory_bytes, 2.0 * pregel.max_memory_bytes);
}

TEST(CostModelTest, MemoryOverflowFlagsRound) {
  CostModel model(ClusterSpec::Galaxy8(),
                  ProfileFor(SystemKind::kPregelPlus));
  ClusterRoundLoad loads = UniformLoad(8, 1e6);
  loads[3].residual_bytes = 20.0 * kGiB;  // One machine past physical.
  RoundStats stats = model.EvaluateRound(loads, 0.0);
  EXPECT_TRUE(stats.overflow);
  EXPECT_GT(stats.thrash_multiplier, 1.0);
}

TEST(CostModelTest, ThrashInflatesRoundTime) {
  CostModel model(ClusterSpec::Galaxy8(),
                  ProfileFor(SystemKind::kPregelPlus));
  ClusterRoundLoad comfortable = UniformLoad(8, 1e7);
  ClusterRoundLoad pressured = UniformLoad(8, 1e7);
  for (MachineRoundLoad& load : pressured) {
    load.residual_bytes = 13.0 * kGiB;
  }
  RoundStats fast = model.EvaluateRound(comfortable, 0.0);
  RoundStats slow = model.EvaluateRound(pressured, 0.0);
  EXPECT_GT(slow.total_seconds, 1.5 * fast.total_seconds);
  EXPECT_GT(slow.thrash_multiplier, 1.5);
}

TEST(CostModelTest, OutOfCoreCapsMemoryButPaysDisk) {
  SystemProfile graphd = ProfileFor(SystemKind::kGraphD);
  CostModel model(ClusterSpec::Galaxy27(), graphd);
  ClusterRoundLoad loads = UniformLoad(27, 1e6);
  for (MachineRoundLoad& load : loads) {
    load.buffered_message_bytes = 30.0 * kGiB;  // Far beyond the budget.
  }
  RoundStats stats = model.EvaluateRound(loads, 64.0 * kMiB);
  EXPECT_FALSE(stats.overflow);  // Spill prevents the overflow...
  EXPECT_GT(stats.disk_stall_seconds, 0.0);  // ...but the disk pays.
  EXPECT_TRUE(stats.disk_saturated);
  EXPECT_LE(stats.max_memory_bytes,
            graphd.ooc_budget_bytes + 2.0 * kMiB + 1.0);
}

TEST(CostModelTest, InMemoryProfileIgnoresDisk) {
  CostModel model(ClusterSpec::Galaxy8(),
                  ProfileFor(SystemKind::kPregelPlus));
  RoundStats stats = model.EvaluateRound(UniformLoad(8, 1e7), 512.0 * kMiB);
  EXPECT_DOUBLE_EQ(stats.disk_stall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.disk_utilization, 0.0);
}

TEST(CostModelTest, SlowestMachineGovernsRoundTime) {
  CostModel model(ClusterSpec::Galaxy8(),
                  ProfileFor(SystemKind::kPregelPlus));
  ClusterRoundLoad balanced = UniformLoad(8, 1e6);
  ClusterRoundLoad skewed = UniformLoad(8, 1e6);
  // Same total work, one straggler.
  for (MachineRoundLoad& load : skewed) load.processed_messages = 0.5e6;
  skewed[0].processed_messages = 4.5e6;
  RoundStats even = model.EvaluateRound(balanced, 0.0);
  RoundStats straggler = model.EvaluateRound(skewed, 0.0);
  EXPECT_GT(straggler.total_seconds, 2.0 * even.total_seconds);
}

TEST(CostModelTest, RejectsWrongMachineCount) {
  CostModel model(ClusterSpec::Galaxy8(),
                  ProfileFor(SystemKind::kPregelPlus));
  EXPECT_DEATH((void)model.EvaluateRound(UniformLoad(4, 1.0), 0.0),
               "every machine");
}

TEST(CostModelTest, NetworkOveruseOnlyOnBursts) {
  CostModel model(ClusterSpec::Galaxy8(),
                  ProfileFor(SystemKind::kPregelPlus));
  ClusterRoundLoad loads = UniformLoad(8, 1e7);
  RoundStats quiet = model.EvaluateRound(loads, 0.0);
  EXPECT_DOUBLE_EQ(quiet.network_overuse_seconds, 0.0);
  for (MachineRoundLoad& load : loads) {
    load.cross_bytes_out = 64.0 * kGiB;
    load.cross_bytes_in = 64.0 * kGiB;
  }
  RoundStats bursty = model.EvaluateRound(loads, 0.0);
  EXPECT_GT(bursty.network_overuse_seconds, 0.0);
}

}  // namespace
}  // namespace vcmp
