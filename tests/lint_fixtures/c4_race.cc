// C4 fixture: shared-state writes inside parallel regions. The first
// positive reproduces the PR-6 bug class byte for byte; the negatives
// cover every sanctioned pattern the rule must stay quiet on. Linted
// under a synthetic src/engine/ path by lint_flow_test.cc.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vcmp {

struct Msg {
  uint32_t target;
};

class Router {
 public:
  void Accumulate(uint32_t machines, uint64_t bytes);

 private:
  std::vector<uint64_t> residual_per_machine_;
  std::vector<Msg> messages_;
};

// The PR-6 bug class: the subscript routes through a message field and a
// modulus, so tasks owned by different shards collide on a slot.
void Router::Accumulate(uint32_t machines, uint64_t bytes) {
  ThreadPool pool(4);
  pool.ParallelForStealable(1024, [&](uint32_t task) {
    const Msg& m = messages_[task];
    residual_per_machine_[m.target % machines] += bytes;  // C4 (and D4)
  });
}

class Engine {
 public:
  void Run(ThreadPool& pool) {
    pool.ParallelFor(4, [this](uint32_t i) {
      round_counter_ = i;   // C4: member write via captured this
      shard_slots_[i] = i;  // quiet: shard-indexed member
    });
  }

 private:
  uint64_t round_counter_ = 0;
  std::vector<uint64_t> shard_slots_;
};

void BoundAndWrapped(ThreadPool& pool, bool steal) {
  uint64_t acc = 0;
  auto run_shard = [&](uint32_t s) {
    acc = acc + s;  // C4 through the bound lambda name
  };
  pool.ParallelFor(8, run_shard);

  auto parallel_shards = [&pool, steal](uint32_t count, auto&& fn) {
    if (steal) {
      pool.ParallelForStealable(count, fn);
    } else {
      pool.ParallelFor(count, fn);
    }
  };
  uint64_t wrapped = 0;
  parallel_shards(8, [&](uint32_t shard) {
    wrapped = shard;  // C4 through the wrapper launcher
  });
}

void Negatives(ThreadPool& pool, std::vector<uint64_t>& loads,
               std::vector<std::vector<uint32_t>>& buckets) {
  std::atomic<uint64_t> total{0};
  std::mutex mu;
  uint64_t guarded = 0;
  uint64_t snapshot = 0;
  pool.ParallelFor(16, [&](uint32_t machine) {
    loads[machine] += 1;  // C4-quiet: shard-indexed (token-level D4 still fires)
    uint64_t& slot = loads[machine];
    slot = slot * 2;  // quiet: ref alias bound through a param subscript
    const uint32_t twin = machine + 8;
    loads[twin] = 9;  // quiet: index-derived subscript
    total = machine;  // quiet: atomic target
    uint64_t local = 0;
    local += machine;                     // quiet: body-local
    buckets[machine].push_back(machine);  // quiet: shard-indexed mutation
  });
  pool.ParallelFor(8, [&](uint32_t shard) {
    std::lock_guard<std::mutex> lock(mu);
    guarded = guarded + shard;  // quiet: lock taken in the body
  });
  pool.ParallelFor(4, [snapshot](uint32_t i) mutable {
    snapshot = i;  // quiet: value capture mutates a copy
  });
}

void Annotated(ThreadPool& pool) {
  uint64_t cross = 0;
  uint64_t scratch = 0;
  pool.ParallelFor(4, [&](uint32_t i) {
    // vcmp:deterministic-reduction(fixture: integer adds in fixed pass order)
    cross += i;  // C4 and D4, both allowed by the reduction annotation
  });
  pool.ParallelFor(4, [&](uint32_t i) {
    // vcmp:query-local(fixture: a single query drives this scratch)
    scratch = i;  // C4 allowed via the query-local cross-match
  });
}

}  // namespace vcmp
