// P1 fixture: AoS std::vector<Message> buffers. Not compiled — linted by
// lint_test.cc, once under src/engine/ (fires) and once under src/tasks/
// (out of scope: no findings). True positives on lines 11, 13, 15 under
// engine/; line 24 is suppressed by the trailing allow.
#include <vector>

namespace fixture {

struct Message;

std::vector<Message> inbox;

void Drain(std::vector<Message>* dest);

using Outboxes = std::vector<std::vector<Message>>;

// Other element types must not fire.
std::vector<int> counts;
std::vector<MessageRun> runs;

// Comments saying std::vector<Message>, and strings, must not fire.
const char* kDoc = "replaced std::vector<Message> with MessageBlock";

std::vector<Message> scratch;  // vcmp:lint-allow(P1, fixture: sanctioned AoS view)

}  // namespace fixture
