// C2 fixture: volatile-as-synchronization. Not compiled — linted by
// lint_test.cc. True positives on lines 8 and 12; the rest must not fire.

namespace fixture {

struct SpinState {
  // The classic pre-C++11 bug: volatile is not a memory fence.
  volatile bool done = false;

  void Wait() const {
    // Casting through volatile for a reread is the same bug.
    while (!*static_cast<volatile const bool*>(&done)) {
    }
  }
};

// Prose and strings mentioning volatile must not fire.
const char* kDoc = "volatile does not order memory accesses";

}  // namespace fixture
