// C3 fixture: mutable/static scratch state in query compute paths. Not
// compiled — linted by lint_test.cc under src/engine/ and src/tasks/
// (fires) and under src/common/ (out of scope). True positives on lines
// 12, 15, 27 under engine/; the query-local marker blesses 19 and 30.
#include <mutex>
#include <vector>

namespace fixture {

struct Worker {
  // A mutable member: a cross-query channel when the object is shared.
  mutable int calls = 0;

  // Non-const function-local static: shared by every concurrent query.
  int Next() { static int counter = 0; return ++counter; }

  // A blessed mutable member — one query provably drives it at a time.
  // vcmp:query-local(fixture: single-query mutex)
  mutable std::mutex lock_;

  // Immutable statics, static functions, and lambda qualifiers pass.
  static const int kLimit = 8;
  static constexpr int kWidth = 4;
  static int Resolve(int x);
};

static std::vector<int> scratch_pool;

// A blessed static: trailing annotation form.
static long hits = 0;  // vcmp:query-local(fixture: result-neutral tally)

inline void Lambdas() {
  int x = 0;
  auto f = [x]() mutable { return x + 1; };
  (void)f;
}

// Comments saying mutable and static, and strings, must not fire.
const char* kDoc = "mutable static state";

}  // namespace fixture
