// D1 fixture: wall-clock reads. Not compiled — linted by lint_test.cc.
// True positives on lines 10, 13, 18, 22; everything else must not fire.
#include <chrono>

namespace fixture {

// Mentioning std::chrono::steady_clock in a comment must not fire.
const char* kDoc = "a string naming steady_clock must not fire";
const char* kRaw = R"(raw string: system_clock::now() must not fire)";
long Mono() { return std::chrono::steady_clock::now().time_since_epoch().count(); }

long Wall() {
  using clock = std::chrono::system_clock;
  return clock::to_time_t(clock::now());
}

long Precise() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

long CTime() {
  return static_cast<long>(time(nullptr));
}

// Macro bodies are invisible: this must not fire.
#define FIXTURE_NOW() std::chrono::steady_clock::now()

struct Timer {
  // A member function *named* time, called through an object: no fire.
  long time_ms = 0;
  long Read() { return self().time_ms; }
  Timer& self() { return *this; }
};

long MemberCall(Timer& t) { return t.self().time_ms; }

}  // namespace fixture
