// D2 fixture: unseeded/global RNG. Not compiled — linted by lint_test.cc.
// True positives on lines 9, 10, 13, 16, 20, 23; the rest must not fire.
#include <cstdlib>
#include <random>

namespace fixture {

int Global() {
  srand(42);
  return rand();
}

std::mt19937 unseeded_engine;

int Device() {
  std::random_device entropy;
  return static_cast<int>(entropy());
}

int BracedTemp() { return static_cast<int>(std::mt19937{}()); }

int DefaultLocal() {
  std::mt19937_64 gen;
  return static_cast<int>(gen());
}

int Seeded(unsigned seed) {
  std::mt19937 gen(seed);       // Explicit seed: must not fire.
  std::mt19937_64 gen64{seed};  // Braced seed: must not fire.
  return static_cast<int>(gen() ^ gen64());
}

struct Dice {
  int rand() const { return 4; }
};

// Member call spelled rand: must not fire.
int MemberRand(const Dice& d) { return d.rand(); }

// A comment calling std::rand() and a string below must not fire.
const char* kDoc = "docs may say rand() or random_device freely";

}  // namespace fixture
