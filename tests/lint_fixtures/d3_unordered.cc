// D3 fixture: unordered-container iteration. Not compiled — linted by
// lint_test.cc under an output-feeding path (src/metrics/...).
// True positives on lines 14, 20, 28; the rest must not fire.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

double SumValues(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, value] : weights) total += value;
  return total;
}

int FirstKey(const std::unordered_set<int>& keys) {
  if (keys.empty()) return -1;
  return *keys.begin();
}

struct Index {
  std::unordered_map<std::string, int> by_name;

  int Count() const {
    int n = 0;
    for (auto it = by_name.cbegin(); it != by_name.cend(); ++it) ++n;
    return n;
  }

  // Point lookups on unordered containers are fine.
  bool Has(const std::string& name) const { return by_name.count(name) > 0; }
};

// Ordered containers iterate deterministically: must not fire.
double SumOrdered(const std::map<int, double>& ordered_weights) {
  double total = 0.0;
  for (const auto& [key, value] : ordered_weights) total += value;
  return total;
}

// Comments iterating an unordered_map, and strings, must not fire.
const char* kDoc = "for (auto& kv : unordered_map) is only prose here";

}  // namespace fixture
