// C1 fixture: naked new/delete. Not compiled — linted by lint_test.cc,
// once under src/engine/ (fires) and once under src/tasks/ (out of
// scope: no findings). True positives on lines 11, 13 under engine/.
#include <vector>

namespace fixture {

struct Pool {
  int* raw = nullptr;

  void Grow() { raw = new int[64]; }

  ~Pool() { delete[] raw; }

  // Deleted special members are declaration syntax: must not fire.
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
};

// Comments saying new/delete, and strings, must not fire.
const char* kDoc = "allocate with new, release with delete";

}  // namespace fixture
