// D5 fixture: direct file I/O in the engine. Not compiled — linted by
// lint_test.cc, once under src/engine/ (fires) and once under src/ooc/
// (out of scope: the sanctioned seam). True positives on lines 12, 14,
// 16 under engine/.
#include <cstdio>
#include <fstream>

namespace fixture {

struct Checkpointer {
  void Save(const char* path) {
    std::FILE* f = std::fopen(path, "wb");
    (void)f;
    std::ofstream out(path);
    out << 1;
    std::ifstream in(path);
  }

  // Member calls named like the C functions must not fire.
  struct Io {
    void fopen(int) {}
  } io;
  void Touch() { io.fopen(0); }
};

// Comments saying fopen/ofstream, and strings, must not fire.
const char* kDoc = "spill via fopen or std::ofstream belongs in src/ooc";

}  // namespace fixture
