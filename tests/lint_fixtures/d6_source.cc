// D6 fixture, source half: helpers whose bodies touch nondeterminism
// primitives. Linted together with d6_consumer.cc under synthetic paths
// so the cross-file taint propagation is under test.

#include <chrono>
#include <cstdlib>

namespace vcmp {

long ReadClock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long BlessedClock() {
  // vcmp:lint-allow(D6, fixture: startup-only diagnostic, never feeds results)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int WrapsRand() { return rand(); }

int PureHelper(int x) { return x * 2 + 1; }

}  // namespace vcmp
