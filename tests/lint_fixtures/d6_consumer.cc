// D6 fixture, consumer half: result-producing code calling into the
// helpers defined in d6_source.cc. Call sites whose callee transitively
// reaches a primitive are flagged with a witness chain; calls into
// blessed or pure helpers stay quiet.

namespace vcmp {

long Indirect() { return ReadClock(); }

long DoubleHop() { return Indirect(); }

long UsesBlessed() { return BlessedClock(); }

int UsesRand() { return WrapsRand(); }

int UsesPure() { return PureHelper(3); }

}  // namespace vcmp
