// D4 fixture: shared accumulation inside ParallelFor /
// ParallelForStealable. Not compiled — linted by lint_test.cc.
// True positives on lines 15, 32 and 60; lines 41 and 70 are allowed by
// annotation.
#include <vector>

#include "common/thread_pool.h"

namespace fixture {

double RacySum(vcmp::ThreadPool& pool, const std::vector<double>& xs) {
  double total = 0.0;
  pool.ParallelFor(static_cast<uint32_t>(xs.size()), [&](uint32_t i) {
    // Captured scalar: add order depends on the schedule. Must fire.
    total += xs[i];
  });
  return total;
}

double ShardedSum(vcmp::ThreadPool& pool, const std::vector<double>& xs) {
  std::vector<double> per_shard(xs.size(), 0.0);
  pool.ParallelFor(static_cast<uint32_t>(xs.size()), [&](uint32_t i) {
    // Locally-declared accumulator folded into an owned slot: the slot
    // write is `=`-free... but the base is declared inside: no fire.
    double local = 0.0;
    local += xs[i];
    per_shard[i] = local;
  });
  double total = 0.0;
  pool.ParallelFor(1, [&](uint32_t) {
    // Captured through a subscripted chain: still shared. Must fire.
    per_shard[0] += total;
  });
  for (double v : per_shard) total += v;
  return total;
}

double BlessedSum(vcmp::ThreadPool& pool, std::vector<double>& slots) {
  pool.ParallelFor(static_cast<uint32_t>(slots.size()), [&](uint32_t i) {
    // vcmp:deterministic-reduction(slot i is owned by shard i exclusively)
    slots[i] += static_cast<double>(i);
  });
  return slots.empty() ? 0.0 : slots[0];
}

// Accumulation outside any ParallelFor region: must not fire.
double SerialSum(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return total;
}

double StealableRacySum(vcmp::ThreadPool& pool,
                        const std::vector<double>& xs) {
  double total = 0.0;
  pool.ParallelForStealable(static_cast<uint32_t>(xs.size()),
                            [&](uint32_t i) {
    // Work stealing makes the schedule even less predictable than the
    // static ParallelFor — captured accumulation must fire all the same.
    total += xs[i];
  });
  return total;
}

double StealableShardSlots(vcmp::ThreadPool& pool,
                           std::vector<double>& slots) {
  pool.ParallelForStealable(static_cast<uint32_t>(slots.size()),
                            [&](uint32_t i) {
    // vcmp:deterministic-reduction(index i is claimed by exactly one thread — stolen or not — so slot i has a single writer)
    slots[i] += static_cast<double>(i);
  });
  return slots.empty() ? 0.0 : slots[0];
}

}  // namespace fixture
