// D7 fixture: pointer-identity ordering. Pointer-keyed containers,
// pointer comparisons and pointer hashing fire; stable-id ordering and
// reinterpret_cast<char*> binary I/O stay quiet.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

namespace vcmp {

struct Vertex {
  uint64_t id;
};

std::map<Vertex*, int> order_by_address;      // D7: pointer-keyed map
std::set<const Vertex*> visited;              // D7: pointer-keyed set
std::unordered_map<uint64_t, Vertex*> by_id;  // quiet: pointer is a value

bool Before(const Vertex* a, const Vertex* b) {
  return a < b;  // D7: orders by allocation address
}

bool ById(const Vertex* a, const Vertex* b) {
  return a->id < b->id;  // quiet: stable ids
}

uint64_t AddressKey(const Vertex* v) {
  return reinterpret_cast<uintptr_t>(v);  // D7: pointer-to-integer
}

void Serialize(char* dst, const Vertex& v) {
  const char* raw = reinterpret_cast<const char*>(&v);  // quiet: binary I/O
  dst[0] = raw[0];
}

std::size_t HashPtr(const Vertex* v) {
  return std::hash<const Vertex*>{}(v);  // D7: hashes the address
}

}  // namespace vcmp
