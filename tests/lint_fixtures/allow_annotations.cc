// Annotation fixture: suppression grammar and A1 hygiene. Not compiled —
// linted by lint_test.cc under an engine path.
// Line 9: D1 allowed by its trailing annotation. Line 12: D1 allowed by
// the own-line annotation above it. Line 14: allow without a reason is
// malformed (A1 at 14) and suppresses nothing (D1 at 15 stays open).
// Line 18: stale allow (A1) — it covers a line with no finding.
#include <chrono>

long A() { return std::chrono::steady_clock::now().time_since_epoch().count(); }  // vcmp:lint-allow(D1, fixture: trailing allow)

// vcmp:lint-allow(D1, fixture: own-line allow covers the next line)
long B() { return std::chrono::steady_clock::now().time_since_epoch().count(); }

// vcmp:lint-allow(D1)
long C() { return std::chrono::steady_clock::now().time_since_epoch().count(); }

// A stale allow: nothing on the next line violates C2.
// vcmp:lint-allow(C2, fixture: stale — the line below is clean)
long D() { return 0; }
