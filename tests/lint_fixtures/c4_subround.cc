// C4/D4 fixture: the sub-machine parallel shapes introduced with
// sender-side combining and parallel grouping — chunked radix passes
// over one machine's inbox and per-destination combine-fold tables.
// Each chunk/destination task walks its slice of entries in an inner
// loop, so every hazardous subscript routes through the *entry* index,
// not the shard index: the precision case the flow rule has to judge by
// what the written table is bound to, not by the subscript alone. Racy
// variants share a histogram, a scatter cursor, or a fold table across
// tasks; the sanctioned variants bind a reference through the loop
// index first (per-chunk slab rows, per-destination tables), exactly
// how Worker::GroupHistChunk / GroupScatterChunk and the engine's
// unified fold stay deterministic. Linted under a synthetic
// src/engine/ path by lint_flow_test.cc.

#include <cstdint>
#include <vector>

namespace vcmp {

constexpr uint32_t kRadix = 256;
constexpr uint32_t kChunks = 16;

struct FoldSlot {
  double value = 0.0;
  double mult = 0.0;
  uint32_t epoch = 0;
};

struct FoldTable {
  std::vector<FoldSlot> slots;
};

// Histogram pass: every chunk folding into one shared table races; the
// sanctioned shape binds the chunk's own slab row first.
void HistChunks(ThreadPool& pool, const std::vector<uint32_t>& digits,
                std::vector<std::vector<uint32_t>>& slab_rows) {
  std::vector<uint32_t> shared_hist(kRadix, 0);
  pool.ParallelForStealable(kChunks, [&](uint32_t chunk) {
    for (uint32_t i = 0; i < digits.size(); ++i) {
      if (i % kChunks != chunk) continue;
      shared_hist[digits[i]] += 1;  // C4+D4: shared across chunk tasks
    }
  });
  pool.ParallelForStealable(kChunks, [&](uint32_t chunk) {
    std::vector<uint32_t>& row = slab_rows[chunk];
    for (uint32_t i = chunk; i < digits.size(); i += kChunks) {
      row[digits[i]] += 1;  // quiet: row bound through the chunk index
    }
  });
}

// Scatter pass: bumping a shared per-digit cursor lets two chunks claim
// the same destination slot; the prefix pass must hand each chunk its
// own pre-seeded cursor row instead.
void ScatterChunks(ThreadPool& pool, const std::vector<uint32_t>& digits,
                   std::vector<std::vector<uint32_t>>& cursor_rows,
                   std::vector<uint32_t>& out) {
  std::vector<uint32_t> cursor(kRadix, 0);
  pool.ParallelFor(kChunks, [&](uint32_t chunk) {
    for (uint32_t i = 0; i < digits.size(); ++i) {
      if (i % kChunks != chunk) continue;
      out[cursor[digits[i]]] = i;  // C4: slot claimed via shared cursor
      cursor[digits[i]] += 1;      // C4+D4: shared cursor bump
    }
  });
  pool.ParallelFor(kChunks, [&](uint32_t chunk) {
    std::vector<uint32_t>& row = cursor_rows[chunk];
    for (uint32_t i = chunk; i < digits.size(); i += kChunks) {
      out[row[digits[i]]] = i;  // quiet: cursor row owned by this chunk
      row[digits[i]] += 1;      // quiet: same
    }
  });
}

// Per-destination combine fold: one task per destination folding into
// that destination's own table is single-writer by construction; every
// destination folding into one shared table is the race the rule must
// catch — the slot subscript routes through message data, the PR-6 bug
// class one layer deeper.
void FoldDestinations(ThreadPool& pool, uint32_t dests,
                      std::vector<FoldTable>& tables, FoldTable& shared,
                      const std::vector<uint32_t>& key_slots) {
  pool.ParallelFor(dests, [&](uint32_t dest) {
    FoldTable& table = tables[dest];
    for (uint32_t i = 0; i < key_slots.size(); ++i) {
      table.slots[key_slots[i]].value += 1.0;  // quiet: dest-owned table
    }
  });
  pool.ParallelFor(dests, [&](uint32_t dest) {
    for (uint32_t i = 0; i < key_slots.size(); ++i) {
      shared.slots[key_slots[i]].value += 1.0;  // C4+D4: shared fold table
    }
  });
}

}  // namespace vcmp
