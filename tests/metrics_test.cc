#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/export.h"
#include "metrics/round_stats.h"
#include "metrics/run_report.h"
#include "metrics/table_printer.h"

namespace vcmp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "longheader", "c"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"wide-cell", "x", "y"});
  std::string out = table.ToString();
  // Header line, rule line, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every row starts at the same column offsets.
  size_t header_pos = out.find("longheader");
  size_t second_row = out.find("wide-cell");
  ASSERT_NE(header_pos, std::string::npos);
  ASSERT_NE(second_row, std::string::npos);
  EXPECT_NE(out.find("\n---"), std::string::npos);
}

TEST(TablePrinterTest, RejectsMismatchedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "cells");
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter table({"x"});
  EXPECT_EQ(table.NumRows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(RunReportTest, AbsorbAggregates) {
  RunReport report;
  BatchReport a;
  a.workload = 10;
  a.seconds = 5.0;
  a.rounds = 3;
  a.messages = 100.0;
  a.peak_memory_bytes = 7.0;
  a.disk_utilization = 0.5;
  BatchReport b;
  b.workload = 10;
  b.seconds = 15.0;
  b.rounds = 7;
  b.messages = 300.0;
  b.peak_memory_bytes = 3.0;
  b.disk_utilization = 0.1;
  b.disk_saturated = true;
  report.Absorb(a);
  report.Absorb(b);
  EXPECT_DOUBLE_EQ(report.total_seconds, 20.0);
  EXPECT_EQ(report.total_rounds, 10u);
  EXPECT_DOUBLE_EQ(report.total_messages, 400.0);
  EXPECT_DOUBLE_EQ(report.peak_memory_bytes, 7.0);
  EXPECT_DOUBLE_EQ(report.MessagesPerRound(), 40.0);
  // Time-weighted utilisation: (0.5*5 + 0.1*15) / 20.
  EXPECT_NEAR(report.disk_utilization, 0.2, 1e-12);
  EXPECT_TRUE(report.disk_saturated);
  EXPECT_FALSE(report.overloaded);
}

TEST(RunReportTest, OverloadPropagates) {
  RunReport report;
  BatchReport bad;
  bad.seconds = 6000.0;
  bad.overloaded = true;
  report.Absorb(bad);
  EXPECT_TRUE(report.overloaded);
  EXPECT_NE(report.ToString().find("OVERLOADED"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  // JSON has no literal for NaN or the infinities; emitting them raw
  // (what %.17g would print) produces a document no parser accepts.
  JsonWriter json(/*with_schema_version=*/false);
  json.Field("nan", std::nan(""));
  json.Field("pinf", std::numeric_limits<double>::infinity());
  json.Field("ninf", -std::numeric_limits<double>::infinity());
  json.Field("finite", 1.5);
  EXPECT_EQ(json.Close(),
            "{\"nan\":null,\"pinf\":null,\"ninf\":null,\"finite\":1.5}");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  JsonWriter json(/*with_schema_version=*/false);
  json.Field("third", 1.0 / 3.0);
  std::string out = json.Close();
  double parsed = 0.0;
  ASSERT_EQ(sscanf(out.c_str(), "{\"third\":%lf}", &parsed), 1);
  EXPECT_EQ(parsed, 1.0 / 3.0);  // Bitwise: %.17g is round-trip exact.
}

TEST(JsonWriterTest, EscapesStrings) {
  using internal_export::JsonEscape;
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\rc\td"), "a\\nb\\rc\\td");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");

  JsonWriter json(/*with_schema_version=*/false);
  json.Field("k\"ey", "va\\lue\n");
  EXPECT_EQ(json.Close(), "{\"k\\\"ey\":\"va\\\\lue\\n\"}");
}

TEST(RoundStatsTest, ToStringIncludesEssentials) {
  RoundStats stats;
  stats.round = 7;
  stats.messages = 63.7e6;
  stats.total_seconds = 2.5;
  stats.overflow = true;
  std::string out = stats.ToString();
  EXPECT_NE(out.find("round 7"), std::string::npos);
  EXPECT_NE(out.find("63.7M"), std::string::npos);
  EXPECT_NE(out.find("OVERFLOW"), std::string::npos);
}

}  // namespace
}  // namespace vcmp
