#include "engine/gas_engine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/vertex_cut.h"
#include "tasks/gas_tasks.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;
using testing_util::ReferencePageRank;

struct GasFixture {
  Graph graph;
  Partitioning partition;

  explicit GasFixture(Graph g, uint32_t machines) : graph(std::move(g)) {
    partition =
        GreedyEdgeCutPartitioner().Partition(graph, machines);
  }

  GasOptions Options(bool synchronous, uint32_t machines) const {
    GasOptions options;
    options.cluster = RelaxedCluster(machines);
    options.profile = ProfileFor(synchronous ? SystemKind::kGraphLab
                                             : SystemKind::kGraphLabAsync);
    return options;
  }
};

Graph GasGraph() {
  ErdosRenyiParams params;
  params.num_vertices = 400;
  params.num_edges = 2400;
  params.seed = 51;
  return GenerateErdosRenyi(params);
}

TEST(GasEngineTest, SyncPageRankMatchesReference) {
  GasFixture fx(GasGraph(), 4);
  GasPageRank::Params params;
  params.tolerance_fraction = 1e-7;  // Converge tightly.
  GasPageRank program(fx.graph, fx.partition, params);
  GasEngine engine(fx.graph, fx.partition, fx.Options(true, 4));
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().overloaded);

  std::vector<double> reference =
      ReferencePageRank(fx.graph, params.damping, 100);
  double l1 = 0.0;
  for (VertexId v = 0; v < fx.graph.NumVertices(); ++v) {
    l1 += std::fabs(program.Rank(v) - reference[v]);
  }
  EXPECT_LT(l1, 1e-3);
}

TEST(GasEngineTest, AsyncPageRankConvergesToo) {
  GasFixture fx(GasGraph(), 4);
  GasPageRank::Params params;
  params.tolerance_fraction = 1e-7;
  GasPageRank program(fx.graph, fx.partition, params);
  GasEngine engine(fx.graph, fx.partition, fx.Options(false, 4));
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(program.TotalRank(), 1.0, 1e-2);
  EXPECT_GT(result.value().lock_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.value().barrier_seconds, 0.0);
}

TEST(GasEngineTest, BpprWalksConserve) {
  GasFixture fx(GasGraph(), 4);
  GasBpprWalks::Params params;
  GasBpprWalks program(fx.graph, fx.partition, /*walks_per_vertex=*/32,
                       params, /*seed=*/3);
  GasEngine engine(fx.graph, fx.partition, fx.Options(true, 4));
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(program.TotalStopped(), 32u * fx.graph.NumVertices());
}

TEST(GasEngineTest, QueryContextNamespacesWalkStreams) {
  // The QueryContext's query id enters every per-vertex reseed: query 0
  // reproduces the historical (no-context) run bit for bit, while query
  // 1 draws a different walk stream from the same engine seed. Each
  // program is fresh — GAS programs accumulate into member state.
  GasFixture fx(GasGraph(), 4);
  GasBpprWalks::Params params;
  GasEngine engine(fx.graph, fx.partition, fx.Options(true, 4));

  GasBpprWalks historical(fx.graph, fx.partition, 32, params, /*seed=*/3);
  auto base = engine.Run(historical);
  ASSERT_TRUE(base.ok());

  QueryContext q0(/*query_id=*/0);
  GasBpprWalks same(fx.graph, fx.partition, 32, params, /*seed=*/3);
  auto as_q0 = engine.Run(same, q0);
  ASSERT_TRUE(as_q0.ok());
  EXPECT_EQ(as_q0.value().messages, base.value().messages);
  EXPECT_EQ(as_q0.value().passes, base.value().passes);

  QueryContext q1(/*query_id=*/1);
  GasBpprWalks other(fx.graph, fx.partition, 32, params, /*seed=*/3);
  auto as_q1 = engine.Run(other, q1);
  ASSERT_TRUE(as_q1.ok());
  EXPECT_EQ(other.TotalStopped(), 32u * fx.graph.NumVertices());
  EXPECT_NE(as_q1.value().messages, base.value().messages)
      << "query 1 must draw a different walk stream than query 0";
}

TEST(GasEngineTest, SyncCombinesWireTraffic) {
  // Same walk workload: sync (combining) must move fewer bytes per
  // machine than async (no combining, plus inflation) — Table 4's
  // high-load contrast.
  GasFixture fx(GasGraph(), 8);
  auto run = [&](bool synchronous) {
    GasBpprWalks program(fx.graph, fx.partition, /*walks_per_vertex=*/64,
                         {}, /*seed=*/3);
    GasEngine engine(fx.graph, fx.partition,
                     fx.Options(synchronous, 8));
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    return result.value_or(GasResult{});
  };
  GasResult sync = run(true);
  GasResult async = run(false);
  EXPECT_LT(sync.network_bytes_per_machine,
            0.5 * async.network_bytes_per_machine);
}

TEST(GasEngineTest, AsyncPageRankSendsFewerBytesThanSync) {
  // The light-workload side of Table 4: delta-scheduled async PageRank
  // needs fewer updates than the bulk sweeps of the sync engine.
  GasFixture fx(GasGraph(), 8);
  auto run = [&](bool synchronous) {
    GasPageRank::Params params;
    params.tolerance_fraction = 1e-4;
    GasPageRank program(fx.graph, fx.partition, params);
    GasEngine engine(fx.graph, fx.partition,
                     fx.Options(synchronous, 8));
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    return result.value_or(GasResult{});
  };
  GasResult sync = run(true);
  GasResult async = run(false);
  // Async inflation applies, yet delta scheduling should still win or tie
  // within a small factor for the classic task.
  EXPECT_LT(async.messages, sync.messages * 1.5);
}

TEST(GasEngineTest, LockOverheadGrowsWithMachines) {
  GasFixture fx2(GasGraph(), 2);
  GasFixture fx16(GasGraph(), 16);
  auto run = [&](GasFixture& fx, uint32_t machines) {
    GasBpprWalks program(fx.graph, fx.partition, 32, {}, 3);
    GasEngine engine(fx.graph, fx.partition, fx.Options(false, machines));
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    return result.value_or(GasResult{});
  };
  GasResult small = run(fx2, 2);
  GasResult large = run(fx16, 16);
  EXPECT_GT(large.lock_seconds, 1.5 * small.lock_seconds);
}

TEST(GasEngineTest, PriorityShedulingIsDeterministicAndConverges) {
  GasFixture fx(GasGraph(), 4);
  auto run = [&](bool priority) {
    GasPageRank::Params params;
    params.tolerance_fraction = 1e-5;
    GasPageRank program(fx.graph, fx.partition, params);
    GasOptions options = fx.Options(false, 4);
    options.priority_scheduling = priority;
    GasEngine engine(fx.graph, fx.partition, options);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    EXPECT_NEAR(program.TotalRank(), 1.0, 1e-2);
    return result.value_or(GasResult{});
  };
  GasResult fifo = run(false);
  GasResult prioritized = run(true);
  // Both orders converge and process comparable work; priority runs are
  // deterministic (two invocations agree exactly).
  EXPECT_GT(prioritized.activations, 0.0);
  EXPECT_LT(prioritized.activations, 2.0 * fifo.activations);
  GasResult again = run(true);
  EXPECT_DOUBLE_EQ(prioritized.activations, again.activations);
  EXPECT_DOUBLE_EQ(prioritized.seconds, again.seconds);
}

TEST(GasEngineTest, VertexCutBoundsHubTraffic) {
  // On a skewed graph, the vertex-cut deployment's replica-sync traffic
  // (bounded by the replication factor) undercuts the edge-cut
  // deployment's per-edge cross traffic.
  RmatParams params;
  params.num_vertices = 2000;
  params.num_edges = 16000;
  params.seed = 23;
  Graph graph = GenerateRmat(params);
  // Hash ownership for both deployments (PowerGraph also hash-places
  // masters); the locality-optimised LDG edge cut with sender combining
  // is already competitive, so the fair baseline is the default random
  // placement.
  Partitioning partition = HashPartitioner().Partition(graph, 8);
  VertexCut cut = GreedyVertexCut(graph, 8);

  auto run = [&](const VertexCut* vertex_cut) {
    GasBpprWalks program(graph, partition, /*walks=*/32, {}, /*seed=*/3);
    GasOptions options;
    options.cluster = RelaxedCluster(8);
    // Async: no sender-side combining window, so per-edge traffic is at
    // its worst — the regime where replica synchronisation pays off.
    // (Under the combining sync engine, merged per-target messages are
    // already cheap and the vertex cut does NOT win; that nuance is
    // exactly PowerGraph's delta-caching motivation.)
    options.profile = ProfileFor(SystemKind::kGraphLabAsync);
    options.vertex_cut = vertex_cut;
    GasEngine engine(graph, partition, options);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    // The algorithm's answer is unaffected by the deployment model.
    EXPECT_EQ(program.TotalStopped(), 32u * graph.NumVertices());
    return result.value_or(GasResult{});
  };
  GasResult edge_cut = run(nullptr);
  GasResult vertex_cut_result = run(&cut);
  EXPECT_GT(vertex_cut_result.network_bytes_per_machine, 0.0);
  EXPECT_LT(vertex_cut_result.network_bytes_per_machine,
            edge_cut.network_bytes_per_machine);
}

TEST(GasEngineTest, RejectsMismatchedCluster) {
  GasFixture fx(GasGraph(), 4);
  GasPageRank program(fx.graph, fx.partition, {});
  GasEngine engine(fx.graph, fx.partition, fx.Options(true, 8));
  EXPECT_FALSE(engine.Run(program).ok());
}

}  // namespace
}  // namespace vcmp
