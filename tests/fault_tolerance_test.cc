// Tests for the Pregel-style fault-tolerance model: checkpoint overhead,
// failure recovery with and without checkpoints, and the checkpoint
// interval tradeoff.

#include <gtest/gtest.h>

#include "engine/sync_engine.h"
#include "graph/datasets.h"
#include "graph/partition.h"
#include "tasks/bppr.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest()
      : dataset_(LoadDataset(DatasetId::kDblp, 512.0)),
        partition_(HashPartitioner().Partition(dataset_.graph, 4)),
        context_{&dataset_.graph, &partition_, 1.0, false} {}

  EngineResult Run(uint64_t checkpoint_interval, uint64_t failure_round) {
    EngineOptions options;
    options.cluster = RelaxedCluster(4);
    options.profile = ProfileFor(SystemKind::kPregelPlus);
    options.checkpoint_interval_rounds = checkpoint_interval;
    options.inject_failure_at_round = failure_round;
    BpprCountingProgram program(context_, /*walks=*/64, {}, /*seed=*/3);
    SyncEngine engine(dataset_.graph, partition_, options);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value_or(EngineResult{});
  }

  Dataset dataset_;
  Partitioning partition_;
  TaskContext context_;
};

TEST_F(FaultToleranceTest, NoCheckpointNoOverhead) {
  EngineResult result = Run(0, EngineOptions::kNoFailure);
  EXPECT_EQ(result.checkpoints_taken, 0u);
  EXPECT_DOUBLE_EQ(result.checkpoint_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.recovery_seconds, 0.0);
  EXPECT_FALSE(result.failure_recovered);
}

TEST_F(FaultToleranceTest, CheckpointsAddBoundedOverhead) {
  EngineResult baseline = Run(0, EngineOptions::kNoFailure);
  EngineResult checkpointed = Run(10, EngineOptions::kNoFailure);
  EXPECT_GT(checkpointed.checkpoints_taken, 0u);
  EXPECT_GT(checkpointed.checkpoint_seconds, 0.0);
  EXPECT_NEAR(checkpointed.seconds,
              baseline.seconds + checkpointed.checkpoint_seconds,
              1e-9 * checkpointed.seconds);
}

TEST_F(FaultToleranceTest, FailureWithoutCheckpointReplaysFromScratch) {
  EngineResult baseline = Run(0, EngineOptions::kNoFailure);
  EngineResult failed = Run(0, /*failure_round=*/20);
  EXPECT_TRUE(failed.failure_recovered);
  // The replay re-runs everything executed before the failure.
  EXPECT_GT(failed.recovery_seconds, 0.0);
  EXPECT_NEAR(failed.seconds, baseline.seconds + failed.recovery_seconds,
              1e-9 * failed.seconds);
}

TEST_F(FaultToleranceTest, CheckpointsShrinkRecoveryCost) {
  EngineResult uncheckpointed = Run(0, /*failure_round=*/20);
  EngineResult checkpointed = Run(5, /*failure_round=*/20);
  EXPECT_TRUE(checkpointed.failure_recovered);
  // Replaying from the round-20 checkpoint neighbourhood is far cheaper
  // than replaying 20 rounds from scratch.
  EXPECT_LT(checkpointed.recovery_seconds,
            0.7 * uncheckpointed.recovery_seconds);
}

TEST_F(FaultToleranceTest, IntervalTradeoffIsUnimodalish) {
  // Frequent checkpoints pay overhead, sparse ones pay replay: with a
  // failure injected, some intermediate interval beats both extremes.
  double tight = Run(2, 30).seconds;
  double medium = Run(10, 30).seconds;
  double none = Run(0, 30).seconds;
  EXPECT_LT(medium, none);
  EXPECT_LE(medium, tight);
}

TEST_F(FaultToleranceTest, DeterministicAccounting) {
  EngineResult a = Run(5, 20);
  EngineResult b = Run(5, 20);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.recovery_seconds, b.recovery_seconds);
  EXPECT_EQ(a.checkpoints_taken, b.checkpoints_taken);
}

}  // namespace
}  // namespace vcmp
