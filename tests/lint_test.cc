// vcmp-lint behaviour pinned against the fixture corpus in
// tests/lint_fixtures/: every rule's true positives by exact
// file:line:rule, and the tricky false-positive surfaces (hazards inside
// comments, strings, raw strings, and macro bodies must NOT fire).
//
// Fixtures are linted as in-memory sources under *synthetic* paths so
// the path-based rule scoping (engine/-only C1, common/-exempt D3, the
// wall_clock D1 allowlist) is itself under test.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/analyzer.h"

namespace vcmp {
namespace lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(VCMP_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lints one fixture under a synthetic repo path.
LintReport LintAs(const std::string& fixture,
                  const std::string& logical_path,
                  const AnalyzerOptions& options = {}) {
  return AnalyzeSources({{logical_path, ReadFixture(fixture)}}, options);
}

/// `file:line:rule` keys of findings, in report order. `which` selects
/// open, allowed, or all findings.
enum class Select { kOpen, kAllowed, kAll };
std::vector<std::string> Keys(const LintReport& report,
                              Select which = Select::kOpen) {
  std::vector<std::string> keys;
  for (const Finding& f : report.findings) {
    if (which == Select::kOpen && (f.allowed || f.baselined)) continue;
    if (which == Select::kAllowed && !f.allowed) continue;
    keys.push_back(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
  }
  return keys;
}

TEST(LintD1, FlagsWallClockReadsAndOnlyThose) {
  LintReport report = LintAs("d1_clock.cc", "src/engine/d1_clock.cc");
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{
                "src/engine/d1_clock.cc:10:D1", "src/engine/d1_clock.cc:13:D1",
                "src/engine/d1_clock.cc:18:D1",
                "src/engine/d1_clock.cc:22:D1"}));
}

TEST(LintD1, WallClockModuleIsAllowlisted) {
  LintReport report = LintAs("d1_clock.cc", "src/common/wall_clock.cc");
  EXPECT_TRUE(Keys(report).empty());
}

TEST(LintD2, FlagsUnseededAndGlobalRngAndOnlyThose) {
  LintReport report = LintAs("d2_rng.cc", "src/service/d2_rng.cc");
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{
                "src/service/d2_rng.cc:9:D2", "src/service/d2_rng.cc:10:D2",
                "src/service/d2_rng.cc:13:D2", "src/service/d2_rng.cc:16:D2",
                "src/service/d2_rng.cc:20:D2",
                "src/service/d2_rng.cc:23:D2"}));
}

TEST(LintD3, FlagsUnorderedIterationInOutputFeedingFiles) {
  LintReport report = LintAs("d3_unordered.cc", "src/metrics/d3.cc");
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{"src/metrics/d3.cc:14:D3",
                                      "src/metrics/d3.cc:20:D3",
                                      "src/metrics/d3.cc:28:D3"}));
}

TEST(LintD3, CommonUtilitiesAreOutOfScope) {
  LintReport report = LintAs("d3_unordered.cc", "src/common/d3.cc");
  EXPECT_TRUE(Keys(report).empty());
}

TEST(LintD4, FlagsCapturedAccumulationInParallelFor) {
  LintReport report = LintAs("d4_reduction.cc", "src/engine/d4.cc");
  // ParallelFor bodies fire on 15 and 32; the work-stealing variant
  // (ParallelForStealable) is covered by the same rule and fires on 60.
  // The flow-aware race rule (C4) independently confirms all three as
  // unsynchronized shared writes — and stays quiet on the shard-indexed
  // lines the annotations bless.
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{
                "src/engine/d4.cc:15:C4", "src/engine/d4.cc:15:D4",
                "src/engine/d4.cc:32:C4", "src/engine/d4.cc:32:D4",
                "src/engine/d4.cc:60:C4", "src/engine/d4.cc:60:D4"}));
  // The deterministic-reduction marker blesses lines 41 and 70 but stays
  // in the report as allowed findings with their reasons.
  EXPECT_EQ(Keys(report, Select::kAllowed),
            (std::vector<std::string>{"src/engine/d4.cc:41:D4",
                                      "src/engine/d4.cc:70:D4"}));
  ASSERT_EQ(report.allows.size(), 2u);
  EXPECT_TRUE(report.allows[0].deterministic_reduction);
  EXPECT_TRUE(report.allows[0].used);
  EXPECT_EQ(report.allows[0].reason,
            "slot i is owned by shard i exclusively");
  EXPECT_TRUE(report.allows[1].deterministic_reduction);
  EXPECT_TRUE(report.allows[1].used);
  EXPECT_EQ(report.allows[1].reason,
            "index i is claimed by exactly one thread — stolen or not — "
            "so slot i has a single writer");
}

TEST(LintC1, FlagsNakedNewDeleteInEngineOnly) {
  LintReport engine = LintAs("c1_new.cc", "src/engine/c1.cc");
  EXPECT_EQ(Keys(engine),
            (std::vector<std::string>{"src/engine/c1.cc:11:C1",
                                      "src/engine/c1.cc:13:C1"}));
  // Same content outside the hot paths: C1 out of scope, no findings.
  LintReport tasks = LintAs("c1_new.cc", "src/tasks/c1.cc");
  EXPECT_TRUE(Keys(tasks).empty());
}

TEST(LintP1, FlagsAoSMessageVectorsInEngineOnly) {
  LintReport engine = LintAs("p1_message_vec.cc", "src/engine/p1.cc");
  // Declarations, parameters, and the inner type of a nested vector all
  // fire; other element types, comments, and strings do not.
  EXPECT_EQ(Keys(engine),
            (std::vector<std::string>{"src/engine/p1.cc:11:P1",
                                      "src/engine/p1.cc:13:P1",
                                      "src/engine/p1.cc:15:P1"}));
  // The sanctioned-AoS escape hatch: a trailing lint-allow with a reason.
  EXPECT_EQ(Keys(engine, Select::kAllowed),
            (std::vector<std::string>{"src/engine/p1.cc:24:P1"}));
  // Same content outside the hot paths: P1 out of scope, so the only
  // finding is the now-stale allow annotation (A1 hygiene).
  LintReport tasks = LintAs("p1_message_vec.cc", "src/tasks/p1.cc");
  EXPECT_EQ(Keys(tasks),
            (std::vector<std::string>{"src/tasks/p1.cc:24:A1"}));
}

TEST(LintD5, FlagsDirectFileIoInEngineOnly) {
  LintReport engine = LintAs("d5_file_io.cc", "src/engine/d5.cc");
  // The fopen free call and both stream types fire; the member function
  // named fopen, comments and strings do not.
  EXPECT_EQ(Keys(engine),
            (std::vector<std::string>{"src/engine/d5.cc:12:D5",
                                      "src/engine/d5.cc:14:D5",
                                      "src/engine/d5.cc:16:D5"}));
  // The same content inside the sanctioned seam: D5 out of scope.
  LintReport ooc = LintAs("d5_file_io.cc", "src/ooc/d5.cc");
  EXPECT_TRUE(Keys(ooc).empty());
}

TEST(LintC3, FlagsMutableAndStaticScratchInQueryPathsOnly) {
  LintReport engine = LintAs("c3_scratch.cc", "src/engine/c3.cc");
  // The mutable member, the function-local static, and the namespace
  // static fire; const/constexpr statics, static function declarations,
  // and the lambda `mutable` qualifier do not.
  EXPECT_EQ(Keys(engine),
            (std::vector<std::string>{"src/engine/c3.cc:12:C3",
                                      "src/engine/c3.cc:15:C3",
                                      "src/engine/c3.cc:27:C3"}));
  // The query-local escape hatch: blessed sites stay in the report as
  // allowed findings with their reasons.
  EXPECT_EQ(Keys(engine, Select::kAllowed),
            (std::vector<std::string>{"src/engine/c3.cc:19:C3",
                                      "src/engine/c3.cc:30:C3"}));
  ASSERT_EQ(engine.allows.size(), 2u);
  EXPECT_EQ(engine.allows[0].reason, "fixture: single-query mutex");
  EXPECT_TRUE(engine.allows[0].used);
  EXPECT_EQ(engine.allows[1].reason, "fixture: result-neutral tally");
  // tasks/ (and ooc/) are in scope too — concurrent queries reach them
  // through shared const references.
  LintReport tasks = LintAs("c3_scratch.cc", "src/tasks/c3.cc");
  EXPECT_EQ(Keys(tasks).size(), 3u);
  // Out of scope the rule stays quiet and the annotations go stale (A1).
  LintReport common = LintAs("c3_scratch.cc", "src/common/c3.cc");
  EXPECT_EQ(Keys(common),
            (std::vector<std::string>{"src/common/c3.cc:18:A1",
                                      "src/common/c3.cc:30:A1"}));
}

TEST(LintC2, FlagsVolatileEverywhere) {
  LintReport report = LintAs("c2_volatile.cc", "src/common/c2.cc");
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{"src/common/c2.cc:8:C2",
                                      "src/common/c2.cc:12:C2"}));
}

TEST(LintAllow, TrailingAndOwnLineSuppressionsAndA1Hygiene) {
  LintReport report = LintAs("allow_annotations.cc", "src/engine/allow.cc");
  // Open: the malformed annotation (A1@14), the violation it failed to
  // suppress (D1@15), and the stale allow (A1@18).
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{"src/engine/allow.cc:14:A1",
                                      "src/engine/allow.cc:15:D1",
                                      "src/engine/allow.cc:18:A1"}));
  EXPECT_EQ(Keys(report, Select::kAllowed),
            (std::vector<std::string>{"src/engine/allow.cc:9:D1",
                                      "src/engine/allow.cc:12:D1"}));
  // Reasons survive into the allow table.
  ASSERT_GE(report.allows.size(), 2u);
  EXPECT_EQ(report.allows[0].reason, "fixture: trailing allow");
}

TEST(LintFormat, ExactFileLineRuleText) {
  LintReport report = LintAs("c2_volatile.cc", "src/common/c2.cc");
  const std::string text = FormatText(report);
  EXPECT_NE(text.find("src/common/c2.cc:8: C2: 'volatile' is not "
                      "synchronization"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("vcmp_lint: 1 files, 1 functions, 0 call edges "
                      "(0 tainted), 2 findings (2 open, 0 allowed, "
                      "0 baselined)"),
            std::string::npos)
      << text;
}

TEST(LintBaseline, BaselinedFindingsDoNotCountAsOpen) {
  AnalyzerOptions options;
  options.baseline = {"src/common/c2.cc:8:C2"};
  LintReport report = LintAs("c2_volatile.cc", "src/common/c2.cc", options);
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{"src/common/c2.cc:12:C2"}));
  EXPECT_EQ(report.UnsuppressedCount(), 1);
  // Round trip: ToBaseline emits exactly the open findings.
  EXPECT_NE(ToBaseline(report).find("src/common/c2.cc:12:C2\n"),
            std::string::npos);
}

TEST(LintJson, MachineReadableReport) {
  LintReport report = LintAs("c2_volatile.cc", "src/common/c2.cc");
  const std::string json = ToJson(report);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"vcmp_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"open_count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"C2\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":8"), std::string::npos);
}

TEST(LintRepo, RuleTableCoversDocumentedRules) {
  std::vector<std::string> ids;
  for (const RuleInfo& rule : AllRules()) ids.push_back(rule.id);
  EXPECT_EQ(ids, (std::vector<std::string>{"D1", "D2", "D3", "D4", "C4",
                                           "C1", "C2", "C3", "P1", "D5",
                                           "D6", "D7", "A1"}));
  // Every rule ships the long-form explanation behind --explain.
  for (const RuleInfo& rule : AllRules()) {
    EXPECT_NE(rule.detail, nullptr) << rule.id;
    EXPECT_GT(std::string(rule.detail).size(), 40u) << rule.id;
  }
}

}  // namespace
}  // namespace lint
}  // namespace vcmp
