// Flow-aware vcmp-lint behaviour pinned against the fixture corpus:
// the C4 shared-state race analysis (including the PR-6 bug class it
// exists to catch), the D6 interprocedural nondeterminism taint with
// cross-file witness chains, and the D7 pointer-order rules — plus the
// parser / symbol-table / call-graph layers they are built on, and the
// byte-exact schema-v3 JSON report.

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "lint/analyzer.h"
#include "lint/callgraph.h"
#include "lint/lexer.h"
#include "lint/parser.h"
#include "lint/rules.h"
#include "lint/symbols.h"

namespace vcmp {
namespace lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(VCMP_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LintReport LintAs(const std::string& fixture,
                  const std::string& logical_path) {
  return AnalyzeSources({{logical_path, ReadFixture(fixture)}}, {});
}

enum class Select { kOpen, kAllowed, kAll };
std::vector<std::string> Keys(const LintReport& report,
                              Select which = Select::kOpen) {
  std::vector<std::string> keys;
  for (const Finding& f : report.findings) {
    if (which == Select::kOpen && (f.allowed || f.baselined)) continue;
    if (which == Select::kAllowed && !f.allowed) continue;
    keys.push_back(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
  }
  return keys;
}

const Finding* FindingAt(const LintReport& report, int line,
                         const std::string& rule) {
  for (const Finding& f : report.findings) {
    if (f.line == line && f.rule == rule) return &f;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Parser + symbol table + call graph: the layers under the flow rules.
// ---------------------------------------------------------------------

constexpr char kParseSample[] = R"cc(
namespace vcmp {
class Engine {
 public:
  void Step(int round);
 private:
  std::atomic<int> inflight_;
  int epoch_;
};
void Engine::Step(int round) {
  Helper(round);
  auto body = [&, this](uint32_t i) { epoch_ = i; };
  pool.ParallelFor(4, body);
}
int Helper(const Vertex* v, int x) { return x; }
}  // namespace vcmp
)cc";

TEST(LintParser, FindsFunctionsLambdasCallsAndMembers) {
  LexResult lex = Lex(kParseSample);
  ParsedFile parsed = Parse("src/engine/sample.cc", lex.tokens);

  ASSERT_EQ(parsed.functions.size(), 2u);
  EXPECT_EQ(parsed.functions[0].name, "Step");
  EXPECT_EQ(parsed.functions[0].class_name, "Engine");
  EXPECT_EQ(parsed.functions[1].name, "Helper");
  ASSERT_EQ(parsed.functions[1].params.size(), 2u);
  EXPECT_EQ(parsed.functions[1].params[0].name, "v");
  EXPECT_TRUE(parsed.functions[1].params[0].is_pointer);
  EXPECT_FALSE(parsed.functions[1].params[1].is_pointer);

  ASSERT_EQ(parsed.lambdas.size(), 1u);
  EXPECT_TRUE(parsed.lambdas[0].capture_all_ref);
  EXPECT_TRUE(parsed.lambdas[0].captures_this);
  EXPECT_EQ(parsed.lambdas[0].bound_name, "body");

  bool saw_helper_call = false;
  for (const CallSiteInfo& c : parsed.calls) {
    if (c.callee == "Helper") saw_helper_call = true;
  }
  EXPECT_TRUE(saw_helper_call);

  FileSymbols symbols(parsed);
  EXPECT_TRUE(symbols.IsMemberField("inflight_"));
  EXPECT_TRUE(symbols.IsAtomic("inflight_"));
  EXPECT_FALSE(symbols.IsAtomic("epoch_"));
  // Trailing-underscore convention covers members declared in headers
  // this parse never saw.
  EXPECT_TRUE(symbols.IsMemberField("unseen_member_"));

  // Step spans the call to Helper; Helper's one-liner encloses itself.
  const int step_line = parsed.functions[0].body_first_line;
  EXPECT_EQ(EnclosingFunction(parsed, step_line), 0);
  EXPECT_EQ(EnclosingFunction(parsed, parsed.functions[1].line), 1);
  EXPECT_EQ(EnclosingFunction(parsed, 100000), -1);
}

TEST(LintCallGraph, ResolvesEdgesAcrossFilesAndCountsThem) {
  LexResult a = Lex("int Leaf() { return 1; }\n");
  LexResult b = Lex("int Mid() { return Leaf(); }\nint Top() { return Mid(); }\n");
  std::vector<ParsedFile> files = {Parse("src/core/a.cc", a.tokens),
                                   Parse("src/core/b.cc", b.tokens)};
  CallGraph graph = CallGraph::Build(files);
  EXPECT_EQ(graph.index().NumFunctions(), 3u);
  EXPECT_EQ(graph.num_edges(), 2u);

  const std::vector<FunctionRef>* leaf = graph.index().Lookup("Leaf");
  ASSERT_NE(leaf, nullptr);
  ASSERT_EQ(leaf->size(), 1u);
  EXPECT_EQ((*leaf)[0].file, 0);
  EXPECT_EQ(graph.index().Lookup("Missing"), nullptr);
}

TEST(LintCallGraph, SeamFilesAreExactlyWallClock) {
  EXPECT_TRUE(IsWallClockSeam("src/common/wall_clock.h"));
  EXPECT_TRUE(IsWallClockSeam("src/common/wall_clock.cc"));
  EXPECT_FALSE(IsWallClockSeam("src/common/wall_clock_test.cc"));
  EXPECT_FALSE(IsWallClockSeam("src/engine/wall_clock.cc"));
}

// ---------------------------------------------------------------------
// C4: shared-state writes inside parallel bodies.
// ---------------------------------------------------------------------

TEST(LintC4, FlagsSharedWritesAndRedetectsThePr6BugClass) {
  LintReport report = LintAs("c4_race.cc", "src/engine/c4_race.cc");
  // Line 32 is the PR-6 bug class verbatim: the subscript routes through
  // a message field (`m.target % machines`), so it is NOT shard-indexed
  // and both the flow rule (C4) and the token rule (D4) fire on it.
  // Line 40 writes a member through a captured `this`; 53 races through
  // a bound lambda handed to ParallelFor by name; 66 through a wrapper
  // launcher. Line 77 is C4-quiet (shard-indexed) but token-level D4
  // still fires on the captured `+=` — the precision gap C4 closes.
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{"src/engine/c4_race.cc:32:C4",
                                      "src/engine/c4_race.cc:32:D4",
                                      "src/engine/c4_race.cc:40:C4",
                                      "src/engine/c4_race.cc:53:C4",
                                      "src/engine/c4_race.cc:66:C4",
                                      "src/engine/c4_race.cc:77:D4"}));

  const Finding* pr6 = FindingAt(report, 32, "C4");
  ASSERT_NE(pr6, nullptr);
  EXPECT_NE(pr6->message.find("residual_per_machine_"), std::string::npos);
  EXPECT_NE(pr6->message.find("ParallelForStealable"), std::string::npos);
  // The wrapper-launcher finding names the wrapper, not the inner pool
  // call, so the report points at what the author actually wrote.
  const Finding* wrapped = FindingAt(report, 66, "C4");
  ASSERT_NE(wrapped, nullptr);
  EXPECT_NE(wrapped->message.find("parallel_shards"), std::string::npos);
}

TEST(LintC4, AnnotationsAllowAndCrossMatchBothRuleFamilies) {
  LintReport report = LintAs("c4_race.cc", "src/engine/c4_race.cc");
  // One deterministic-reduction marker blesses BOTH the C4 and the D4
  // finding on line 101; the query-local marker cross-matches C4 on 105.
  EXPECT_EQ(Keys(report, Select::kAllowed),
            (std::vector<std::string>{"src/engine/c4_race.cc:101:C4",
                                      "src/engine/c4_race.cc:101:D4",
                                      "src/engine/c4_race.cc:105:C4"}));
  ASSERT_EQ(report.allows.size(), 2u);
  EXPECT_TRUE(report.allows[0].deterministic_reduction);
  EXPECT_TRUE(report.allows[0].used);
  EXPECT_EQ(report.allows[1].rule, "C3");
  EXPECT_TRUE(report.allows[1].used);
}

TEST(LintC4, CoversSubMachineGroupingAndFoldLoops) {
  // The sub-machine loop shapes from the parallel-grouping / sender-side
  // combining work: chunked histogram and scatter passes plus the
  // per-destination combine fold. Sharing the histogram (41), claiming
  // output slots through a shared cursor (62, 63) and folding every
  // destination into one table (91) must all fire; the sanctioned
  // variants — slab/cursor rows and fold tables bound through the loop
  // index before the entry loop — must all stay quiet.
  LintReport report = LintAs("c4_subround.cc", "src/engine/c4_subround.cc");
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{"src/engine/c4_subround.cc:41:C4",
                                      "src/engine/c4_subround.cc:41:D4",
                                      "src/engine/c4_subround.cc:62:C4",
                                      "src/engine/c4_subround.cc:63:C4",
                                      "src/engine/c4_subround.cc:63:D4",
                                      "src/engine/c4_subround.cc:91:C4",
                                      "src/engine/c4_subround.cc:91:D4"}));
  // The shared-fold finding names the chain through the table member, so
  // the report points at the actual slot write, not just the capture.
  const Finding* fold = FindingAt(report, 91, "C4");
  ASSERT_NE(fold, nullptr);
  EXPECT_NE(fold->message.find("shared.slots.value"), std::string::npos);
}

// ---------------------------------------------------------------------
// D6: interprocedural nondeterminism taint.
// ---------------------------------------------------------------------

LintReport LintTaintPair(const std::string& source_path) {
  return AnalyzeSources({{source_path, ReadFixture("d6_source.cc")},
                         {"src/engine/consumer.cc",
                          ReadFixture("d6_consumer.cc")}},
                        {});
}

TEST(LintD6, PropagatesTaintAcrossFilesWithWitnessChains) {
  LintReport report = LintTaintPair("src/common/jitter.cc");
  // The primitives themselves still carry their token-rule findings in
  // the source file; the NEW findings are the consumer-side call sites:
  // a direct call into a clock wrapper (8), a two-hop chain (10), and a
  // rand wrapper (14). UsesBlessed (12) stays quiet — the annotation on
  // the primitive's line killed that seed — and UsesPure (16) is clean.
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{"src/common/jitter.cc:11:D1",
                                      "src/common/jitter.cc:16:D1",
                                      "src/common/jitter.cc:19:D2",
                                      "src/engine/consumer.cc:8:D6",
                                      "src/engine/consumer.cc:10:D6",
                                      "src/engine/consumer.cc:14:D6"}));
  EXPECT_EQ(report.functions_indexed, 9);
  EXPECT_EQ(report.call_edges, 5);
  // ReadClock, WrapsRand, and their transitive callers Indirect,
  // DoubleHop, UsesRand. BlessedClock and UsesBlessed are NOT tainted.
  EXPECT_EQ(report.tainted_functions, 5);

  const Finding* two_hop = FindingAt(report, 10, "D6");
  ASSERT_NE(two_hop, nullptr);
  EXPECT_NE(two_hop->message.find(
                "Indirect -> ReadClock -> wall-clock read 'steady_clock' "
                "(src/common/jitter.cc:11)"),
            std::string::npos);

  // The seed-kill counts as a *use* of the annotation — it must not go
  // stale (A1) just because it suppressed a seed instead of a finding.
  bool saw_d6_allow = false;
  for (const AllowRecord& a : report.allows) {
    if (a.rule == "D6") {
      saw_d6_allow = true;
      EXPECT_TRUE(a.used);
    }
  }
  EXPECT_TRUE(saw_d6_allow);
}

TEST(LintD6, WallClockSeamKillsSeedsAtTheSource) {
  // The same primitives defined inside the sanctioned seam taint nobody:
  // no D6 findings anywhere and zero tainted functions.
  LintReport report = LintTaintPair("src/common/wall_clock.h");
  for (const std::string& key : Keys(report, Select::kAll)) {
    EXPECT_EQ(key.find(":D6"), std::string::npos) << key;
  }
  EXPECT_EQ(report.tainted_functions, 0);
}

// ---------------------------------------------------------------------
// D7: pointer-order nondeterminism.
// ---------------------------------------------------------------------

TEST(LintD7, FlagsPointerOrderingAndSparesBinaryIo) {
  LintReport report = LintAs("d7_pointer.cc", "src/graph/ptr.cc");
  // Pointer-keyed map/set (17, 18), a pointer-vs-pointer comparison
  // between same-typed params (22), reinterpret_cast to uintptr_t (30),
  // and std::hash over a pointer type (39). The unordered_map with a
  // pointer *value* (19), the stable-id comparison (26), and the
  // reinterpret_cast<const char*> serialization idiom (34) stay quiet.
  EXPECT_EQ(Keys(report),
            (std::vector<std::string>{"src/graph/ptr.cc:17:D7",
                                      "src/graph/ptr.cc:18:D7",
                                      "src/graph/ptr.cc:22:D7",
                                      "src/graph/ptr.cc:30:D7",
                                      "src/graph/ptr.cc:39:D7"}));
}

// ---------------------------------------------------------------------
// Reporting: model stats in the text summary, byte-exact schema-v3 JSON.
// ---------------------------------------------------------------------

TEST(LintFormat, SummaryLineCarriesModelStatistics) {
  LintReport report = LintTaintPair("src/common/jitter.cc");
  const std::string text = FormatText(report);
  EXPECT_NE(text.find("vcmp_lint: 2 files, 9 functions, 5 call edges "
                      "(5 tainted), 6 findings (6 open, 0 allowed, "
                      "0 baselined)"),
            std::string::npos)
      << text;
}

TEST(LintJson, SchemaV3ReportIsByteExact) {
  LintReport report = LintAs("c4_race.cc", "src/engine/c4_race.cc");
  // WriteTextFile appends the trailing newline when the CLI writes the
  // report, so the golden carries one.
  EXPECT_EQ(ToJson(report) + "\n", ReadFixture("golden_report_v3.json"));
}

TEST(LintJson, CallGraphDumpCarrySchemaAndTaint) {
  LexResult source = Lex(
      "long Tick() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n"
      "long Wrap() { return Tick(); }\n");
  std::vector<ParsedFile> files = {Parse("src/engine/t.cc", source.tokens)};
  CallGraph graph = CallGraph::Build(files);
  CallGraph::TaintOptions options;
  options.primitives.push_back(FindTaintPrimitives(source.tokens));
  options.killed_lines.emplace_back();
  graph.ComputeTaint(files, options);
  EXPECT_EQ(graph.num_tainted(), 2u);

  const std::string json = graph.ToJson(files);
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"vcmp_lint --callgraph\""),
            std::string::npos);
  EXPECT_NE(json.find("\"function_count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tainted\":true"), std::string::npos);
  EXPECT_NE(json.find("Wrap -> Tick -> wall-clock read"),
            std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace vcmp
