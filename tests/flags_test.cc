#include "common/flags.h"

#include <gtest/gtest.h>

namespace vcmp {
namespace {

FlagParser MakeParser() {
  FlagParser flags("test", "test tool");
  flags.Define("workload", "1024", "total workload");
  flags.Define("name", "DBLP", "dataset name");
  flags.Define("tune", "false", "enable tuning");
  return flags;
}

Status ParseArgs(FlagParser& flags, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, DefaultsApply) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {}).ok());
  EXPECT_EQ(flags.GetInt("workload"), 1024);
  EXPECT_EQ(flags.GetString("name"), "DBLP");
  EXPECT_FALSE(flags.GetBool("tune"));
  EXPECT_FALSE(flags.IsSet("workload"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--workload=512", "--name=Orkut"}).ok());
  EXPECT_EQ(flags.GetInt("workload"), 512);
  EXPECT_DOUBLE_EQ(flags.GetDouble("workload"), 512.0);
  EXPECT_EQ(flags.GetString("name"), "Orkut");
  EXPECT_TRUE(flags.IsSet("workload"));
}

TEST(FlagParserTest, SpaceSyntaxAndBareBool) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--workload", "99", "--tune"}).ok());
  EXPECT_EQ(flags.GetInt("workload"), 99);
  EXPECT_TRUE(flags.GetBool("tune"));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser flags = MakeParser();
  Status status = ParseArgs(flags, {"--bogus=1"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, PositionalRejected) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"positional"}).ok());
}

TEST(FlagParserTest, HelpRequested) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--help"}).ok());
  EXPECT_TRUE(flags.help_requested());
  std::string help = flags.HelpText();
  EXPECT_NE(help.find("--workload"), std::string::npos);
  EXPECT_NE(help.find("default: 1024"), std::string::npos);
}

TEST(FlagParserTest, BoolSpellings) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--tune=yes"}).ok());
  EXPECT_TRUE(flags.GetBool("tune"));
  FlagParser flags2 = MakeParser();
  ASSERT_TRUE(ParseArgs(flags2, {"--tune=0"}).ok());
  EXPECT_FALSE(flags2.GetBool("tune"));
}

}  // namespace
}  // namespace vcmp
