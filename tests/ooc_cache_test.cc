// Tests of the bounded-memory vertex-state layer: the sectioned LRU
// VertexCache (way-local eviction, prefetch installs, byte accounting),
// the MemoryGovernor budget split and infeasible floor, and OocRuntime
// creation (directory lifecycle, floor validation).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "ooc/memory_governor.h"
#include "ooc/ooc_runtime.h"
#include "ooc/state_file.h"
#include "ooc/vertex_cache.h"

namespace vcmp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Writes a state file of `num_sections` sections with `per_section`
/// records each and opens a reader over it.
void MakeStateFile(const std::string& path, uint32_t num_sections,
                   uint32_t per_section, StateFileReader* reader) {
  std::vector<std::vector<VertexRecord>> sections(num_sections);
  for (uint32_t s = 0; s < num_sections; ++s) {
    for (uint32_t i = 0; i < per_section; ++i) {
      sections[s].push_back(VertexRecord{s * 1000 + i, s + i});
    }
  }
  ASSERT_TRUE(WriteStateFile(path, sections).ok());
  ASSERT_TRUE(reader->Open(path).ok());
}

TEST(VertexCacheTest, HitsMissesAndBytes) {
  StateFileReader reader;
  MakeStateFile(TempPath("cache_basic.vvst"), 4, 10, &reader);
  VertexCache cache;
  // Capacity holds everything: no evictions.
  cache.Configure(&reader, /*ways=*/2, /*capacity_bytes=*/4096);

  bool loaded = false;
  ASSERT_TRUE(cache.EnsureResident(2, &loaded).ok());
  EXPECT_TRUE(loaded);
  EXPECT_TRUE(cache.IsResident(2));
  EXPECT_EQ(cache.Records(2)[0].id, 2000u);
  ASSERT_TRUE(cache.EnsureResident(2, &loaded).ok());
  EXPECT_FALSE(loaded);  // Hit.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.resident_bytes(), 10u * sizeof(VertexRecord));
  EXPECT_EQ(cache.stats().bytes_loaded, 10.0 * sizeof(VertexRecord));
}

TEST(VertexCacheTest, EvictionIsLruWithinAWay) {
  StateFileReader reader;
  // 4 sections of 10 records (80 bytes each); 2 ways. Way 0 holds
  // sections {0, 2}, way 1 holds {1, 3}. Way capacity of 80 bytes fits
  // exactly one section per way.
  MakeStateFile(TempPath("cache_lru.vvst"), 4, 10, &reader);
  VertexCache cache;
  cache.Configure(&reader, /*ways=*/2, /*capacity_bytes=*/160);

  bool loaded = false;
  ASSERT_TRUE(cache.EnsureResident(0, &loaded).ok());
  ASSERT_TRUE(cache.EnsureResident(1, &loaded).ok());
  // Section 2 maps to way 0 and must evict section 0 — not section 1,
  // which lives in the other way even though it is older by LRU tick.
  ASSERT_TRUE(cache.EnsureResident(2, &loaded).ok());
  EXPECT_TRUE(loaded);
  EXPECT_FALSE(cache.IsResident(0));
  EXPECT_TRUE(cache.IsResident(1));
  EXPECT_TRUE(cache.IsResident(2));
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Touch 2 again, then load 0: 2 was just used, but way 0 only fits
  // one section, so 2 is evicted regardless (it is the only occupant).
  ASSERT_TRUE(cache.EnsureResident(0, &loaded).ok());
  EXPECT_FALSE(cache.IsResident(2));
  EXPECT_EQ(cache.resident_bytes(), 160u);
}

TEST(VertexCacheTest, ApplyLoadedCountsAsPrefetchNotMiss) {
  StateFileReader reader;
  MakeStateFile(TempPath("cache_prefetch.vvst"), 2, 5, &reader);
  VertexCache cache;
  cache.Configure(&reader, /*ways=*/1, /*capacity_bytes=*/4096);

  std::vector<VertexRecord> buffer;
  ASSERT_TRUE(reader.ReadSection(1, &buffer).ok());
  cache.ApplyLoaded(1, std::move(buffer));
  EXPECT_TRUE(cache.IsResident(1));
  EXPECT_EQ(cache.stats().prefetch_loads, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
  // Installing over a resident section is a no-op, not a double count.
  std::vector<VertexRecord> again;
  ASSERT_TRUE(reader.ReadSection(1, &again).ok());
  cache.ApplyLoaded(1, std::move(again));
  EXPECT_EQ(cache.stats().prefetch_loads, 1u);
  bool loaded = true;
  ASSERT_TRUE(cache.EnsureResident(1, &loaded).ok());
  EXPECT_FALSE(loaded);
}

TEST(MemoryGovernorTest, SharesAndResidentCap) {
  MemoryGovernor::Config config;
  config.budget_bytes = 1'000'000;
  config.stat_scale = 1.0;
  config.bytes_per_message = 20.0;
  config.message_memory_overhead = 1.2;
  config.max_section_real_bytes = 800;
  config.cache_ways = 4;
  config.spill_page_messages = 256;
  ASSERT_TRUE(MemoryGovernor::Validate(config).ok());
  MemoryGovernor governor(config);
  // 60% of the budget at 24 paper bytes per resident message.
  EXPECT_EQ(governor.resident_message_cap(),
            static_cast<uint64_t>(0.60 * 1'000'000 / 24.0));
  EXPECT_EQ(governor.cache_capacity_bytes(),
            static_cast<uint64_t>(0.35 * 1'000'000));
  EXPECT_DOUBLE_EQ(governor.paper_bytes_per_message(), 24.0);
  EXPECT_DOUBLE_EQ(MemoryGovernor::MessageShareBytes(1'000'000), 600'000.0);
}

TEST(MemoryGovernorTest, StatScaleShrinksRealAllowances) {
  // At scale 64, each real message bills 64x: the same paper budget
  // holds 64x fewer real messages, and the cache's real capacity is
  // 64x smaller.
  MemoryGovernor::Config config;
  config.budget_bytes = 1'000'000;
  config.max_section_real_bytes = 80;
  config.spill_page_messages = 16;
  config.stat_scale = 1.0;
  MemoryGovernor at1(config);
  config.stat_scale = 64.0;
  MemoryGovernor at64(config);
  EXPECT_EQ(at64.resident_message_cap(), at1.resident_message_cap() / 64);
  EXPECT_EQ(at64.cache_capacity_bytes(), at1.cache_capacity_bytes() / 64);
}

TEST(MemoryGovernorTest, InfeasibleFloorIsExact) {
  MemoryGovernor::Config config;
  config.stat_scale = 1.0;
  config.bytes_per_message = 20.0;
  config.message_memory_overhead = 1.2;
  config.max_section_real_bytes = 800;
  config.cache_ways = 4;
  config.spill_page_messages = 256;
  const uint64_t floor = MemoryGovernor::MinFeasibleBytes(config);
  EXPECT_GT(floor, 0u);
  // One spill page must fit the message share: 256 * 24 / 0.6 = 10240.
  // The cache floor 800 * 4 / 0.35 ~ 9143 is smaller, so the page rules.
  EXPECT_EQ(floor, 10240u);
  config.budget_bytes = floor;
  EXPECT_TRUE(MemoryGovernor::Validate(config).ok());
  config.budget_bytes = floor - 1;
  Status below = MemoryGovernor::Validate(config);
  ASSERT_FALSE(below.ok());
  EXPECT_EQ(below.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(below.message().find("below the minimum feasible budget"),
            std::string::npos);
}

OocRuntime::Setup RingSetup(uint32_t machines) {
  OocRuntime::Setup setup;
  setup.machines = machines;
  setup.options.enabled = true;
  setup.options.cache_sections = 8;
  setup.options.cache_ways = 2;
  setup.options.spill_page_messages = 64;
  return setup;
}

TEST(OocRuntimeTest, CreateWritesStateFilesAndCleansUp) {
  Graph graph = GenerateRing(256, 2);
  std::vector<std::vector<VertexId>> by_machine(2);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    by_machine[v % 2].push_back(v);
  }
  OocRuntime::Setup setup = RingSetup(2);
  setup.options.memory_budget_bytes =
      OocRuntime::MinFeasibleBudgetBytes(setup, by_machine);
  const std::string dir = TempPath("ooc_runtime_dir");
  setup.options.directory = dir;

  std::string state_path;
  {
    auto runtime = OocRuntime::Create(setup, graph, by_machine);
    ASSERT_TRUE(runtime.ok());
    EXPECT_EQ(runtime.value()->directory(), dir);
    state_path = dir + "/state_m0.vvst";
    EXPECT_TRUE(std::filesystem::exists(state_path));
    EXPECT_TRUE(std::filesystem::exists(dir + "/state_m1.vvst"));
    EXPECT_GT(runtime.value()->resident_message_cap(), 0u);
  }
  // The runtime removes its files on destruction; a caller-provided
  // directory itself is left in place.
  EXPECT_FALSE(std::filesystem::exists(state_path));
  EXPECT_TRUE(std::filesystem::exists(dir));
  std::filesystem::remove_all(dir);
}

TEST(OocRuntimeTest, CreateRejectsBudgetBelowFloor) {
  Graph graph = GenerateRing(128, 2);
  std::vector<std::vector<VertexId>> by_machine(1);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    by_machine[0].push_back(v);
  }
  OocRuntime::Setup setup = RingSetup(1);
  const uint64_t floor =
      OocRuntime::MinFeasibleBudgetBytes(setup, by_machine);
  setup.options.memory_budget_bytes = floor - 1;  // Infeasible by one.
  auto runtime = OocRuntime::Create(setup, graph, by_machine);
  ASSERT_FALSE(runtime.ok());
  EXPECT_EQ(runtime.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(
      runtime.status().message().find("below the minimum feasible budget"),
      std::string::npos);
}

}  // namespace
}  // namespace vcmp
