#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/export.h"
#include "metrics/service_report.h"
#include "service/admission.h"
#include "service/arrival.h"
#include "service/batcher.h"
#include "service/serve_spec.h"
#include "service/service.h"

namespace vcmp {
namespace {

constexpr double kGiBd = 1024.0 * 1024.0 * 1024.0;

MemoryModels LinearModels(double peak_per_unit, double residual_per_unit,
                          double peak_intercept) {
  MemoryModels models;
  models.peak.a = peak_per_unit;
  models.peak.b = 1.0;
  models.peak.c = peak_intercept;
  models.residual.a = residual_per_unit;
  models.residual.b = 1.0;
  models.residual.c = 0.0;
  return models;
}

std::vector<ClientSpec> TwoSteadyClients(double rate, double units) {
  std::vector<ClientSpec> clients(2);
  clients[0].name = "alpha";
  clients[0].rate_per_second = rate;
  clients[0].units_per_query = units;
  clients[1].name = "beta";
  clients[1].rate_per_second = rate;
  clients[1].units_per_query = units;
  return clients;
}

// ---------------------------------------------------------------- arrivals

TEST(ArrivalTest, SameSeedSameSequence) {
  ArrivalOptions options;
  options.seed = 42;
  options.horizon_seconds = 50.0;
  ArrivalProcess a(TwoSteadyClients(0.5, 2.0), options);
  ArrivalProcess b(TwoSteadyClients(0.5, 2.0), options);
  auto seq_a = a.Generate();
  auto seq_b = b.Generate();
  ASSERT_TRUE(seq_a.ok());
  ASSERT_TRUE(seq_b.ok());
  ASSERT_EQ(seq_a.value().size(), seq_b.value().size());
  ASSERT_GT(seq_a.value().size(), 10u);
  for (size_t i = 0; i < seq_a.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(seq_a.value()[i].arrival_seconds,
                     seq_b.value()[i].arrival_seconds);
    EXPECT_EQ(seq_a.value()[i].client, seq_b.value()[i].client);
    EXPECT_EQ(seq_a.value()[i].id, i);  // ids are merged ranks.
  }
}

TEST(ArrivalTest, DifferentSeedDifferentTimes) {
  ArrivalOptions options;
  options.horizon_seconds = 50.0;
  options.seed = 1;
  ArrivalProcess a(TwoSteadyClients(0.5, 1.0), options);
  options.seed = 2;
  ArrivalProcess b(TwoSteadyClients(0.5, 1.0), options);
  auto seq_a = a.Generate();
  auto seq_b = b.Generate();
  ASSERT_TRUE(seq_a.ok() && seq_b.ok());
  bool any_diff = seq_a.value().size() != seq_b.value().size();
  for (size_t i = 0;
       !any_diff && i < seq_a.value().size() && i < seq_b.value().size();
       ++i) {
    any_diff = seq_a.value()[i].arrival_seconds !=
               seq_b.value()[i].arrival_seconds;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ArrivalTest, ClientStreamsAreIndependent) {
  // Adding a second client must not perturb the first client's arrival
  // times (per-client forked RNG streams).
  ArrivalOptions options;
  options.seed = 9;
  options.horizon_seconds = 40.0;
  std::vector<ClientSpec> solo(1);
  solo[0].name = "alpha";
  solo[0].rate_per_second = 0.4;
  ArrivalProcess one(solo, options);
  ArrivalProcess two(TwoSteadyClients(0.4, 1.0), options);
  auto seq_one = one.Generate();
  auto seq_two = two.Generate();
  ASSERT_TRUE(seq_one.ok() && seq_two.ok());
  std::vector<double> alpha_solo;
  for (const QueryArrival& q : seq_one.value()) {
    alpha_solo.push_back(q.arrival_seconds);
  }
  std::vector<double> alpha_merged;
  for (const QueryArrival& q : seq_two.value()) {
    if (q.client == 0) alpha_merged.push_back(q.arrival_seconds);
  }
  EXPECT_EQ(alpha_solo, alpha_merged);
}

TEST(ArrivalTest, SortedAndInsideHorizon) {
  ArrivalOptions options;
  options.seed = 3;
  options.horizon_seconds = 25.0;
  ArrivalProcess process(TwoSteadyClients(1.0, 1.0), options);
  auto seq = process.Generate();
  ASSERT_TRUE(seq.ok());
  for (size_t i = 0; i < seq.value().size(); ++i) {
    EXPECT_LT(seq.value()[i].arrival_seconds, 25.0);
    EXPECT_GE(seq.value()[i].arrival_seconds, 0.0);
    if (i > 0) {
      EXPECT_GE(seq.value()[i].arrival_seconds,
                seq.value()[i - 1].arrival_seconds);
    }
  }
}

TEST(ArrivalTest, TraceModulatesRate) {
  // 10s of near-silence, a 10s burst at 50x the rate, near-silence again.
  std::vector<ClientSpec> clients(1);
  clients[0].name = "bursty";
  clients[0].trace = {{10.0, 0.1}, {10.0, 5.0}, {10.0, 0.1}};
  ArrivalOptions options;
  options.seed = 5;
  options.horizon_seconds = 30.0;
  ArrivalProcess process(clients, options);
  auto seq = process.Generate();
  ASSERT_TRUE(seq.ok());
  size_t in_burst = 0, outside = 0;
  for (const QueryArrival& q : seq.value()) {
    if (q.arrival_seconds >= 10.0 && q.arrival_seconds < 20.0) {
      ++in_burst;
    } else {
      ++outside;
    }
  }
  EXPECT_GT(in_burst, 10u * outside / 10u + 5u);
}

TEST(ArrivalTest, RejectsBadSpecs) {
  ArrivalOptions options;
  options.horizon_seconds = 0.0;
  EXPECT_FALSE(
      ArrivalProcess(TwoSteadyClients(1.0, 1.0), options).Generate().ok());
  options.horizon_seconds = 10.0;
  EXPECT_FALSE(ArrivalProcess({}, options).Generate().ok());
  auto bad_rate = TwoSteadyClients(0.0, 1.0);
  EXPECT_FALSE(ArrivalProcess(bad_rate, options).Generate().ok());
}

// --------------------------------------------------------------- admission

QueryArrival MakeQuery(uint64_t id, uint32_t client, double units) {
  QueryArrival query;
  query.id = id;
  query.client = client;
  query.units = units;
  query.arrival_seconds = static_cast<double>(id);
  return query;
}

TEST(AdmissionTest, PopFairRoundRobinsAcrossClients) {
  AdmissionQueue queue(3, AdmissionOptions{});
  uint64_t id = 0;
  for (int round = 0; round < 4; ++round) {
    for (uint32_t client = 0; client < 3; ++client) {
      ASSERT_TRUE(queue.Offer(MakeQuery(id++, client, 1.0)));
    }
  }
  std::vector<QueryArrival> batch = queue.PopFair(6);
  ASSERT_EQ(batch.size(), 6u);
  std::map<uint32_t, int> per_client;
  for (const QueryArrival& q : batch) per_client[q.client]++;
  for (uint32_t client = 0; client < 3; ++client) {
    EXPECT_EQ(per_client[client], 2) << "client " << client;
  }
  // The second batch drains the rest, still evenly.
  batch = queue.PopFair(6);
  ASSERT_EQ(batch.size(), 6u);
  per_client.clear();
  for (const QueryArrival& q : batch) per_client[q.client]++;
  for (uint32_t client = 0; client < 3; ++client) {
    EXPECT_EQ(per_client[client], 2) << "client " << client;
  }
  EXPECT_TRUE(queue.empty());
}

TEST(AdmissionTest, PopFairUnitsRespectsBudgetExactly) {
  AdmissionQueue queue(2, AdmissionOptions{});
  // Client 0 queues 3-unit queries, client 1 queues 1-unit queries.
  ASSERT_TRUE(queue.Offer(MakeQuery(0, 0, 3.0)));
  ASSERT_TRUE(queue.Offer(MakeQuery(1, 0, 3.0)));
  ASSERT_TRUE(queue.Offer(MakeQuery(2, 1, 1.0)));
  ASSERT_TRUE(queue.Offer(MakeQuery(3, 1, 1.0)));
  std::vector<QueryArrival> batch = queue.PopFairUnits(4.0);
  double units = 0.0;
  for (const QueryArrival& q : batch) units += q.units;
  EXPECT_LE(units, 4.0);
  EXPECT_EQ(batch.size(), 2u);  // 3 + 1: the second 3-unit head no longer fits.
  EXPECT_DOUBLE_EQ(queue.units(), 4.0);
}

TEST(AdmissionTest, PopFairUnitsSkipsOversizedHeads) {
  AdmissionQueue queue(2, AdmissionOptions{});
  ASSERT_TRUE(queue.Offer(MakeQuery(0, 0, 5.0)));
  ASSERT_TRUE(queue.Offer(MakeQuery(1, 1, 1.0)));
  ASSERT_TRUE(queue.Offer(MakeQuery(2, 1, 1.0)));
  // Budget 2: client 0's 5-unit head cannot fit, but client 1's queries
  // must still flow (no head-of-line blocking across tenants).
  std::vector<QueryArrival> batch = queue.PopFairUnits(2.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].client, 1u);
  EXPECT_EQ(batch[1].client, 1u);
  EXPECT_DOUBLE_EQ(queue.units(), 5.0);
}

TEST(AdmissionTest, ShedsPerClientAndTotal) {
  AdmissionOptions options;
  options.per_client_capacity = 2;
  options.total_capacity = 3;
  AdmissionQueue queue(2, options);
  EXPECT_TRUE(queue.Offer(MakeQuery(0, 0, 1.0)));
  EXPECT_TRUE(queue.Offer(MakeQuery(1, 0, 1.0)));
  // Client 0's private queue is full: shed, even though total has room.
  EXPECT_FALSE(queue.Offer(MakeQuery(2, 0, 1.0)));
  // Client 1 is unaffected by client 0's backpressure.
  EXPECT_TRUE(queue.Offer(MakeQuery(3, 1, 1.0)));
  // Total capacity reached: shed regardless of per-client headroom.
  EXPECT_FALSE(queue.Offer(MakeQuery(4, 1, 1.0)));
  EXPECT_EQ(queue.shed_count(), 2u);
  ASSERT_EQ(queue.per_client_shed().size(), 2u);
  EXPECT_EQ(queue.per_client_shed()[0], 1u);
  EXPECT_EQ(queue.per_client_shed()[1], 1u);
  EXPECT_EQ(queue.per_client_admitted()[0], 2u);
  EXPECT_EQ(queue.per_client_admitted()[1], 1u);
  EXPECT_EQ(queue.size(), 3u);
}

// ---------------------------------------------------------------- batchers

BatcherObservation Obs(double queued_units, double oldest_wait,
                       double residual_bytes) {
  BatcherObservation obs;
  obs.queued_queries = static_cast<size_t>(queued_units);
  obs.queued_units = queued_units;
  obs.oldest_wait_seconds = oldest_wait;
  obs.residual_bytes = residual_bytes;
  return obs;
}

TEST(FixedBatcherTest, WaitsBelowKThenFiresOnAge) {
  FixedBatcher batcher(10.0, /*max_wait_seconds=*/5.0);
  EXPECT_DOUBLE_EQ(batcher.NextBatchUnits(Obs(4.0, 1.0, 0.0)), 0.0);
  EXPECT_DOUBLE_EQ(batcher.NextBatchUnits(Obs(12.0, 1.0, 0.0)), 10.0);
  // Anti-starvation: the oldest query has waited past the deadline.
  EXPECT_DOUBLE_EQ(batcher.NextBatchUnits(Obs(4.0, 6.0, 0.0)), 4.0);
}

TEST(DynamicBatcherTest, InvertsModelsAgainstFreeMemory) {
  // peak(W) = 0.01GiB * W + 0.5GiB against a 16GiB machine, p = 0.85,
  // no safety margin: budget 13.6GiB.
  MemoryModels models =
      LinearModels(0.01 * kGiBd, 0.004 * kGiBd, 0.5 * kGiBd);
  DynamicBatcherOptions options;
  options.machine_memory_bytes = 16.0 * kGiBd;
  options.overload_fraction = 0.85;
  options.safety_fraction = 0.0;
  DynamicBatcher batcher(models, options);
  // (13.6 - 0.5) / 0.01 = 1310 with zero residual.
  EXPECT_NEAR(batcher.MaxFeasibleUnits(0.0), 1310.0, 1.0);
  // Residual eats the budget: (13.6 - 6.55 - 0.5) / 0.01 = 655.
  EXPECT_NEAR(batcher.MaxFeasibleUnits(6.55 * kGiBd), 655.0, 1.0);
  // Feasibility bound holds at the returned size.
  double feasible = batcher.MaxFeasibleUnits(6.55 * kGiBd);
  EXPECT_LE(batcher.PredictedPeakBytes(feasible) + 6.55 * kGiBd,
            13.6 * kGiBd * (1.0 + 1e-9));
  // Nothing fits: wait for the drain.
  EXPECT_DOUBLE_EQ(batcher.MaxFeasibleUnits(13.5 * kGiBd), 0.0);
}

TEST(DynamicBatcherTest, CoalescesUntilAgeTrigger) {
  MemoryModels models = LinearModels(0.01 * kGiBd, 0.0, 0.0);
  DynamicBatcherOptions options;
  options.machine_memory_bytes = 16.0 * kGiBd;
  options.max_wait_seconds = 2.0;
  DynamicBatcher batcher(models, options);
  // Deep backlog: take the largest feasible batch immediately.
  double feasible = batcher.MaxFeasibleUnits(0.0);
  EXPECT_DOUBLE_EQ(batcher.NextBatchUnits(Obs(5000.0, 0.1, 0.0)),
                   feasible);
  // Shallow queue, young queries: keep coalescing.
  EXPECT_DOUBLE_EQ(batcher.NextBatchUnits(Obs(100.0, 0.1, 0.0)), 0.0);
  // Shallow queue, but the oldest query hit the deadline: fire with what
  // is queued.
  EXPECT_DOUBLE_EQ(batcher.NextBatchUnits(Obs(100.0, 2.5, 0.0)), 100.0);
}

// ------------------------------------------------------------ serving loop

TEST(ServingLoopTest, CompletesAllQueriesAndAggregates) {
  ArrivalOptions arrival_options;
  arrival_options.seed = 11;
  arrival_options.horizon_seconds = 30.0;
  ArrivalProcess arrivals(TwoSteadyClients(0.8, 1.0), arrival_options);
  FixedBatcher policy(4.0, /*max_wait_seconds=*/2.0);
  BatchExecutor executor =
      [](const std::vector<QueryArrival>& batch,
         double /*residual*/) -> Result<BatchExecution> {
    double units = 0.0;
    for (const QueryArrival& q : batch) units += q.units;
    BatchExecution exec;
    exec.seconds = 0.5 + 0.1 * units;
    exec.peak_memory_bytes = 1e6 * units;
    exec.residual_bytes = 1e5 * units;
    return exec;
  };
  ServiceOptions options;
  options.horizon_seconds = 30.0;
  options.drain_delay_seconds = 5.0;
  ServingLoop loop(arrivals, AdmissionOptions{}, policy, executor,
                   options);
  auto report = loop.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ServiceReport& r = report.value();
  ASSERT_GT(r.completed, 10u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.completed + r.shed, r.queries.size());
  uint64_t per_client_sum = 0;
  for (uint64_t n : r.per_client_completed) per_client_sum += n;
  EXPECT_EQ(per_client_sum, r.completed);
  EXPECT_LE(r.p50_latency_seconds, r.p95_latency_seconds);
  EXPECT_LE(r.p95_latency_seconds, r.p99_latency_seconds);
  EXPECT_LE(r.p99_latency_seconds, r.max_latency_seconds);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0);
  EXPECT_FALSE(r.batches.empty());
  for (const QueryOutcome& q : r.queries) {
    EXPECT_GE(q.start_seconds, q.arrival_seconds);
    EXPECT_GE(q.finish_seconds, q.start_seconds);
  }
  // Determinism: the same configuration replays identically.
  ServingLoop again(arrivals, AdmissionOptions{}, policy, executor,
                    options);
  auto replay = again.Run();
  ASSERT_TRUE(replay.ok());
  EXPECT_DOUBLE_EQ(replay.value().p99_latency_seconds,
                   r.p99_latency_seconds);
  EXPECT_EQ(replay.value().batches.size(), r.batches.size());
}

TEST(ServingLoopTest, DynamicBatchesStayFeasibleUnderResidualPressure) {
  // A hard burst against a tight 1GiB machine: the dynamic batcher must
  // shrink its batches as unflushed residual piles up, and every formed
  // batch must satisfy peak(W) + residual <= p * M at formation time.
  // ~200 one-unit queries land within half a second, so from the first
  // decision point the queue is deeper than anything feasible.
  std::vector<ClientSpec> clients(2);
  for (int i = 0; i < 2; ++i) {
    clients[i].name = i == 0 ? "alpha" : "beta";
    clients[i].trace = {{0.5, 200.0}};
    clients[i].units_per_query = 1.0;
  }
  ArrivalOptions arrival_options;
  arrival_options.seed = 13;
  arrival_options.horizon_seconds = 0.5;
  ArrivalProcess arrivals(clients, arrival_options);

  MemoryModels models = LinearModels(0.01 * kGiBd, 0.004 * kGiBd, 0.0);
  DynamicBatcherOptions batcher_options;
  batcher_options.machine_memory_bytes = 1.0 * kGiBd;
  batcher_options.overload_fraction = 0.85;
  batcher_options.safety_fraction = 0.0;
  batcher_options.max_wait_seconds = 1.0;
  DynamicBatcher policy(models, batcher_options);
  const double budget = 0.85 * kGiBd;

  BatchExecutor executor =
      [&models](const std::vector<QueryArrival>& batch,
                double residual) -> Result<BatchExecution> {
    double units = 0.0;
    for (const QueryArrival& q : batch) units += q.units;
    BatchExecution exec;
    exec.seconds = 1.0 + 0.05 * units;
    exec.peak_memory_bytes = models.peak.Eval(units) + residual;
    exec.residual_bytes = models.residual.Eval(units);
    return exec;
  };
  ServiceOptions options;
  options.horizon_seconds = 0.5;
  options.drain_delay_seconds = 600.0;  // Longer than the whole run.
  ServingLoop loop(arrivals, AdmissionOptions{}, policy, executor,
                   options);
  auto report = loop.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ServiceReport& r = report.value();
  ASSERT_GT(r.batches.size(), 2u);
  for (const ServiceBatchTrace& batch : r.batches) {
    EXPECT_LE(models.peak.Eval(batch.units) +
                  batch.residual_at_formation_bytes,
              budget * (1.0 + 1e-9))
        << "batch at t=" << batch.start_seconds;
    EXPECT_FALSE(batch.overloaded);
  }
  // The first batch fills the whole free budget; as its residual (and
  // the next ones') pile up unflushed, the batches shrink monotonically —
  // the paper's decreasing-batch pattern, produced online.
  EXPECT_NEAR(r.batches.front().units, 85.0, 1.0);  // (0.85GiB)/0.01GiB
  for (size_t i = 1; i < r.batches.size(); ++i) {
    EXPECT_LE(r.batches[i].units, r.batches[i - 1].units);
    EXPECT_GE(r.batches[i].residual_at_formation_bytes,
              r.batches[i - 1].residual_at_formation_bytes);
  }
  EXPECT_LT(r.batches.back().units, r.batches.front().units / 2.0);
  EXPECT_GT(r.peak_residual_bytes, 0.0);
}

TEST(ServingLoopTest, UnschedulableQueryFailsWithStatus) {
  std::vector<ClientSpec> clients(1);
  clients[0].name = "whale";
  clients[0].rate_per_second = 1.0;
  clients[0].units_per_query = 8.0;  // Bigger than the fixed batch.
  ArrivalOptions arrival_options;
  arrival_options.seed = 1;
  arrival_options.horizon_seconds = 4.0;
  ArrivalProcess arrivals(clients, arrival_options);
  FixedBatcher policy(2.0, /*max_wait_seconds=*/1.0);
  BatchExecutor executor =
      [](const std::vector<QueryArrival>&,
         double) -> Result<BatchExecution> {
    return BatchExecution{};
  };
  ServiceOptions options;
  options.horizon_seconds = 4.0;
  ServingLoop loop(arrivals, AdmissionOptions{}, policy, executor,
                   options);
  auto report = loop.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------- report + exports

TEST(ServiceReportTest, JsonCarriesSchemaVersionAndSummary) {
  ServiceReport report;
  report.policy = "dynamic";
  report.dataset = "DBLP";
  QueryOutcome q;
  q.units = 2.0;
  q.arrival_seconds = 1.0;
  q.start_seconds = 2.0;
  q.finish_seconds = 3.0;
  report.queries.push_back(q);
  ServiceBatchTrace batch;
  batch.units = 2.0;
  batch.seconds = 1.0;
  report.batches.push_back(batch);
  report.Finalize(/*num_clients=*/1, /*busy_seconds=*/1.0);
  EXPECT_EQ(report.completed, 1u);
  std::string json = ServiceReportToJson(report);
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p99_latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"dynamic\""), std::string::npos);
  // The per-query array is opt-in (it can dominate the file).
  EXPECT_EQ(json.find("\"queries\":["), std::string::npos);
  EXPECT_NE(ServiceReportToJson(report, /*include_queries=*/true)
                .find("\"queries\":["),
            std::string::npos);
}

TEST(ServiceReportTest, RunReportJsonCarriesSchemaVersion) {
  RunReport report;
  EXPECT_NE(RunReportToJson(report).find("\"schema_version\":2"),
            std::string::npos);
}

TEST(ServeSpecTest, ParsesTraceAndRejectsUnknownKeys) {
  auto trace = ParseTrace("40x1,20x12");
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace.value().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.value()[0].duration_seconds, 40.0);
  EXPECT_DOUBLE_EQ(trace.value()[1].rate_per_second, 12.0);
  EXPECT_FALSE(ParseTrace("40x").ok());
  EXPECT_FALSE(ParseTrace("").ok());

  auto good = IniDocument::Parse("[s]\npolicy = fixed:512\nunits = 4\n");
  ASSERT_TRUE(good.ok());
  auto specs = ParseServeSpecs(good.value());
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs.value()[0].policy, "fixed:512");
  EXPECT_DOUBLE_EQ(specs.value()[0].units_per_query, 4.0);

  auto bad = IniDocument::Parse("[s]\nnot_a_key = 1\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ParseServeSpecs(bad.value()).ok());
}

}  // namespace
}  // namespace vcmp
