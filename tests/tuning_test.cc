#include <cmath>

#include <gtest/gtest.h>

#include "core/tuning/memory_fit.h"
#include "core/tuning/planner.h"
#include "core/tuning/trainer.h"
#include "core/tuning/tuner.h"
#include "tasks/bppr.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

constexpr double kGiBd = 1024.0 * 1024.0 * 1024.0;

MemoryModels LinearModels(double peak_per_unit, double residual_per_unit,
                          double peak_intercept) {
  MemoryModels models;
  models.peak.a = peak_per_unit;
  models.peak.b = 1.0;
  models.peak.c = peak_intercept;
  models.residual.a = residual_per_unit;
  models.residual.b = 1.0;
  models.residual.c = 0.0;
  return models;
}

TEST(MemoryFitTest, FitsSyntheticSamples) {
  std::vector<TrainingSample> samples;
  for (double w : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    TrainingSample sample;
    sample.workload = w;
    sample.peak_memory_bytes = 0.02 * kGiBd * w + 0.5 * kGiBd;
    sample.residual_memory_bytes = 0.004 * kGiBd * w;
    samples.push_back(sample);
  }
  auto models = FitMemoryModels(samples);
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  EXPECT_NEAR(models.value().peak.Eval(128.0),
              0.02 * kGiBd * 128.0 + 0.5 * kGiBd, 0.05 * kGiBd);
  EXPECT_NEAR(models.value().residual.Eval(128.0), 0.004 * kGiBd * 128.0,
              0.05 * kGiBd);
  EXPECT_FALSE(models.value().ToString().empty());
}

TEST(MemoryFitTest, RejectsTooFewSamples) {
  std::vector<TrainingSample> samples(2);
  samples[0].workload = 2.0;
  samples[1].workload = 4.0;
  EXPECT_FALSE(FitMemoryModels(samples).ok());
}

TEST(PlannerTest, FullParallelismWhenEverythingFits) {
  // Peak memory of the entire workload stays under the budget.
  MemoryModels models = LinearModels(0.001 * kGiBd, 0.0001 * kGiBd, 0.0);
  PlannerOptions options;
  options.machine_memory_bytes = 16.0 * kGiBd;
  options.overload_fraction = 0.85;
  auto schedule = PlanSchedule(models, 1000.0, options);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  EXPECT_TRUE(schedule.value().IsFullParallelism());
  EXPECT_DOUBLE_EQ(schedule.value().TotalWorkload(), 1000.0);
}

TEST(PlannerTest, ProducesDecreasingBatchesUnderResidualPressure) {
  // Heavy residual: every processed unit eats into later batches' budget,
  // so the planned workloads must decrease monotonically (the paper's
  // [2747, 1388, 644, 266, 75] pattern).
  MemoryModels models = LinearModels(0.004 * kGiBd, 0.002 * kGiBd, 0.0);
  PlannerOptions options;
  options.machine_memory_bytes = 16.0 * kGiBd;
  auto schedule = PlanSchedule(models, 5120.0, options);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  const auto& workloads = schedule.value().workloads();
  ASSERT_GE(workloads.size(), 3u);
  for (size_t i = 1; i < workloads.size(); ++i) {
    EXPECT_LE(workloads[i], workloads[i - 1] + 1.0);
  }
  EXPECT_NEAR(schedule.value().TotalWorkload(), 5120.0, 0.5);
  // First batch fills the budget exactly: W1 = pM / a1.
  EXPECT_NEAR(workloads[0],
              std::floor(0.85 * 16.0 / 0.004), 1.0);
}

TEST(PlannerTest, FailsWhenResidualAloneOverflows) {
  // Residual grows faster than the budget: at some point no batch fits.
  MemoryModels models = LinearModels(0.004 * kGiBd, 0.02 * kGiBd, 0.0);
  PlannerOptions options;
  options.machine_memory_bytes = 16.0 * kGiBd;
  auto schedule = PlanSchedule(models, 100000.0, options);
  EXPECT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlannerTest, RejectsBadWorkload) {
  MemoryModels models = LinearModels(1.0, 0.0, 0.0);
  EXPECT_FALSE(PlanSchedule(models, 0.0).ok());
}

TEST(PlannerTest, WorkloadBelowLightestTrainingPointExtrapolates) {
  // The models were fitted on W in [2, 64]; planning W = 1 extrapolates
  // below every training point and must still yield a valid one-batch
  // schedule (the tiny workload trivially fits).
  std::vector<TrainingSample> samples;
  for (double w : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    TrainingSample sample;
    sample.workload = w;
    sample.peak_memory_bytes = 0.02 * kGiBd * w + 0.5 * kGiBd;
    sample.residual_memory_bytes = 0.004 * kGiBd * w;
    samples.push_back(sample);
  }
  auto models = FitMemoryModels(samples);
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  PlannerOptions options;
  options.machine_memory_bytes = 16.0 * kGiBd;
  auto schedule = PlanSchedule(models.value(), 1.0, options);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  EXPECT_TRUE(schedule.value().IsFullParallelism());
  EXPECT_DOUBLE_EQ(schedule.value().TotalWorkload(), 1.0);
}

TEST(PlannerTest, FailsWithStatusWhenFirstBatchCannotFit) {
  // The fitted peak intercept alone exceeds the memory budget: even a
  // one-unit first batch is infeasible. The planner must fail with a
  // Status (never crash or emit an empty schedule).
  MemoryModels models =
      LinearModels(0.001 * kGiBd, 0.0001 * kGiBd, 15.0 * kGiBd);
  PlannerOptions options;
  options.machine_memory_bytes = 16.0 * kGiBd;
  options.overload_fraction = 0.85;  // Budget 13.6GiB < 15GiB intercept.
  auto schedule = PlanSchedule(models, 128.0, options);
  ASSERT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlannerTest, FailsWithStatusWhenResidualExceedsBudgetOnBatchOne) {
  // Mres(W1) alone swallows the whole budget after the first batch: the
  // remaining workload can never be scheduled.
  MemoryModels models = LinearModels(0.004 * kGiBd, 0.2 * kGiBd, 0.0);
  PlannerOptions options;
  options.machine_memory_bytes = 16.0 * kGiBd;
  auto schedule = PlanSchedule(models, 50000.0, options);
  ASSERT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(schedule.status().message().empty());
}

TEST(TrainerTest, TargetBelowLightestTrainingPointFailsCleanly) {
  // The doubling ladder needs at least three points below the target;
  // a target of 6 leaves only {2, 4} and must fail with a Status.
  Dataset dataset = LoadDataset(DatasetId::kDblp, 512.0);
  RunnerOptions runner_options;
  runner_options.cluster = RelaxedCluster(2);
  Trainer trainer(dataset, runner_options);
  BpprTask task;
  auto samples = trainer.CollectSamples(task, 6.0);
  ASSERT_FALSE(samples.ok());
  EXPECT_FALSE(samples.status().message().empty());
}

TEST(TrainerTest, CollectsDoublingWorkloads) {
  Dataset dataset = LoadDataset(DatasetId::kDblp, 512.0);
  RunnerOptions runner_options;
  runner_options.cluster = RelaxedCluster(4);
  Trainer trainer(dataset, runner_options);
  BpprTask task;
  auto samples = trainer.CollectSamples(task, /*target_workload=*/512.0);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ASSERT_GE(samples.value().size(), 4u);
  for (size_t i = 0; i < samples.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(samples.value()[i].workload, std::pow(2.0, i + 1));
    EXPECT_GT(samples.value()[i].peak_memory_bytes, 0.0);
    EXPECT_GT(samples.value()[i].residual_memory_bytes, 0.0);
    EXPECT_LT(samples.value()[i].workload, 512.0);
  }
  // Peak memory is monotone in workload.
  for (size_t i = 1; i < samples.value().size(); ++i) {
    EXPECT_GE(samples.value()[i].peak_memory_bytes,
              samples.value()[i - 1].peak_memory_bytes);
  }
}

TEST(TrainerTest, RejectsTinyTargets) {
  Dataset dataset = LoadDataset(DatasetId::kDblp, 512.0);
  RunnerOptions runner_options;
  runner_options.cluster = RelaxedCluster(2);
  Trainer trainer(dataset, runner_options);
  BpprTask task;
  EXPECT_FALSE(trainer.CollectSamples(task, 2.0).ok());
}

TEST(TunerTest, EndToEndProducesValidSchedule) {
  Dataset dataset = LoadDataset(DatasetId::kDblp, 512.0);
  RunnerOptions runner_options;
  runner_options.cluster = RelaxedCluster(4);
  Tuner tuner(dataset, runner_options);
  BpprTask task;
  auto plan = tuner.Tune(task, /*total_workload=*/1024.0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(plan.value().samples.size(), 4u);
  EXPECT_NEAR(plan.value().schedule.TotalWorkload(), 1024.0, 0.5);
  EXPECT_GT(plan.value().training_seconds, 0.0);
  // Relaxed machines are huge: the whole workload fits in one batch.
  EXPECT_TRUE(plan.value().schedule.IsFullParallelism());
}

TEST(TunerTest, TightMemoryForcesMultipleBatches) {
  Dataset dataset = LoadDataset(DatasetId::kDblp, 512.0);
  RunnerOptions runner_options;
  runner_options.cluster = RelaxedCluster(4);
  // Shrink the machines so the target workload cannot run in one batch
  // (but the accumulated residual of the full workload still fits).
  runner_options.cluster.machine.memory_bytes = 4.0 * kGiBd;
  runner_options.cluster.machine.usable_memory_bytes = 3.5 * kGiBd;
  Tuner tuner(dataset, runner_options);
  BpprTask task;
  auto plan = tuner.Tune(task, /*total_workload=*/2048.0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(plan.value().schedule.NumBatches(), 1u);
  EXPECT_NEAR(plan.value().schedule.TotalWorkload(), 2048.0, 0.5);
  // Later batches should not exceed earlier ones (residual pressure).
  const auto& workloads = plan.value().schedule.workloads();
  for (size_t i = 1; i < workloads.size(); ++i) {
    EXPECT_LE(workloads[i], workloads[i - 1] + 1.0);
  }
}

}  // namespace
}  // namespace vcmp
