#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/experiment_spec.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"

namespace vcmp {
namespace {

/// A minimal recursive-descent JSON well-formedness checker — enough to
/// reject the classic hand-rolled-writer failures (bare nan/inf tokens,
/// trailing commas, unescaped quotes) without an external dependency.
class JsonValidator {
 public:
  static bool Valid(const std::string& text) {
    JsonValidator v(text);
    v.SkipWs();
    if (!v.Value()) return false;
    v.SkipWs();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!isxdigit(static_cast<unsigned char>(Peek()))) return false;
            ++pos_;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) ==
                   std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Eat('.')) {
      if (!isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    switch (Peek()) {
      case '{': {
        ++pos_;
        SkipWs();
        if (Eat('}')) return true;
        do {
          SkipWs();
          if (!String()) return false;
          SkipWs();
          if (!Eat(':')) return false;
          if (!Value()) return false;
          SkipWs();
        } while (Eat(','));
        return Eat('}');
      }
      case '[': {
        ++pos_;
        SkipWs();
        if (Eat(']')) return true;
        do {
          if (!Value()) return false;
          SkipWs();
        } while (Eat(','));
        return Eat(']');
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(JsonValidatorTest, SelfCheck) {
  EXPECT_TRUE(JsonValidator::Valid("{\"a\":[1,2.5,-3e-2,null,true]}"));
  EXPECT_TRUE(JsonValidator::Valid("{}"));
  EXPECT_FALSE(JsonValidator::Valid("{\"a\":nan}"));
  EXPECT_FALSE(JsonValidator::Valid("{\"a\":inf}"));
  EXPECT_FALSE(JsonValidator::Valid("{\"a\":1,}"));
  EXPECT_FALSE(JsonValidator::Valid("{\"a\":1}}"));
  EXPECT_FALSE(JsonValidator::Valid("{\"a\":\"unterminated}"));
}

TEST(TracerTest, RecordsSpansInstantsAndGauges) {
  Tracer tracer;
  uint32_t track = tracer.AddTrack("proc", "thread");
  EXPECT_EQ(track, 0u);
  EXPECT_EQ(tracer.AddTrack("proc", "other"), 1u);

  tracer.Begin(track, "outer", 1.0, {{"k", 2.0}});
  EXPECT_EQ(tracer.open_spans(track), 1u);
  tracer.Begin(track, "inner", 1.5);
  EXPECT_EQ(tracer.open_spans(track), 2u);
  tracer.Instant(track, "tick", 1.75);
  tracer.Gauge(track, "level", 2.0, 42.0);
  tracer.End(track, 2.0);
  tracer.End(track, 3.0);
  EXPECT_EQ(tracer.open_spans(track), 0u);

  ASSERT_EQ(tracer.events().size(), 6u);
  EXPECT_EQ(tracer.events()[0].kind, TraceEvent::Kind::kBegin);
  EXPECT_EQ(tracer.events()[0].name, "outer");
  ASSERT_EQ(tracer.events()[0].args.size(), 1u);
  EXPECT_EQ(tracer.events()[0].args[0].first, "k");
  EXPECT_EQ(tracer.events()[3].kind, TraceEvent::Kind::kGauge);
  EXPECT_DOUBLE_EQ(tracer.events()[3].value, 42.0);
}

TEST(TracerTest, CountersAccumulateAndPeak) {
  Tracer tracer;
  EXPECT_DOUBLE_EQ(tracer.counter("missing"), 0.0);
  tracer.Add("sum", 1.5);
  tracer.Add("sum", 2.5);
  tracer.Peak("max", 3.0);
  tracer.Peak("max", 1.0);  // Lower value must not regress the peak.
  tracer.Peak("max", 7.0);
  EXPECT_DOUBLE_EQ(tracer.counter("sum"), 4.0);
  EXPECT_DOUBLE_EQ(tracer.counter("max"), 7.0);
  EXPECT_EQ(tracer.counters().size(), 2u);
}

TEST(TraceSinkTest, ExportsChromeTraceShape) {
  Tracer tracer;
  uint32_t a = tracer.AddTrack("alpha", "main");
  uint32_t b = tracer.AddTrack("beta", "main");
  tracer.Begin(a, "span", 1.0, {{"x", 1.0}});
  tracer.End(a, 2.0);
  tracer.Instant(b, "mark", 1.5);
  tracer.Gauge(b, "level", 1.5, 9.0);
  tracer.Add("counter.total", 5.0);

  std::string json = TraceToJson(tracer);
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  // Metadata names both processes and both tracks.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  // Phases: B/E span, i instant, C counter; seconds exported as micros.
  EXPECT_NE(json.find("\"ph\":\"B\",\"ts\":1000000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\",\"ts\":2000000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // The flat counter snapshot rides along.
  EXPECT_NE(json.find("\"counters\":{\"counter.total\":5}"),
            std::string::npos);
  // An E event with no args must omit the "args" key, not emit "{}".
  EXPECT_EQ(json.find("\"args\":{}"), std::string::npos);
}

TEST(TraceSinkTest, NonFiniteGaugeStaysValidJson) {
  Tracer tracer;
  uint32_t track = tracer.AddTrack("p", "t");
  tracer.Gauge(track, "bad", 1.0,
               std::numeric_limits<double>::quiet_NaN());
  tracer.Gauge(track, "worse", 2.0,
               std::numeric_limits<double>::infinity());
  std::string json = TraceToJson(tracer);
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"value\":null"), std::string::npos);
}

ExperimentSpec GoldenSpec(uint32_t threads) {
  ExperimentSpec spec;
  spec.name = "golden";
  spec.workload = 48;
  spec.schedule = "equal:3";
  spec.scale = 512;  // Tiny stand-in, fast.
  spec.seed = 11;
  spec.threads = threads;
  return spec;
}

std::string TraceForSpec(const ExperimentSpec& spec) {
  Tracer tracer;
  auto result = RunExperiment(spec, &tracer);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(tracer.events().empty());
  return TraceToJson(tracer);
}

TEST(GoldenTraceTest, SameSpecTwiceIsByteIdentical) {
  std::string first = TraceForSpec(GoldenSpec(2));
  std::string second = TraceForSpec(GoldenSpec(2));
  EXPECT_TRUE(JsonValidator::Valid(first));
  EXPECT_EQ(first, second);
}

TEST(GoldenTraceTest, ThreadCountDoesNotChangeTheTrace) {
  // The determinism contract: timestamps come from the simulated clock,
  // so execution parallelism must be invisible in the exported bytes.
  std::string one = TraceForSpec(GoldenSpec(1));
  std::string two = TraceForSpec(GoldenSpec(2));
  std::string eight = TraceForSpec(GoldenSpec(8));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

}  // namespace
}  // namespace vcmp
