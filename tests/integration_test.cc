// Integration tests: the paper's headline phenomena must emerge from the
// simulator end-to-end. Each test mirrors a section of the evaluation.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/tuning/tuner.h"
#include "graph/datasets.h"
#include "tasks/bppr.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

// DBLP stand-in small enough for tests but big enough that paper-scale
// workloads reproduce the congestion regimes of Galaxy-8.
Dataset IntegrationDataset() {
  return LoadDataset(DatasetId::kDblp, /*scale_override=*/64.0);
}

double RunSeconds(const Dataset& dataset, SystemKind system,
                  double workload, uint32_t batches,
                  uint32_t machines = 8) {
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8().WithMachines(machines);
  options.system = system;
  MultiProcessingRunner runner(dataset, options);
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::Equal(workload, batches));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.value_or(RunReport{}).total_seconds;
}

TEST(PaperPhenomena, Section41FullParallelismSuboptimalAtHeavyLoad) {
  Dataset dataset = IntegrationDataset();
  double one = RunSeconds(dataset, SystemKind::kPregelPlus, 10240, 1);
  double two = RunSeconds(dataset, SystemKind::kPregelPlus, 10240, 2);
  EXPECT_GT(one, 1.5 * two)
      << "Full-Parallelism must pay a heavy congestion penalty";
}

TEST(PaperPhenomena, Section41FullParallelismOptimalAtLightLoad) {
  Dataset dataset = IntegrationDataset();
  double one = RunSeconds(dataset, SystemKind::kPregelPlus, 1024, 1);
  double four = RunSeconds(dataset, SystemKind::kPregelPlus, 1024, 4);
  EXPECT_LT(one, four)
      << "light workloads should prefer fewer rounds (Fig. 4)";
}

TEST(PaperPhenomena, Section42OptimalBatchCountGrowsWithWorkload) {
  Dataset dataset = IntegrationDataset();
  auto best_batches = [&](double workload) {
    uint32_t best = 0;
    double best_seconds = 1e300;
    for (uint32_t batches : {1u, 2u, 4u, 8u}) {
      double seconds =
          RunSeconds(dataset, SystemKind::kPregelPlus, workload, batches);
      if (seconds < best_seconds) {
        best_seconds = seconds;
        best = batches;
      }
    }
    return best;
  };
  EXPECT_EQ(best_batches(1024), 1u);
  EXPECT_GE(best_batches(12288), 2u);
}

TEST(PaperPhenomena, Section43MemoryDropsWithBatchesAndMachines) {
  Dataset dataset = IntegrationDataset();
  auto peak_memory = [&](double workload, uint32_t batches,
                         uint32_t machines) {
    RunnerOptions options;
    options.cluster = ClusterSpec::Galaxy8().WithMachines(machines);
    MultiProcessingRunner runner(dataset, options);
    BpprTask task;
    auto report =
        runner.Run(task, BatchSchedule::Equal(workload, batches));
    EXPECT_TRUE(report.ok());
    return report.value_or(RunReport{}).peak_memory_bytes;
  };
  // Table 2 shape: more batches -> less memory; more machines -> less.
  double one = peak_memory(4096, 1, 8);
  double two = peak_memory(4096, 2, 8);
  double four = peak_memory(4096, 4, 8);
  EXPECT_GT(one, two);
  EXPECT_GT(two, four);
  EXPECT_GT(peak_memory(1024, 1, 4), peak_memory(1024, 1, 8));
}

TEST(PaperPhenomena, Section44DiskUtilizationGovernsGraphD) {
  // The Orkut stand-in at W=4096 puts GraphD in the paper's Table 3
  // regime: per-round spill at 1-2 batches, none at 4+.
  Dataset dataset = LoadDataset(DatasetId::kOrkut, /*scale_override=*/512.0);
  auto run = [&](uint32_t batches) {
    RunnerOptions options;
    options.cluster = ClusterSpec::Galaxy27();
    options.system = SystemKind::kGraphD;
    MultiProcessingRunner runner(dataset, options);
    BpprTask task;
    auto report = runner.Run(task, BatchSchedule::Equal(4096, batches));
    EXPECT_TRUE(report.ok());
    return report.value_or(RunReport{});
  };
  RunReport one = run(1);
  RunReport four = run(4);
  RunReport sixty_four = run(64);
  // Table 3: saturated at 1 batch, relaxed at 4, sync-dominated at 64+.
  EXPECT_TRUE(one.disk_saturated);
  EXPECT_FALSE(four.disk_saturated);
  EXPECT_GT(one.disk_utilization, 1.5 * four.disk_utilization);
  EXPECT_LT(four.disk_utilization, 0.4);
  EXPECT_GT(four.disk_utilization, 0.005);
  EXPECT_LT(four.total_seconds, one.total_seconds);
  EXPECT_GT(sixty_four.total_seconds, four.total_seconds);
  EXPECT_GT(one.max_io_queue_length, 20.0 * four.max_io_queue_length);
  EXPECT_GT(one.disk_overuse_seconds, four.disk_overuse_seconds);
}

TEST(PaperPhenomena, Section47UnequalBatchesFavorHeavierFirstBatch) {
  Dataset dataset = IntegrationDataset();
  BpprTask task;
  const double total = 12800.0;
  auto run_delta = [&](double delta) {
    RunnerOptions options;
    options.cluster = ClusterSpec::Galaxy8();
    MultiProcessingRunner runner(dataset, options);
    auto report = runner.Run(task, BatchSchedule::TwoBatch(total, delta));
    EXPECT_TRUE(report.ok());
    return report.value_or(RunReport{}).total_seconds;
  };
  // Fig. 9: the optimum sits at W1 > W2 because batch 2 pays batch 1's
  // residual memory. A positive delta must beat its mirror image.
  double positive = run_delta(total / 5.0);
  double negative = run_delta(-total / 5.0);
  EXPECT_LT(positive, negative);
}

TEST(PaperPhenomena, Section2GiraphPaysJvmOverheads) {
  Dataset dataset = IntegrationDataset();
  double giraph = RunSeconds(dataset, SystemKind::kGiraph, 2048, 4);
  double pregel = RunSeconds(dataset, SystemKind::kPregelPlus, 2048, 4);
  EXPECT_GT(giraph, 1.5 * pregel);
}

TEST(PaperPhenomena, Section5TunedScheduleAvoidsOverload) {
  // The tuner must turn an overloading Full-Parallelism workload into a
  // schedule that finishes (Fig. 12's Optimized vs Full-Parallelism).
  Dataset dataset = IntegrationDataset();
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8().WithMachines(4);
  BpprTask task;

  const double workload = 8192.0;
  MultiProcessingRunner full_runner(dataset, options);
  auto full =
      full_runner.Run(task, BatchSchedule::FullParallelism(workload));
  ASSERT_TRUE(full.ok());

  Tuner tuner(dataset, options);
  auto plan = tuner.Tune(task, workload);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  MultiProcessingRunner tuned_runner(dataset, options);
  auto tuned = tuned_runner.Run(task, plan.value().schedule);
  ASSERT_TRUE(tuned.ok());

  EXPECT_FALSE(tuned.value().overloaded);
  EXPECT_LT(tuned.value().total_seconds,
            0.7 * full.value().total_seconds);
  // Training stays minor relative to the evaluation run (paper's
  // affordability requirement).
  EXPECT_LT(plan.value().training_seconds,
            0.5 * tuned.value().total_seconds);
}

}  // namespace
}  // namespace vcmp
