// Edge-case coverage for the superstep engine: overload continuation,
// empty-graph handling, per-round statistics plumbing.

#include <gtest/gtest.h>

#include "engine/sync_engine.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/partition.h"
#include "tasks/bppr.h"
#include "tasks/pagerank.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

TEST(EngineEdgeCaseTest, OverloadWithoutEarlyStopRunsToQuiescence) {
  Graph ring = GenerateRing(64, 2);
  Partitioning part = HashPartitioner().Partition(ring, 2);
  TaskContext context{&ring, &part, 1.0, false};

  EngineOptions options;
  options.cluster = RelaxedCluster(2);
  options.cluster.machine.memory_bytes = 16.0 * 1024;
  options.cluster.machine.usable_memory_bytes = 12.0 * 1024;
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  options.stop_early_on_overload = false;

  BpprCountingProgram program(context, /*walks=*/64, {}, /*seed=*/2);
  SyncEngine engine(ring, part, options);
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().overloaded);
  // Without the early stop, every walk still terminates.
  EXPECT_EQ(program.TotalStopped(), 64u * ring.NumVertices());
  EXPECT_GT(result.value().num_rounds, 2u);
}

TEST(EngineEdgeCaseTest, RoundStatsTraceIsComplete) {
  Graph ring = GenerateRing(32, 1);
  Partitioning part = HashPartitioner().Partition(ring, 2);
  TaskContext context{&ring, &part, 1.0, false};
  EngineOptions options;
  options.cluster = RelaxedCluster(2);
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  PageRankProgram::Params params;
  params.iterations = 5;
  PageRankProgram program(context, params);
  SyncEngine engine(ring, part, options);
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rounds.size(), result.value().num_rounds);
  double total = 0.0;
  double messages = 0.0;
  for (const RoundStats& stats : result.value().rounds) {
    total += stats.total_seconds;
    messages += stats.messages;
    EXPECT_GE(stats.total_seconds, stats.barrier_seconds);
  }
  EXPECT_DOUBLE_EQ(total, result.value().seconds);
  EXPECT_DOUBLE_EQ(messages, result.value().total_messages);
  EXPECT_DOUBLE_EQ(result.value().MessagesPerRound(),
                   messages / result.value().num_rounds);
}

TEST(EngineEdgeCaseTest, IsolatedVerticesQuiesceImmediately) {
  // A graph with no edges: the seed round runs, nothing is sent, the
  // engine stops after one round.
  GraphBuilder builder(16);
  Graph empty = builder.Build({});
  Partitioning part = HashPartitioner().Partition(empty, 2);
  TaskContext context{&empty, &part, 1.0, false};
  EngineOptions options;
  options.cluster = RelaxedCluster(2);
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  BpprCountingProgram program(context, 4, {}, 1);
  SyncEngine engine(empty, part, options);
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rounds, 1u);
  // All walks end at their dangling start vertices.
  EXPECT_EQ(program.TotalStopped(), 4u * empty.NumVertices());
}

}  // namespace
}  // namespace vcmp
