#include <gtest/gtest.h>

#include "engine/mirror_engine.h"
#include "engine/sync_engine.h"
#include "engine/worker.h"
#include "tasks/bppr.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/partition.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

TEST(WorkerTest, StagesAndDrains) {
  Worker worker;
  worker.Reset(2);
  worker.SetCombiner(nullptr);
  EXPECT_TRUE(worker.Stage(0, 1, 0, 1.0, 1.0));
  EXPECT_TRUE(worker.Stage(1, 2, 0, 1.0, 1.0));
  MessageBlock dest;
  worker.Drain(0, &dest);
  ASSERT_EQ(dest.size(), 1u);
  EXPECT_EQ(dest.targets()[0], 1u);
  dest.Clear();
  worker.Drain(0, &dest);
  EXPECT_TRUE(dest.empty());  // Drain clears.
}

TEST(WorkerTest, CombinerMergesSameTargetAndTag) {
  Worker worker;
  worker.Reset(1);
  SumCombiner combiner;
  worker.SetCombiner(&combiner);
  EXPECT_TRUE(worker.Stage(0, 5, 1, 2.0, 2.0));
  EXPECT_FALSE(worker.Stage(0, 5, 1, 3.0, 3.0));
  EXPECT_TRUE(worker.Stage(0, 5, 2, 1.0, 1.0));
  MessageBlock dest;
  worker.Drain(0, &dest);
  ASSERT_EQ(dest.size(), 2u);
  EXPECT_DOUBLE_EQ(dest.values()[0], 5.0);
  EXPECT_DOUBLE_EQ(dest.multiplicities()[0], 5.0);
}

/// Keeps the largest value: not expressible as the inlined kSum/kMin
/// folds, so staging must fall back to the virtual Merge (kCustom).
class MaxCombiner : public Combiner {
 public:
  void Merge(Message& into, const Message& from) const override {
    if (from.value > into.value) into.value = from.value;
    into.multiplicity += from.multiplicity;
  }
};

TEST(WorkerTest, CustomCombinerUsesVirtualMerge) {
  Worker worker;
  worker.Reset(1);
  MaxCombiner combiner;
  ASSERT_EQ(combiner.kind(), CombinerKind::kCustom);
  worker.SetCombiner(&combiner);
  EXPECT_TRUE(worker.Stage(0, 7, 0, 2.0, 1.0));
  EXPECT_FALSE(worker.Stage(0, 7, 0, 5.0, 1.0));
  EXPECT_FALSE(worker.Stage(0, 7, 0, 3.0, 1.0));
  MessageBlock dest;
  worker.Drain(0, &dest);
  ASSERT_EQ(dest.size(), 1u);
  EXPECT_DOUBLE_EQ(dest.values()[0], 5.0);
  EXPECT_DOUBLE_EQ(dest.multiplicities()[0], 3.0);
}

TEST(WorkerTest, SwapOutboxDeliversAndRecyclesCapacity) {
  Worker worker;
  worker.Reset(1);
  worker.SetCombiner(nullptr);
  for (uint32_t i = 0; i < 100; ++i) {
    worker.Stage(0, i, 0, 1.0, 1.0);
  }
  MessageBlock inbox;
  worker.SwapOutbox(0, &inbox);
  EXPECT_EQ(inbox.size(), 100u);
  EXPECT_EQ(worker.OutboxSize(0), 0u);
  // Next round: the swapped-out buffer's capacity serves the outbox.
  const size_t recycled = 100;
  worker.Stage(0, 1, 0, 1.0, 1.0);
  EXPECT_GE(inbox.capacity(), recycled);
  EXPECT_EQ(worker.OutboxSize(0), 1u);
}

TEST(WorkerTest, MinCombinerKeepsSmallest) {
  Message into{1, 0, 7.0, 1.0};
  MinCombiner combiner;
  combiner.Merge(into, Message{1, 0, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(into.value, 3.0);
  EXPECT_DOUBLE_EQ(into.multiplicity, 2.0);
  combiner.Merge(into, Message{1, 0, 9.0, 1.0});
  EXPECT_DOUBLE_EQ(into.value, 3.0);
}

TEST(WorkerTest, GroupInboxSortsByTargetThenTag) {
  Worker worker;
  worker.Reset(1);
  worker.inbox().PushBack(3, 1, 10.0, 1.0);
  worker.inbox().PushBack(1, 2, 20.0, 1.0);
  worker.inbox().PushBack(3, 0, 30.0, 1.0);
  worker.inbox().PushBack(1, 1, 40.0, 1.0);
  worker.GroupInbox();
  const std::span<const MessageRun> runs = worker.runs();
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].target, 1u);
  EXPECT_EQ(runs[0].tag, 1u);
  EXPECT_EQ(runs[1].target, 1u);
  EXPECT_EQ(runs[1].tag, 2u);
  EXPECT_EQ(runs[2].target, 3u);
  EXPECT_EQ(runs[2].tag, 0u);
  EXPECT_EQ(runs[3].target, 3u);
  EXPECT_EQ(runs[3].tag, 1u);
  // Payload columns follow the permutation.
  EXPECT_DOUBLE_EQ(worker.grouped_values()[runs[0].begin], 40.0);
  EXPECT_DOUBLE_EQ(worker.grouped_values()[runs[1].begin], 20.0);
  EXPECT_DOUBLE_EQ(worker.grouped_values()[runs[2].begin], 30.0);
  EXPECT_DOUBLE_EQ(worker.grouped_values()[runs[3].begin], 10.0);
  // The AoS fallback view materializes the same grouped order.
  const std::span<const Message> aos = worker.MaterializedInbox();
  ASSERT_EQ(aos.size(), 4u);
  EXPECT_EQ(aos[0].target, 1u);
  EXPECT_EQ(aos[0].tag, 1u);
  EXPECT_DOUBLE_EQ(aos[0].value, 40.0);
  EXPECT_EQ(aos[2].target, 3u);
  EXPECT_DOUBLE_EQ(aos[2].value, 30.0);
}

TEST(MirrorPlanTest, StarGraphHub) {
  // Hub 0 connected to 40 leaves, spread over 4 machines by block ranges.
  GraphBuilder builder(41);
  for (VertexId leaf = 1; leaf <= 40; ++leaf) builder.AddEdge(0, leaf);
  Graph star = builder.Build({.symmetrize = true});
  Partitioning part = BlockPartitioner().Partition(star, 4);

  MirrorPlan plan(star, part, /*degree_threshold=*/8);
  EXPECT_TRUE(plan.IsMirrored(0));
  EXPECT_FALSE(plan.IsMirrored(1));  // Leaves have degree 1.
  // The hub lives on machine 0 and has neighbours on the other 3.
  EXPECT_EQ(plan.RemoteMirrorMachines(0), 3u);
  EXPECT_EQ(plan.TotalMirrors(), 3u);
  EXPECT_GT(plan.MirrorStateBytesPerMachine(), 0.0);
}

TEST(MirrorPlanTest, ThresholdControlsSelection) {
  Graph ring = GenerateRing(100, 2);  // Degree 4 everywhere.
  Partitioning part = HashPartitioner().Partition(ring, 4);
  MirrorPlan none(ring, part, /*degree_threshold=*/10);
  EXPECT_EQ(none.TotalMirrors(), 0u);
  MirrorPlan all(ring, part, /*degree_threshold=*/3);
  EXPECT_GT(all.TotalMirrors(), 0u);
}

/// Toy program: round 0, vertex 0 sends its id+1 to each neighbour; later
/// rounds forward value+1 until a hop budget is exhausted. Used to verify
/// message delivery, inbox grouping and termination.
class HopProgram : public VertexProgram {
 public:
  HopProgram(const Graph& graph, uint32_t hops)
      : graph_(graph), hops_(hops), received_(graph.NumVertices(), 0) {}

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override {
    if (sink.round() == 0) {
      if (v == 0) {
        for (VertexId u : graph_.Neighbors(v)) {
          sink.Send(u, 0, 1.0, 1.0);
        }
      }
      return;
    }
    for (const Message& message : inbox) {
      received_[v] += 1;
      if (static_cast<uint32_t>(message.value) < hops_) {
        for (VertexId u : graph_.Neighbors(v)) {
          sink.Send(u, 0, message.value + 1.0, 1.0);
        }
      }
    }
  }

  uint64_t TotalReceived() const {
    uint64_t total = 0;
    for (uint64_t r : received_) total += r;
    return total;
  }

 private:
  const Graph& graph_;
  uint32_t hops_;
  std::vector<uint64_t> received_;
};

EngineOptions RelaxedOptions(uint32_t machines) {
  EngineOptions options;
  options.cluster = RelaxedCluster(machines);
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  return options;
}

TEST(SyncEngineTest, DeliversAndTerminates) {
  Graph ring = GenerateRing(10, 1);
  Partitioning part = HashPartitioner().Partition(ring, 2);
  EngineOptions options = RelaxedOptions(2);
  SyncEngine engine(ring, part, options);
  HopProgram program(ring, /*hops=*/3);
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Rounds: seed + 3 hop rounds (the last one absorbs without sending).
  EXPECT_EQ(result.value().num_rounds, 4u);
  EXPECT_FALSE(result.value().overloaded);
  // Hop 1: 2 deliveries; hop 2: 4; hop 3: 8 (ring degree 2).
  EXPECT_EQ(program.TotalReceived(), 14u);
  EXPECT_DOUBLE_EQ(result.value().total_messages, 14.0);
}

TEST(SyncEngineTest, RejectsMismatchedCluster) {
  Graph ring = GenerateRing(10, 1);
  Partitioning part = HashPartitioner().Partition(ring, 2);
  EngineOptions options = RelaxedOptions(4);  // 4 != 2.
  SyncEngine engine(ring, part, options);
  HopProgram program(ring, 1);
  EXPECT_FALSE(engine.Run(program).ok());
}

TEST(SyncEngineTest, StatScaleMultipliesStatistics) {
  Graph ring = GenerateRing(10, 1);
  Partitioning part = HashPartitioner().Partition(ring, 2);
  EngineOptions options = RelaxedOptions(2);
  options.stat_scale = 100.0;
  SyncEngine engine(ring, part, options);
  HopProgram program(ring, 3);
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().total_messages, 1400.0);
}

TEST(SyncEngineTest, MaxRoundsCapsExecution) {
  // An infinite ping-pong program would never quiesce; the cap stops it.
  class PingPong : public VertexProgram {
   public:
    void Compute(VertexId v, std::span<const Message>,
                 MessageSink& sink) override {
      sink.Send(v == 0 ? 1 : 0, 0, 1.0, 1.0);
    }
  };
  Graph ring = GenerateRing(4, 1);
  Partitioning part = HashPartitioner().Partition(ring, 1);
  EngineOptions options = RelaxedOptions(1);
  options.max_rounds = 10;
  SyncEngine engine(ring, part, options);
  PingPong program;
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().num_rounds, 11u);
}

TEST(SyncEngineTest, TinyMemoryOverloads) {
  Graph ring = GenerateRing(64, 2);
  Partitioning part = HashPartitioner().Partition(ring, 2);
  EngineOptions options = RelaxedOptions(2);
  options.cluster.machine.memory_bytes = 4096;  // 4KB machines.
  options.cluster.machine.usable_memory_bytes = 3072;
  SyncEngine engine(ring, part, options);
  HopProgram program(ring, 8);
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().overloaded);
  EXPECT_GE(result.value().seconds,
            options.cost.overload_cutoff_seconds);
}

TEST(SyncEngineTest, MirrorProfileForbidsPointToPoint) {
  Graph ring = GenerateRing(10, 1);
  Partitioning part = HashPartitioner().Partition(ring, 2);
  EngineOptions options = RelaxedOptions(2);
  options.profile = ProfileFor(SystemKind::kPregelPlusMirror);
  SyncEngine engine(ring, part, options);
  HopProgram program(ring, 1);  // Uses Send -> must die.
  EXPECT_DEATH((void)engine.Run(program), "broadcast");
}

/// Broadcast program: every vertex pushes 1.0 to all neighbours once.
class BroadcastOnce : public VertexProgram {
 public:
  explicit BroadcastOnce(const Graph& graph)
      : received_(graph.NumVertices(), 0.0) {}
  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override {
    if (sink.round() == 0) {
      sink.Broadcast(v, 0, 1.0, 1.0);
      return;
    }
    for (const Message& message : inbox) received_[v] += message.value;
  }
  double ReceivedAt(VertexId v) const { return received_[v]; }

 private:
  std::vector<double> received_;
};

TEST(SyncEngineTest, BroadcastDeliversToEveryNeighbor) {
  Graph ring = GenerateRing(12, 2);  // Degree 4.
  Partitioning part = HashPartitioner().Partition(ring, 3);
  EngineOptions options = RelaxedOptions(3);
  options.profile = ProfileFor(SystemKind::kPregelPlusMirror);
  options.profile.mirror_degree_threshold = 2;  // Mirror everything.
  SyncEngine engine(ring, part, options);
  BroadcastOnce program(ring);
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (VertexId v = 0; v < 12; ++v) {
    EXPECT_DOUBLE_EQ(program.ReceivedAt(v), 4.0);  // One per neighbour.
  }
  // Logical congestion counts the per-neighbour deliveries.
  EXPECT_DOUBLE_EQ(result.value().total_messages, 48.0);
}

TEST(SyncEngineTest, ThreadedExecutionIsBitIdenticalToSerial) {
  // Machines own disjoint state and per-machine random streams, so the
  // compute phase parallelises without changing a single statistic.
  RmatParams params;
  params.num_vertices = 3000;
  params.num_edges = 20000;
  params.seed = 13;
  Graph graph = GenerateRmat(params);
  Partitioning part = HashPartitioner().Partition(graph, 8);
  auto run = [&](uint32_t threads) {
    EngineOptions options = RelaxedOptions(8);
    options.execution_threads = threads;
    SyncEngine engine(graph, part, options);
    // A stochastic program is the hard case: walk splits must come from
    // per-machine streams.
    TaskContext context{&graph, &part, 1.0, false};
    BpprCountingProgram program(context, /*walks=*/64, {}, /*seed=*/3);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    return std::make_pair(result.value_or(EngineResult{}),
                          program.TotalStopped());
  };
  auto [serial, serial_stopped] = run(1);
  auto [threaded, threaded_stopped] = run(4);
  EXPECT_EQ(serial_stopped, threaded_stopped);
  EXPECT_DOUBLE_EQ(serial.seconds, threaded.seconds);
  EXPECT_DOUBLE_EQ(serial.total_messages, threaded.total_messages);
  EXPECT_DOUBLE_EQ(serial.peak_memory_bytes, threaded.peak_memory_bytes);
  EXPECT_EQ(serial.num_rounds, threaded.num_rounds);
}

TEST(SyncEngineTest, MirroringReducesCrossBytes) {
  // Skewed graph: hubs broadcast; mirrors should cut cross-machine bytes
  // versus the same broadcast without mirrors.
  RmatParams params;
  params.num_vertices = 2000;
  params.num_edges = 16000;
  params.seed = 21;
  Graph graph = GenerateRmat(params);
  Partitioning part = HashPartitioner().Partition(graph, 8);

  auto run = [&](uint64_t threshold) {
    EngineOptions options = RelaxedOptions(8);
    options.profile = ProfileFor(SystemKind::kPregelPlusMirror);
    options.profile.mirror_degree_threshold = threshold;
    SyncEngine engine(graph, part, options);
    BroadcastOnce program(graph);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    double cross = 0.0;
    for (const RoundStats& stats : result.value().rounds) {
      cross += stats.cross_machine_bytes;
    }
    return cross;
  };
  double with_mirrors = run(8);
  double without_mirrors = run(1u << 30);
  EXPECT_LT(with_mirrors, 0.8 * without_mirrors);
}

}  // namespace
}  // namespace vcmp
