#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace vcmp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad workload");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad workload");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad workload");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    VCMP_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = []() -> Result<int> { return 5; };
  auto fail = []() -> Result<int> { return Status::Internal("no"); };
  auto chain = [&](bool ok_path) -> Result<int> {
    VCMP_ASSIGN_OR_RETURN(int value, ok_path ? make() : fail());
    return value + 1;
  };
  EXPECT_EQ(chain(true).value(), 6);
  EXPECT_EQ(chain(false).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(9);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 9);
}

}  // namespace
}  // namespace vcmp
