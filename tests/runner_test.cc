#include "core/runner.h"

#include <gtest/gtest.h>

#include "core/batch_schedule.h"
#include "tasks/bppr.h"
#include "tasks/task_registry.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

Dataset TinyDataset() {
  // DBLP stand-in at aggressive scale: ~1.2K vertices, fast to run.
  return LoadDataset(DatasetId::kDblp, /*scale_override=*/512.0);
}

RunnerOptions RelaxedRunner(uint32_t machines) {
  RunnerOptions options;
  options.cluster = RelaxedCluster(machines);
  options.system = SystemKind::kPregelPlus;
  return options;
}

TEST(BatchScheduleTest, EqualSplitsPreserveTotal) {
  BatchSchedule schedule = BatchSchedule::Equal(100, 3);
  EXPECT_EQ(schedule.NumBatches(), 3u);
  EXPECT_DOUBLE_EQ(schedule.TotalWorkload(), 100.0);
  EXPECT_DOUBLE_EQ(schedule.workloads()[0], 34.0);
  EXPECT_DOUBLE_EQ(schedule.workloads()[2], 33.0);
}

TEST(BatchScheduleTest, FullParallelismIsOneBatch) {
  BatchSchedule schedule = BatchSchedule::FullParallelism(64);
  EXPECT_TRUE(schedule.IsFullParallelism());
  EXPECT_DOUBLE_EQ(schedule.TotalWorkload(), 64.0);
}

TEST(BatchScheduleTest, TwoBatchDelta) {
  BatchSchedule schedule = BatchSchedule::TwoBatch(100, 20);
  EXPECT_DOUBLE_EQ(schedule.workloads()[0], 60.0);
  EXPECT_DOUBLE_EQ(schedule.workloads()[1], 40.0);
  BatchSchedule negative = BatchSchedule::TwoBatch(100, -20);
  EXPECT_DOUBLE_EQ(negative.workloads()[0], 40.0);
}

TEST(BatchScheduleTest, ToStringListsWorkloads) {
  EXPECT_EQ(BatchSchedule({2747, 1388, 644}).ToString(),
            "[2747, 1388, 644]");
}

TEST(RunnerTest, RunsAllBatchesAndAggregates) {
  Dataset dataset = TinyDataset();
  MultiProcessingRunner runner(dataset, RelaxedRunner(4));
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::Equal(32, 4));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().batches.size(), 4u);
  EXPECT_FALSE(report.value().overloaded);
  EXPECT_GT(report.value().total_seconds, 0.0);
  EXPECT_GT(report.value().total_messages, 0.0);
  EXPECT_EQ(report.value().task, "BPPR");
  EXPECT_EQ(report.value().dataset, "DBLP");
}

TEST(RunnerTest, ResidualMemoryAccumulatesAcrossBatches) {
  Dataset dataset = TinyDataset();
  MultiProcessingRunner runner(dataset, RelaxedRunner(4));
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::Equal(64, 4));
  ASSERT_TRUE(report.ok());
  const auto& batches = report.value().batches;
  ASSERT_EQ(batches.size(), 4u);
  // Later batches carry the residual of earlier ones: peak residual must
  // strictly grow batch over batch.
  for (size_t i = 1; i < batches.size(); ++i) {
    EXPECT_GT(batches[i].peak_residual_bytes,
              batches[i - 1].peak_residual_bytes);
  }
  // And the memory peak of batch 4 exceeds batch 1's for equal workloads.
  EXPECT_GT(batches[3].peak_memory_bytes, batches[0].peak_memory_bytes);
}

TEST(RunnerTest, MoreBatchesLowerCongestion) {
  Dataset dataset = TinyDataset();
  BpprTask task;
  double previous = 1e100;
  for (uint32_t batches : {1u, 2u, 4u}) {
    MultiProcessingRunner runner(dataset, RelaxedRunner(4));
    auto report = runner.Run(task, BatchSchedule::Equal(256, batches));
    ASSERT_TRUE(report.ok());
    double congestion = report.value().MessagesPerRound();
    EXPECT_LT(congestion, previous);
    previous = congestion;
  }
}

TEST(RunnerTest, SkipsZeroWorkloadBatches) {
  Dataset dataset = TinyDataset();
  MultiProcessingRunner runner(dataset, RelaxedRunner(2));
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::TwoBatch(64, 64));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().batches.size(), 1u);  // Second batch was empty.
}

TEST(RunnerTest, EmptyScheduleRejected) {
  Dataset dataset = TinyDataset();
  MultiProcessingRunner runner(dataset, RelaxedRunner(2));
  BpprTask task;
  EXPECT_FALSE(runner.Run(task, BatchSchedule()).ok());
}

TEST(RunnerTest, ObserverSeesEveryBatchProgram) {
  Dataset dataset = TinyDataset();
  RunnerOptions options = RelaxedRunner(2);
  int observed = 0;
  options.batch_observer = [&](const VertexProgram&) { ++observed; };
  MultiProcessingRunner runner(dataset, options);
  BpprTask task;
  ASSERT_TRUE(runner.Run(task, BatchSchedule::Equal(16, 4)).ok());
  EXPECT_EQ(observed, 4);
}

TEST(RunnerTest, OverloadStopsExecutionAndBillsCutoff) {
  Dataset dataset = TinyDataset();
  RunnerOptions options = RelaxedRunner(2);
  options.cluster.machine.memory_bytes = 64.0 * 1024;  // 64KB machines.
  options.cluster.machine.usable_memory_bytes = 48.0 * 1024;
  MultiProcessingRunner runner(dataset, options);
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::Equal(1024, 4));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().overloaded);
  EXPECT_LT(report.value().batches.size(), 4u);
  EXPECT_GE(report.value().total_seconds,
            options.cost.overload_cutoff_seconds);
}

TEST(RunnerTest, CloudRunsBillMonetaryCost) {
  Dataset dataset = TinyDataset();
  RunnerOptions options = RelaxedRunner(4);
  options.cluster.cloud = true;
  MultiProcessingRunner runner(dataset, options);
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::Equal(16, 2));
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().monetary_cost, 0.0);
}

TEST(RunnerTest, MirrorSystemUsesBroadcastFlavor) {
  Dataset dataset = TinyDataset();
  RunnerOptions options = RelaxedRunner(4);
  options.system = SystemKind::kPregelPlusMirror;
  MultiProcessingRunner runner(dataset, options);
  EXPECT_TRUE(runner.profile().mirroring);
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::Equal(8, 2));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().total_messages, 0.0);
}

TEST(RunnerTest, GraphLabUsesEdgeCutPartitioner) {
  Dataset dataset = TinyDataset();
  RunnerOptions options = RelaxedRunner(4);
  options.system = SystemKind::kGraphLab;
  MultiProcessingRunner runner(dataset, options);
  EXPECT_EQ(runner.profile().partitioner, "greedy-edge-cut");
}

TEST(RunnerTest, GeometricScheduleRunsAllBatches) {
  Dataset dataset = TinyDataset();
  MultiProcessingRunner runner(dataset, RelaxedRunner(4));
  BpprTask task;
  auto report =
      runner.Run(task, BatchSchedule::GeometricDecay(64, 4, 0.5));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().batches.size(), 4u);
  // Decreasing batch workloads process decreasing message volumes.
  EXPECT_GT(report.value().batches[0].messages,
            report.value().batches[3].messages);
}

TEST(RunnerTest, ThreadCountDoesNotChangeResults) {
  Dataset dataset = TinyDataset();
  BpprTask task;
  RunnerOptions serial = RelaxedRunner(4);
  RunnerOptions threaded = RelaxedRunner(4);
  threaded.execution_threads = 4;
  MultiProcessingRunner serial_runner(dataset, serial);
  MultiProcessingRunner threaded_runner(dataset, threaded);
  auto a = serial_runner.Run(task, BatchSchedule::Equal(32, 2));
  auto b = threaded_runner.Run(task, BatchSchedule::Equal(32, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().total_seconds, b.value().total_seconds);
  EXPECT_DOUBLE_EQ(a.value().total_messages, b.value().total_messages);
}

TEST(RunnerTest, CheckpointingFlowsThroughToBatches) {
  Dataset dataset = TinyDataset();
  RunnerOptions options = RelaxedRunner(4);
  options.checkpoint_interval_rounds = 10;
  MultiProcessingRunner runner(dataset, options);
  BpprTask task;
  auto with = runner.Run(task, BatchSchedule::Equal(64, 2));
  ASSERT_TRUE(with.ok());
  MultiProcessingRunner plain_runner(dataset, RelaxedRunner(4));
  auto without = plain_runner.Run(task, BatchSchedule::Equal(64, 2));
  ASSERT_TRUE(without.ok());
  EXPECT_GT(with.value().total_seconds, without.value().total_seconds);
}

TEST(RunnerTest, AllSupersteppingSystemsExecuteBppr) {
  Dataset dataset = TinyDataset();
  BpprTask task;
  for (SystemKind kind :
       {SystemKind::kGiraph, SystemKind::kGiraphAsync,
        SystemKind::kPregelPlus, SystemKind::kPregelPlusMirror,
        SystemKind::kGraphD, SystemKind::kGraphLab}) {
    RunnerOptions options = RelaxedRunner(4);
    options.system = kind;
    MultiProcessingRunner runner(dataset, options);
    auto report = runner.Run(task, BatchSchedule::Equal(8, 2));
    ASSERT_TRUE(report.ok()) << SystemName(kind);
    EXPECT_GT(report.value().total_messages, 0.0) << SystemName(kind);
  }
}

}  // namespace
}  // namespace vcmp
