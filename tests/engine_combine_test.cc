// Tests of sender-side combining (DESIGN.md §16): the Sum/Min combiner
// fold semantics the unified combine path relies on, the contract that
// enabling combining changes wire traffic but never task results, and
// the equivalence of serial GroupInbox against the pool-wide parallel
// grouping passes for every grouping strategy.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/message.h"
#include "engine/sync_engine.h"
#include "engine/worker.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "tasks/bppr.h"
#include "tasks/mssp.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

// --- Combiner fold semantics -----------------------------------------

TEST(SumCombinerTest, MergeAddsValueAndMultiplicity) {
  SumCombiner combiner;
  Message into{7, 3, 1.5, 2.0};
  const Message from{7, 3, 2.25, 3.0};
  combiner.Merge(into, from);
  EXPECT_EQ(into.value, 3.75);
  EXPECT_EQ(into.multiplicity, 5.0);
  EXPECT_EQ(into.target, 7u);
  EXPECT_EQ(into.tag, 3u);
  EXPECT_EQ(combiner.kind(), CombinerKind::kSum);
}

TEST(SumCombinerTest, ExactFoldOnlyWhenPromised) {
  EXPECT_FALSE(SumCombiner().exact_fold());
  EXPECT_FALSE(SumCombiner(false).exact_fold());
  EXPECT_TRUE(SumCombiner(true).exact_fold());
}

TEST(SumCombinerTest, FoldOrderPinsFloatingPointResult) {
  // The engine's determinism contract is that a combined run folds in
  // exactly the left-to-right order a receiver-side fold over the stable
  // grouped inbox would use. These inputs make the order observable:
  // (0.1 + 0.2) + 0.3 and 0.1 + (0.2 + 0.3) round differently.
  const double a = 0.1, b = 0.2, c = 0.3;
  ASSERT_NE((a + b) + c, a + (b + c));

  SumCombiner combiner;
  Message into{0, 0, a, 1.0};
  combiner.Merge(into, Message{0, 0, b, 1.0});
  combiner.Merge(into, Message{0, 0, c, 1.0});
  EXPECT_EQ(into.value, (a + b) + c);

  // Seeding the fold at the additive identity (how the unified combine
  // table opens a fresh slot) must be a bitwise no-op for the sequence.
  Message seeded{0, 0, 0.0, 0.0};
  combiner.Merge(seeded, Message{0, 0, a, 1.0});
  combiner.Merge(seeded, Message{0, 0, b, 1.0});
  combiner.Merge(seeded, Message{0, 0, c, 1.0});
  EXPECT_EQ(seeded.value, into.value);
  EXPECT_EQ(seeded.multiplicity, into.multiplicity);
}

TEST(SumCombinerTest, ExactIntegerFoldIsSegmentationInvariant) {
  // exact_fold()'s promise: folding any contiguous segmentation, then the
  // segment results in order, is bit-identical to one left-to-right fold.
  // This is what lets each compute shard pre-combine independently.
  const std::vector<double> counts = {3, 17, 1, 64, 2, 9, 5, 40};
  SumCombiner combiner(/*exact=*/true);
  ASSERT_TRUE(combiner.exact_fold());

  Message flat{0, 0, counts[0], 1.0};
  for (size_t i = 1; i < counts.size(); ++i) {
    combiner.Merge(flat, Message{0, 0, counts[i], 1.0});
  }
  for (size_t split = 1; split < counts.size(); ++split) {
    Message left{0, 0, counts[0], 1.0};
    for (size_t i = 1; i < split; ++i) {
      combiner.Merge(left, Message{0, 0, counts[i], 1.0});
    }
    Message right{0, 0, counts[split], 1.0};
    for (size_t i = split + 1; i < counts.size(); ++i) {
      combiner.Merge(right, Message{0, 0, counts[i], 1.0});
    }
    combiner.Merge(left, right);
    EXPECT_EQ(left.value, flat.value) << "split at " << split;
    EXPECT_EQ(left.multiplicity, flat.multiplicity);
  }
}

TEST(MinCombinerTest, KeepsMinimumAndSumsMultiplicity) {
  MinCombiner combiner;
  Message into{4, 1, 9.0, 2.0};
  combiner.Merge(into, Message{4, 1, 3.0, 5.0});
  EXPECT_EQ(into.value, 3.0);
  EXPECT_EQ(into.multiplicity, 7.0);
  combiner.Merge(into, Message{4, 1, 8.0, 1.0});
  EXPECT_EQ(into.value, 3.0);  // Larger value never wins.
  EXPECT_EQ(into.multiplicity, 8.0);
  EXPECT_EQ(combiner.kind(), CombinerKind::kMin);
}

TEST(MinCombinerTest, StrictLessKeepsEarlierMessageOnTies) {
  // The strict `<` makes the value fold associative: ties — including
  // the ±0.0 pair, which compare equal — keep the earlier operand, so
  // any fold tree picks the same representative.
  MinCombiner combiner;
  Message neg_zero_first{0, 0, -0.0, 1.0};
  combiner.Merge(neg_zero_first, Message{0, 0, +0.0, 1.0});
  EXPECT_TRUE(std::signbit(neg_zero_first.value));

  Message pos_zero_first{0, 0, +0.0, 1.0};
  combiner.Merge(pos_zero_first, Message{0, 0, -0.0, 1.0});
  EXPECT_FALSE(std::signbit(pos_zero_first.value));

  // Seeding a fresh fold slot at +inf (the min identity) is a no-op.
  Message seeded{0, 0, std::numeric_limits<double>::infinity(), 0.0};
  combiner.Merge(seeded, Message{0, 0, 5.0, 2.0});
  EXPECT_EQ(seeded.value, 5.0);
  EXPECT_EQ(seeded.multiplicity, 2.0);
}

TEST(MinCombinerTest, ExactFoldOnlyWhenPromised) {
  EXPECT_FALSE(MinCombiner().exact_fold());
  EXPECT_TRUE(MinCombiner(true).exact_fold());
}

// --- Engine-level combining on/off -----------------------------------

/// Full bit-identity including wire traffic — for runs that must be
/// indistinguishable (same combining setting, different thread counts or
/// internal toggles).
void ExpectRunsBitIdentical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.num_rounds, b.num_rounds);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_wire_messages, b.total_wire_messages);
  EXPECT_EQ(a.total_logical_sent, b.total_logical_sent);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].messages, b.rounds[i].messages) << "round " << i;
    EXPECT_EQ(a.rounds[i].cross_machine_bytes,
              b.rounds[i].cross_machine_bytes)
        << "round " << i;
  }
}

struct CombineRunOptions {
  bool combining = false;
  uint32_t threads = 1;
  bool shard_precombine = true;
  bool parallel_grouping = true;
};

EngineOptions MakeOptions(const CombineRunOptions& opts, uint32_t machines) {
  EngineOptions options;
  options.cluster = RelaxedCluster(machines);
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  options.execution_threads = opts.threads;
  options.clamp_threads_to_hardware = false;
  options.sender_combining = opts.combining;
  options.shard_precombine = opts.shard_precombine;
  options.parallel_grouping = opts.parallel_grouping;
  return options;
}

/// One MSSP batch (8 sampled sources -> tag universe 8, MinCombiner) on
/// a fixed R-MAT graph. Returns the engine stats plus every per-sample
/// distance, so result identity is checked at task-output granularity.
std::pair<EngineResult, std::vector<uint32_t>> RunMssp(
    const CombineRunOptions& opts) {
  RmatParams rmat;
  rmat.num_vertices = 2000;
  rmat.num_edges = 12000;
  rmat.seed = 77;
  static const Graph& graph = *new Graph(GenerateRmat(rmat));
  static const Partitioning& part =
      *new Partitioning(HashPartitioner().Partition(graph, 4));
  SyncEngine engine(graph, part, MakeOptions(opts, 4));
  TaskContext context{&graph, &part, 1.0, opts.combining};
  MsspProgram program(context, ProgramFlavor::kPointToPoint,
                      /*workload=*/8.0, MsspTask::Params{}, /*seed=*/5);
  auto result = engine.Run(program);
  EXPECT_TRUE(result.ok());
  std::vector<uint32_t> distances;
  distances.reserve(static_cast<size_t>(program.num_samples()) *
                    graph.NumVertices());
  for (uint32_t sample = 0; sample < program.num_samples(); ++sample) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      distances.push_back(program.Distance(sample, v));
    }
  }
  return {result.value_or(EngineResult{}), std::move(distances)};
}

/// One stochastic BPPR counting batch (SumCombiner over walk counts).
/// Random-walk forwarding is the hardest determinism case: any change in
/// fold order that leaked into values would move TotalStopped().
std::pair<EngineResult, uint64_t> RunBpprCounting(
    const CombineRunOptions& opts) {
  RmatParams rmat;
  rmat.num_vertices = 2000;
  rmat.num_edges = 12000;
  rmat.seed = 41;
  static const Graph& graph = *new Graph(GenerateRmat(rmat));
  static const Partitioning& part =
      *new Partitioning(HashPartitioner().Partition(graph, 4));
  SyncEngine engine(graph, part, MakeOptions(opts, 4));
  TaskContext context{&graph, &part, 1.0, opts.combining};
  BpprCountingProgram program(context, /*walks=*/64, {}, /*seed=*/3);
  auto result = engine.Run(program);
  EXPECT_TRUE(result.ok());
  return {result.value_or(EngineResult{}), program.TotalStopped()};
}

TEST(SenderCombiningTest, MsspResultsIdenticalWithAndWithoutCombining) {
  auto [off, off_dist] = RunMssp({.combining = false});
  auto [on, on_dist] = RunMssp({.combining = true});
  // Combining changes the wire, never the task result or message flow.
  EXPECT_EQ(off_dist, on_dist);
  EXPECT_EQ(off.num_rounds, on.num_rounds);
  EXPECT_EQ(off.total_messages, on.total_messages);
  EXPECT_EQ(off.total_logical_sent, on.total_logical_sent);
  // The off run sends one wire message per logical unit; the on run
  // must actually merge some (a 2000-vertex R-MAT has many vertices
  // reached from several frontier neighbours in the same round).
  EXPECT_EQ(off.CombinedRatio(), 1.0);
  EXPECT_GT(on.CombinedRatio(), 1.0);
  EXPECT_LT(on.total_wire_messages, off.total_wire_messages);
}

TEST(SenderCombiningTest, MsspCombinedRunBitIdenticalAcrossThreads) {
  auto [serial, serial_dist] = RunMssp({.combining = true, .threads = 1});
  for (uint32_t threads : {2u, 8u}) {
    auto [threaded, threaded_dist] =
        RunMssp({.combining = true, .threads = threads});
    ExpectRunsBitIdentical(serial, threaded);
    EXPECT_EQ(serial_dist, threaded_dist);
  }
}

TEST(SenderCombiningTest,
     MsspInvariantToShardPrecombineAndParallelGrouping) {
  // shard_precombine moves folding earlier (into the compute shards) and
  // parallel_grouping moves grouping across threads; both are pure
  // performance toggles — every statistic must be bit-identical.
  auto [base, base_dist] = RunMssp({.combining = true, .threads = 8});
  for (bool precombine : {false, true}) {
    for (bool par_group : {false, true}) {
      auto [run, dist] = RunMssp({.combining = true,
                                  .threads = 8,
                                  .shard_precombine = precombine,
                                  .parallel_grouping = par_group});
      ExpectRunsBitIdentical(base, run);
      EXPECT_EQ(base_dist, dist);
    }
  }
}

TEST(SenderCombiningTest, StochasticWalkCountsSurviveCombining) {
  auto [off, off_stopped] = RunBpprCounting({.combining = false});
  EXPECT_GT(off_stopped, 0u);
  for (uint32_t threads : {1u, 8u}) {
    auto [on, on_stopped] =
        RunBpprCounting({.combining = true, .threads = threads});
    EXPECT_EQ(on_stopped, off_stopped);
    EXPECT_EQ(on.num_rounds, off.num_rounds);
    EXPECT_EQ(on.total_logical_sent, off.total_logical_sent);
    EXPECT_GT(on.CombinedRatio(), 1.0);
  }
}

// --- Serial vs parallel grouping, all four strategies -----------------

std::vector<Message> RandomInbox(size_t size, uint32_t num_targets,
                                 uint32_t num_tags, uint64_t seed) {
  Rng rng(seed);
  std::vector<Message> inbox;
  inbox.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    inbox.push_back(
        Message{static_cast<VertexId>(rng.NextBounded(num_targets)),
                static_cast<uint32_t>(rng.NextBounded(num_tags)),
                static_cast<double>(i), 1.0});
  }
  return inbox;
}

void FillWorker(Worker& worker, const std::vector<Message>& inbox,
                VertexId vertex_space) {
  worker.Reset(1);
  if (vertex_space > 0) worker.set_vertex_space(vertex_space);
  for (const Message& message : inbox) worker.inbox().PushBack(message);
}

void ExpectGroupedEqual(const Worker& serial, const Worker& parallel) {
  const std::span<const MessageRun> a = serial.runs();
  const std::span<const MessageRun> b = parallel.runs();
  ASSERT_EQ(a.size(), b.size());
  size_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target) << "run " << i;
    EXPECT_EQ(a[i].tag, b[i].tag) << "run " << i;
    EXPECT_EQ(a[i].begin, b[i].begin) << "run " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "run " << i;
    total = a[i].end;
  }
  for (size_t i = 0; i < total; ++i) {
    EXPECT_EQ(serial.grouped_values()[i], parallel.grouped_values()[i])
        << "element " << i;
    EXPECT_EQ(serial.grouped_multiplicities()[i],
              parallel.grouped_multiplicities()[i])
        << "element " << i;
  }
}

/// Groups `inbox` once serially and once through the pool-wide pass
/// driver; the outputs must match bitwise, with and without stealable
/// chunk tasks.
void ExpectParallelGroupingMatchesSerial(const std::vector<Message>& inbox,
                                         VertexId vertex_space) {
  Worker serial;
  FillWorker(serial, inbox, vertex_space);
  serial.GroupInbox();
  ThreadPool pool(3);
  for (bool steal : {false, true}) {
    std::vector<Worker> workers(1);
    FillWorker(workers[0], inbox, vertex_space);
    ParallelGroupInboxes(pool, std::span<Worker>(workers), steal,
                         /*collect_timing=*/false);
    ExpectGroupedEqual(serial, workers[0]);
  }
}

TEST(ParallelGroupingTest, MatchesSerialOnSortedInbox) {
  // Ascending distinct (target, tag) keys — the shape the unified
  // combine path emits — must take the sorted fast path identically.
  std::vector<Message> inbox;
  for (uint32_t target = 0; target < 5000; ++target) {
    for (uint32_t tag = 0; tag < 4; ++tag) {
      inbox.push_back(Message{target, tag,
                              static_cast<double>(inbox.size()), 2.0});
    }
  }
  ExpectParallelGroupingMatchesSerial(inbox, /*vertex_space=*/0);
}

TEST(ParallelGroupingTest, MatchesSerialOnSmallInbox) {
  // Below the comparison-sort cutoff; the parallel driver finishes these
  // inboxes serially inside its begin pass.
  ExpectParallelGroupingMatchesSerial(
      RandomInbox(40, /*num_targets=*/16, /*num_tags=*/3, /*seed=*/9),
      /*vertex_space=*/0);
}

TEST(ParallelGroupingTest, MatchesSerialOnDenseSingleTagInbox) {
  // Single tag and n >= vertex space: the dense counting strategy.
  ExpectParallelGroupingMatchesSerial(
      RandomInbox(20000, /*num_targets=*/1000, /*num_tags=*/1,
                  /*seed=*/11),
      /*vertex_space=*/1000);
}

TEST(ParallelGroupingTest, MatchesSerialOnSparseMultiTagInbox) {
  // Many targets, several tags, no usable vertex space: the radix
  // pair-sort strategy, large enough to cross the parallel threshold.
  ExpectParallelGroupingMatchesSerial(
      RandomInbox(20000, /*num_targets=*/60000, /*num_tags=*/16,
                  /*seed=*/13),
      /*vertex_space=*/0);
}

TEST(ParallelGroupingTest, MixedStrategyMachinesGroupInLockstep) {
  // One worker per strategy in a single pool-wide call, as the engine
  // issues it: each machine may pick a different strategy, and every
  // output must still match its own serial grouping.
  struct Shape {
    std::vector<Message> inbox;
    VertexId vertex_space;
  };
  std::vector<Shape> shapes;
  shapes.push_back({RandomInbox(40, 16, 3, 21), 0});
  shapes.push_back({RandomInbox(20000, 1000, 1, 22), 1000});
  shapes.push_back({RandomInbox(20000, 60000, 16, 23), 0});
  std::vector<Message> sorted;
  for (uint32_t target = 0; target < 9000; ++target) {
    sorted.push_back(Message{target, 0,
                             static_cast<double>(target), 1.0});
  }
  shapes.push_back({std::move(sorted), 0});

  std::vector<Worker> expected(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    FillWorker(expected[i], shapes[i].inbox, shapes[i].vertex_space);
    expected[i].GroupInbox();
  }
  ThreadPool pool(3);
  std::vector<Worker> workers(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    FillWorker(workers[i], shapes[i].inbox, shapes[i].vertex_space);
  }
  ParallelGroupInboxes(pool, std::span<Worker>(workers), /*steal=*/true,
                       /*collect_timing=*/false);
  for (size_t i = 0; i < shapes.size(); ++i) {
    ExpectGroupedEqual(expected[i], workers[i]);
  }
}

}  // namespace
}  // namespace vcmp
