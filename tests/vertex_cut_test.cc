#include "graph/vertex_cut.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace vcmp {
namespace {

TEST(VertexCutTest, CoversEveryEdgeWithinRange) {
  Graph graph = GenerateRmat({.num_vertices = 2000,
                              .num_edges = 12000,
                              .seed = 31});
  for (uint32_t machines : {1u, 4u, 8u}) {
    VertexCut cut = GreedyVertexCut(graph, machines);
    ASSERT_EQ(cut.edge_machine.size(), graph.NumEdges());
    for (uint32_t machine : cut.edge_machine) {
      ASSERT_LT(machine, machines);
    }
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ASSERT_LT(cut.master[v], machines);
      ASSERT_GE(cut.replicas[v], 1u);
      ASSERT_LE(cut.replicas[v], machines);
    }
  }
}

TEST(VertexCutTest, SingleMachineHasNoReplication) {
  Graph ring = GenerateRing(50, 1);
  VertexCut cut = GreedyVertexCut(ring, 1);
  EXPECT_DOUBLE_EQ(cut.ReplicationFactor(), 1.0);
  EXPECT_DOUBLE_EQ(cut.EdgeImbalance(ring), 1.0);
}

TEST(VertexCutTest, GreedyBeatsRandomReplication) {
  // The whole point of the greedy heuristic: far fewer replicas than
  // random edge placement, especially on skewed graphs.
  Graph graph = GenerateRmat({.num_vertices = 4000,
                              .num_edges = 32000,
                              .seed = 9});
  VertexCut greedy = GreedyVertexCut(graph, 8);
  VertexCut random = RandomVertexCut(graph, 8);
  EXPECT_LT(greedy.ReplicationFactor(),
            0.75 * random.ReplicationFactor());
  // Both keep edges reasonably balanced.
  EXPECT_LT(greedy.EdgeImbalance(graph), 1.5);
  EXPECT_LT(random.EdgeImbalance(graph), 1.2);
}

TEST(VertexCutTest, HubAdjacencyIsSpread) {
  // A star graph's hub must be replicated across machines (its edges
  // cannot all fit one machine without destroying balance), while leaves
  // stay single-replica.
  GraphBuilder builder(101);
  for (VertexId leaf = 1; leaf <= 100; ++leaf) builder.AddEdge(0, leaf);
  Graph star = builder.Build({.symmetrize = true});
  VertexCut cut = GreedyVertexCut(star, 4);
  EXPECT_GE(cut.replicas[0], 2u);  // The hub is cut.
  // Leaves stay lightly replicated (a leaf can pick up a second replica
  // when its hub-side machine fills to capacity, but no more than that).
  double leaf_replicas = 0.0;
  for (VertexId leaf = 1; leaf <= 100; ++leaf) {
    leaf_replicas += cut.replicas[leaf];
  }
  EXPECT_LE(leaf_replicas / 100.0, 2.2);
  EXPECT_LT(cut.EdgeImbalance(star), 1.6);
}

TEST(VertexCutTest, Deterministic) {
  Graph graph = GenerateRmat({.num_vertices = 1000,
                              .num_edges = 6000,
                              .seed = 3});
  VertexCut a = GreedyVertexCut(graph, 6);
  VertexCut b = GreedyVertexCut(graph, 6);
  EXPECT_EQ(a.edge_machine, b.edge_machine);
  EXPECT_EQ(a.replicas, b.replicas);
}

TEST(VertexCutTest, WideClusterFallbackWorks) {
  // > 64 machines exercises the byte-table path.
  Graph graph = GenerateRmat({.num_vertices = 500,
                              .num_edges = 4000,
                              .seed = 5});
  VertexCut cut = GreedyVertexCut(graph, 100);
  EXPECT_GE(cut.ReplicationFactor(), 1.0);
  for (uint32_t machine : cut.edge_machine) {
    ASSERT_LT(machine, 100u);
  }
}

}  // namespace
}  // namespace vcmp
