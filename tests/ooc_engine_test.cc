// Engine-level tests of real out-of-core execution: a run under a tight
// hard memory budget must produce bit-identical task results to the
// uncapped run at every thread count, with RoundStats carrying measured
// (not modeled) spilled bytes, and prefetch must change nothing at all —
// not even the simulated seconds.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/sync_engine.h"
#include "engine/system_profile.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "ooc/memory_governor.h"
#include "ooc/ooc_runtime.h"
#include "tasks/pagerank.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

const Graph& TestGraph() {
  static const Graph& graph = *new Graph([] {
    RmatParams params;
    params.num_vertices = 4000;
    params.num_edges = 30000;
    params.seed = 41;
    return GenerateRmat(params);
  }());
  return graph;
}

const Partitioning& TestPartition() {
  static const Partitioning& part =
      *new Partitioning(HashPartitioner().Partition(TestGraph(), 4));
  return part;
}

struct OocRunConfig {
  uint32_t threads = 1;
  uint64_t budget_bytes = 0;  // 0 = real OOC off (uncapped).
  bool prefetch = true;
  uint32_t sections = 8;
};

struct OocRunOutcome {
  EngineResult result;
  double total_rank = 0.0;
  std::vector<double> ranks;
};

EngineOptions GraphDOptions(const OocRunConfig& config) {
  EngineOptions options;
  options.cluster = RelaxedCluster(4);
  options.profile = ProfileFor(SystemKind::kGraphD);
  options.execution_threads = config.threads;
  options.clamp_threads_to_hardware = false;
  if (config.budget_bytes > 0) {
    options.ooc.enabled = true;
    options.ooc.memory_budget_bytes = config.budget_bytes;
    options.ooc.cache_sections = config.sections;
    options.ooc.cache_ways = 2;
    options.ooc.prefetch = config.prefetch;
    options.ooc.spill_page_messages = 64;
  }
  return options;
}

OocRunOutcome RunPageRank(const OocRunConfig& config) {
  EngineOptions options = GraphDOptions(config);
  SyncEngine engine(TestGraph(), TestPartition(), options);
  TaskContext context{&TestGraph(), &TestPartition(), 1.0,
                      options.profile.combines_messages};
  PageRankProgram::Params params;
  params.iterations = 8;
  PageRankProgram program(context, params);
  auto result = engine.Run(program);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  OocRunOutcome outcome;
  outcome.result = result.value_or(EngineResult{});
  outcome.total_rank = program.TotalRank();
  outcome.ranks.reserve(TestGraph().NumVertices());
  for (VertexId v = 0; v < TestGraph().NumVertices(); ++v) {
    outcome.ranks.push_back(program.Rank(v));
  }
  return outcome;
}

/// A budget tight enough that every PageRank round's inter-round inbox
/// overflows the resident message cap, forcing real spill I/O, yet above
/// the infeasible floor for the 4-machine test layout.
constexpr uint64_t kTightBudget = 12'000;

/// Task results (not costs: a capped run legitimately bills extra disk
/// time) must be bit-identical between two runs.
void ExpectSameTaskResults(const OocRunOutcome& a, const OocRunOutcome& b) {
  EXPECT_EQ(a.result.num_rounds, b.result.num_rounds);
  EXPECT_EQ(a.result.total_messages, b.result.total_messages);
  EXPECT_EQ(a.total_rank, b.total_rank);
  EXPECT_EQ(a.ranks, b.ranks);
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size());
  for (size_t i = 0; i < a.result.rounds.size(); ++i) {
    EXPECT_EQ(a.result.rounds[i].messages, b.result.rounds[i].messages);
    EXPECT_EQ(a.result.rounds[i].active_vertices,
              b.result.rounds[i].active_vertices);
  }
}

/// Full bit-identity: every statistic, including simulated seconds and
/// the measured OOC counters.
void ExpectFullyIdentical(const OocRunOutcome& a, const OocRunOutcome& b) {
  ExpectSameTaskResults(a, b);
  EXPECT_EQ(a.result.seconds, b.result.seconds);
  EXPECT_EQ(a.result.peak_memory_bytes, b.result.peak_memory_bytes);
  EXPECT_EQ(a.result.spilled_bytes, b.result.spilled_bytes);
  EXPECT_EQ(a.result.ooc.spill_bytes_written, b.result.ooc.spill_bytes_written);
  EXPECT_EQ(a.result.ooc.spill_bytes_read, b.result.ooc.spill_bytes_read);
  EXPECT_EQ(a.result.ooc.spilled_messages, b.result.ooc.spilled_messages);
  EXPECT_EQ(a.result.ooc.restored_messages, b.result.ooc.restored_messages);
  EXPECT_EQ(a.result.ooc.state_bytes_read, b.result.ooc.state_bytes_read);
  EXPECT_EQ(a.result.ooc.cache_evictions, b.result.ooc.cache_evictions);
  EXPECT_EQ(a.result.ooc.peak_live_bytes, b.result.ooc.peak_live_bytes);
  for (size_t i = 0; i < a.result.rounds.size(); ++i) {
    EXPECT_EQ(a.result.rounds[i].total_seconds,
              b.result.rounds[i].total_seconds);
    EXPECT_EQ(a.result.rounds[i].spilled_bytes,
              b.result.rounds[i].spilled_bytes);
  }
}

TEST(OocEngineTest, TightBudgetSpillsForRealAndMatchesUncapped) {
  OocRunOutcome uncapped = RunPageRank({.threads = 1});
  EXPECT_FALSE(uncapped.result.ooc_active);
  EXPECT_GT(uncapped.result.num_rounds, 2u);

  OocRunOutcome capped =
      RunPageRank({.threads = 1, .budget_bytes = kTightBudget});
  EXPECT_TRUE(capped.result.ooc_active);
  // Real I/O happened: messages were paged out to spill files and back,
  // and the round stats carry the measured (positive) spill bytes.
  EXPECT_GT(capped.result.spilled_bytes, 0.0);
  EXPECT_GT(capped.result.ooc.spill_bytes_written, 0.0);
  EXPECT_GT(capped.result.ooc.spill_bytes_read, 0.0);
  EXPECT_GT(capped.result.ooc.spilled_messages, 0u);
  EXPECT_EQ(capped.result.ooc.spilled_messages,
            capped.result.ooc.restored_messages);
  EXPECT_GT(capped.result.ooc.state_bytes_read, 0.0);
  EXPECT_GT(capped.result.ooc.peak_live_bytes, 0.0);

  // The hard budget changes costs, never answers.
  ExpectSameTaskResults(uncapped, capped);
  // Billing real spill I/O makes the capped run slower, not faster.
  EXPECT_GT(capped.result.seconds, uncapped.result.seconds);
}

TEST(OocEngineTest, BitIdenticalAcrossThreadCounts) {
  for (uint64_t budget : {uint64_t{0}, kTightBudget}) {
    OocRunOutcome serial = RunPageRank({.threads = 1, .budget_bytes = budget});
    ExpectFullyIdentical(
        serial, RunPageRank({.threads = 2, .budget_bytes = budget}));
    ExpectFullyIdentical(
        serial, RunPageRank({.threads = 8, .budget_bytes = budget}));
  }
}

TEST(OocEngineTest, PrefetchChangesNothingButCounters) {
  OocRunOutcome on = RunPageRank(
      {.threads = 4, .budget_bytes = kTightBudget, .prefetch = true});
  OocRunOutcome off = RunPageRank(
      {.threads = 4, .budget_bytes = kTightBudget, .prefetch = false});
  // Identical in every measured byte and simulated second; the only
  // difference is which counter a section load lands in (prefetch_loads
  // vs cache_misses).
  ExpectFullyIdentical(on, off);
  EXPECT_EQ(on.result.ooc.cache_hits, off.result.ooc.cache_hits);
  EXPECT_EQ(on.result.ooc.prefetch_loads + on.result.ooc.cache_misses,
            off.result.ooc.prefetch_loads + off.result.ooc.cache_misses);
  EXPECT_GT(on.result.ooc.prefetch_loads, 0u);
  EXPECT_EQ(off.result.ooc.prefetch_loads, 0u);
}

TEST(OocEngineTest, SectionCountChangesCostsNotResults) {
  OocRunOutcome coarse = RunPageRank(
      {.threads = 2, .budget_bytes = kTightBudget, .sections = 4});
  OocRunOutcome fine = RunPageRank(
      {.threads = 2, .budget_bytes = kTightBudget, .sections = 16});
  ExpectSameTaskResults(coarse, fine);
}

TEST(OocEngineTest, ModeledSpillAgreesWithMeasured) {
  // Same profile, same budget: once through the real OOC path (measured
  // spill) and once through the cost model alone, its resident allowance
  // pinned to the governor's message share. The modeled estimate prices
  // recv-side overflow from buffered bytes; the measured number counts
  // the messages that actually streamed through the spill files. They
  // must agree to well within 30% — the point of measuring is refining,
  // not contradicting, the model.
  OocRunOutcome measured =
      RunPageRank({.threads = 1, .budget_bytes = kTightBudget});
  ASSERT_GT(measured.result.spilled_bytes, 0.0);

  EngineOptions modeled_options = GraphDOptions({.threads = 1});
  modeled_options.profile.ooc_budget_bytes =
      MemoryGovernor::MessageShareBytes(kTightBudget);
  SyncEngine engine(TestGraph(), TestPartition(), modeled_options);
  TaskContext context{&TestGraph(), &TestPartition(), 1.0,
                      modeled_options.profile.combines_messages};
  PageRankProgram::Params params;
  params.iterations = 8;
  PageRankProgram program(context, params);
  auto modeled = engine.Run(program);
  ASSERT_TRUE(modeled.ok());
  ASSERT_GT(modeled.value().spilled_bytes, 0.0);

  const double ratio =
      measured.result.spilled_bytes / modeled.value().spilled_bytes;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
}

TEST(OocEngineTest, InfeasibleByOneBudgetIsRejected) {
  OocRunConfig config{.threads = 1, .budget_bytes = kTightBudget};
  EngineOptions options = GraphDOptions(config);

  // Recompute the exact floor for this layout, then undershoot by one.
  std::vector<std::vector<VertexId>> by_machine(4);
  for (VertexId v = 0; v < TestGraph().NumVertices(); ++v) {
    by_machine[TestPartition().MachineOf(v)].push_back(v);
  }
  OocRuntime::Setup setup;
  setup.options = options.ooc;
  setup.machines = 4;
  setup.bytes_per_message = options.profile.bytes_per_message;
  setup.message_memory_overhead = options.profile.message_memory_overhead;
  const uint64_t floor =
      OocRuntime::MinFeasibleBudgetBytes(setup, by_machine);
  ASSERT_GT(floor, 1u);
  ASSERT_LE(floor, kTightBudget);  // The tight budget really is feasible.

  options.ooc.memory_budget_bytes = floor - 1;
  SyncEngine engine(TestGraph(), TestPartition(), options);
  TaskContext context{&TestGraph(), &TestPartition(), 1.0,
                      options.profile.combines_messages};
  PageRankProgram program(context, PageRankProgram::Params{});
  auto result = engine.Run(program);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(
      result.status().message().find("below the minimum feasible budget"),
      std::string::npos);

  // At exactly the floor the run is accepted.
  options.ooc.memory_budget_bytes = floor;
  SyncEngine at_floor(TestGraph(), TestPartition(), options);
  PageRankProgram program2(context, PageRankProgram::Params{});
  EXPECT_TRUE(at_floor.Run(program2).ok());
}

TEST(OocEngineTest, RequiresAnOutOfCoreProfile) {
  OocRunConfig config{.threads = 1, .budget_bytes = kTightBudget};
  EngineOptions options = GraphDOptions(config);
  options.profile = ProfileFor(SystemKind::kPregelPlus);  // Not OOC.
  options.ooc.enabled = true;
  options.ooc.memory_budget_bytes = kTightBudget;
  SyncEngine engine(TestGraph(), TestPartition(), options);
  TaskContext context{&TestGraph(), &TestPartition(), 1.0,
                      options.profile.combines_messages};
  PageRankProgram program(context, PageRankProgram::Params{});
  auto result = engine.Run(program);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("out-of-core system profile"),
            std::string::npos);
}

}  // namespace
}  // namespace vcmp
