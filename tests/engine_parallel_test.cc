// Tests of the engine's parallel-execution machinery: the thread pool,
// the radix inbox grouping, the flat combiner index, and the regression
// that engine results are bit-identical for every thread count (the
// determinism contract every perf change must preserve).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/sync_engine.h"
#include "engine/worker.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "tasks/bppr.h"
#include "tasks/mssp.h"
#include "tasks/pagerank.h"
#include "tasks/task_registry.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersExecutesInline) {
  ThreadPool pool(0);
  int count = 0;  // Not atomic: inline execution is single-threaded.
  pool.Submit([&count] { ++count; });
  EXPECT_EQ(count, 1);  // Already ran, before Wait.
  pool.Wait();
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](uint32_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyBarriers) {
  // The engine reuses one pool for every superstep; the pool must survive
  // many Submit/Wait and ParallelFor cycles without deadlock or loss.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(7, [&total](uint32_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 7);
}

TEST(ThreadPoolTest, ParallelSortMatchesSerialSort) {
  Rng rng(17);
  std::vector<uint64_t> values(100000);
  for (uint64_t& v : values) v = rng.NextUint64();
  std::vector<uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  ThreadPool pool(3);
  ParallelSort(pool, values.begin(), values.end(), std::less<uint64_t>());
  EXPECT_EQ(values, expected);
}

TEST(ThreadPoolTest, ParallelSortSmallInputFallsBackToSerial) {
  ThreadPool pool(3);
  std::vector<int> values = {5, 3, 1, 4, 2};
  ParallelSort(pool, values.begin(), values.end(), std::less<int>());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5}));
}

// --- Radix inbox grouping --------------------------------------------

std::vector<Message> RandomInbox(size_t size, uint32_t num_targets,
                                 uint32_t num_tags, uint64_t seed) {
  Rng rng(seed);
  std::vector<Message> inbox;
  inbox.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    inbox.push_back(
        Message{static_cast<VertexId>(rng.NextBounded(num_targets)),
                static_cast<uint32_t>(rng.NextBounded(num_tags)),
                // Original position, so stability is observable.
                static_cast<double>(i), 1.0});
  }
  return inbox;
}

void ExpectGroupInboxMatchesStableSort(std::vector<Message> inbox,
                                       VertexId vertex_space = 0) {
  std::vector<Message> expected = inbox;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Message& a, const Message& b) {
                     if (a.target != b.target) return a.target < b.target;
                     return a.tag < b.tag;
                   });
  Worker worker;
  worker.Reset(1);
  if (vertex_space > 0) worker.set_vertex_space(vertex_space);
  for (const Message& message : inbox) worker.inbox().PushBack(message);
  worker.GroupInbox();
  // Runs must tile [0, n) with strictly ascending (target, tag) keys and
  // match the stable-sorted AoS oracle element for element. The payload
  // encodes the original position, so stability is observable.
  const std::span<const MessageRun> runs = worker.runs();
  const double* values = worker.grouped_values();
  const double* mults = worker.grouped_multiplicities();
  size_t pos = 0;
  uint64_t previous_key = 0;
  bool have_previous = false;
  for (const MessageRun& run : runs) {
    ASSERT_EQ(static_cast<size_t>(run.begin), pos);
    ASSERT_LT(run.begin, run.end);
    const uint64_t key = (static_cast<uint64_t>(run.target) << 32) | run.tag;
    if (have_previous) {
      EXPECT_GT(key, previous_key);
    }
    previous_key = key;
    have_previous = true;
    for (uint32_t i = run.begin; i < run.end; ++i) {
      EXPECT_EQ(run.target, expected[i].target) << "at " << i;
      EXPECT_EQ(run.tag, expected[i].tag) << "at " << i;
    }
    pos = run.end;
  }
  ASSERT_EQ(pos, expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(values[i], expected[i].value) << "at " << i;
    EXPECT_EQ(mults[i], expected[i].multiplicity) << "at " << i;
  }
}

TEST(RadixGroupingTest, MatchesStableSortAcrossSizes) {
  // Straddles the std::stable_sort fallback threshold (64) from both
  // sides, including the radix path on sizes well past it.
  for (size_t size : {0u, 1u, 2u, 63u, 64u, 65u, 127u, 1000u, 20000u}) {
    ExpectGroupInboxMatchesStableSort(
        RandomInbox(size, /*num_targets=*/977, /*num_tags=*/5,
                    /*seed=*/size + 1));
  }
}

TEST(RadixGroupingTest, StableOnHeavilyDuplicatedKeys) {
  // Few distinct (target, tag) keys: nearly every message ties, so any
  // instability in the sort would reorder payloads.
  ExpectGroupInboxMatchesStableSort(
      RandomInbox(5000, /*num_targets=*/3, /*num_tags=*/2, /*seed=*/7));
}

TEST(RadixGroupingTest, HandlesWideTargetRange) {
  // Targets spanning the full 32-bit range exercise the high key bytes
  // (the byte-skipping optimisation must not skip a varying digit).
  Rng rng(23);
  std::vector<Message> inbox;
  for (size_t i = 0; i < 4096; ++i) {
    inbox.push_back(Message{static_cast<VertexId>(rng.NextUint64()),
                            static_cast<uint32_t>(rng.NextBounded(3)),
                            static_cast<double>(i), 1.0});
  }
  ExpectGroupInboxMatchesStableSort(std::move(inbox));
}

TEST(RadixGroupingTest, SingleTargetIsIdentity) {
  std::vector<Message> inbox =
      RandomInbox(300, /*num_targets=*/1, /*num_tags=*/1, /*seed=*/9);
  ExpectGroupInboxMatchesStableSort(inbox);
}

TEST(RadixGroupingTest, DenseCountingPathMatchesStableSort) {
  // Single tag, vertex space known, and n >= V routes through the dense
  // counting-sort strategy; it must produce the same grouping as the
  // comparison sort, including stability.
  ExpectGroupInboxMatchesStableSort(
      RandomInbox(5000, /*num_targets=*/64, /*num_tags=*/1, /*seed=*/11),
      /*vertex_space=*/64);
}

TEST(RadixGroupingTest, VertexSpaceBelowSizeStillSparseWithManyTags) {
  // Multiple tags disqualify the dense path even when n >= V; the pair
  // sort must handle it identically.
  ExpectGroupInboxMatchesStableSort(
      RandomInbox(5000, /*num_targets=*/64, /*num_tags=*/4, /*seed=*/13),
      /*vertex_space=*/64);
}

// --- Flat combiner index ---------------------------------------------

TEST(CombineIndexTest, MatchesUnorderedMapOracle) {
  CombineIndex index;
  std::unordered_map<uint64_t, size_t> oracle;
  Rng rng(31);
  for (size_t i = 0; i < 20000; ++i) {
    // Small key space forces plenty of repeats (combine hits).
    uint64_t key = rng.NextBounded(4096);
    bool inserted = false;
    size_t value = index.FindOrInsert(key, i, &inserted);
    auto [it, fresh] = oracle.try_emplace(key, i);
    EXPECT_EQ(inserted, fresh);
    EXPECT_EQ(value, it->second);
  }
  EXPECT_EQ(index.size(), oracle.size());
}

TEST(CombineIndexTest, CollidingKeysStayDistinct) {
  // Keys equal modulo any power-of-two table size differ only in high
  // bits; the multiplicative hash must still separate them, and linear
  // probing must keep each key's own value.
  CombineIndex index;
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 200; ++i) keys.push_back(i << 32);
  for (size_t i = 0; i < keys.size(); ++i) {
    bool inserted = false;
    EXPECT_EQ(index.FindOrInsert(keys[i], i, &inserted), i);
    EXPECT_TRUE(inserted);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    bool inserted = true;
    EXPECT_EQ(index.FindOrInsert(keys[i], 9999, &inserted), i);
    EXPECT_FALSE(inserted);
  }
}

TEST(CombineIndexTest, ClearForgetsEntriesButKeepsCapacity) {
  CombineIndex index;
  for (uint64_t key = 0; key < 1000; ++key) {
    bool inserted = false;
    index.FindOrInsert(key, key, &inserted);
  }
  size_t capacity = index.capacity();
  EXPECT_GE(capacity, 1000u);
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.capacity(), capacity);  // Epoch clear, no deallocation.
  // Stale slots must not resurrect: the same keys re-insert fresh.
  for (uint64_t key = 0; key < 1000; ++key) {
    bool inserted = false;
    EXPECT_EQ(index.FindOrInsert(key, key + 7, &inserted), key + 7);
    EXPECT_TRUE(inserted);
  }
}

TEST(CombineIndexTest, ManyClearCyclesBehaveLikeFreshTables) {
  CombineIndex index;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (uint64_t key = 0; key < 64; ++key) {
      bool inserted = false;
      size_t value =
          index.FindOrInsert(key, 100 * cycle + key, &inserted);
      EXPECT_TRUE(inserted);
      EXPECT_EQ(value, 100u * cycle + key);
    }
    EXPECT_EQ(index.size(), 64u);
    index.Clear();
  }
}

// --- Buffer reuse -----------------------------------------------------

TEST(WorkerTest, ResetRetainsInboxCapacity) {
  Worker worker;
  worker.Reset(2);
  worker.inbox().Reserve(10000);
  size_t capacity = worker.inbox().capacity();
  EXPECT_GE(capacity, 10000u);
  worker.Reset(2);
  EXPECT_TRUE(worker.inbox().empty());
  EXPECT_GE(worker.inbox().capacity(), capacity);
}

TEST(WorkerTest, DrainRetainsOutboxCapacity) {
  Worker worker;
  worker.Reset(1);
  worker.SetCombiner(nullptr);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 1000; ++i) {
      worker.Stage(0, static_cast<VertexId>(i), 0, 1.0, 1.0);
    }
    MessageBlock dest;
    worker.Drain(0, &dest);
    EXPECT_EQ(dest.size(), 1000u);
  }
}

// --- Engine determinism across thread counts -------------------------

/// Runs one BPPR batch on `system` with the requested thread count and
/// returns the full EngineResult. clamp_threads_to_hardware is disabled
/// so the requested shard count is exercised exactly, even on machines
/// with fewer cores.
EngineResult RunBpprBatch(SystemKind system, uint32_t threads) {
  RmatParams params;
  params.num_vertices = 4000;
  params.num_edges = 30000;
  params.seed = 41;
  static const Graph& graph = *new Graph(GenerateRmat(params));
  static const Partitioning& part =
      *new Partitioning(HashPartitioner().Partition(graph, 8));

  EngineOptions options;
  options.cluster = RelaxedCluster(8);
  options.profile = ProfileFor(system);
  options.execution_threads = threads;
  options.clamp_threads_to_hardware = false;
  SyncEngine engine(graph, part, options);

  TaskContext context{&graph, &part, 1.0,
                      options.profile.combines_messages};
  auto task = MakeTask("BPPR");
  EXPECT_TRUE(task.ok());
  // Broadcast-flavoured walks fan out to every neighbour, so the mirror
  // profile gets a much smaller workload to keep the test fast.
  const double workload = options.profile.mirroring ? 16.0 : 512.0;
  auto program = task.value()->MakeProgram(
      context,
      options.profile.mirroring ? ProgramFlavor::kBroadcast
                                : ProgramFlavor::kPointToPoint,
      workload, /*seed=*/29);
  EXPECT_TRUE(program.ok());
  auto result = engine.Run(*program.value());
  EXPECT_TRUE(result.ok());
  return result.value_or(EngineResult{});
}

void ExpectBitIdentical(const EngineResult& a, const EngineResult& b) {
  // Exact equality on every monitored statistic — not near-equality:
  // the determinism contract is that thread count changes nothing.
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.num_rounds, b.num_rounds);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.peak_residual_bytes, b.peak_residual_bytes);
  EXPECT_EQ(a.peak_buffered_bytes, b.peak_buffered_bytes);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].messages, b.rounds[i].messages) << "round " << i;
    EXPECT_EQ(a.rounds[i].cross_machine_bytes,
              b.rounds[i].cross_machine_bytes)
        << "round " << i;
  }
}

class EngineDeterminismTest
    : public ::testing::TestWithParam<SystemKind> {};

TEST_P(EngineDeterminismTest, ResultsIdenticalForAnyThreadCount) {
  EngineResult serial = RunBpprBatch(GetParam(), 1);
  EXPECT_GT(serial.num_rounds, 1u);
  ExpectBitIdentical(serial, RunBpprBatch(GetParam(), 2));
  ExpectBitIdentical(serial, RunBpprBatch(GetParam(), 8));
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, EngineDeterminismTest,
    ::testing::Values(SystemKind::kPregelPlus,        // Combining.
                      SystemKind::kPregelPlusMirror,  // Broadcast+mirrors.
                      SystemKind::kGraphD),           // Out-of-core.
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      switch (info.param) {
        case SystemKind::kPregelPlus:
          return std::string("PregelPlus");
        case SystemKind::kPregelPlusMirror:
          return std::string("PregelPlusMirror");
        case SystemKind::kGraphD:
          return std::string("GraphD");
        default:
          return std::string("Other");
      }
    });

// --- Golden behaviours of the SoA compute path -----------------------

EngineOptions GoldenOptions(uint32_t machines, uint32_t threads) {
  EngineOptions options;
  options.cluster = RelaxedCluster(machines);
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  options.execution_threads = threads;
  options.clamp_threads_to_hardware = false;
  return options;
}

TEST(EngineGoldenTest, EmptyInboxRoundTerminatesCleanly) {
  // A program that never sends: round 0 runs with empty inboxes, then the
  // engine must quiesce without touching the grouping machinery.
  class Silent : public VertexProgram {
   public:
    void Compute(VertexId, std::span<const Message>,
                 MessageSink&) override {}
  };
  Graph ring = GenerateRing(16, 1);
  Partitioning part = HashPartitioner().Partition(ring, 2);
  SyncEngine engine(ring, part, GoldenOptions(2, 2));
  Silent program;
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rounds, 1u);
  EXPECT_DOUBLE_EQ(result.value().total_messages, 0.0);
}

TEST(EngineGoldenTest, SingleMachineClusterUsesSwapDelivery) {
  // One machine means every round's delivery has exactly one sender —
  // the O(1) SwapOutbox path. PageRank must still conserve rank mass,
  // identically for any thread count.
  Graph ring = GenerateRing(128, 2);
  Partitioning part = HashPartitioner().Partition(ring, 1);
  auto run = [&](uint32_t threads) {
    SyncEngine engine(ring, part, GoldenOptions(1, threads));
    PageRankProgram::Params params;
    params.iterations = 20;
    TaskContext context{&ring, &part, 1.0, true};
    PageRankProgram program(context, params);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    return std::make_pair(result.value_or(EngineResult{}),
                          program.TotalRank());
  };
  auto [serial, serial_rank] = run(1);
  EXPECT_NEAR(serial_rank, 1.0, 1e-9);  // Ring: no dangling mass leaks.
  EXPECT_GT(serial.num_rounds, 20u);
  auto [threaded, threaded_rank] = run(8);
  EXPECT_EQ(serial_rank, threaded_rank);
  ExpectBitIdentical(serial, threaded);
}

TEST(EngineGoldenTest, AllVerticesActiveBitIdenticalAcrossThreads) {
  // PageRank keeps every vertex active every round: the grouper sees a
  // single tag with n >= V, i.e. the dense counting-sort strategy. Final
  // per-vertex ranks must be bitwise equal for any thread count.
  auto run = [](uint32_t threads) {
    RmatParams rmat;
    rmat.num_vertices = 2000;
    rmat.num_edges = 12000;
    rmat.seed = 77;
    static const Graph& graph = *new Graph(GenerateRmat(rmat));
    static const Partitioning& part =
        *new Partitioning(HashPartitioner().Partition(graph, 4));
    SyncEngine engine(graph, part, GoldenOptions(4, threads));
    PageRankProgram::Params params;
    params.iterations = 15;
    TaskContext context{&graph, &part, 1.0, true};
    PageRankProgram program(context, params);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    std::vector<double> ranks(graph.NumVertices());
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ranks[v] = program.Rank(v);
    }
    return std::make_pair(result.value_or(EngineResult{}),
                          std::move(ranks));
  };
  auto [serial, serial_ranks] = run(1);
  for (uint32_t threads : {2u, 8u}) {
    auto [threaded, threaded_ranks] = run(threads);
    ExpectBitIdentical(serial, threaded);
    EXPECT_EQ(serial_ranks, threaded_ranks);  // Bitwise double equality.
  }
}

TEST(EngineGoldenTest, SparseActivityBitIdenticalAcrossThreads) {
  // MSSP from two sources on a long ring: each round only the wavefront
  // (a handful of vertices) receives messages, so the grouper sees
  // n << V — the sparse pair-sort strategy. Distances must be identical
  // for any thread count.
  auto run = [](uint32_t threads) {
    static const Graph& graph = *new Graph(GenerateRing(512, 1));
    static const Partitioning& part =
        *new Partitioning(HashPartitioner().Partition(graph, 4));
    SyncEngine engine(graph, part, GoldenOptions(4, threads));
    TaskContext context{&graph, &part, 1.0, true};
    MsspProgram program(context, ProgramFlavor::kPointToPoint,
                        /*workload=*/2.0, MsspTask::Params{}, /*seed=*/5);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok());
    std::vector<uint32_t> distances;
    for (uint32_t sample = 0; sample < program.num_samples(); ++sample) {
      for (VertexId v = 0; v < graph.NumVertices(); ++v) {
        distances.push_back(program.Distance(sample, v));
      }
    }
    return std::make_pair(result.value_or(EngineResult{}),
                          std::move(distances));
  };
  auto [serial, serial_dist] = run(1);
  EXPECT_EQ(serial_dist.size(), 2u * 512u);
  // Every ring vertex is reachable within n/2 hops.
  for (uint32_t d : serial_dist) EXPECT_LE(d, 256u);
  for (uint32_t threads : {2u, 8u}) {
    auto [threaded, threaded_dist] = run(threads);
    ExpectBitIdentical(serial, threaded);
    EXPECT_EQ(serial_dist, threaded_dist);
  }
}

/// Delegates to a wrapped program but reports UsesComputeRun() == false,
/// forcing the engine down the materialized AoS fallback path. Running
/// the same program both ways must give bitwise-identical results.
class ForceFallback : public VertexProgram {
 public:
  explicit ForceFallback(VertexProgram& inner) : inner_(inner) {}
  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override {
    inner_.Compute(v, inbox, sink);
  }
  bool UsesComputeRun() const override { return false; }
  bool ShouldTerminate(uint64_t rounds_completed) const override {
    return inner_.ShouldTerminate(rounds_completed);
  }
  bool TerminateOnAggregate(double aggregate_sum) const override {
    return inner_.TerminateOnAggregate(aggregate_sum);
  }
  double StateBytes(uint32_t machine) const override {
    return inner_.StateBytes(machine);
  }
  double ResidualBytes(uint32_t machine) const override {
    return inner_.ResidualBytes(machine);
  }
  const Combiner* combiner() const override { return inner_.combiner(); }

 private:
  VertexProgram& inner_;
};

std::pair<EngineResult, uint64_t> RunCountingBppr(bool force_fallback,
                                                  uint32_t threads) {
  RmatParams rmat;
  rmat.num_vertices = 3000;
  rmat.num_edges = 20000;
  rmat.seed = 51;
  static const Graph& graph = *new Graph(GenerateRmat(rmat));
  static const Partitioning& part =
      *new Partitioning(HashPartitioner().Partition(graph, 4));
  SyncEngine engine(graph, part, GoldenOptions(4, threads));
  TaskContext context{&graph, &part, 1.0, true};
  BpprCountingProgram program(context, /*walks=*/64, {}, /*seed=*/3);
  Result<EngineResult> result = [&] {
    if (force_fallback) {
      ForceFallback wrapped(program);
      return engine.Run(wrapped);
    }
    return engine.Run(program);
  }();
  EXPECT_TRUE(result.ok());
  return {result.value_or(EngineResult{}), program.TotalStopped()};
}

TEST(EngineGoldenTest, FallbackPathBitIdenticalToComputeRun) {
  // The stochastic program is the hard case: any divergence in fold
  // order between ComputeRun and the materialized fallback would shift
  // RNG draws and change every later round. Both paths, at every thread
  // count, must match the serial ComputeRun run exactly.
  auto [golden, golden_stopped] = RunCountingBppr(false, 1);
  EXPECT_GT(golden.num_rounds, 1u);
  EXPECT_GT(golden_stopped, 0u);
  for (uint32_t threads : {1u, 2u, 8u}) {
    for (bool fallback : {false, true}) {
      auto [result, stopped] = RunCountingBppr(fallback, threads);
      ExpectBitIdentical(golden, result);
      EXPECT_EQ(golden_stopped, stopped)
          << "threads=" << threads << " fallback=" << fallback;
    }
  }
}

}  // namespace
}  // namespace vcmp
