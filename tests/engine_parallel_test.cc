// Tests of the engine's parallel-execution machinery: the thread pool,
// the radix inbox grouping, the flat combiner index, and the regression
// that engine results are bit-identical for every thread count (the
// determinism contract every perf change must preserve).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/sync_engine.h"
#include "engine/worker.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "tasks/task_registry.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersExecutesInline) {
  ThreadPool pool(0);
  int count = 0;  // Not atomic: inline execution is single-threaded.
  pool.Submit([&count] { ++count; });
  EXPECT_EQ(count, 1);  // Already ran, before Wait.
  pool.Wait();
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](uint32_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyBarriers) {
  // The engine reuses one pool for every superstep; the pool must survive
  // many Submit/Wait and ParallelFor cycles without deadlock or loss.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(7, [&total](uint32_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 7);
}

TEST(ThreadPoolTest, ParallelSortMatchesSerialSort) {
  Rng rng(17);
  std::vector<uint64_t> values(100000);
  for (uint64_t& v : values) v = rng.NextUint64();
  std::vector<uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  ThreadPool pool(3);
  ParallelSort(pool, values.begin(), values.end(), std::less<uint64_t>());
  EXPECT_EQ(values, expected);
}

TEST(ThreadPoolTest, ParallelSortSmallInputFallsBackToSerial) {
  ThreadPool pool(3);
  std::vector<int> values = {5, 3, 1, 4, 2};
  ParallelSort(pool, values.begin(), values.end(), std::less<int>());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5}));
}

// --- Radix inbox grouping --------------------------------------------

std::vector<Message> RandomInbox(size_t size, uint32_t num_targets,
                                 uint32_t num_tags, uint64_t seed) {
  Rng rng(seed);
  std::vector<Message> inbox;
  inbox.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    inbox.push_back(
        Message{static_cast<VertexId>(rng.NextBounded(num_targets)),
                static_cast<uint32_t>(rng.NextBounded(num_tags)),
                // Original position, so stability is observable.
                static_cast<double>(i), 1.0});
  }
  return inbox;
}

void ExpectGroupInboxMatchesStableSort(std::vector<Message> inbox) {
  std::vector<Message> expected = inbox;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Message& a, const Message& b) {
                     if (a.target != b.target) return a.target < b.target;
                     return a.tag < b.tag;
                   });
  Worker worker;
  worker.Reset(1);
  worker.inbox() = std::move(inbox);
  worker.GroupInbox();
  ASSERT_EQ(worker.inbox().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(worker.inbox()[i].target, expected[i].target) << "at " << i;
    EXPECT_EQ(worker.inbox()[i].tag, expected[i].tag) << "at " << i;
    // Equal (target, tag) messages must keep arrival order (stability):
    // the payload encodes the original position.
    EXPECT_EQ(worker.inbox()[i].value, expected[i].value) << "at " << i;
  }
}

TEST(RadixGroupingTest, MatchesStableSortAcrossSizes) {
  // Straddles the std::stable_sort fallback threshold (64) from both
  // sides, including the radix path on sizes well past it.
  for (size_t size : {0u, 1u, 2u, 63u, 64u, 65u, 127u, 1000u, 20000u}) {
    ExpectGroupInboxMatchesStableSort(
        RandomInbox(size, /*num_targets=*/977, /*num_tags=*/5,
                    /*seed=*/size + 1));
  }
}

TEST(RadixGroupingTest, StableOnHeavilyDuplicatedKeys) {
  // Few distinct (target, tag) keys: nearly every message ties, so any
  // instability in the sort would reorder payloads.
  ExpectGroupInboxMatchesStableSort(
      RandomInbox(5000, /*num_targets=*/3, /*num_tags=*/2, /*seed=*/7));
}

TEST(RadixGroupingTest, HandlesWideTargetRange) {
  // Targets spanning the full 32-bit range exercise the high key bytes
  // (the byte-skipping optimisation must not skip a varying digit).
  Rng rng(23);
  std::vector<Message> inbox;
  for (size_t i = 0; i < 4096; ++i) {
    inbox.push_back(Message{static_cast<VertexId>(rng.NextUint64()),
                            static_cast<uint32_t>(rng.NextBounded(3)),
                            static_cast<double>(i), 1.0});
  }
  ExpectGroupInboxMatchesStableSort(std::move(inbox));
}

TEST(RadixGroupingTest, SingleTargetIsIdentity) {
  std::vector<Message> inbox =
      RandomInbox(300, /*num_targets=*/1, /*num_tags=*/1, /*seed=*/9);
  ExpectGroupInboxMatchesStableSort(inbox);
}

// --- Flat combiner index ---------------------------------------------

TEST(CombineIndexTest, MatchesUnorderedMapOracle) {
  CombineIndex index;
  std::unordered_map<uint64_t, size_t> oracle;
  Rng rng(31);
  for (size_t i = 0; i < 20000; ++i) {
    // Small key space forces plenty of repeats (combine hits).
    uint64_t key = rng.NextBounded(4096);
    bool inserted = false;
    size_t value = index.FindOrInsert(key, i, &inserted);
    auto [it, fresh] = oracle.try_emplace(key, i);
    EXPECT_EQ(inserted, fresh);
    EXPECT_EQ(value, it->second);
  }
  EXPECT_EQ(index.size(), oracle.size());
}

TEST(CombineIndexTest, CollidingKeysStayDistinct) {
  // Keys equal modulo any power-of-two table size differ only in high
  // bits; the multiplicative hash must still separate them, and linear
  // probing must keep each key's own value.
  CombineIndex index;
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 200; ++i) keys.push_back(i << 32);
  for (size_t i = 0; i < keys.size(); ++i) {
    bool inserted = false;
    EXPECT_EQ(index.FindOrInsert(keys[i], i, &inserted), i);
    EXPECT_TRUE(inserted);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    bool inserted = true;
    EXPECT_EQ(index.FindOrInsert(keys[i], 9999, &inserted), i);
    EXPECT_FALSE(inserted);
  }
}

TEST(CombineIndexTest, ClearForgetsEntriesButKeepsCapacity) {
  CombineIndex index;
  for (uint64_t key = 0; key < 1000; ++key) {
    bool inserted = false;
    index.FindOrInsert(key, key, &inserted);
  }
  size_t capacity = index.capacity();
  EXPECT_GE(capacity, 1000u);
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.capacity(), capacity);  // Epoch clear, no deallocation.
  // Stale slots must not resurrect: the same keys re-insert fresh.
  for (uint64_t key = 0; key < 1000; ++key) {
    bool inserted = false;
    EXPECT_EQ(index.FindOrInsert(key, key + 7, &inserted), key + 7);
    EXPECT_TRUE(inserted);
  }
}

TEST(CombineIndexTest, ManyClearCyclesBehaveLikeFreshTables) {
  CombineIndex index;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (uint64_t key = 0; key < 64; ++key) {
      bool inserted = false;
      size_t value =
          index.FindOrInsert(key, 100 * cycle + key, &inserted);
      EXPECT_TRUE(inserted);
      EXPECT_EQ(value, 100u * cycle + key);
    }
    EXPECT_EQ(index.size(), 64u);
    index.Clear();
  }
}

// --- Buffer reuse -----------------------------------------------------

TEST(WorkerTest, ResetRetainsInboxCapacity) {
  Worker worker;
  worker.Reset(2);
  worker.inbox().resize(10000);
  size_t capacity = worker.inbox().capacity();
  worker.Reset(2);
  EXPECT_TRUE(worker.inbox().empty());
  EXPECT_GE(worker.inbox().capacity(), capacity);
}

TEST(WorkerTest, DrainRetainsOutboxCapacity) {
  Worker worker;
  worker.Reset(1);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 1000; ++i) {
      worker.Stage(0, Message{static_cast<VertexId>(i), 0, 1.0, 1.0},
                   nullptr);
    }
    std::vector<Message> dest;
    worker.Drain(0, &dest);
    EXPECT_EQ(dest.size(), 1000u);
  }
}

// --- Engine determinism across thread counts -------------------------

/// Runs one BPPR batch on `system` with the requested thread count and
/// returns the full EngineResult. clamp_threads_to_hardware is disabled
/// so the requested shard count is exercised exactly, even on machines
/// with fewer cores.
EngineResult RunBpprBatch(SystemKind system, uint32_t threads) {
  RmatParams params;
  params.num_vertices = 4000;
  params.num_edges = 30000;
  params.seed = 41;
  static const Graph& graph = *new Graph(GenerateRmat(params));
  static const Partitioning& part =
      *new Partitioning(HashPartitioner().Partition(graph, 8));

  EngineOptions options;
  options.cluster = RelaxedCluster(8);
  options.profile = ProfileFor(system);
  options.execution_threads = threads;
  options.clamp_threads_to_hardware = false;
  SyncEngine engine(graph, part, options);

  TaskContext context{&graph, &part, 1.0,
                      options.profile.combines_messages};
  auto task = MakeTask("BPPR");
  EXPECT_TRUE(task.ok());
  // Broadcast-flavoured walks fan out to every neighbour, so the mirror
  // profile gets a much smaller workload to keep the test fast.
  const double workload = options.profile.mirroring ? 16.0 : 512.0;
  auto program = task.value()->MakeProgram(
      context,
      options.profile.mirroring ? ProgramFlavor::kBroadcast
                                : ProgramFlavor::kPointToPoint,
      workload, /*seed=*/29);
  EXPECT_TRUE(program.ok());
  auto result = engine.Run(*program.value());
  EXPECT_TRUE(result.ok());
  return result.value_or(EngineResult{});
}

void ExpectBitIdentical(const EngineResult& a, const EngineResult& b) {
  // Exact equality on every monitored statistic — not near-equality:
  // the determinism contract is that thread count changes nothing.
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.num_rounds, b.num_rounds);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.peak_residual_bytes, b.peak_residual_bytes);
  EXPECT_EQ(a.peak_buffered_bytes, b.peak_buffered_bytes);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].messages, b.rounds[i].messages) << "round " << i;
    EXPECT_EQ(a.rounds[i].cross_machine_bytes,
              b.rounds[i].cross_machine_bytes)
        << "round " << i;
  }
}

class EngineDeterminismTest
    : public ::testing::TestWithParam<SystemKind> {};

TEST_P(EngineDeterminismTest, ResultsIdenticalForAnyThreadCount) {
  EngineResult serial = RunBpprBatch(GetParam(), 1);
  EXPECT_GT(serial.num_rounds, 1u);
  ExpectBitIdentical(serial, RunBpprBatch(GetParam(), 2));
  ExpectBitIdentical(serial, RunBpprBatch(GetParam(), 8));
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, EngineDeterminismTest,
    ::testing::Values(SystemKind::kPregelPlus,        // Combining.
                      SystemKind::kPregelPlusMirror,  // Broadcast+mirrors.
                      SystemKind::kGraphD),           // Out-of-core.
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      switch (info.param) {
        case SystemKind::kPregelPlus:
          return std::string("PregelPlus");
        case SystemKind::kPregelPlusMirror:
          return std::string("PregelPlusMirror");
        case SystemKind::kGraphD:
          return std::string("GraphD");
        default:
          return std::string("Other");
      }
    });

}  // namespace
}  // namespace vcmp
