// Tests for the BPPR program variants beyond the pooled counting mode:
// the per-source program (combining systems) and the fractional-push
// program's per-source bookkeeping.

#include <cmath>

#include <gtest/gtest.h>

#include "engine/sync_engine.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "tasks/bppr.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

struct Fx {
  Graph graph;
  Partitioning partition;
  TaskContext context;

  explicit Fx(Graph g, uint32_t machines = 4) : graph(std::move(g)) {
    partition = HashPartitioner().Partition(graph, machines);
    context = TaskContext{&graph, &partition, 1.0, /*combining=*/true};
  }

  EngineResult Run(VertexProgram& program, SystemKind kind) const {
    EngineOptions options;
    options.cluster = RelaxedCluster(partition.num_machines);
    options.profile = ProfileFor(kind);
    SyncEngine engine(graph, partition, options);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value_or(EngineResult{});
  }
};

Graph SmallGraph() {
  ErdosRenyiParams params;
  params.num_vertices = 120;
  params.num_edges = 600;
  params.seed = 77;
  return GenerateErdosRenyi(params);
}

TEST(BpprPerSourceTest, ConservesWalks) {
  Fx fx(SmallGraph());
  BpprPerSourceProgram program(fx.context, /*walks=*/40, {}, /*seed=*/3);
  fx.Run(program, SystemKind::kGraphLab);
  EXPECT_EQ(program.TotalStopped(), 40u * fx.graph.NumVertices());
}

TEST(BpprPerSourceTest, CombiningDispatchedByTask) {
  Fx fx(SmallGraph());
  BpprTask task;
  auto program = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                  16, 5);
  ASSERT_TRUE(program.ok());
  // Default params: the pooled counting program even on combining systems.
  EXPECT_NE(dynamic_cast<BpprCountingProgram*>(program.value().get()),
            nullptr);
  // The per_source_traffic knob switches to per-source granularity.
  BpprTask::Params params;
  params.per_source_traffic = true;
  BpprTask per_source_task(params);
  auto ps = per_source_task.MakeProgram(
      fx.context, ProgramFlavor::kPointToPoint, 16, 5);
  ASSERT_TRUE(ps.ok());
  auto* typed = dynamic_cast<BpprPerSourceProgram*>(ps.value().get());
  EXPECT_NE(typed, nullptr);
}

TEST(BpprPerSourceTest, AggregateMatchesPooledCounting) {
  Fx fx(SmallGraph());
  const uint64_t walks = 20000;
  BpprPerSourceProgram per_source(fx.context, walks, {}, 3);
  fx.Run(per_source, SystemKind::kGraphLab);

  TaskContext pooled_context = fx.context;
  pooled_context.combining_system = false;
  BpprCountingProgram pooled(pooled_context, walks, {}, 3);
  fx.Run(pooled, SystemKind::kPregelPlus);

  // Same Monte-Carlo process, different traffic granularity: per-vertex
  // terminal distributions agree within sampling noise.
  double total = static_cast<double>(walks) * fx.graph.NumVertices();
  double l1 = 0.0;
  for (VertexId u = 0; u < fx.graph.NumVertices(); ++u) {
    l1 += std::fabs(static_cast<double>(per_source.StoppedAt(u)) -
                    static_cast<double>(pooled.StoppedAt(u))) /
          total;
  }
  EXPECT_LT(l1, 0.03);
}

TEST(BpprPerSourceTest, MoreWireTrafficThanPooledUnderCombining) {
  // Under a combining engine, pooled counting over-merges across sources;
  // the per-source program keeps (source, target) wire granularity, so it
  // must move more cross-machine bytes.
  Fx fx(SmallGraph(), 4);
  const uint64_t walks = 2000;

  auto cross_bytes = [&](VertexProgram& program) {
    EngineResult result = fx.Run(program, SystemKind::kGraphLab);
    double bytes = 0.0;
    for (const RoundStats& stats : result.rounds) {
      bytes += stats.cross_machine_bytes;
    }
    return bytes;
  };
  BpprPerSourceProgram per_source(fx.context, walks, {}, 3);
  TaskContext pooled_context = fx.context;
  BpprCountingProgram pooled(pooled_context, walks, {}, 3);
  EXPECT_GT(cross_bytes(per_source), 1.5 * cross_bytes(pooled));
}

TEST(BpprPushTest, TracksDistinctResultPairs) {
  Fx fx(SmallGraph(), 2);
  BpprPushProgram program(fx.context, /*walks=*/50, {});
  EngineOptions options;
  options.cluster = RelaxedCluster(2);
  options.profile = ProfileFor(SystemKind::kPregelPlusMirror);
  SyncEngine engine(fx.graph, fx.partition, options);
  ASSERT_TRUE(engine.Run(program).ok());
  // At least one record per vertex (its own source settles locally), at
  // most the full quadratic table.
  EXPECT_GE(program.ResultPairs(), fx.graph.NumVertices());
  EXPECT_LE(program.ResultPairs(),
            static_cast<uint64_t>(fx.graph.NumVertices()) *
                fx.graph.NumVertices());
  // State accounting follows the pair count.
  EXPECT_GT(program.StateBytes(0), 0.0);
}

TEST(BpprPushTest, DeeperDiffusionWithHigherWorkload) {
  // Larger W keeps per-source mass above the prune threshold longer, so
  // more (source, target) pairs are produced — the mechanism that limits
  // Pregel+(mirror) to small workloads in the paper.
  Fx fx(SmallGraph(), 2);
  EngineOptions options;
  options.cluster = RelaxedCluster(2);
  options.profile = ProfileFor(SystemKind::kPregelPlusMirror);

  BpprPushProgram light(fx.context, 2, {});
  {
    SyncEngine engine(fx.graph, fx.partition, options);
    ASSERT_TRUE(engine.Run(light).ok());
  }
  BpprPushProgram heavy(fx.context, 64, {});
  {
    SyncEngine engine(fx.graph, fx.partition, options);
    ASSERT_TRUE(engine.Run(heavy).ok());
  }
  EXPECT_GT(heavy.ResultPairs(), 2 * light.ResultPairs());
}

TEST(BpprCountingTest, HasSumCombiner) {
  Fx fx(SmallGraph(), 2);
  BpprCountingProgram program(fx.context, 8, {}, 1);
  ASSERT_NE(program.combiner(), nullptr);
  Message into{1, 0, 2.0, 2.0};
  program.combiner()->Merge(into, Message{1, 0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(into.value, 5.0);
  EXPECT_DOUBLE_EQ(into.multiplicity, 5.0);
}

}  // namespace
}  // namespace vcmp
