// Tests for the second extension wave: geometric-decay schedules, the
// Connected Components baseline, and the out-of-core (disk-bound) tuner.

#include <gtest/gtest.h>

#include "core/batch_schedule.h"
#include "core/runner.h"
#include "core/tuning/disk_planner.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "tasks/bppr.h"
#include "tasks/connected_components.h"
#include "tasks/task_registry.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

// ---------------------------------------------------------------------------
// Geometric-decay schedules
// ---------------------------------------------------------------------------

TEST(GeometricDecayTest, PreservesTotalAndDecreases) {
  BatchSchedule schedule = BatchSchedule::GeometricDecay(5120, 5, 0.5);
  EXPECT_EQ(schedule.NumBatches(), 5u);
  EXPECT_DOUBLE_EQ(schedule.TotalWorkload(), 5120.0);
  const auto& w = schedule.workloads();
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_LE(w[i], w[i - 1]);
  }
  // Ratio 0.5 over 5 batches: the first batch holds ~16/31 of the total.
  EXPECT_NEAR(w[0], 5120.0 * 16.0 / 31.0, 2.0);
}

TEST(GeometricDecayTest, RatioOneIsEqualSplit) {
  BatchSchedule geometric = BatchSchedule::GeometricDecay(100, 4, 1.0);
  BatchSchedule equal = BatchSchedule::Equal(100, 4);
  EXPECT_DOUBLE_EQ(geometric.TotalWorkload(), equal.TotalWorkload());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(geometric.workloads()[i], equal.workloads()[i], 1.0);
  }
}

TEST(GeometricDecayTest, BeatsEqualSplitUnderResidualPressure) {
  // The paper's Section 4.10 guideline: later batches should be smaller.
  // Under heavy residual pressure a decaying split must not lose to the
  // equal one.
  Dataset dataset = LoadDataset(DatasetId::kDblp, 64.0);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8();
  BpprTask task;
  auto run = [&](const BatchSchedule& schedule) {
    MultiProcessingRunner runner(dataset, options);
    auto report = runner.Run(task, schedule);
    EXPECT_TRUE(report.ok());
    return report.value_or(RunReport{}).total_seconds;
  };
  double equal = run(BatchSchedule::Equal(12800, 2));
  double decay = run(BatchSchedule::GeometricDecay(12800, 2, 0.6));
  EXPECT_LT(decay, equal);
}

// ---------------------------------------------------------------------------
// Connected Components
// ---------------------------------------------------------------------------

TEST(ConnectedComponentsTest, LabelsTwoCliques) {
  // Two disjoint triangles: components {0,1,2} and {3,4,5}.
  GraphBuilder builder(6);
  builder.AddEdges({{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  Graph graph = builder.Build({.symmetrize = true});
  Partitioning partition = HashPartitioner().Partition(graph, 2);
  TaskContext context{&graph, &partition, 1.0, false};
  ConnectedComponentsProgram program(context);

  EngineOptions options;
  options.cluster = RelaxedCluster(2);
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  SyncEngine engine(graph, partition, options);
  ASSERT_TRUE(engine.Run(program).ok());

  EXPECT_EQ(program.NumComponents(), 2u);
  for (VertexId v : {0u, 1u, 2u}) EXPECT_EQ(program.ComponentOf(v), 0u);
  for (VertexId v : {3u, 4u, 5u}) EXPECT_EQ(program.ComponentOf(v), 3u);
}

TEST(ConnectedComponentsTest, RingIsOneComponent) {
  Graph ring = GenerateRing(257, 1);
  Partitioning partition = HashPartitioner().Partition(ring, 4);
  TaskContext context{&ring, &partition, 1.0, false};
  ConnectedComponentsProgram program(context);
  EngineOptions options;
  options.cluster = RelaxedCluster(4);
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  SyncEngine engine(ring, partition, options);
  auto result = engine.Run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(program.NumComponents(), 1u);
  // Label propagation along a ring takes O(n) rounds, not O(log n) —
  // hash-min's known worst case; the engine must still terminate.
  EXPECT_GT(result.value().num_rounds, 100u);
}

TEST(ConnectedComponentsTest, AvailableThroughRegistry) {
  auto task = MakeTask("ConnectedComponents");
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task.value()->name(), "ConnectedComponents");
}

// ---------------------------------------------------------------------------
// Disk-bound tuner
// ---------------------------------------------------------------------------

TEST(DiskTunerTest, RejectsInMemorySystems) {
  Dataset dataset = LoadDataset(DatasetId::kDblp, 512.0);
  RunnerOptions options;
  options.cluster = RelaxedCluster(4);
  options.system = SystemKind::kPregelPlus;
  DiskTuner tuner(dataset, options);
  BpprTask task;
  auto plan = tuner.Tune(task, 1024.0);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DiskTunerTest, PlansEqualSplitBelowSaturationEdge) {
  // Orkut at Galaxy-27 with W=4096 is Table 3's spill regime: the tuner
  // must land near the measured optimum (4-8 batches) without probing
  // heavy workloads.
  Dataset dataset = LoadDataset(DatasetId::kOrkut, 512.0);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy27();
  options.system = SystemKind::kGraphD;
  DiskTuner tuner(dataset, options);
  BpprTask task;
  auto plan = tuner.Tune(task, 4096.0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(plan.value().schedule.NumBatches(), 3u);
  EXPECT_LE(plan.value().schedule.NumBatches(), 12u);
  EXPECT_NEAR(plan.value().schedule.TotalWorkload(), 4096.0, 0.5);
  EXPECT_GE(plan.value().samples.size(), 3u);

  // The planned schedule must avoid saturation and beat Full-Parallelism.
  MultiProcessingRunner tuned_runner(dataset, options);
  auto tuned = tuned_runner.Run(task, plan.value().schedule);
  ASSERT_TRUE(tuned.ok());
  EXPECT_FALSE(tuned.value().disk_saturated);
  MultiProcessingRunner full_runner(dataset, options);
  auto full = full_runner.Run(task, BatchSchedule::FullParallelism(4096));
  ASSERT_TRUE(full.ok());
  EXPECT_LT(tuned.value().total_seconds,
            0.7 * full.value().total_seconds);
}

TEST(DiskTunerTest, LightWorkloadStaysFullParallelism) {
  Dataset dataset = LoadDataset(DatasetId::kOrkut, 512.0);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy27();
  options.system = SystemKind::kGraphD;
  DiskTuner tuner(dataset, options);
  BpprTask task;
  auto plan = tuner.Tune(task, 64.0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan.value().schedule.IsFullParallelism());
}

}  // namespace
}  // namespace vcmp
