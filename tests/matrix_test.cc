// Property matrix: every superstep system mode x every benchmark task must
// execute, terminate, produce traffic, and be bit-deterministic. These are
// the invariants the figure benches rely on across their whole sweep
// space.

#include <tuple>

#include <gtest/gtest.h>

#include "core/runner.h"
#include "graph/datasets.h"
#include "tasks/task_registry.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

using MatrixParam = std::tuple<SystemKind, const char*>;

class SystemTaskMatrixTest
    : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static const Dataset& SharedDataset() {
    static const auto& dataset =
        *new Dataset(LoadDataset(DatasetId::kDblp, 512.0));
    return dataset;
  }

  RunReport Run(uint64_t seed) {
    auto [system, task_name] = GetParam();
    RunnerOptions options;
    options.cluster = RelaxedCluster(4);
    options.system = system;
    options.seed = seed;
    MultiProcessingRunner runner(SharedDataset(), options);
    auto task = MakeTask(task_name);
    EXPECT_TRUE(task.ok());
    auto report = runner.Run(*task.value(), BatchSchedule::Equal(8, 2));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.value_or(RunReport{});
  }
};

TEST_P(SystemTaskMatrixTest, ExecutesAndTerminates) {
  RunReport report = Run(7);
  EXPECT_FALSE(report.overloaded);
  EXPECT_GT(report.total_rounds, 0u);
  EXPECT_GT(report.total_messages, 0.0);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.peak_memory_bytes, 0.0);
  EXPECT_EQ(report.batches.size(), 2u);
}

TEST_P(SystemTaskMatrixTest, DeterministicAcrossRuns) {
  RunReport a = Run(7);
  RunReport b = Run(7);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.total_messages, b.total_messages);
  EXPECT_DOUBLE_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
}

TEST_P(SystemTaskMatrixTest, SeedChangesStochasticTasksOnly) {
  auto [system, task_name] = GetParam();
  RunReport a = Run(7);
  RunReport b = Run(8);
  if (std::string(task_name) == "BPPR") {
    // Monte-Carlo walks: different seed, different trajectory (but same
    // magnitude).
    EXPECT_NEAR(a.total_messages, b.total_messages,
                0.2 * a.total_messages);
  } else {
    // MSSP/BKHS sample different sources per seed; totals stay the same
    // order of magnitude.
    EXPECT_GT(b.total_messages, 0.0);
  }
}

std::string MatrixName(
    const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string name = SystemName(std::get<0>(info.param)) + "_" +
                     std::get<1>(info.param);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSuperstepSystems, SystemTaskMatrixTest,
    ::testing::Combine(
        ::testing::Values(SystemKind::kGiraph, SystemKind::kGiraphAsync,
                          SystemKind::kPregelPlus,
                          SystemKind::kPregelPlusMirror,
                          SystemKind::kGraphD, SystemKind::kGraphLab),
        ::testing::Values("BPPR", "MSSP", "BKHS")),
    MatrixName);

}  // namespace
}  // namespace vcmp
