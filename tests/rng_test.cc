#include "common/rng.h"

#include <cmath>
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

namespace vcmp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // The child stream must not replay the parent's outputs.
  Rng parent_copy(42);
  (void)parent_copy.NextUint64();  // Fork consumed one draw.
  EXPECT_NE(child.NextUint64(), parent_copy.NextUint64());
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  constexpr int kDraws = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(5);
  EXPECT_EQ(rng.NextBinomial(0, 0.5), 0u);
  EXPECT_EQ(rng.NextBinomial(100, 0.0), 0u);
  EXPECT_EQ(rng.NextBinomial(100, 1.0), 100u);
  EXPECT_EQ(rng.NextBinomial(100, -0.1), 0u);
  EXPECT_EQ(rng.NextBinomial(100, 1.5), 100u);
}

/// Property sweep: binomial samples across regimes (exact loop, Poisson
/// branch, normal approximation) must match the analytic mean and
/// variance.
class BinomialMomentsTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(BinomialMomentsTest, MeanAndVarianceMatch) {
  auto [n, p] = GetParam();
  Rng rng(1000 + n);
  constexpr int kDraws = 4000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    auto x = static_cast<double>(rng.NextBinomial(n, p));
    ASSERT_LE(x, static_cast<double>(n));
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kDraws;
  double expected_mean = static_cast<double>(n) * p;
  double expected_var = expected_mean * (1.0 - p);
  double var = sum_sq / kDraws - mean * mean;
  // 5-sigma-ish tolerances on the empirical moments.
  double mean_tolerance =
      5.0 * std::sqrt(std::max(expected_var, 0.25) / kDraws);
  EXPECT_NEAR(mean, expected_mean, mean_tolerance)
      << "n=" << n << " p=" << p;
  EXPECT_NEAR(var, expected_var,
              0.25 * std::max(expected_var, 1.0) + 0.1)
      << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMomentsTest,
    ::testing::Values(
        std::make_tuple(uint64_t{10}, 0.2),       // Exact Bernoulli loop.
        std::make_tuple(uint64_t{100}, 0.5),      // Exact loop, high var.
        std::make_tuple(uint64_t{100000}, 1e-4),  // Poisson branch.
        std::make_tuple(uint64_t{1000000}, 0.0001),
        std::make_tuple(uint64_t{100000}, 0.2),   // Normal approximation.
        std::make_tuple(uint64_t{1000000}, 0.8),  // Symmetry + normal.
        std::make_tuple(uint64_t{1000000000}, 0.3)));

}  // namespace
}  // namespace vcmp
