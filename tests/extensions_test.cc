// Tests for the extension surface beyond the core reproduction: the
// aggregator mechanism + tolerance-mode PageRank, the batch-count search,
// the source-batched BPPR semantics (paper Section 4.9), superstep
// splitting (Facebook's Giraph improvement), report export, and the ASCII
// chart renderer.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/batch_search.h"
#include "core/runner.h"
#include "engine/sync_engine.h"
#include "graph/generators.h"
#include "metrics/ascii_chart.h"
#include "metrics/export.h"
#include "tasks/bppr.h"
#include "tasks/bppr_source_batch.h"
#include "tasks/pagerank.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

Dataset TinyDataset() {
  return LoadDataset(DatasetId::kDblp, /*scale_override=*/512.0);
}

// ---------------------------------------------------------------------------
// Aggregators & tolerance-mode PageRank
// ---------------------------------------------------------------------------

TEST(AggregatorTest, ToleranceStopsPageRankEarly) {
  Dataset dataset = TinyDataset();
  Partitioning partition =
      HashPartitioner().Partition(dataset.graph, 4);
  TaskContext context{&dataset.graph, &partition, 1.0, false};

  EngineOptions options;
  options.cluster = RelaxedCluster(4);
  options.profile = ProfileFor(SystemKind::kPregelPlus);

  PageRankProgram::Params fixed;
  fixed.iterations = 60;
  PageRankProgram fixed_program(context, fixed);
  SyncEngine fixed_engine(dataset.graph, partition, options);
  auto fixed_result = fixed_engine.Run(fixed_program);
  ASSERT_TRUE(fixed_result.ok());
  EXPECT_EQ(fixed_result.value().num_rounds, 61u);

  PageRankProgram::Params tolerant = fixed;
  tolerant.tolerance = 1e-4;
  PageRankProgram tolerant_program(context, tolerant);
  SyncEngine tolerant_engine(dataset.graph, partition, options);
  auto tolerant_result = tolerant_engine.Run(tolerant_program);
  ASSERT_TRUE(tolerant_result.ok());
  // Convergence fires well before the cap...
  EXPECT_LT(tolerant_result.value().num_rounds, 40u);
  EXPECT_GT(tolerant_result.value().num_rounds, 5u);
  // ...without materially changing the answer.
  double l1 = 0.0;
  for (VertexId v = 0; v < dataset.graph.NumVertices(); ++v) {
    l1 += std::fabs(fixed_program.Rank(v) - tolerant_program.Rank(v));
  }
  EXPECT_LT(l1, 1e-3);
}

// ---------------------------------------------------------------------------
// Batch-count search
// ---------------------------------------------------------------------------

TEST(BatchSearchTest, FindsInteriorOptimum) {
  // DBLP at scale 64 with Galaxy-8 and W=10240: the doubling sweep in the
  // integration tests puts the optimum at 2-4 batches; the search must
  // land there and never pick the overloading 1-batch setting.
  Dataset dataset = LoadDataset(DatasetId::kDblp, 64.0);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8();
  BpprTask task;
  auto search = FindOptimalBatchCount(dataset, options, task, 10240.0);
  ASSERT_TRUE(search.ok()) << search.status().ToString();
  EXPECT_GE(search.value().best_batches, 2u);
  EXPECT_LE(search.value().best_batches, 8u);
  EXPECT_GT(search.value().probes.size(), 3u);
  // The probe list records the overloaded Full-Parallelism attempt.
  bool saw_overload = false;
  for (const BatchProbe& probe : search.value().probes) {
    if (probe.batches == 1) saw_overload = probe.overloaded;
  }
  EXPECT_TRUE(saw_overload);
}

TEST(BatchSearchTest, LightWorkloadPrefersFullParallelism) {
  Dataset dataset = TinyDataset();
  RunnerOptions options;
  options.cluster = RelaxedCluster(4);
  BpprTask task;
  auto search = FindOptimalBatchCount(dataset, options, task, 64.0);
  ASSERT_TRUE(search.ok());
  EXPECT_EQ(search.value().best_batches, 1u);
}

TEST(BatchSearchTest, RejectsBadArguments) {
  Dataset dataset = TinyDataset();
  RunnerOptions options;
  options.cluster = RelaxedCluster(2);
  BpprTask task;
  EXPECT_FALSE(FindOptimalBatchCount(dataset, options, task, 0.0).ok());
  BatchSearchOptions bad;
  bad.max_batches = 0;
  EXPECT_FALSE(
      FindOptimalBatchCount(dataset, options, task, 64.0, bad).ok());
}

// ---------------------------------------------------------------------------
// Source-batched BPPR (Section 4.9 alternative workload semantics)
// ---------------------------------------------------------------------------

TEST(BpprSourceBatchTest, ConservesSimulatedWalks) {
  Dataset dataset = TinyDataset();
  Partitioning partition = HashPartitioner().Partition(dataset.graph, 4);
  TaskContext context{&dataset.graph, &partition, 1.0, false};
  BpprSourceBatchTask::Params params;
  params.walks_per_source = 500;
  params.max_sampled_sources = 8;
  BpprSourceBatchProgram program(context, /*num_queries=*/64, params, 9);
  EXPECT_DOUBLE_EQ(program.extrapolation(), 8.0);

  EngineOptions options;
  options.cluster = RelaxedCluster(4);
  options.profile = ProfileFor(SystemKind::kPregelPlus);
  SyncEngine engine(dataset.graph, partition, options);
  ASSERT_TRUE(engine.Run(program).ok());
  // Every physically simulated walk (8 sampled sources x 500) terminates.
  EXPECT_EQ(program.TotalStopped(), 8u * 500u);
}

TEST(BpprSourceBatchTest, WorkloadScalesMessagesLinearly) {
  Dataset dataset = TinyDataset();
  RunnerOptions options;
  options.cluster = RelaxedCluster(4);
  BpprSourceBatchTask task;
  MultiProcessingRunner runner_a(dataset, options);
  auto small =
      runner_a.Run(task, BatchSchedule::FullParallelism(64)).value();
  MultiProcessingRunner runner_b(dataset, options);
  auto large =
      runner_b.Run(task, BatchSchedule::FullParallelism(640)).value();
  EXPECT_NEAR(large.total_messages, 10.0 * small.total_messages,
              0.2 * large.total_messages);
}

TEST(BpprSourceBatchTest, RejectsBroadcastFlavor) {
  Dataset dataset = TinyDataset();
  Partitioning partition = HashPartitioner().Partition(dataset.graph, 2);
  TaskContext context{&dataset.graph, &partition, 1.0, false};
  BpprSourceBatchTask task;
  EXPECT_FALSE(
      task.MakeProgram(context, ProgramFlavor::kBroadcast, 8, 1).ok());
}

// ---------------------------------------------------------------------------
// Superstep splitting (Giraph sub-steps)
// ---------------------------------------------------------------------------

TEST(SuperstepSplitTest, CapsBufferMemoryAtThePriceOfBarriers) {
  Dataset dataset = LoadDataset(DatasetId::kDblp, 64.0);
  BpprTask task;
  auto run = [&](double threshold) {
    RunnerOptions options;
    options.cluster = ClusterSpec::Galaxy8();
    options.system = SystemKind::kGiraph;
    SystemProfile profile = ProfileFor(SystemKind::kGiraph);
    profile.superstep_split_threshold_bytes = threshold;
    options.profile_override = profile;
    MultiProcessingRunner runner(dataset, options);
    auto report =
        runner.Run(task, BatchSchedule::FullParallelism(2048));
    EXPECT_TRUE(report.ok());
    return report.value_or(RunReport{});
  };
  RunReport stock = run(0.0);
  ASSERT_FALSE(stock.overloaded);
  RunReport split = run(2.0 * (1ULL << 30));
  // Splitting caps the per-round buffer footprint...
  EXPECT_LT(split.peak_memory_bytes, stock.peak_memory_bytes);
  // ...while both runs move the same logical traffic.
  EXPECT_NEAR(split.total_messages, stock.total_messages,
              0.01 * stock.total_messages);
}

TEST(SuperstepSplitTest, RescuesOverloadingWorkload) {
  // A workload that overflows stock Giraph completes with sub-steps.
  Dataset dataset = LoadDataset(DatasetId::kDblp, 64.0);
  BpprTask task;
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8();
  options.system = SystemKind::kGiraph;
  MultiProcessingRunner stock_runner(dataset, options);
  auto stock =
      stock_runner.Run(task, BatchSchedule::FullParallelism(8192));
  ASSERT_TRUE(stock.ok());
  EXPECT_TRUE(stock.value().overloaded);

  SystemProfile profile = ProfileFor(SystemKind::kGiraph);
  profile.superstep_split_threshold_bytes = 1.5 * (1ULL << 30);
  options.profile_override = profile;
  MultiProcessingRunner split_runner(dataset, options);
  auto split =
      split_runner.Run(task, BatchSchedule::FullParallelism(8192));
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(split.value().overloaded);
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

TEST(ExportTest, JsonContainsKeyFields) {
  RunReport report;
  report.system = "Pregel+";
  report.dataset = "DBLP";
  report.task = "BPPR";
  report.cluster = "Galaxy-8";
  report.workload = 1024;
  BatchReport batch;
  batch.workload = 1024;
  batch.seconds = 173.3;
  batch.rounds = 90;
  report.Absorb(batch);
  std::string json = RunReportToJson(report);
  EXPECT_NE(json.find("\"system\":\"Pregel+\""), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"batches\":[{"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ExportTest, JsonEscapesSpecials) {
  using internal_export::JsonEscape;
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ExportTest, CsvRoundTripThroughFile) {
  std::vector<RoundStats> rounds(3);
  for (size_t i = 0; i < rounds.size(); ++i) {
    rounds[i].round = i;
    rounds[i].messages = 100.0 * (i + 1);
    rounds[i].total_seconds = 1.5 * (i + 1);
  }
  std::string path = ::testing::TempDir() + "/rounds.csv";
  ASSERT_TRUE(WriteRoundStatsCsv(rounds, path).ok());
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4);  // Header + 3 rounds.
  EXPECT_FALSE(WriteRoundStatsCsv(rounds, "/nonexistent/dir/x.csv").ok());
}

TEST(ExportTest, JsonWriterToFile) {
  RunReport report;
  report.system = "GraphD";
  std::string path = ::testing::TempDir() + "/report.json";
  ASSERT_TRUE(WriteRunReportJson(report, path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("GraphD"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ASCII chart
// ---------------------------------------------------------------------------

TEST(AsciiChartTest, RendersBarsProportionally) {
  std::vector<ChartBar> bars = {
      {"1-batch", 100.0, false, false},
      {"2-batch", 50.0, false, true},
      {"4-batch", 0.0, false, false},
  };
  std::string chart = RenderBarChart(bars, 20);
  // Longest bar fills the width; half-value bar is half as long.
  EXPECT_NE(chart.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(chart.find(std::string(10, '#') + " "), std::string::npos);
  EXPECT_NE(chart.find("2-batch *|"), std::string::npos);
  EXPECT_NE(chart.find("100.0s"), std::string::npos);
}

TEST(AsciiChartTest, SaturatedBarsMarkOverload) {
  std::vector<ChartBar> bars = {
      {"1-batch", 6000.0, true, false},
      {"2-batch", 10.0, false, true},
  };
  std::string chart = RenderBarChart(bars, 10);
  EXPECT_NE(chart.find("> Overload"), std::string::npos);
}

TEST(AsciiChartTest, EmptyInput) {
  EXPECT_EQ(RenderBarChart({}), "");
}

}  // namespace
}  // namespace vcmp
