#include "common/string_util.h"

#include <gtest/gtest.h>

namespace vcmp {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f s=%s", 3, 2.5, "hi"), "x=3 y=2.5 s=hi");
  EXPECT_EQ(StrFormat("empty"), "empty");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(SplitStringTest, SplitsAndDropsEmpties) {
  EXPECT_EQ(SplitString("a,b,,c", ","),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("  x y ", " "),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(SplitString("", ",").empty());
  EXPECT_EQ(SplitString("one", ","), (std::vector<std::string>{"one"}));
}

TEST(FormatSecondsTest, PaperStyleRendering) {
  EXPECT_EQ(FormatSeconds(173.34), "173s");
  EXPECT_EQ(FormatSeconds(12.3), "12.3s");
  EXPECT_EQ(FormatSeconds(1860.0), "31min");
  EXPECT_EQ(FormatSeconds(-1.0), "Overload");
}

TEST(FormatBytesTest, PicksUnits) {
  EXPECT_EQ(FormatBytes(12.0), "12B");
  EXPECT_EQ(FormatBytes(4.0 * 1024), "4KB");
  EXPECT_EQ(FormatBytes(63.7 * 1024 * 1024), "64MB");
  EXPECT_EQ(FormatBytes(4.3 * 1024 * 1024 * 1024), "4.3GB");
}

TEST(FormatCountTest, PaperStyleCounts) {
  EXPECT_EQ(FormatCount(2048), "2048");
  EXPECT_EQ(FormatCount(63.7e6), "63.7M");
  EXPECT_EQ(FormatCount(1.5e9), "1.5B");
  EXPECT_EQ(FormatCount(281900), "281.9K");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("Pregel+(mirror)", "Pregel+"));
  EXPECT_FALSE(StartsWith("Pregel", "Pregel+"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace vcmp
