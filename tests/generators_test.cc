#include "graph/generators.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace vcmp {
namespace {

TEST(RmatTest, ProducesRequestedScale) {
  RmatParams params;
  params.num_vertices = 5000;
  params.num_edges = 40000;
  params.seed = 3;
  Graph graph = GenerateRmat(params);
  EXPECT_EQ(graph.NumVertices(), 5000u);
  // Symmetrized and deduplicated: between 1x and 2x the sampled count.
  EXPECT_GT(graph.NumEdges(), params.num_edges * 1.0);
  EXPECT_LE(graph.NumEdges(), params.num_edges * 2.0);
}

TEST(RmatTest, DeterministicForSeed) {
  RmatParams params;
  params.num_vertices = 1000;
  params.num_edges = 8000;
  params.seed = 11;
  Graph a = GenerateRmat(params);
  Graph b = GenerateRmat(params);
  EXPECT_EQ(a.targets(), b.targets());
  params.seed = 12;
  Graph c = GenerateRmat(params);
  EXPECT_NE(a.targets(), c.targets());
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatParams params;
  params.num_vertices = 1 << 14;
  params.num_edges = 1 << 17;
  params.seed = 5;
  Graph graph = GenerateRmat(params);
  // Heavy tail: the max degree should dwarf the average (social-graph
  // skew is what makes mirroring worthwhile).
  EXPECT_GT(static_cast<double>(graph.MaxDegree()),
            20.0 * graph.AverageDegree());
}

TEST(PreferentialAttachmentTest, MatchesTargetDegree) {
  PreferentialAttachmentParams params;
  params.num_vertices = 20000;
  params.edges_per_vertex = 3;
  params.seed = 2;
  Graph graph = GeneratePreferentialAttachment(params);
  EXPECT_EQ(graph.NumVertices(), 20000u);
  // Directed degree after symmetrisation ~ 2 * epv (minus dedup losses).
  EXPECT_NEAR(graph.AverageDegree(), 6.0, 1.0);
  EXPECT_GT(static_cast<double>(graph.MaxDegree()),
            5.0 * graph.AverageDegree());
}

TEST(ErdosRenyiTest, NoSkew) {
  ErdosRenyiParams params;
  params.num_vertices = 10000;
  params.num_edges = 80000;
  params.seed = 4;
  Graph graph = GenerateErdosRenyi(params);
  // Uniform model: max degree stays within a small factor of the mean.
  EXPECT_LT(static_cast<double>(graph.MaxDegree()),
            4.0 * graph.AverageDegree());
}

TEST(RingTest, ExactStructure) {
  Graph ring = GenerateRing(6, 1);
  EXPECT_EQ(ring.NumVertices(), 6u);
  EXPECT_EQ(ring.NumEdges(), 12u);  // Each vertex: successor + predecessor.
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(ring.OutDegree(v), 2u);
  }
  auto n0 = ring.Neighbors(0);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 5u);
}

TEST(RingTest, WiderChords) {
  Graph ring = GenerateRing(8, 2);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(ring.OutDegree(v), 4u);
  }
}

}  // namespace
}  // namespace vcmp
