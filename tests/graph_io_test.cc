#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace vcmp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, TextRoundTrip) {
  Graph original = GenerateRing(50, 2);
  std::string path = TempPath("ring.txt");
  ASSERT_TRUE(SaveEdgeListText(original, path).ok());
  auto loaded = LoadEdgeListText(path, /*symmetrize=*/false);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumVertices(), original.NumVertices());
  EXPECT_EQ(loaded.value().targets(), original.targets());
}

TEST(GraphIoTest, TextParsesCommentsAndSymmetrizes) {
  std::string path = TempPath("snap.txt");
  {
    std::ofstream out(path);
    out << "# SNAP-style header\n# more comments\n0\t1\n1 2\n";
  }
  auto loaded = LoadEdgeListText(path, /*symmetrize=*/true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumVertices(), 3u);
  EXPECT_EQ(loaded.value().NumEdges(), 4u);
}

TEST(GraphIoTest, TextRejectsGarbage) {
  std::string path = TempPath("garbage.txt");
  {
    std::ofstream out(path);
    out << "0\tnot_a_number\n";
  }
  EXPECT_FALSE(LoadEdgeListText(path).ok());
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadEdgeListText(TempPath("does_not_exist.txt")).ok());
  EXPECT_FALSE(LoadBinary(TempPath("does_not_exist.bin")).ok());
}

TEST(GraphIoTest, EmptyFileFails) {
  std::string path = TempPath("empty.txt");
  { std::ofstream out(path); }
  EXPECT_FALSE(LoadEdgeListText(path).ok());
}

TEST(GraphIoTest, BinaryRoundTrip) {
  ErdosRenyiParams params;
  params.num_vertices = 500;
  params.num_edges = 3000;
  params.seed = 8;
  Graph original = GenerateErdosRenyi(params);
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveBinary(original, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().offsets(), original.offsets());
  EXPECT_EQ(loaded.value().targets(), original.targets());
}

TEST(GraphIoTest, BinaryRejectsWrongMagic) {
  std::string path = TempPath("not_graph.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a vcmp graph file at all, no magic here";
  }
  EXPECT_FALSE(LoadBinary(path).ok());
}

TEST(GraphIoTest, BinaryRejectsTruncated) {
  Graph original = GenerateRing(100, 1);
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveBinary(original, path).ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_FALSE(LoadBinary(path).ok());
}

}  // namespace
}  // namespace vcmp
