#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "engine/sync_engine.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "tasks/bkhs.h"
#include "tasks/bppr.h"
#include "tasks/mssp.h"
#include "tasks/pagerank.h"
#include "tasks/task_registry.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::BfsDistances;
using testing_util::kUnreachedHops;
using testing_util::L1Distance;
using testing_util::RelaxedCluster;
using testing_util::ReferencePageRank;
using testing_util::ReferencePpr;

struct Fixture {
  Graph graph;
  Partitioning partition;
  TaskContext context;

  explicit Fixture(Graph g, uint32_t machines = 4) : graph(std::move(g)) {
    partition = HashPartitioner().Partition(graph, machines);
    context = TaskContext{&graph, &partition, 1.0};
  }

  EngineOptions Options() const {
    EngineOptions options;
    options.cluster = RelaxedCluster(partition.num_machines);
    options.profile = ProfileFor(SystemKind::kPregelPlus);
    return options;
  }

  EngineResult RunProgram(VertexProgram& program,
                          EngineOptions options) const {
    SyncEngine engine(graph, partition, options);
    auto result = engine.Run(program);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value_or(EngineResult{});
  }
};

Graph SmallSocialGraph() {
  ErdosRenyiParams params;
  params.num_vertices = 300;
  params.num_edges = 1500;
  params.seed = 33;
  return GenerateErdosRenyi(params);
}

// ---------------------------------------------------------------------------
// BPPR
// ---------------------------------------------------------------------------

TEST(BpprTest, CountingModeConservesWalks) {
  Fixture fx(SmallSocialGraph());
  BpprTask task;
  auto program = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                  /*workload=*/50, /*seed=*/7);
  ASSERT_TRUE(program.ok());
  auto* bppr = static_cast<BpprCountingProgram*>(program.value().get());
  fx.RunProgram(*bppr, fx.Options());
  // Every started walk must terminate somewhere, exactly once.
  EXPECT_EQ(bppr->TotalStopped(), 50u * fx.graph.NumVertices());
}

TEST(BpprTest, PushModeConservesMass) {
  Fixture fx(SmallSocialGraph());
  BpprTask task;
  auto program = task.MakeProgram(fx.context, ProgramFlavor::kBroadcast,
                                  /*workload=*/50, /*seed=*/7);
  ASSERT_TRUE(program.ok());
  auto* push = static_cast<BpprPushProgram*>(program.value().get());
  EngineOptions options = fx.Options();
  options.profile = ProfileFor(SystemKind::kPregelPlusMirror);
  fx.RunProgram(*push, options);
  double expected = 50.0 * fx.graph.NumVertices();
  EXPECT_NEAR(push->TotalStoppedMass(), expected, expected * 1e-9);
}

TEST(BpprTest, ExactModeMatchesPowerIterationReference) {
  // Small graph, many walks: the Monte-Carlo PPR estimate for a fixed
  // source must converge to the analytic alpha-decay distribution.
  ErdosRenyiParams params;
  params.num_vertices = 40;
  params.num_edges = 160;
  params.seed = 9;
  Fixture fx(GenerateErdosRenyi(params), 2);

  const double alpha = 0.2;
  BpprExactProgram program(fx.context, /*walks_per_vertex=*/20000, alpha,
                           /*seed=*/123);
  fx.RunProgram(program, fx.Options());

  VertexId source = 3;
  std::vector<double> reference = ReferencePpr(fx.graph, source, alpha);
  std::vector<double> estimate(fx.graph.NumVertices());
  for (VertexId u = 0; u < fx.graph.NumVertices(); ++u) {
    estimate[u] = program.Ppr(source, u);
  }
  EXPECT_LT(L1Distance(estimate, reference), 0.05);
}

TEST(BpprTest, CountingAndExactAgreeInAggregate) {
  // The counting program pools sources; its terminal distribution must
  // match the sum of per-source references.
  ErdosRenyiParams params;
  params.num_vertices = 30;
  params.num_edges = 150;
  params.seed = 14;
  Fixture fx(GenerateErdosRenyi(params), 2);
  const double alpha = 0.2;
  const uint64_t walks = 20000;

  BpprTask task;
  auto program = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                  walks, /*seed=*/5);
  ASSERT_TRUE(program.ok());
  auto* counting = static_cast<BpprCountingProgram*>(program.value().get());
  fx.RunProgram(*counting, fx.Options());

  std::vector<double> reference(fx.graph.NumVertices(), 0.0);
  for (VertexId s = 0; s < fx.graph.NumVertices(); ++s) {
    std::vector<double> ppr = ReferencePpr(fx.graph, s, alpha);
    for (VertexId u = 0; u < fx.graph.NumVertices(); ++u) {
      reference[u] += ppr[u];
    }
  }
  // Normalize both to probability distributions over terminal vertices.
  double total = static_cast<double>(walks) * fx.graph.NumVertices();
  std::vector<double> estimate(fx.graph.NumVertices());
  for (VertexId u = 0; u < fx.graph.NumVertices(); ++u) {
    estimate[u] = static_cast<double>(counting->StoppedAt(u)) / total;
  }
  for (double& r : reference) r /= fx.graph.NumVertices();
  EXPECT_LT(L1Distance(estimate, reference), 0.02);
}

TEST(BpprTest, PushAndCountingAgreeOnExpectation) {
  ErdosRenyiParams params;
  params.num_vertices = 30;
  params.num_edges = 150;
  params.seed = 14;
  Fixture fx(GenerateErdosRenyi(params), 2);
  const uint64_t walks = 40000;
  BpprTask task;

  auto counting_program = task.MakeProgram(
      fx.context, ProgramFlavor::kPointToPoint, walks, 5);
  ASSERT_TRUE(counting_program.ok());
  auto* counting =
      static_cast<BpprCountingProgram*>(counting_program.value().get());
  fx.RunProgram(*counting, fx.Options());

  auto push_program =
      task.MakeProgram(fx.context, ProgramFlavor::kBroadcast, walks, 5);
  ASSERT_TRUE(push_program.ok());
  auto* push = static_cast<BpprPushProgram*>(push_program.value().get());
  EngineOptions mirror_options = fx.Options();
  mirror_options.profile = ProfileFor(SystemKind::kPregelPlusMirror);
  fx.RunProgram(*push, mirror_options);

  // The fractional push computes the expectation of the Monte-Carlo
  // process: per-vertex terminal masses must agree within sampling noise.
  double total = static_cast<double>(walks) * fx.graph.NumVertices();
  double l1 = 0.0;
  for (VertexId u = 0; u < fx.graph.NumVertices(); ++u) {
    l1 += std::fabs(static_cast<double>(counting->StoppedAt(u)) -
                    push->StoppedMassAt(u)) /
          total;
  }
  EXPECT_LT(l1, 0.05);
}

TEST(BpprTest, ResidualGrowsWithWorkload) {
  Fixture fx(SmallSocialGraph());
  BpprTask task;
  auto small = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                10, 3);
  auto large = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                100, 3);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EngineResult small_result = fx.RunProgram(*small.value(), fx.Options());
  EngineResult large_result = fx.RunProgram(*large.value(), fx.Options());
  // Residual records flow through MessageSink::AddResidualBytes into the
  // engine's per-machine ledger.
  double small_residual = 0.0;
  double large_residual = 0.0;
  for (uint32_t m = 0; m < fx.partition.num_machines; ++m) {
    small_residual += small_result.residual_bytes_per_machine[m];
    large_residual += large_result.residual_bytes_per_machine[m];
  }
  EXPECT_NEAR(large_residual, 10.0 * small_residual,
              0.01 * large_residual);
}

TEST(BpprTest, RejectsBadArguments) {
  Fixture fx(GenerateRing(10, 1), 2);
  BpprTask task;
  EXPECT_FALSE(
      task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint, 0, 1).ok());
  TaskContext empty;
  EXPECT_FALSE(
      task.MakeProgram(empty, ProgramFlavor::kPointToPoint, 10, 1).ok());
}

// ---------------------------------------------------------------------------
// MSSP
// ---------------------------------------------------------------------------

TEST(MsspTest, DistancesMatchBfsReference) {
  Fixture fx(SmallSocialGraph());
  MsspTask task;
  auto program = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                  /*workload=*/8, /*seed=*/21);
  ASSERT_TRUE(program.ok());
  auto* mssp = static_cast<MsspProgram*>(program.value().get());
  ASSERT_EQ(mssp->num_samples(), 8u);  // workload <= max samples: exact.
  EXPECT_DOUBLE_EQ(mssp->extrapolation(), 1.0);
  fx.RunProgram(*mssp, fx.Options());

  for (uint32_t sample = 0; sample < mssp->num_samples(); ++sample) {
    std::vector<uint32_t> reference =
        BfsDistances(fx.graph, mssp->SourceOf(sample));
    for (VertexId v = 0; v < fx.graph.NumVertices(); ++v) {
      uint32_t expected = reference[v] == kUnreachedHops
                              ? MsspProgram::kUnreached
                              : reference[v];
      ASSERT_EQ(mssp->Distance(sample, v), expected)
          << "sample " << sample << " vertex " << v;
    }
  }
}

TEST(MsspTest, BroadcastFlavorMatchesPointToPoint) {
  Fixture fx(SmallSocialGraph());
  MsspTask task;
  auto p2p = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint, 4,
                              77);
  auto bcast =
      task.MakeProgram(fx.context, ProgramFlavor::kBroadcast, 4, 77);
  ASSERT_TRUE(p2p.ok());
  ASSERT_TRUE(bcast.ok());
  auto* a = static_cast<MsspProgram*>(p2p.value().get());
  auto* b = static_cast<MsspProgram*>(bcast.value().get());
  fx.RunProgram(*a, fx.Options());
  EngineOptions mirror_options = fx.Options();
  mirror_options.profile = ProfileFor(SystemKind::kPregelPlusMirror);
  fx.RunProgram(*b, mirror_options);
  for (uint32_t sample = 0; sample < a->num_samples(); ++sample) {
    for (VertexId v = 0; v < fx.graph.NumVertices(); ++v) {
      ASSERT_EQ(a->Distance(sample, v), b->Distance(sample, v));
    }
  }
}

TEST(MsspTest, ExtrapolationScalesStatistics) {
  Fixture fx(SmallSocialGraph());
  MsspTask::Params params;
  params.max_sampled_sources = 4;
  MsspTask task(params);
  auto program = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                  /*workload=*/400, /*seed=*/3);
  ASSERT_TRUE(program.ok());
  auto* mssp = static_cast<MsspProgram*>(program.value().get());
  EXPECT_DOUBLE_EQ(mssp->extrapolation(), 100.0);
  EngineResult result = fx.RunProgram(*mssp, fx.Options());
  // Logical messages are 100x the physically routed sample messages.
  auto exact = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                /*workload=*/4, /*seed=*/3);
  ASSERT_TRUE(exact.ok());
  EngineResult exact_result = fx.RunProgram(*exact.value(), fx.Options());
  EXPECT_NEAR(result.total_messages,
              100.0 * exact_result.total_messages,
              1e-6 * result.total_messages);
}

TEST(MsspTest, DistinctSources) {
  Fixture fx(SmallSocialGraph());
  MsspTask task;
  auto program = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                  16, 5);
  ASSERT_TRUE(program.ok());
  auto* mssp = static_cast<MsspProgram*>(program.value().get());
  std::vector<VertexId> sources;
  for (uint32_t i = 0; i < mssp->num_samples(); ++i) {
    sources.push_back(mssp->SourceOf(i));
  }
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(std::unique(sources.begin(), sources.end()), sources.end());
}

// ---------------------------------------------------------------------------
// BKHS
// ---------------------------------------------------------------------------

TEST(BkhsTest, CountsMatchBfsReference) {
  Fixture fx(SmallSocialGraph());
  BkhsTask::Params params;
  params.k = 2;
  BkhsTask task(params);
  auto program = task.MakeProgram(fx.context, ProgramFlavor::kPointToPoint,
                                  /*workload=*/6, /*seed=*/31);
  ASSERT_TRUE(program.ok());
  auto* bkhs = static_cast<BkhsProgram*>(program.value().get());
  EngineResult result = fx.RunProgram(*bkhs, fx.Options());

  for (uint32_t sample = 0; sample < bkhs->num_samples(); ++sample) {
    std::vector<uint32_t> dist =
        BfsDistances(fx.graph, bkhs->SourceOf(sample));
    uint64_t expected = 0;
    for (VertexId v = 0; v < fx.graph.NumVertices(); ++v) {
      if (v != bkhs->SourceOf(sample) && dist[v] != kUnreachedHops &&
          dist[v] <= params.k) {
        ++expected;
      }
    }
    EXPECT_EQ(bkhs->KHopCount(sample), expected) << "sample " << sample;
  }
  // k+1 = 3 rounds plus the seeding superstep at most.
  EXPECT_LE(result.num_rounds, 4u);
}

TEST(BkhsTest, LargerRadiusFindsMore) {
  Fixture fx(SmallSocialGraph());
  uint64_t counts[2];
  for (uint32_t k : {1u, 2u}) {
    BkhsTask::Params params;
    params.k = k;
    BkhsTask task(params);
    auto program = task.MakeProgram(fx.context,
                                    ProgramFlavor::kPointToPoint, 4, 13);
    ASSERT_TRUE(program.ok());
    auto* bkhs = static_cast<BkhsProgram*>(program.value().get());
    fx.RunProgram(*bkhs, fx.Options());
    uint64_t total = 0;
    for (uint32_t s = 0; s < bkhs->num_samples(); ++s) {
      total += bkhs->KHopCount(s);
    }
    counts[k - 1] = total;
  }
  EXPECT_GT(counts[1], counts[0]);
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

TEST(PageRankTest, MatchesPowerIterationReference) {
  Fixture fx(SmallSocialGraph(), 2);
  PageRankProgram::Params params;
  params.iterations = 40;
  PageRankProgram program(fx.context, params);
  fx.RunProgram(program, fx.Options());

  std::vector<double> reference =
      ReferencePageRank(fx.graph, params.damping, params.iterations);
  double l1 = 0.0;
  for (VertexId v = 0; v < fx.graph.NumVertices(); ++v) {
    // Isolated vertices never receive messages in the vertex-centric
    // engine and keep their seed rank; skip them (degree-0 only).
    if (fx.graph.OutDegree(v) == 0) continue;
    l1 += std::fabs(program.Rank(v) - reference[v]);
  }
  EXPECT_LT(l1, 1e-6);
}

TEST(PageRankTest, RunsExactlyConfiguredRounds) {
  Fixture fx(GenerateRing(20, 1), 2);
  PageRankProgram::Params params;
  params.iterations = 10;
  PageRankProgram program(fx.context, params);
  EngineResult result = fx.RunProgram(program, fx.Options());
  EXPECT_EQ(result.num_rounds, 11u);  // Seed + 10 update rounds.
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(TaskRegistryTest, CreatesAllPaperTasks) {
  for (const std::string name : {"BPPR", "MSSP", "BKHS", "PageRank"}) {
    auto task = MakeTask(name);
    ASSERT_TRUE(task.ok()) << name;
    EXPECT_EQ(task.value()->name(), name);
  }
  EXPECT_FALSE(MakeTask("SSSP").ok());
  EXPECT_EQ(BenchmarkTaskNames().size(), 3u);
}

}  // namespace
}  // namespace vcmp
