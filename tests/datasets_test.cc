#include "graph/datasets.h"

#include <gtest/gtest.h>

namespace vcmp {
namespace {

TEST(DatasetsTest, RegistryMatchesPaperTable1) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_STREQ(all[0].name, "Web-St");
  EXPECT_STREQ(all[1].name, "DBLP");
  EXPECT_STREQ(all[5].name, "Friendster");
  EXPECT_EQ(all[1].paper_nodes, 613'600u);
  EXPECT_EQ(all[4].paper_edges, 1'500'000'000u);
}

TEST(DatasetsTest, FindByName) {
  auto found = FindDataset("Orkut");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().id, DatasetId::kOrkut);
  EXPECT_FALSE(FindDataset("orkut").ok());
  EXPECT_FALSE(FindDataset("NoSuch").ok());
}

TEST(DatasetsTest, LoadedStandInMatchesScaledSize) {
  Dataset dblp = LoadDataset(DatasetId::kDblp, /*scale_override=*/16.0);
  EXPECT_EQ(dblp.scale, 16.0);
  double expected_nodes = 613'600.0 / 16.0;
  EXPECT_NEAR(dblp.graph.NumVertices(), expected_nodes,
              expected_nodes * 0.01);
  // Average degree approximates the paper's value.
  EXPECT_NEAR(dblp.graph.AverageDegree(), dblp.info.paper_avg_degree, 2.5);
  // Paper-scale accounting restores the original vertex count.
  EXPECT_NEAR(dblp.PaperScaleVertices(), 613'600.0, 613'600.0 * 0.01);
}

TEST(DatasetsTest, DeterministicAcrossLoads) {
  Dataset a = LoadDataset(DatasetId::kWebSt, 8.0);
  Dataset b = LoadDataset(DatasetId::kWebSt, 8.0);
  EXPECT_EQ(a.graph.targets(), b.graph.targets());
}

TEST(DatasetsTest, TwitterStandInIsSkewed) {
  Dataset twitter = LoadDataset(DatasetId::kTwitter, 2048.0);
  EXPECT_GT(static_cast<double>(twitter.graph.MaxDegree()),
            10.0 * twitter.graph.AverageDegree());
}

}  // namespace
}  // namespace vcmp
