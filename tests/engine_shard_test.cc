// Tests of the vertex-sharded compute phase: the work-stealing parallel
// loop, the single thread-resolution policy both engines share, and the
// regression at the heart of the shard design — results are bit-identical
// across thread counts AND shard counts AND stealing on/off, even when
// one machine owns almost all of the inbox (the skew that motivates
// stealing in the first place).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/gas_engine.h"
#include "engine/sync_engine.h"
#include "graph/graph_builder.h"
#include "graph/partition.h"
#include "tasks/gas_tasks.h"
#include "tasks/task_registry.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

// --- ParallelForStealable --------------------------------------------

TEST(ParallelForStealableTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelForStealable(1000,
                            [&hits](uint32_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForStealableTest, ZeroWorkersExecutesInline) {
  ThreadPool pool(0);
  std::vector<int> hits(64, 0);  // Not atomic: single participant.
  pool.ParallelForStealable(64, [&hits](uint32_t i) { ++hits[i]; });
  for (int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(ParallelForStealableTest, MoreParticipantsThanIndices) {
  ThreadPool pool(7);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelForStealable(3, [&hits](uint32_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForStealableTest, SkewedIndexCostsStillCoverEverything) {
  // One pathologically heavy index: the owners of the light indices drain
  // their own work and steal the rest; every index must still run once.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(256);
  pool.ParallelForStealable(256, [&hits](uint32_t i) {
    if (i == 0) {
      // vcmp:lint-allow(C2, local busy-loop sink defeating the optimizer, not synchronization)
      volatile double sink = 0.0;
      for (int k = 0; k < 200000; ++k) sink = sink + k;
    }
    hits[i].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForStealableTest, ReusableAcrossManyBarriers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelForStealable(7, [&total](uint32_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 7);
}

// --- Thread resolution policy ----------------------------------------

// Both engines turn (execution_threads, clamp_threads_to_hardware) into a
// worker count through this single policy point, so the clamp cannot
// behave differently between SyncEngine and GasEngine.
TEST(ResolveThreadsTest, ZeroMeansHardwareConcurrency) {
  EXPECT_EQ(ThreadPool::ResolveThreads(0, false), ThreadPool::HardwareThreads());
  EXPECT_EQ(ThreadPool::ResolveThreads(0, true), ThreadPool::HardwareThreads());
}

TEST(ResolveThreadsTest, ClampCapsAtHardwareOnlyWhenAsked) {
  const uint32_t hw = ThreadPool::HardwareThreads();
  EXPECT_EQ(ThreadPool::ResolveThreads(hw + 64, true), hw);
  EXPECT_EQ(ThreadPool::ResolveThreads(hw + 64, false), hw + 64);
  EXPECT_EQ(ThreadPool::ResolveThreads(1, true), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1, false), 1u);
}

// --- Skewed-inbox fixture --------------------------------------------

constexpr VertexId kSkewVertices = 2048;
constexpr uint32_t kSkewMachines = 8;
constexpr VertexId kSkewHubs = 64;  // All on machine 0.

// Power-law-ish directed graph where nearly every edge points at one of
// the 64 hub vertices, and a block partition puts every hub on machine 0:
// machine 0 then receives the overwhelming majority of each round's
// messages while the other seven machines stay nearly idle. This is the
// skew that makes a static shard-per-thread split pathological and is
// exactly the case work stealing exists for.
Graph BuildSkewedGraph() {
  GraphBuilder builder(kSkewVertices);
  Rng rng(97);
  for (VertexId v = 0; v < kSkewVertices; ++v) {
    for (int e = 0; e < 6; ++e) {
      builder.AddEdge(v, static_cast<VertexId>(rng.NextBounded(kSkewHubs)));
    }
    builder.AddEdge(v, static_cast<VertexId>(rng.NextBounded(kSkewVertices)));
  }
  GraphBuildOptions options;
  options.symmetrize = false;  // Keep the skew directed at the hubs.
  return builder.Build(options);
}

Partitioning BuildSkewedPartition() {
  Partitioning partition;
  partition.num_machines = kSkewMachines;
  partition.assignment.resize(kSkewVertices);
  const VertexId per_machine = kSkewVertices / kSkewMachines;
  for (VertexId v = 0; v < kSkewVertices; ++v) {
    partition.assignment[v] = static_cast<uint32_t>(v / per_machine);
  }
  return partition;
}

struct SkewedFixture {
  Graph graph;
  Partitioning partition;
  SkewedFixture() : graph(BuildSkewedGraph()), partition(BuildSkewedPartition()) {}

  static const SkewedFixture& Get() {
    static const SkewedFixture* fixture = new SkewedFixture();
    return *fixture;
  }

  /// Fraction of directed edges whose target lives on machine 0. Walks
  /// split uniformly over out-neighbours, so this is also the expected
  /// fraction of messages machine 0 receives each round.
  double FractionTargetingMachine0() const {
    uint64_t to_zero = 0;
    uint64_t total = 0;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      for (VertexId u : graph.Neighbors(v)) {
        total += 1;
        if (partition.MachineOf(u) == 0) to_zero += 1;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(to_zero) /
                                  static_cast<double>(total);
  }
};

TEST(ShardSkewFixtureTest, MachineZeroReceivesOverEightyPercent) {
  EXPECT_GT(SkewedFixture::Get().FractionTargetingMachine0(), 0.8);
}

// --- Sync engine: bit-identical across threads × shards × stealing ---

EngineResult RunSkewedBatch(SystemKind system, uint32_t threads,
                            uint32_t shards, bool stealing) {
  const SkewedFixture& fx = SkewedFixture::Get();
  EngineOptions options;
  options.cluster = RelaxedCluster(kSkewMachines);
  options.profile = ProfileFor(system);
  options.execution_threads = threads;
  options.clamp_threads_to_hardware = false;  // Exercise the exact count.
  options.compute_shards_per_machine = shards;
  options.enable_work_stealing = stealing;
  SyncEngine engine(fx.graph, fx.partition, options);

  TaskContext context{&fx.graph, &fx.partition, 1.0,
                      options.profile.combines_messages};
  auto task = MakeTask("BPPR");
  EXPECT_TRUE(task.ok());
  const double workload = options.profile.mirroring ? 8.0 : 256.0;
  auto program = task.value()->MakeProgram(
      context,
      options.profile.mirroring ? ProgramFlavor::kBroadcast
                                : ProgramFlavor::kPointToPoint,
      workload, /*seed=*/23);
  EXPECT_TRUE(program.ok());
  auto result = engine.Run(*program.value());
  EXPECT_TRUE(result.ok());
  return result.value_or(EngineResult{});
}

void ExpectBitIdentical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.num_rounds, b.num_rounds);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.peak_residual_bytes, b.peak_residual_bytes);
  EXPECT_EQ(a.peak_buffered_bytes, b.peak_buffered_bytes);
  ASSERT_EQ(a.residual_bytes_per_machine.size(),
            b.residual_bytes_per_machine.size());
  for (size_t m = 0; m < a.residual_bytes_per_machine.size(); ++m) {
    EXPECT_EQ(a.residual_bytes_per_machine[m], b.residual_bytes_per_machine[m])
        << "machine " << m;
  }
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].messages, b.rounds[i].messages) << "round " << i;
    EXPECT_EQ(a.rounds[i].cross_machine_bytes, b.rounds[i].cross_machine_bytes)
        << "round " << i;
  }
}

TEST(ShardDeterminismTest, SkewedInboxIdenticalAcrossThreadsShardsStealing) {
  // The full matrix from the determinism contract: every thread count in
  // {1, 2, 4, 8} × every shard count in {1, 4, 64} × stealing on/off must
  // reproduce the single-thread single-shard run bit for bit.
  const EngineResult baseline =
      RunSkewedBatch(SystemKind::kPregelPlus, 1, 1, false);
  EXPECT_GT(baseline.num_rounds, 1u);
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (uint32_t shards : {1u, 4u, 64u}) {
      for (bool stealing : {false, true}) {
        if (threads == 1 && shards == 1 && !stealing) continue;
        SCOPED_TRACE(testing::Message() << "threads=" << threads
                                        << " shards=" << shards
                                        << " stealing=" << stealing);
        ExpectBitIdentical(
            baseline,
            RunSkewedBatch(SystemKind::kPregelPlus, threads, shards, stealing));
      }
    }
  }
}

TEST(ShardDeterminismTest, MirrorProfileIdenticalOnSkewedInbox) {
  // Broadcast + mirror delivery exercises the mirror merge path.
  const EngineResult baseline =
      RunSkewedBatch(SystemKind::kPregelPlusMirror, 1, 1, false);
  EXPECT_GT(baseline.num_rounds, 1u);
  for (uint32_t threads : {1u, 4u}) {
    for (uint32_t shards : {4u, 64u}) {
      for (bool stealing : {false, true}) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads
                                        << " shards=" << shards
                                        << " stealing=" << stealing);
        ExpectBitIdentical(baseline,
                           RunSkewedBatch(SystemKind::kPregelPlusMirror,
                                          threads, shards, stealing));
      }
    }
  }
}

TEST(ShardDeterminismTest, OutOfCoreProfileIdenticalOnSkewedInbox) {
  // GraphD's plain (no combiner, no mirrors) merge path.
  const EngineResult baseline =
      RunSkewedBatch(SystemKind::kGraphD, 1, 1, false);
  EXPECT_GT(baseline.num_rounds, 1u);
  for (uint32_t shards : {4u, 64u}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ExpectBitIdentical(baseline,
                       RunSkewedBatch(SystemKind::kGraphD, 8, shards, true));
  }
}

// --- GAS engine: sharded sync Process loop ---------------------------

GasResult RunGasSkewed(uint32_t threads, uint32_t shards, bool stealing,
                       uint64_t* total_stopped) {
  const SkewedFixture& fx = SkewedFixture::Get();
  GasOptions options;
  options.cluster = RelaxedCluster(kSkewMachines);
  options.profile = ProfileFor(SystemKind::kGraphLab);
  options.execution_threads = threads;
  options.clamp_threads_to_hardware = false;
  options.compute_shards = shards;
  options.enable_work_stealing = stealing;
  GasBpprWalks program(fx.graph, fx.partition, /*walks_per_vertex=*/32,
                       GasBpprWalks::Params{}, /*seed=*/13);
  GasEngine engine(fx.graph, fx.partition, options);
  auto result = engine.Run(program);
  EXPECT_TRUE(result.ok());
  if (total_stopped != nullptr) *total_stopped = program.TotalStopped();
  return result.value_or(GasResult{});
}

void ExpectGasIdentical(const GasResult& a, const GasResult& b) {
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.network_bytes_per_machine, b.network_bytes_per_machine);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  ASSERT_EQ(a.residual_bytes_per_machine.size(),
            b.residual_bytes_per_machine.size());
  for (size_t m = 0; m < a.residual_bytes_per_machine.size(); ++m) {
    EXPECT_EQ(a.residual_bytes_per_machine[m], b.residual_bytes_per_machine[m])
        << "machine " << m;
  }
}

TEST(ShardDeterminismTest, GasSyncIdenticalAcrossThreadsShardsStealing) {
  uint64_t baseline_stopped = 0;
  const GasResult baseline = RunGasSkewed(1, 1, false, &baseline_stopped);
  EXPECT_GT(baseline.passes, 1u);
  EXPECT_GT(baseline_stopped, 0u);
  for (uint32_t threads : {1u, 8u}) {
    for (uint32_t shards : {1u, 4u, 64u}) {
      for (bool stealing : {false, true}) {
        if (threads == 1 && shards == 1 && !stealing) continue;
        SCOPED_TRACE(testing::Message() << "threads=" << threads
                                        << " shards=" << shards
                                        << " stealing=" << stealing);
        uint64_t stopped = 0;
        ExpectGasIdentical(baseline,
                           RunGasSkewed(threads, shards, stealing, &stopped));
        EXPECT_EQ(stopped, baseline_stopped);
      }
    }
  }
}

// --- Clamp unification (both engines, same policy) --------------------

TEST(ThreadClampTest, SyncEngineClampedRequestMatchesHardwareRun) {
  // An absurd thread request with the clamp on must behave exactly like
  // asking for the hardware concurrency outright — both engines resolve
  // through ThreadPool::ResolveThreads, so this guards against the two
  // drifting apart again.
  const uint32_t hw = ThreadPool::HardwareThreads();
  EngineResult clamped = [&] {
    const SkewedFixture& fx = SkewedFixture::Get();
    EngineOptions options;
    options.cluster = RelaxedCluster(kSkewMachines);
    options.profile = ProfileFor(SystemKind::kPregelPlus);
    options.execution_threads = hw + 1000;
    options.clamp_threads_to_hardware = true;
    SyncEngine engine(fx.graph, fx.partition, options);
    TaskContext context{&fx.graph, &fx.partition, 1.0,
                        options.profile.combines_messages};
    auto task = MakeTask("BPPR");
    EXPECT_TRUE(task.ok());
    auto program = task.value()->MakeProgram(
        context, ProgramFlavor::kPointToPoint, 256.0, /*seed=*/23);
    EXPECT_TRUE(program.ok());
    auto result = engine.Run(*program.value());
    EXPECT_TRUE(result.ok());
    return result.value_or(EngineResult{});
  }();
  ExpectBitIdentical(clamped,
                     RunSkewedBatch(SystemKind::kPregelPlus, hw, 0, true));
}

TEST(ThreadClampTest, GasEngineClampedRequestMatchesHardwareRun) {
  const uint32_t hw = ThreadPool::HardwareThreads();
  const SkewedFixture& fx = SkewedFixture::Get();
  GasOptions options;
  options.cluster = RelaxedCluster(kSkewMachines);
  options.profile = ProfileFor(SystemKind::kGraphLab);
  options.execution_threads = hw + 1000;
  options.clamp_threads_to_hardware = true;
  GasBpprWalks clamped_program(fx.graph, fx.partition, 32,
                               GasBpprWalks::Params{}, /*seed=*/13);
  GasEngine engine(fx.graph, fx.partition, options);
  auto clamped = engine.Run(clamped_program);
  ASSERT_TRUE(clamped.ok());
  uint64_t stopped = 0;
  const GasResult reference = RunGasSkewed(hw, 0, true, &stopped);
  ExpectGasIdentical(clamped.value(), reference);
  EXPECT_EQ(clamped_program.TotalStopped(), stopped);
}

}  // namespace
}  // namespace vcmp
