#include "graph/partition.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace vcmp {
namespace {

Graph TestGraph() {
  ErdosRenyiParams params;
  params.num_vertices = 4000;
  params.num_edges = 24000;
  params.seed = 17;
  return GenerateErdosRenyi(params);
}

class PartitionerCoverageTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PartitionerCoverageTest, CoversEveryVertexWithinRange) {
  Graph graph = TestGraph();
  auto partitioner = MakePartitioner(GetParam());
  for (uint32_t machines : {1u, 3u, 8u, 27u}) {
    Partitioning part = partitioner->Partition(graph, machines);
    ASSERT_EQ(part.assignment.size(), graph.NumVertices());
    ASSERT_EQ(part.num_machines, machines);
    for (uint32_t machine : part.assignment) {
      ASSERT_LT(machine, machines);
    }
    // Every machine gets some vertices (n >> machines here).
    auto loads = part.MachineLoads();
    for (uint64_t load : loads) EXPECT_GT(load, 0u);
  }
}

TEST_P(PartitionerCoverageTest, ReasonableBalance) {
  Graph graph = TestGraph();
  auto partitioner = MakePartitioner(GetParam());
  Partitioning part = partitioner->Partition(graph, 8);
  EXPECT_LT(part.LoadImbalance(), 1.15);
}

TEST_P(PartitionerCoverageTest, Deterministic) {
  Graph graph = TestGraph();
  auto partitioner = MakePartitioner(GetParam());
  Partitioning a = partitioner->Partition(graph, 8);
  Partitioning b = partitioner->Partition(graph, 8);
  EXPECT_EQ(a.assignment, b.assignment);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PartitionerCoverageTest,
                         ::testing::Values("hash", "block",
                                           "greedy-edge-cut"));

TEST(GreedyEdgeCutTest, CutsFewerEdgesThanHash) {
  // On a locality-rich graph the LDG partitioner must beat random hash.
  Graph ring = GenerateRing(8000, 4);
  Partitioning hash = HashPartitioner().Partition(ring, 8);
  Partitioning greedy = GreedyEdgeCutPartitioner().Partition(ring, 8);
  EXPECT_LT(greedy.CountCrossEdges(ring), hash.CountCrossEdges(ring) / 2);
}

TEST(CrossEdgesTest, SingleMachineHasNone) {
  Graph graph = TestGraph();
  Partitioning part = HashPartitioner().Partition(graph, 1);
  EXPECT_EQ(part.CountCrossEdges(graph), 0u);
}

TEST(BlockPartitionerTest, ContiguousRanges) {
  Graph ring = GenerateRing(100, 1);
  Partitioning part = BlockPartitioner().Partition(ring, 4);
  for (VertexId v = 1; v < 100; ++v) {
    EXPECT_GE(part.assignment[v], part.assignment[v - 1]);
  }
}

TEST(MakePartitionerTest, KnownNames) {
  EXPECT_EQ(MakePartitioner("hash")->name(), "hash");
  EXPECT_EQ(MakePartitioner("block")->name(), "block");
  EXPECT_EQ(MakePartitioner("greedy-edge-cut")->name(), "greedy-edge-cut");
}

}  // namespace
}  // namespace vcmp
