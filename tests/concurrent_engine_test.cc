// Concurrent multi-query execution (DESIGN.md section 14): K queries in
// flight over shared immutable graph state must produce per-query
// results bit-identical to running each query alone — at every
// (concurrency, thread-count) combination, for randomized query mixes,
// with per-query accounting that reconciles exactly, and with the real
// out-of-core path under a shared budget. Also the re-entrancy
// regression suite: engines are reused across batches and Run calls via
// a QueryContext, so stale-pointer/stale-scratch bugs show up here (and
// as races under the CI TSan job).

#include "core/concurrent_runner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/batch_schedule.h"
#include "core/runner.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "tasks/task_registry.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

Dataset TinyDataset() {
  // DBLP stand-in at aggressive scale: ~1.2K vertices, fast to run.
  return LoadDataset(DatasetId::kDblp, /*scale_override=*/512.0);
}

RunnerOptions BaseOptions(uint32_t threads) {
  RunnerOptions base;
  base.cluster = RelaxedCluster(4);
  base.system = SystemKind::kPregelPlus;
  base.seed = 7;
  base.execution_threads = threads;
  return base;
}

/// A seeded random query mix: each query draws its task, batch count and
/// workload from the mix seed, so one integer names an arbitrarily
/// shaped multi-query workload.
struct QueryMix {
  std::vector<std::unique_ptr<MultiTask>> tasks;
  std::vector<ConcurrentQuery> queries;
};

QueryMix MakeMix(uint64_t mix_seed, size_t count) {
  QueryMix mix;
  Rng rng(mix_seed);
  const std::vector<std::string>& names = BenchmarkTaskNames();
  for (size_t i = 0; i < count; ++i) {
    auto task = MakeTask(names[rng.NextBounded(names.size())]);
    EXPECT_TRUE(task.ok());
    const double workload = 64.0 + 64.0 * rng.NextBounded(3);
    const uint32_t batches = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    mix.tasks.push_back(std::move(task.value()));
    ConcurrentQuery query;
    query.task = mix.tasks.back().get();
    query.schedule = BatchSchedule::Equal(workload, batches);
    mix.queries.push_back(std::move(query));
  }
  return mix;
}

/// Exact (bitwise, not tolerance) equality of every report field — the
/// determinism contract is bit-identity, so EXPECT_EQ on doubles is the
/// point, not an oversight.
void ExpectBatchEq(const BatchReport& a, const BatchReport& b,
                   const std::string& where) {
  EXPECT_EQ(a.workload, b.workload) << where;
  EXPECT_EQ(a.seconds, b.seconds) << where;
  EXPECT_EQ(a.overloaded, b.overloaded) << where;
  EXPECT_EQ(a.rounds, b.rounds) << where;
  EXPECT_EQ(a.messages, b.messages) << where;
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes) << where;
  EXPECT_EQ(a.peak_residual_bytes, b.peak_residual_bytes) << where;
  EXPECT_EQ(a.peak_buffered_bytes, b.peak_buffered_bytes) << where;
  EXPECT_EQ(a.network_overuse_seconds, b.network_overuse_seconds) << where;
  EXPECT_EQ(a.disk_overuse_seconds, b.disk_overuse_seconds) << where;
  EXPECT_EQ(a.disk_utilization, b.disk_utilization) << where;
  EXPECT_EQ(a.disk_saturated, b.disk_saturated) << where;
  EXPECT_EQ(a.max_io_queue_length, b.max_io_queue_length) << where;
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes) << where;
}

void ExpectReportEq(const RunReport& a, const RunReport& b,
                    const std::string& where) {
  EXPECT_EQ(a.system, b.system) << where;
  EXPECT_EQ(a.dataset, b.dataset) << where;
  EXPECT_EQ(a.task, b.task) << where;
  EXPECT_EQ(a.cluster, b.cluster) << where;
  EXPECT_EQ(a.workload, b.workload) << where;
  ASSERT_EQ(a.batches.size(), b.batches.size()) << where;
  for (size_t i = 0; i < a.batches.size(); ++i) {
    ExpectBatchEq(a.batches[i], b.batches[i],
                  where + " batch " + std::to_string(i));
  }
  EXPECT_EQ(a.total_seconds, b.total_seconds) << where;
  EXPECT_EQ(a.overloaded, b.overloaded) << where;
  EXPECT_EQ(a.total_rounds, b.total_rounds) << where;
  EXPECT_EQ(a.total_messages, b.total_messages) << where;
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes) << where;
  EXPECT_EQ(a.peak_residual_bytes, b.peak_residual_bytes) << where;
  EXPECT_EQ(a.peak_buffered_bytes, b.peak_buffered_bytes) << where;
  EXPECT_EQ(a.network_overuse_seconds, b.network_overuse_seconds) << where;
  EXPECT_EQ(a.disk_overuse_seconds, b.disk_overuse_seconds) << where;
  EXPECT_EQ(a.disk_utilization, b.disk_utilization) << where;
  EXPECT_EQ(a.disk_saturated, b.disk_saturated) << where;
  EXPECT_EQ(a.max_io_queue_length, b.max_io_queue_length) << where;
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes) << where;
  EXPECT_EQ(a.monetary_cost, b.monetary_cost) << where;
}

ConcurrentRunReport MustRun(const Dataset& dataset,
                            const std::vector<ConcurrentQuery>& queries,
                            uint32_t concurrency, uint32_t threads,
                            Tracer* tracer = nullptr) {
  ConcurrentRunnerOptions options;
  options.base = BaseOptions(threads);
  options.concurrency = concurrency;
  options.tracer = tracer;
  ConcurrentRunner runner(dataset, options);
  auto report = runner.Run(queries);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report.value());
}

// The tentpole property: for seeded random query mixes, every
// (concurrency, threads) combination reproduces the serial
// single-threaded baseline bit for bit, query by query.
TEST(ConcurrentEngineTest, ConcurrencyAndThreadsPreserveBitIdentity) {
  Dataset dataset = TinyDataset();
  for (uint64_t mix_seed : {101u, 202u}) {
    QueryMix mix = MakeMix(mix_seed, 5);
    ConcurrentRunReport baseline = MustRun(dataset, mix.queries, 1, 1);
    ASSERT_EQ(baseline.queries.size(), mix.queries.size());
    EXPECT_EQ(baseline.queries_failed, 0u);
    for (uint32_t concurrency : {1u, 2u, 4u}) {
      for (uint32_t threads : {1u, 2u, 8u}) {
        if (concurrency == 1 && threads == 1) continue;
        ConcurrentRunReport run =
            MustRun(dataset, mix.queries, concurrency, threads);
        ASSERT_EQ(run.queries.size(), baseline.queries.size());
        const std::string combo = "mix " + std::to_string(mix_seed) +
                                  " K=" + std::to_string(concurrency) +
                                  " T=" + std::to_string(threads);
        for (size_t q = 0; q < run.queries.size(); ++q) {
          ASSERT_TRUE(run.queries[q].status.ok()) << combo;
          ExpectReportEq(run.queries[q].report, baseline.queries[q].report,
                         combo + " query " + std::to_string(q));
        }
        EXPECT_EQ(run.total_simulated_seconds,
                  baseline.total_simulated_seconds)
            << combo;
        EXPECT_EQ(run.max_simulated_seconds, baseline.max_simulated_seconds)
            << combo;
      }
    }
  }
}

// Decomposition: a query inside a concurrent run equals the same query
// run alone through a plain MultiProcessingRunner with the matching
// query id — the shared pool, shared partition and neighbor queries are
// invisible.
TEST(ConcurrentEngineTest, ConcurrentQueriesMatchStandaloneRuns) {
  Dataset dataset = TinyDataset();
  QueryMix mix = MakeMix(303, 4);
  ConcurrentRunReport run = MustRun(dataset, mix.queries, 4, 2);
  for (size_t q = 0; q < mix.queries.size(); ++q) {
    RunnerOptions standalone = BaseOptions(2);
    standalone.query_id = q;
    MultiProcessingRunner runner(dataset, standalone);
    auto alone =
        runner.Run(*mix.queries[q].task, mix.queries[q].schedule);
    ASSERT_TRUE(alone.ok()) << alone.status().ToString();
    ASSERT_TRUE(run.queries[q].status.ok());
    ExpectReportEq(run.queries[q].report, alone.value(),
                   "standalone query " + std::to_string(q));
  }
}

// The query id namespaces every random stream: two queries with the same
// task, schedule and base seed draw decorrelated walks, while query 0
// reproduces the historical single-query run exactly.
TEST(ConcurrentEngineTest, QueryIdNamespacesRandomStreams) {
  Dataset dataset = TinyDataset();
  auto task = MakeTask("BPPR");
  ASSERT_TRUE(task.ok());
  BatchSchedule schedule = BatchSchedule::Equal(128, 2);

  RunnerOptions historical = BaseOptions(2);  // query_id defaulted.
  MultiProcessingRunner historical_runner(dataset, historical);
  auto base = historical_runner.Run(*task.value(), schedule);
  ASSERT_TRUE(base.ok());

  RunnerOptions q0 = BaseOptions(2);
  q0.query_id = 0;
  MultiProcessingRunner q0_runner(dataset, q0);
  auto same = q0_runner.Run(*task.value(), schedule);
  ASSERT_TRUE(same.ok());
  ExpectReportEq(same.value(), base.value(), "query 0 is historical");

  RunnerOptions q1 = BaseOptions(2);
  q1.query_id = 1;
  MultiProcessingRunner q1_runner(dataset, q1);
  auto other = q1_runner.Run(*task.value(), schedule);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other.value().total_messages, base.value().total_messages)
      << "query 1 must draw a different walk stream than query 0";
}

// Per-query accounting reconciles exactly: run totals are the fold of
// the batch reports (sums for flows, maxima for peaks), and the
// aggregate seconds are the fold of the per-query totals. This is the
// residual-bytes/spill reconciliation gate — a query reading a
// neighbor's arena would show up as a mismatch here.
TEST(ConcurrentEngineTest, PerQueryAccountingReconciles) {
  Dataset dataset = TinyDataset();
  QueryMix mix = MakeMix(404, 4);
  ConcurrentRunReport run = MustRun(dataset, mix.queries, 2, 2);
  EXPECT_EQ(run.queries_failed, 0u);
  double sum_seconds = 0.0;
  double max_seconds = 0.0;
  for (size_t q = 0; q < run.queries.size(); ++q) {
    ASSERT_TRUE(run.queries[q].status.ok());
    const RunReport& report = run.queries[q].report;
    double messages = 0.0;
    double seconds = 0.0;
    double spilled = 0.0;
    uint64_t rounds = 0;
    double peak_residual = 0.0;
    double peak_memory = 0.0;
    for (const BatchReport& batch : report.batches) {
      messages += batch.messages;
      seconds += batch.seconds;
      spilled += batch.spilled_bytes;
      rounds += batch.rounds;
      peak_residual = std::max(peak_residual, batch.peak_residual_bytes);
      peak_memory = std::max(peak_memory, batch.peak_memory_bytes);
    }
    EXPECT_EQ(report.total_messages, messages) << q;
    EXPECT_EQ(report.total_seconds, seconds) << q;
    EXPECT_EQ(report.spilled_bytes, spilled) << q;
    EXPECT_EQ(report.total_rounds, rounds) << q;
    EXPECT_EQ(report.peak_residual_bytes, peak_residual) << q;
    EXPECT_EQ(report.peak_memory_bytes, peak_memory) << q;
    sum_seconds += report.total_seconds;
    max_seconds = std::max(max_seconds, report.total_seconds);
  }
  EXPECT_EQ(run.total_simulated_seconds, sum_seconds);
  EXPECT_EQ(run.max_simulated_seconds, max_seconds);
  EXPECT_GT(run.wall_seconds, 0.0);
}

// A query that fails (empty schedule) carries its own status; its
// neighbors complete untouched and the aggregates cover the survivors.
TEST(ConcurrentEngineTest, FailedQueryDoesNotPoisonNeighbors) {
  Dataset dataset = TinyDataset();
  QueryMix mix = MakeMix(505, 3);
  mix.queries[1].schedule = BatchSchedule();  // Invalid: no batches.
  ConcurrentRunReport run = MustRun(dataset, mix.queries, 3, 2);
  EXPECT_EQ(run.queries_failed, 1u);
  EXPECT_FALSE(run.queries[1].status.ok());
  ASSERT_TRUE(run.queries[0].status.ok());
  ASSERT_TRUE(run.queries[2].status.ok());
  EXPECT_GT(run.queries[0].report.total_messages, 0.0);
  EXPECT_GT(run.queries[2].report.total_messages, 0.0);

  // The survivors still match their serial-baseline selves.
  QueryMix clean = MakeMix(505, 3);
  ConcurrentRunReport baseline = MustRun(dataset, clean.queries, 1, 1);
  ExpectReportEq(run.queries[0].report, baseline.queries[0].report,
                 "survivor 0");
  ExpectReportEq(run.queries[2].report, baseline.queries[2].report,
                 "survivor 2");
}

// Malformed configurations are rejected up front with InvalidArgument —
// no partial execution.
TEST(ConcurrentEngineTest, RejectsMalformedConfigurations) {
  Dataset dataset = TinyDataset();
  QueryMix mix = MakeMix(606, 2);

  ConcurrentRunnerOptions zero;
  zero.base = BaseOptions(1);
  zero.concurrency = 0;
  EXPECT_FALSE(ConcurrentRunner(dataset, zero).Run(mix.queries).ok());

  ConcurrentRunnerOptions ok_options;
  ok_options.base = BaseOptions(1);
  EXPECT_FALSE(ConcurrentRunner(dataset, ok_options).Run({}).ok());

  std::vector<ConcurrentQuery> with_null = mix.queries;
  with_null[1].task = nullptr;
  EXPECT_FALSE(ConcurrentRunner(dataset, ok_options).Run(with_null).ok());

  ConcurrentRunnerOptions preset = ok_options;
  Tracer stray;
  preset.base.tracer = &stray;  // Per-query field: must be unset.
  EXPECT_FALSE(ConcurrentRunner(dataset, preset).Run(mix.queries).ok());
}

// The merged trace is a pure function of the queries: private per-query
// tracers replayed in query order make the recording identical at every
// concurrency level.
TEST(ConcurrentEngineTest, MergedTraceIsConcurrencyInvariant) {
  Dataset dataset = TinyDataset();
  QueryMix mix = MakeMix(707, 3);
  Tracer serial_trace;
  MustRun(dataset, mix.queries, 1, 2, &serial_trace);
  Tracer concurrent_trace;
  MustRun(dataset, mix.queries, 3, 2, &concurrent_trace);
  EXPECT_EQ(TraceToJson(serial_trace), TraceToJson(concurrent_trace));
}

// Real out-of-core under concurrency: with a budget small enough that
// every concurrency level clamps to the same per-query minimum feasible
// share, capped runs are bit-identical across K (including measured
// spilled bytes), actually spill, and agree with the uncapped run on
// every budget-invariant statistic.
TEST(ConcurrentEngineTest, OocCappedConcurrentMatchesSerialAndUncapped) {
  Dataset dataset = TinyDataset();
  QueryMix mix = MakeMix(808, 3);

  auto run_graphd = [&](uint32_t concurrency, uint64_t budget_bytes) {
    ConcurrentRunnerOptions options;
    options.base = BaseOptions(2);
    options.base.system = SystemKind::kGraphD;
    if (budget_bytes > 0) {
      options.base.ooc.enabled = true;
      options.base.ooc.memory_budget_bytes = budget_bytes;
      options.base.ooc.cache_sections = 8;
      options.base.ooc.cache_ways = 2;
      options.base.ooc.spill_page_messages = 64;
    }
    options.concurrency = concurrency;
    ConcurrentRunner runner(dataset, options);
    auto report = runner.Run(mix.queries);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(report.value());
  };

  // Budget 1 byte: every K clamps to the same minimum feasible share.
  ConcurrentRunReport capped_serial = run_graphd(1, 1);
  ConcurrentRunReport capped_concurrent = run_graphd(3, 1);
  ConcurrentRunReport uncapped = run_graphd(3, 0);
  double measured_spill = 0.0;
  for (size_t q = 0; q < mix.queries.size(); ++q) {
    ASSERT_TRUE(capped_serial.queries[q].status.ok())
        << capped_serial.queries[q].status.ToString();
    ASSERT_TRUE(capped_concurrent.queries[q].status.ok());
    ASSERT_TRUE(uncapped.queries[q].status.ok());
    ExpectReportEq(capped_concurrent.queries[q].report,
                   capped_serial.queries[q].report,
                   "ooc query " + std::to_string(q));
    // Task results are budget-invariant: the capped run agrees with the
    // uncapped one on everything the budget cannot touch.
    EXPECT_EQ(capped_concurrent.queries[q].report.total_messages,
              uncapped.queries[q].report.total_messages)
        << q;
    EXPECT_EQ(capped_concurrent.queries[q].report.total_rounds,
              uncapped.queries[q].report.total_rounds)
        << q;
    measured_spill += capped_concurrent.queries[q].report.spilled_bytes;
  }
  EXPECT_GT(measured_spill, 0.0) << "the tight budget must actually spill";
}

// Re-entrancy regression: one runner object run twice reuses its
// QueryContext scratch (warm sinks, warm workers) across fresh engines —
// a stale engine pointer or leftover per-run state breaks the repeat.
TEST(ConcurrentEngineTest, RunnerObjectReuseIsRepeatable) {
  Dataset dataset = TinyDataset();
  auto task = MakeTask("BKHS");
  ASSERT_TRUE(task.ok());
  RunnerOptions options = BaseOptions(2);
  MultiProcessingRunner runner(dataset, options);
  BatchSchedule schedule = BatchSchedule::Equal(96, 3);
  auto first = runner.Run(*task.value(), schedule);
  auto second = runner.Run(*task.value(), schedule);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectReportEq(first.value(), second.value(), "repeat run");
}

}  // namespace
}  // namespace vcmp
