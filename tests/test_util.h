#ifndef VCMP_TESTS_TEST_UTIL_H_
#define VCMP_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "sim/cluster_spec.h"

namespace vcmp {
namespace testing_util {

/// A cluster whose machines are so large that no test workload can become
/// memory-bound; used when a test targets algorithmic correctness rather
/// than the cost model.
inline ClusterSpec RelaxedCluster(uint32_t machines) {
  ClusterSpec spec = ClusterSpec::Galaxy8().WithMachines(machines);
  spec.name = "test-relaxed";
  spec.machine.memory_bytes = 1024.0 * (1ULL << 30);
  spec.machine.usable_memory_bytes = 1000.0 * (1ULL << 30);
  return spec;
}

/// Reference single-source BFS hop distances (kUnreachedHops if not
/// reachable).
inline constexpr uint32_t kUnreachedHops = static_cast<uint32_t>(-1);

inline std::vector<uint32_t> BfsDistances(const Graph& graph,
                                          VertexId source) {
  std::vector<uint32_t> dist(graph.NumVertices(), kUnreachedHops);
  std::queue<VertexId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop();
    for (VertexId u : graph.Neighbors(v)) {
      if (dist[u] == kUnreachedHops) {
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
  }
  return dist;
}

/// Reference personalized PageRank by power iteration of the alpha-decay
/// walk: pi = alpha * sum_t (1-alpha)^t P^t e_s.
inline std::vector<double> ReferencePpr(const Graph& graph, VertexId source,
                                        double alpha, int iterations = 200) {
  const VertexId n = graph.NumVertices();
  std::vector<double> mass(n, 0.0);
  std::vector<double> result(n, 0.0);
  std::vector<double> next(n, 0.0);
  mass[source] = 1.0;
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      if (mass[v] <= 0.0) continue;
      auto neighbors = graph.Neighbors(v);
      if (neighbors.empty()) {
        result[v] += mass[v];  // Walks end at dangling vertices.
        continue;
      }
      result[v] += alpha * mass[v];
      double share =
          (1.0 - alpha) * mass[v] / static_cast<double>(neighbors.size());
      for (VertexId u : neighbors) next[u] += share;
    }
    mass.swap(next);
  }
  // Settle whatever mass remains (geometric tail).
  for (VertexId v = 0; v < n; ++v) result[v] += mass[v];
  return result;
}

/// Reference global PageRank by dense power iteration (dangling mass
/// dropped, matching the vertex-centric implementation's semantics).
inline std::vector<double> ReferencePageRank(const Graph& graph,
                                             double damping,
                                             int iterations) {
  const VertexId n = graph.NumVertices();
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (VertexId v = 0; v < n; ++v) {
      auto neighbors = graph.Neighbors(v);
      if (neighbors.empty()) continue;
      double share =
          damping * rank[v] / static_cast<double>(neighbors.size());
      for (VertexId u : neighbors) next[u] += share;
    }
    rank.swap(next);
  }
  return rank;
}

/// L1 distance between two distributions.
inline double L1Distance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::fabs(a[i] - b[i]);
  return total;
}

}  // namespace testing_util
}  // namespace vcmp

#endif  // VCMP_TESTS_TEST_UTIL_H_
