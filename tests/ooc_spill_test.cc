// Tests of the out-of-core spill layer: the versioned checksummed page
// format (golden round-trip, corruption and truncation detection), the
// per-machine MessageStream (order-preserving spill/restore), the
// sectioned vertex-state file, and the byte-size flag parser feeding
// --memory-budget.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/units.h"
#include "engine/message_block.h"
#include "ooc/message_stream.h"
#include "ooc/spill_file.h"
#include "ooc/state_file.h"

namespace vcmp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Deterministic synthetic message columns.
void FillColumns(size_t n, uint64_t salt, std::vector<VertexId>* targets,
                 std::vector<uint32_t>* tags, std::vector<double>* values,
                 std::vector<double>* mults) {
  targets->resize(n);
  tags->resize(n);
  values->resize(n);
  mults->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*targets)[i] = static_cast<VertexId>((i * 2654435761u + salt) % 4096);
    (*tags)[i] = static_cast<uint32_t>((i + salt) % 7);
    (*values)[i] = 0.125 * static_cast<double>(i) + static_cast<double>(salt);
    (*mults)[i] = 1.0 + static_cast<double>(i % 3);
  }
}

TEST(Fnv1aTest, MatchesKnownVectorAndChains) {
  // FNV-1a of the empty string is the offset basis; of "a" the published
  // constant.
  EXPECT_EQ(Fnv1aHash("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1aHash("a", 1), 0xaf63dc4c8601ec8cULL);
  // Chaining over split ranges equals hashing the concatenation.
  const char data[] = "spill-page";
  uint64_t whole = Fnv1aHash(data, sizeof(data) - 1);
  uint64_t chained = Fnv1aHash(data + 5, sizeof(data) - 6,
                               Fnv1aHash(data, 5));
  EXPECT_EQ(whole, chained);
}

TEST(SpillFileTest, GoldenRoundTripIsByteIdentical) {
  std::vector<VertexId> targets;
  std::vector<uint32_t> tags;
  std::vector<double> values, mults;
  const std::string path = TempPath("golden.vspl");

  auto write_file = [&](const std::string& p) {
    SpillFileWriter writer;
    ASSERT_TRUE(writer.Open(p).ok());
    FillColumns(100, 3, &targets, &tags, &values, &mults);
    ASSERT_TRUE(writer
                    .WritePage(targets.data(), tags.data(), values.data(),
                               mults.data(), 100)
                    .ok());
    FillColumns(37, 9, &targets, &tags, &values, &mults);
    ASSERT_TRUE(writer
                    .WritePage(targets.data(), tags.data(), values.data(),
                               mults.data(), 37)
                    .ok());
    ASSERT_TRUE(writer.Finish().ok());
  };
  write_file(path);
  const std::string path2 = TempPath("golden2.vspl");
  write_file(path2);
  // The format has no timestamps or randomness: two writes of the same
  // pages are byte-identical files.
  EXPECT_EQ(ReadAllBytes(path), ReadAllBytes(path2));

  SpillFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  MessageBlock restored;
  auto first = reader.ReadPage(&restored);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 100u);
  auto second = reader.ReadPage(&restored);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 37u);
  auto eof = reader.ReadPage(&restored);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof.value(), 0u);
  ASSERT_EQ(restored.size(), 137u);
  // Page 2's columns land after page 1's, exactly as written.
  FillColumns(100, 3, &targets, &tags, &values, &mults);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.targets()[i], targets[i]);
    EXPECT_EQ(restored.tags()[i], tags[i]);
    EXPECT_EQ(restored.values()[i], values[i]);
    EXPECT_EQ(restored.multiplicities()[i], mults[i]);
  }
  FillColumns(37, 9, &targets, &tags, &values, &mults);
  for (size_t i = 0; i < 37; ++i) {
    EXPECT_EQ(restored.targets()[100 + i], targets[i]);
    EXPECT_EQ(restored.values()[100 + i], values[i]);
  }
}

TEST(SpillFileTest, RejectsBadMagicAndVersion) {
  const std::string path = TempPath("bad_magic.vspl");
  WriteAllBytes(path, std::vector<char>(64, 'x'));
  SpillFileReader reader;
  Status status = reader.Open(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("magic"), std::string::npos);

  // Right magic, wrong version.
  std::vector<char> header(8, 0);
  uint32_t magic = kSpillMagic, version = kSpillVersion + 7;
  std::memcpy(header.data(), &magic, 4);
  std::memcpy(header.data() + 4, &version, 4);
  const std::string vpath = TempPath("bad_version.vspl");
  WriteAllBytes(vpath, header);
  SpillFileReader vreader;
  Status vstatus = vreader.Open(vpath);
  EXPECT_EQ(vstatus.code(), StatusCode::kIoError);
  EXPECT_NE(vstatus.message().find("version"), std::string::npos);
}

TEST(SpillFileTest, DetectsCorruptedChecksumWithoutCrashing) {
  const std::string path = TempPath("corrupt.vspl");
  std::vector<VertexId> targets;
  std::vector<uint32_t> tags;
  std::vector<double> values, mults;
  SpillFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  FillColumns(50, 1, &targets, &tags, &values, &mults);
  ASSERT_TRUE(writer
                  .WritePage(targets.data(), tags.data(), values.data(),
                             mults.data(), 50)
                  .ok());
  ASSERT_TRUE(writer.Finish().ok());

  std::vector<char> bytes = ReadAllBytes(path);
  // Flip one byte inside the page body (past the 8-byte file header and
  // the 16-byte page header).
  bytes[8 + 16 + 5] ^= 0x40;
  WriteAllBytes(path, bytes);

  SpillFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  MessageBlock out;
  auto page = reader.ReadPage(&out);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kIoError);
  EXPECT_NE(page.status().message().find("checksum"), std::string::npos);
}

TEST(SpillFileTest, DetectsTruncationWithoutCrashing) {
  const std::string path = TempPath("trunc.vspl");
  std::vector<VertexId> targets;
  std::vector<uint32_t> tags;
  std::vector<double> values, mults;
  SpillFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  FillColumns(50, 2, &targets, &tags, &values, &mults);
  ASSERT_TRUE(writer
                  .WritePage(targets.data(), tags.data(), values.data(),
                             mults.data(), 50)
                  .ok());
  ASSERT_TRUE(writer.Finish().ok());

  std::vector<char> bytes = ReadAllBytes(path);
  // Cut the page body in half (header intact).
  bytes.resize(8 + 16 + 40);
  WriteAllBytes(path, bytes);

  SpillFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  MessageBlock out;
  auto page = reader.ReadPage(&out);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kIoError);
  EXPECT_NE(page.status().message().find("truncated"), std::string::npos);
}

TEST(MessageStreamTest, SpillAndRestorePreservesAppendOrder) {
  MessageStream stream;
  stream.Configure(TempPath("stream.vspl"), /*page_messages=*/16);
  std::vector<VertexId> targets;
  std::vector<uint32_t> tags;
  std::vector<double> values, mults;
  // Three appends of awkward sizes: pages straddle append boundaries.
  size_t chunk_sizes[] = {5, 40, 13};
  uint64_t salt = 0;
  for (size_t n : chunk_sizes) {
    FillColumns(n, ++salt, &targets, &tags, &values, &mults);
    ASSERT_TRUE(stream
                    .Append(targets.data(), tags.data(), values.data(),
                            mults.data(), n)
                    .ok());
  }
  ASSERT_TRUE(stream.EndRound().ok());
  EXPECT_TRUE(stream.has_spill());
  EXPECT_EQ(stream.messages_spilled(), 58u);
  EXPECT_GT(stream.bytes_written(), 0u);
  EXPECT_EQ(stream.staging_bytes(), 0u);  // Everything flushed at EndRound.

  MessageBlock inbox;
  auto restored = stream.Restore(&inbox);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), 58u);
  EXPECT_FALSE(stream.has_spill());
  ASSERT_EQ(inbox.size(), 58u);
  size_t offset = 0;
  salt = 0;
  for (size_t n : chunk_sizes) {
    FillColumns(n, ++salt, &targets, &tags, &values, &mults);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(inbox.targets()[offset + i], targets[i]);
      EXPECT_EQ(inbox.tags()[offset + i], tags[i]);
      EXPECT_EQ(inbox.values()[offset + i], values[i]);
      EXPECT_EQ(inbox.multiplicities()[offset + i], mults[i]);
    }
    offset += n;
  }

  // The stream is reusable: a second round spills and restores again.
  FillColumns(3, 77, &targets, &tags, &values, &mults);
  ASSERT_TRUE(stream
                  .Append(targets.data(), tags.data(), values.data(),
                          mults.data(), 3)
                  .ok());
  ASSERT_TRUE(stream.EndRound().ok());
  MessageBlock inbox2;
  auto restored2 = stream.Restore(&inbox2);
  ASSERT_TRUE(restored2.ok());
  EXPECT_EQ(restored2.value(), 3u);
  EXPECT_EQ(inbox2.targets()[0], targets[0]);
}

TEST(StateFileTest, RoundTripAndChecksumDetection) {
  const std::string path = TempPath("state.vvst");
  std::vector<std::vector<VertexRecord>> sections(3);
  for (uint32_t s = 0; s < 3; ++s) {
    for (uint32_t i = 0; i < 4 + s; ++i) {
      sections[s].push_back(VertexRecord{s * 100 + i, i * 2});
    }
  }
  ASSERT_TRUE(WriteStateFile(path, sections).ok());

  StateFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_EQ(reader.num_sections(), 3u);
  EXPECT_EQ(reader.section_count(2), 6u);
  EXPECT_EQ(reader.section_bytes(2), 6u * sizeof(VertexRecord));
  std::vector<VertexRecord> out;
  // Random access: read section 2 before section 0.
  ASSERT_TRUE(reader.ReadSection(2, &out).ok());
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[5].id, 205u);
  EXPECT_EQ(out[5].degree, 10u);
  ASSERT_TRUE(reader.ReadSection(0, &out).ok());
  EXPECT_EQ(out[0].id, 0u);
  reader.Close();

  // Corrupt one record byte of section 1: only that section fails.
  std::vector<char> bytes = ReadAllBytes(path);
  const size_t section0_records = 16 + 16 + 4 * sizeof(VertexRecord);
  bytes[section0_records + 16 + 3] ^= 0x01;
  WriteAllBytes(path, bytes);
  StateFileReader corrupt;
  ASSERT_TRUE(corrupt.Open(path).ok());
  EXPECT_TRUE(corrupt.ReadSection(0, &out).ok());
  Status bad = corrupt.ReadSection(1, &out);
  EXPECT_EQ(bad.code(), StatusCode::kIoError);
  EXPECT_NE(bad.message().find("checksum"), std::string::npos);
  EXPECT_TRUE(corrupt.ReadSection(2, &out).ok());
}

TEST(StateFileTest, RejectsTruncatedFile) {
  const std::string path = TempPath("state_trunc.vvst");
  std::vector<std::vector<VertexRecord>> sections(1);
  sections[0] = {VertexRecord{1, 2}, VertexRecord{3, 4}};
  ASSERT_TRUE(WriteStateFile(path, sections).ok());
  std::vector<char> bytes = ReadAllBytes(path);
  bytes.resize(bytes.size() - 4);
  WriteAllBytes(path, bytes);
  StateFileReader reader;
  EXPECT_FALSE(reader.Open(path).ok());
}

TEST(ParseByteSizeTest, AcceptsSuffixesAndRejectsGarbage) {
  EXPECT_EQ(ParseByteSize("1024").value_or(0), 1024u);
  EXPECT_EQ(ParseByteSize("2KiB").value_or(0), 2048u);
  EXPECT_EQ(ParseByteSize("2kb").value_or(0), 2048u);
  EXPECT_EQ(ParseByteSize("1MiB").value_or(0), 1048576u);
  EXPECT_EQ(ParseByteSize("2.5GiB").value_or(0),
            static_cast<uint64_t>(2.5 * 1073741824.0));
  EXPECT_EQ(ParseByteSize("512 MiB").value_or(0), 512u * 1048576u);
  EXPECT_EQ(ParseByteSize("0").value_or(1), 0u);
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("12parsecs").ok());
  EXPECT_FALSE(ParseByteSize("-1GiB").ok());
  EXPECT_FALSE(ParseByteSize("GiB").ok());
  EXPECT_FALSE(ParseByteSize("1e30GiB").ok());
}

}  // namespace
}  // namespace vcmp
