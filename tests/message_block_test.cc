// Unit tests of the SoA data-layout primitives behind the engine's
// compute phase: the MessageBlock column buffer, the MessageRunView
// handed to task kernels, and the VertexFrontier active-set tracker.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "engine/frontier.h"
#include "engine/message_block.h"
#include "engine/vertex_program.h"

namespace vcmp {
namespace {

TEST(MessageBlockTest, StartsEmpty) {
  MessageBlock block;
  EXPECT_EQ(block.size(), 0u);
  EXPECT_EQ(block.capacity(), 0u);
  EXPECT_TRUE(block.empty());
}

TEST(MessageBlockTest, PushBackStoresColumns) {
  MessageBlock block;
  block.PushBack(7, 3, 1.5, 2.0);
  block.PushBack(Message{9, 1, 2.5, 4.0});
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block.targets()[0], 7u);
  EXPECT_EQ(block.tags()[0], 3u);
  EXPECT_DOUBLE_EQ(block.values()[0], 1.5);
  EXPECT_DOUBLE_EQ(block.multiplicities()[0], 2.0);
  const Message second = block.At(1);
  EXPECT_EQ(second.target, 9u);
  EXPECT_EQ(second.tag, 1u);
  EXPECT_DOUBLE_EQ(second.value, 2.5);
  EXPECT_DOUBLE_EQ(second.multiplicity, 4.0);
}

TEST(MessageBlockTest, SetOverwritesOneRow) {
  MessageBlock block;
  block.PushBack(1, 0, 1.0, 1.0);
  block.PushBack(2, 0, 2.0, 1.0);
  block.Set(0, Message{5, 7, 9.0, 3.0});
  EXPECT_EQ(block.At(0).target, 5u);
  EXPECT_EQ(block.At(0).tag, 7u);
  EXPECT_DOUBLE_EQ(block.At(0).value, 9.0);
  EXPECT_EQ(block.At(1).target, 2u);  // Neighbouring row untouched.
}

TEST(MessageBlockTest, GrowthPreservesContents) {
  MessageBlock block;
  for (uint32_t i = 0; i < 1000; ++i) {
    block.PushBack(i, i % 5, static_cast<double>(i), 1.0);
  }
  ASSERT_EQ(block.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(block.targets()[i], i);
    EXPECT_EQ(block.tags()[i], i % 5);
    EXPECT_DOUBLE_EQ(block.values()[i], static_cast<double>(i));
  }
}

TEST(MessageBlockTest, ClearKeepsCapacity) {
  MessageBlock block;
  for (uint32_t i = 0; i < 500; ++i) block.PushBack(i, 0, 1.0, 1.0);
  const size_t capacity = block.capacity();
  EXPECT_GE(capacity, 500u);
  block.Clear();
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.capacity(), capacity);  // Epoch arena: no deallocation.
}

TEST(MessageBlockTest, ReserveGrowsCapacityNotSize) {
  MessageBlock block;
  block.Reserve(300);
  EXPECT_GE(block.capacity(), 300u);
  EXPECT_EQ(block.size(), 0u);
  const size_t capacity = block.capacity();
  block.Reserve(10);  // Never shrinks.
  EXPECT_EQ(block.capacity(), capacity);
}

TEST(MessageBlockTest, AppendConcatenatesColumns) {
  MessageBlock a;
  a.PushBack(1, 0, 1.0, 1.0);
  MessageBlock b;
  b.PushBack(2, 1, 2.0, 2.0);
  b.PushBack(3, 2, 3.0, 3.0);
  a.Append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 2u);  // Source is untouched.
  EXPECT_EQ(a.At(1).target, 2u);
  EXPECT_EQ(a.At(2).tag, 2u);
  EXPECT_DOUBLE_EQ(a.At(2).multiplicity, 3.0);
}

TEST(MessageBlockTest, SwapExchangesStorageInConstantTime) {
  MessageBlock a;
  a.PushBack(1, 0, 1.0, 1.0);
  MessageBlock b;
  for (uint32_t i = 0; i < 100; ++i) b.PushBack(i, 0, 2.0, 1.0);
  const double* b_values = b.values();
  a.Swap(b);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.values(), b_values);  // Pointer exchange, no copy.
  EXPECT_DOUBLE_EQ(b.At(0).value, 1.0);
}

TEST(MessageBlockTest, MoveTransfersStorage) {
  MessageBlock a;
  a.PushBack(4, 2, 8.0, 1.0);
  MessageBlock b(std::move(a));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.At(0).target, 4u);
}

TEST(MessageRunViewTest, SumValuesFoldsLeftToRight) {
  // Floating-point addition is not associative; the determinism contract
  // pins the fold to left-to-right order: (big + tiny) + tiny.
  const double values[] = {1e16, 1.0, 1.0};
  const MessageRunView run{/*tag=*/0, values, nullptr, 3};
  EXPECT_EQ(run.SumValues(), (1e16 + 1.0) + 1.0);
}

TEST(MessageRunTest, SizeIsEndMinusBegin) {
  const MessageRun run{/*target=*/3, /*tag=*/1, /*begin=*/10, /*end=*/14};
  EXPECT_EQ(run.size(), 4u);
}

TEST(VertexFrontierTest, ActivateDeduplicatesAndTakePreservesOrder) {
  VertexFrontier frontier;
  frontier.Reset(100);
  EXPECT_TRUE(frontier.Activate(5));
  EXPECT_FALSE(frontier.Activate(5));  // Already active.
  EXPECT_TRUE(frontier.Activate(63));
  EXPECT_TRUE(frontier.Activate(64));  // Straddles the word boundary.
  EXPECT_EQ(frontier.active_count(), 3u);
  const std::vector<VertexId> pending = frontier.Take();
  EXPECT_EQ(pending, (std::vector<VertexId>{5, 63, 64}));
  // Membership bits persist after Take: signals to a taken-but-unconsumed
  // vertex must keep folding into the same pending activation.
  EXPECT_FALSE(frontier.Activate(5));
  EXPECT_TRUE(frontier.IsActive(64));
}

TEST(VertexFrontierTest, DeactivateAllowsReactivation) {
  VertexFrontier frontier;
  frontier.Reset(64);
  EXPECT_TRUE(frontier.Activate(10));
  frontier.Deactivate(10);
  EXPECT_FALSE(frontier.IsActive(10));
  EXPECT_EQ(frontier.active_count(), 0u);
  EXPECT_TRUE(frontier.Activate(10));  // Schedules again next pass.
}

TEST(VertexFrontierTest, SparseClearResetsAllBits) {
  VertexFrontier frontier;
  frontier.Reset(10000);  // 2 of 10000 active < 3%: the sparse path.
  frontier.Activate(1);
  frontier.Activate(9999);
  frontier.Clear();
  EXPECT_EQ(frontier.active_count(), 0u);
  EXPECT_FALSE(frontier.IsActive(1));
  EXPECT_FALSE(frontier.IsActive(9999));
  EXPECT_TRUE(frontier.Activate(1));  // Fully reusable.
  EXPECT_EQ(frontier.Take(), (std::vector<VertexId>{1}));
}

TEST(VertexFrontierTest, DenseClearResetsAllBits) {
  VertexFrontier frontier;
  frontier.Reset(100);  // 50 of 100 active >= 3%: the memset path.
  for (VertexId v = 0; v < 100; v += 2) frontier.Activate(v);
  EXPECT_EQ(frontier.active_count(), 50u);
  frontier.Clear();
  EXPECT_EQ(frontier.active_count(), 0u);
  for (VertexId v = 0; v < 100; ++v) EXPECT_FALSE(frontier.IsActive(v));
}

TEST(VertexFrontierTest, ClearAfterTakeFallsBackToDenseWipe) {
  // After Take() the pending list is gone but the bit remains; the
  // sparse clear detects the mismatch (cleared != active_count) and must
  // fall back to the dense wipe rather than leak a stale bit.
  VertexFrontier frontier;
  frontier.Reset(10000);
  frontier.Activate(123);
  const std::vector<VertexId> taken = frontier.Take();
  ASSERT_EQ(taken.size(), 1u);
  frontier.Clear();
  EXPECT_EQ(frontier.active_count(), 0u);
  EXPECT_FALSE(frontier.IsActive(123));
}

TEST(VertexFrontierTest, ResetResizesAndClears) {
  VertexFrontier frontier;
  frontier.Reset(64);
  frontier.Activate(63);
  frontier.Reset(256);
  EXPECT_EQ(frontier.universe(), 256u);
  EXPECT_EQ(frontier.active_count(), 0u);
  EXPECT_FALSE(frontier.IsActive(63));
  EXPECT_TRUE(frontier.Activate(255));
}

}  // namespace
}  // namespace vcmp
