#include "core/whole_graph.h"

#include <gtest/gtest.h>

#include "core/runner.h"
#include "tasks/bppr.h"
#include "test_util.h"

namespace vcmp {
namespace {

using testing_util::RelaxedCluster;

Dataset TinyDataset() {
  return LoadDataset(DatasetId::kDblp, /*scale_override=*/512.0);
}

TEST(WholeGraphTest, RunsAndSplitsCosts) {
  Dataset dataset = TinyDataset();
  WholeGraphOptions options;
  options.cluster = RelaxedCluster(8);
  WholeGraphRunner runner(dataset, options);
  BpprTask task;
  auto report = runner.Run(task, BatchSchedule::Equal(64, 4));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().overloaded);
  EXPECT_GT(report.value().algorithm_seconds, 0.0);
  EXPECT_GT(report.value().aggregation_seconds, 0.0);
  EXPECT_GT(report.value().TotalSeconds(),
            report.value().algorithm_seconds);
}

TEST(WholeGraphTest, NoCommunicationDuringAlgorithm) {
  // Whole-graph mode runs each machine independently: the per-machine
  // memory must include the *entire* graph, unlike default partitioning.
  Dataset dataset = TinyDataset();
  WholeGraphOptions wg_options;
  wg_options.cluster = RelaxedCluster(8);
  WholeGraphRunner wg_runner(dataset, wg_options);
  BpprTask task;
  // A light workload, so the graph replica dominates the footprint and
  // the comparison is structural rather than workload-noise.
  auto whole = wg_runner.Run(task, BatchSchedule::Equal(8, 2));
  ASSERT_TRUE(whole.ok());

  RunnerOptions options;
  options.cluster = RelaxedCluster(8);
  MultiProcessingRunner partitioned_runner(dataset, options);
  auto partitioned =
      partitioned_runner.Run(task, BatchSchedule::Equal(8, 2));
  ASSERT_TRUE(partitioned.ok());

  EXPECT_GT(whole.value().peak_memory_bytes,
            partitioned.value().peak_memory_bytes);
}

TEST(WholeGraphTest, MemoryBoundEarlierThanPartitioned) {
  // With machines sized to hold 1/8th of the working set comfortably,
  // replicating the whole graph overloads while partitioning does not.
  Dataset dataset = TinyDataset();
  double graph_paper_bytes = dataset.graph.StorageBytes() * dataset.scale;

  WholeGraphOptions wg_options;
  wg_options.cluster = RelaxedCluster(8);
  wg_options.cluster.machine.memory_bytes = 0.8 * graph_paper_bytes;
  wg_options.cluster.machine.usable_memory_bytes = 0.7 * graph_paper_bytes;
  WholeGraphRunner wg_runner(dataset, wg_options);
  BpprTask task;
  auto whole = wg_runner.Run(task, BatchSchedule::Equal(4, 2));
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole.value().overloaded);

  RunnerOptions options;
  options.cluster = wg_options.cluster;
  MultiProcessingRunner partitioned_runner(dataset, options);
  auto partitioned =
      partitioned_runner.Run(task, BatchSchedule::Equal(4, 2));
  ASSERT_TRUE(partitioned.ok());
  EXPECT_FALSE(partitioned.value().overloaded);
}

TEST(WholeGraphTest, RejectsEmptySchedule) {
  Dataset dataset = TinyDataset();
  WholeGraphRunner runner(dataset, {});
  BpprTask task;
  EXPECT_FALSE(runner.Run(task, BatchSchedule()).ok());
}

}  // namespace
}  // namespace vcmp
