#include "graph/analysis.h"

#include <numeric>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace vcmp {
namespace {

TEST(DegreeStatsTest, RingIsUniform) {
  Graph ring = GenerateRing(100, 2);  // Degree 4 everywhere.
  DegreeStats stats = ComputeDegreeStats(ring);
  EXPECT_EQ(stats.max_degree, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 4.0);
  EXPECT_DOUBLE_EQ(stats.neighbor_degree_bias, 4.0);  // No skew.
  EXPECT_EQ(stats.isolated_vertices, 0u);
  // Top 1% (1 vertex) holds 4 of 400 directed edges.
  EXPECT_NEAR(stats.top1pct_edge_share, 0.01, 1e-12);
}

TEST(DegreeStatsTest, StarIsMaximallySkewed) {
  GraphBuilder builder(101);
  for (VertexId leaf = 1; leaf <= 100; ++leaf) builder.AddEdge(0, leaf);
  Graph star = builder.Build({.symmetrize = true});
  DegreeStats stats = ComputeDegreeStats(star);
  EXPECT_EQ(stats.max_degree, 100u);
  // E[d^2]/E[d] = (100^2 + 100*1) / 200 = 50.5.
  EXPECT_NEAR(stats.neighbor_degree_bias, 50.5, 1e-9);
  EXPECT_NEAR(stats.top1pct_edge_share, 0.5, 1e-9);  // Hub owns half.
  EXPECT_NE(stats.ToString().find("max=100"), std::string::npos);
}

TEST(DegreeStatsTest, CountsIsolatedVertices) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  Graph graph = builder.Build({.symmetrize = true});
  EXPECT_EQ(ComputeDegreeStats(graph).isolated_vertices, 3u);
}

TEST(DegreeHistogramTest, BucketsByPowerOfTwo) {
  GraphBuilder builder(8);
  // One vertex of degree 4, its 4 neighbours of degree 1, 3 isolated.
  for (VertexId leaf = 1; leaf <= 4; ++leaf) builder.AddEdge(0, leaf);
  Graph graph = builder.Build({.symmetrize = true});
  std::vector<uint64_t> histogram = DegreeHistogram(graph);
  // Bucket 0: degree 0 (3 vertices); bucket 1: degree 1 (4 vertices);
  // bucket 3: degree 4 (1 vertex).
  ASSERT_GE(histogram.size(), 4u);
  EXPECT_EQ(histogram[0], 3u);
  EXPECT_EQ(histogram[1], 4u);
  EXPECT_EQ(histogram[3], 1u);
  EXPECT_EQ(std::accumulate(histogram.begin(), histogram.end(),
                            uint64_t{0}),
            graph.NumVertices());
}

TEST(DiameterTest, RingDiameterIsHalfLength) {
  Graph ring = GenerateRing(64, 1);
  DiameterEstimate estimate = EstimateDiameter(ring, 8);
  EXPECT_EQ(estimate.max_observed, 32u);
  EXPECT_GE(estimate.effective_diameter, 28u);  // 90th pct of 1..32.
  EXPECT_NEAR(estimate.reachable_fraction, 1.0, 1e-12);
}

TEST(DiameterTest, SmallWorldGraphHasSmallDiameter) {
  ErdosRenyiParams params;
  params.num_vertices = 2000;
  params.num_edges = 12000;
  params.seed = 5;
  Graph graph = GenerateErdosRenyi(params);
  DiameterEstimate estimate = EstimateDiameter(graph, 8);
  EXPECT_LE(estimate.effective_diameter, 8u);
  EXPECT_GT(estimate.reachable_fraction, 0.95);
}

TEST(DiameterTest, DisconnectedGraphReportsPartialReachability) {
  GraphBuilder builder(10);
  builder.AddEdges({{0, 1}, {1, 2}, {5, 6}});
  Graph graph = builder.Build({.symmetrize = true});
  DiameterEstimate estimate = EstimateDiameter(graph, 10);
  EXPECT_LT(estimate.reachable_fraction, 0.5);
}

TEST(StandInValidationTest, DblpStandInMatchesPaperShape) {
  // The stand-in must land near Table 1's average degree and carry a
  // heavy-enough tail to reproduce hub congestion.
  Dataset dblp = LoadDataset(DatasetId::kDblp, 64.0);
  DegreeStats stats = ComputeDegreeStats(dblp.graph);
  EXPECT_NEAR(stats.mean_degree, dblp.info.paper_avg_degree, 2.0);
  EXPECT_GT(stats.neighbor_degree_bias, 3.0 * stats.mean_degree);
}

}  // namespace
}  // namespace vcmp
