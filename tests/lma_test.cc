#include "common/math/lma.h"

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vcmp {
namespace {

std::vector<double> DoublingWorkloads(int count) {
  std::vector<double> xs;
  double x = 2.0;
  for (int i = 0; i < count; ++i) {
    xs.push_back(x);
    x *= 2.0;
  }
  return xs;
}

TEST(LmaTest, RecoversLinearModel) {
  // f(x) = 3x + 10 is a power law with b = 1.
  std::vector<double> xs = DoublingWorkloads(8);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x + 10.0);
  auto fit = FitPowerLaw(xs, ys);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit.value().b, 1.0, 0.02);
  EXPECT_LT(fit.value().residual, 1e-3 * ys.back() * ys.back());
}

TEST(LmaTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitPowerLaw({1.0, 2.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(FitPowerLaw({1.0, 2.0, 3.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(FitPowerLaw({0.0, 2.0, 3.0}, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(FitPowerLaw({-1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}).ok());
}

TEST(LmaTest, InvertRoundTrips) {
  PowerLawFit fit;
  fit.a = 2.5;
  fit.b = 1.3;
  fit.c = 100.0;
  for (double x : {1.0, 8.0, 500.0}) {
    EXPECT_NEAR(fit.Invert(fit.Eval(x)), x, 1e-6 * x);
  }
}

TEST(LmaTest, InvertHandlesDegenerateCases) {
  PowerLawFit fit;
  fit.a = 2.0;
  fit.b = 1.0;
  fit.c = 10.0;
  EXPECT_EQ(fit.Invert(5.0), 0.0);   // Below the intercept.
  EXPECT_EQ(fit.Invert(10.0), 0.0);  // At the intercept.
  fit.a = 0.0;
  EXPECT_EQ(fit.Invert(100.0), 0.0);  // Degenerate slope.
}

TEST(LmaTest, GeneralSolverFitsExponentialDecay) {
  // Show the solver is not power-law specific: fit y = a * exp(b x).
  LmaModel model = [](const std::vector<double>& theta, double x,
                      double* jac) {
    double value = theta[0] * std::exp(theta[1] * x);
    if (jac != nullptr) {
      jac[0] = std::exp(theta[1] * x);
      jac[1] = value * x;
    }
    return value;
  };
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 12; ++i) {
    double x = 0.25 * i;
    xs.push_back(x);
    ys.push_back(4.0 * std::exp(-0.8 * x));
  }
  LmaFit fit = LevenbergMarquardt(model, xs, ys, {1.0, -0.1});
  EXPECT_NEAR(fit.params[0], 4.0, 1e-4);
  EXPECT_NEAR(fit.params[1], -0.8, 1e-4);
  EXPECT_TRUE(fit.converged);
}

/// Property sweep: random (a, b, c) power laws with mild noise must be
/// recovered to a few percent — this is exactly the paper's training fit.
class PowerLawRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(PowerLawRecoveryTest, RecoversParameters) {
  auto [a, b, c] = GetParam();
  std::vector<double> xs = DoublingWorkloads(9);
  std::vector<double> ys;
  Rng rng(99);
  for (double x : xs) {
    double noise = 1.0 + 0.002 * (rng.NextDouble() - 0.5);
    ys.push_back((a * std::pow(x, b) + c) * noise);
  }
  auto fit = FitPowerLaw(xs, ys);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const PowerLawFit& f = fit.value();
  // Evaluate agreement on held-out points rather than raw parameters
  // (power laws are mildly degenerate in (a, c) at small b).
  for (double x : {3.0, 48.0, 700.0}) {
    double truth = a * std::pow(x, b) + c;
    EXPECT_NEAR(f.Eval(x), truth, 0.05 * truth + 1.0)
        << "a=" << a << " b=" << b << " c=" << c << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PowerLawRecoveryTest,
    ::testing::Values(std::make_tuple(2.0, 1.0, 50.0),
                      std::make_tuple(0.5, 1.5, 0.0),
                      std::make_tuple(10.0, 0.8, 500.0),
                      std::make_tuple(100.0, 1.2, 10.0),
                      std::make_tuple(0.01, 2.0, 1.0)));

}  // namespace
}  // namespace vcmp
