#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/cluster_spec.h"
#include "sim/disk_model.h"
#include "sim/memory_model.h"
#include "sim/monetary_model.h"
#include "sim/network_model.h"

namespace vcmp {
namespace {

MachineSpec DefaultMachine() { return ClusterSpec::Galaxy8().machine; }

TEST(ClusterSpecTest, PaperClusters) {
  EXPECT_EQ(ClusterSpec::Galaxy8().num_machines, 8u);
  EXPECT_EQ(ClusterSpec::Galaxy27().num_machines, 27u);
  EXPECT_EQ(ClusterSpec::Docker32().num_machines, 32u);
  EXPECT_TRUE(ClusterSpec::Docker32().cloud);
  EXPECT_FALSE(ClusterSpec::Galaxy8().cloud);
  // SSDs in the cloud, HDDs in the local clusters.
  EXPECT_GT(ClusterSpec::Docker32().machine.disk_bandwidth,
            ClusterSpec::Galaxy8().machine.disk_bandwidth);
}

TEST(ClusterSpecTest, WithMachinesKeepsHardware) {
  ClusterSpec base = ClusterSpec::Galaxy8();
  ClusterSpec smaller = base.WithMachines(2);
  EXPECT_EQ(smaller.num_machines, 2u);
  EXPECT_EQ(smaller.machine.memory_bytes, base.machine.memory_bytes);
}

TEST(MemoryModelTest, NoPenaltyWellBelowUsable) {
  MemoryModel model;
  MachineRoundLoad load;
  load.state_bytes = 1.0 * kGiB;
  load.buffered_message_bytes = 2.0 * kGiB;
  auto assessment = model.Assess(load, DefaultMachine(), 1.0, 0.0);
  EXPECT_DOUBLE_EQ(assessment.thrash_multiplier, 1.0);
  EXPECT_FALSE(assessment.overflow);
  EXPECT_NEAR(assessment.demand_bytes, 3.0 * kGiB, 1.0);
}

TEST(MemoryModelTest, ThrashRampsNearUsableMemory) {
  MemoryModel model;
  MachineRoundLoad load;
  load.buffered_message_bytes = 13.0 * kGiB;
  auto near = model.Assess(load, DefaultMachine(), 1.0, 0.0);
  EXPECT_GT(near.thrash_multiplier, 1.0);
  EXPECT_FALSE(near.overflow);

  MachineRoundLoad heavier = load;
  heavier.buffered_message_bytes = 15.0 * kGiB;
  auto worse = model.Assess(heavier, DefaultMachine(), 1.0, 0.0);
  EXPECT_GT(worse.thrash_multiplier, near.thrash_multiplier);
}

TEST(MemoryModelTest, OverflowPastPhysicalMemory) {
  MemoryModel model;
  MachineRoundLoad load;
  load.buffered_message_bytes = 17.0 * kGiB;
  auto assessment = model.Assess(load, DefaultMachine(), 1.0, 0.0);
  EXPECT_TRUE(assessment.overflow);
}

TEST(MemoryModelTest, MessageOverheadInflatesDemand) {
  MemoryModel model;
  MachineRoundLoad load;
  load.buffered_message_bytes = 4.0 * kGiB;
  auto cpp = model.Assess(load, DefaultMachine(), 1.2, 0.0);
  auto java = model.Assess(load, DefaultMachine(), 2.4, 0.0);
  EXPECT_GT(java.demand_bytes, 1.9 * cpp.demand_bytes * 1.2 / 2.4);
  EXPECT_NEAR(java.demand_bytes, 2.0 * cpp.demand_bytes, kGiB * 0.1);
}

TEST(MemoryModelTest, OocBudgetCapsMessageMemory) {
  MemoryModel model;
  MachineRoundLoad load;
  load.buffered_message_bytes = 40.0 * kGiB;  // Would overflow in-memory.
  double budget = 1.5 * kGiB;
  auto assessment = model.Assess(load, DefaultMachine(), 1.0, budget);
  EXPECT_FALSE(assessment.overflow);
  EXPECT_NEAR(assessment.demand_bytes, budget, 1.0);
}

TEST(MemoryModelTest, ResidualCountsTowardDemand) {
  MemoryModel model;
  MachineRoundLoad load;
  load.residual_bytes = 12.0 * kGiB;
  load.buffered_message_bytes = 5.0 * kGiB;
  auto assessment = model.Assess(load, DefaultMachine(), 1.0, 0.0);
  EXPECT_TRUE(assessment.overflow);  // 12 + 5 > 16GB physical.
}

TEST(NetworkModelTest, TrafficHiddenBehindCompute) {
  NetworkModel model;
  MachineRoundLoad load;
  load.cross_bytes_out = 10.0 * kMiB;
  load.cross_bytes_in = 8.0 * kMiB;
  auto assessment = model.Assess(load, DefaultMachine(), /*compute=*/10.0);
  EXPECT_GT(assessment.transfer_seconds, 0.0);
  EXPECT_DOUBLE_EQ(assessment.overuse_seconds, 0.0);
}

TEST(NetworkModelTest, BurstBeyondWindowOveruses) {
  NetworkModel model;
  MachineRoundLoad load;
  load.cross_bytes_out = 4.0 * kGiB;
  auto assessment = model.Assess(load, DefaultMachine(), /*compute=*/1.0);
  EXPECT_GT(assessment.overuse_seconds, 0.0);
  EXPECT_LT(assessment.overuse_seconds, assessment.transfer_seconds);
}

TEST(NetworkModelTest, UsesMaxDirection) {
  NetworkModel model;
  MachineRoundLoad in_heavy;
  in_heavy.cross_bytes_in = 2.0 * kGiB;
  MachineRoundLoad out_heavy;
  out_heavy.cross_bytes_out = 2.0 * kGiB;
  auto a = model.Assess(in_heavy, DefaultMachine(), 1.0);
  auto b = model.Assess(out_heavy, DefaultMachine(), 1.0);
  EXPECT_DOUBLE_EQ(a.transfer_seconds, b.transfer_seconds);
}

TEST(DiskModelTest, NoIoNoCost) {
  DiskModel model;
  auto assessment = model.Assess(0.0, 0.0, 0.0, DefaultMachine(), 5.0);
  EXPECT_DOUBLE_EQ(assessment.io_seconds, 0.0);
  EXPECT_DOUBLE_EQ(assessment.utilization, 0.0);
  EXPECT_DOUBLE_EQ(assessment.stall_seconds, 0.0);
}

TEST(DiskModelTest, HiddenIoReportsPartialUtilization) {
  DiskModel model;
  // 40MB/s effective disk, 100MB edge stream, 10s compute: fully hidden.
  auto assessment =
      model.Assess(0.0, 0.0, 100.0 * kMiB, DefaultMachine(), 10.0);
  EXPECT_DOUBLE_EQ(assessment.stall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(assessment.overuse_seconds, 0.0);
  EXPECT_GT(assessment.utilization, 0.15);
  EXPECT_LT(assessment.utilization, 0.35);
}

TEST(DiskModelTest, SpillBeyondWindowSaturates) {
  DiskModel model;
  // 10GB spill against 1s of compute: the disk becomes the bottleneck.
  auto assessment =
      model.Assess(10.0 * kGiB, 0.0, 100.0 * kMiB, DefaultMachine(), 1.0);
  EXPECT_DOUBLE_EQ(assessment.utilization, 1.0);
  EXPECT_GT(assessment.stall_seconds, 0.0);
  EXPECT_GT(assessment.overuse_seconds, 0.0);
  EXPECT_GT(assessment.queue_length, 1000.0);
}

TEST(DiskModelTest, SpillChargedBothDirections) {
  DiskModel model;
  auto write_read =
      model.Assess(1.0 * kGiB, 0.0, 0.0, DefaultMachine(), 1000.0);
  EXPECT_NEAR(write_read.io_bytes, 2.0 * kGiB, 1.0);
}

TEST(MonetaryModelTest, CostScalesWithTimeAndMachines) {
  MonetaryModel model;
  ClusterSpec docker = ClusterSpec::Docker32();
  double one_hour = model.Cost(docker, 3600.0, false, 6000.0);
  double two_hours = model.Cost(docker, 7200.0, false, 6000.0);
  EXPECT_NEAR(two_hours, 2.0 * one_hour, 1e-9);
  ClusterSpec half = docker.WithMachines(16);
  EXPECT_NEAR(model.Cost(half, 3600.0, false, 6000.0), one_hour / 2.0,
              1e-9);
}

TEST(MonetaryModelTest, OverloadBillsCutoff) {
  MonetaryModel model;
  ClusterSpec docker = ClusterSpec::Docker32();
  EXPECT_DOUBLE_EQ(model.Cost(docker, 123.0, true, 6000.0),
                   model.Cost(docker, 6000.0, false, 6000.0));
}

TEST(MonetaryModelTest, FormatMatchesPaper) {
  EXPECT_EQ(MonetaryModel::Format(59.0, false), "$59");
  EXPECT_EQ(MonetaryModel::Format(116.2, true), ">$117");
}

TEST(MonetaryModelTest, Docker32RateInPaperRange) {
  // Fig. 7's optimal totals (~$44-94 for multi-hour sweeps) imply a
  // cluster rate of roughly $50-60 per hour.
  MonetaryModel model;
  double per_hour =
      model.ClusterRatePerSecond(ClusterSpec::Docker32()) * 3600.0;
  EXPECT_GT(per_hour, 30.0);
  EXPECT_LT(per_hour, 90.0);
}

}  // namespace
}  // namespace vcmp
