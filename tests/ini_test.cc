#include "common/ini.h"

#include <gtest/gtest.h>

#include "core/experiment_spec.h"

namespace vcmp {
namespace {

TEST(IniTest, ParsesSectionsAndValues) {
  auto document = IniDocument::Parse(
      "# comment\n"
      "[alpha]\n"
      "key = value with spaces\n"
      "number=42\n"
      "; another comment\n"
      "[beta]\n"
      "x = 1.5\n");
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  ASSERT_EQ(document.value().sections().size(), 2u);
  const auto* alpha = document.value().FindSection("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(IniDocument::GetString(*alpha, "key", ""),
            "value with spaces");
  EXPECT_EQ(IniDocument::GetInt(*alpha, "number", 0).value(), 42);
  const auto* beta = document.value().FindSection("beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_DOUBLE_EQ(IniDocument::GetDouble(*beta, "x", 0.0).value(), 1.5);
  EXPECT_EQ(document.value().FindSection("gamma"), nullptr);
}

TEST(IniTest, DefaultsForMissingKeys) {
  auto document = IniDocument::Parse("[s]\na = 1\n");
  ASSERT_TRUE(document.ok());
  const auto& section = document.value().sections()[0];
  EXPECT_EQ(IniDocument::GetString(section, "missing", "fallback"),
            "fallback");
  EXPECT_DOUBLE_EQ(IniDocument::GetDouble(section, "missing", 7.0).value(),
                   7.0);
}

TEST(IniTest, RejectsMalformedInput) {
  EXPECT_FALSE(IniDocument::Parse("[unclosed\nk=v\n").ok());
  EXPECT_FALSE(IniDocument::Parse("[s]\njust a line\n").ok());
  EXPECT_FALSE(IniDocument::Parse("[s]\n= empty key\n").ok());
  EXPECT_FALSE(IniDocument::Parse("[s]\nk=1\nk=2\n").ok());  // Dup key.
  EXPECT_FALSE(IniDocument::Parse("[s]\nk=1\n[s]\n").ok());  // Dup section.
}

TEST(IniTest, RejectsNonNumericTypedAccess) {
  auto document = IniDocument::Parse("[s]\nx = not-a-number\n");
  ASSERT_TRUE(document.ok());
  EXPECT_FALSE(
      IniDocument::GetDouble(document.value().sections()[0], "x", 0.0)
          .ok());
}

TEST(IniTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(IniDocument::Load("/no/such/file.ini").ok());
}

TEST(ExperimentSpecTest, ParsesFullSpec) {
  auto document = IniDocument::Parse(
      "[exp1]\n"
      "dataset = Orkut\n"
      "task = MSSP\n"
      "system = GraphD\n"
      "cluster = galaxy27\n"
      "machines = 16\n"
      "workload = 2048\n"
      "schedule = geometric:3,0.5\n"
      "scale = 512\n"
      "seed = 9\n"
      "threads = 2\n");
  ASSERT_TRUE(document.ok());
  auto specs = ParseExperimentSpecs(document.value());
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs.value().size(), 1u);
  const ExperimentSpec& spec = specs.value()[0];
  EXPECT_EQ(spec.name, "exp1");
  EXPECT_EQ(spec.dataset, "Orkut");
  EXPECT_EQ(spec.task, "MSSP");
  EXPECT_EQ(spec.system, "GraphD");
  EXPECT_EQ(spec.machines, 16u);
  EXPECT_DOUBLE_EQ(spec.workload, 2048.0);
  EXPECT_EQ(spec.schedule, "geometric:3,0.5");
  EXPECT_EQ(spec.seed, 9u);
}

TEST(ExperimentSpecTest, RejectsUnknownKeys) {
  auto document = IniDocument::Parse("[exp]\nworklod = 5\n");  // Typo.
  ASSERT_TRUE(document.ok());
  EXPECT_FALSE(ParseExperimentSpecs(document.value()).ok());
}

TEST(ExperimentSpecTest, RunsEndToEnd) {
  ExperimentSpec spec;
  spec.name = "smoke";
  spec.workload = 32;
  spec.schedule = "equal:2";
  spec.scale = 512;
  auto result = RunExperiment(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().schedule.NumBatches(), 2u);
  EXPECT_GT(result.value().report.total_messages, 0.0);
}

TEST(ExperimentSpecTest, GeometricScheduleResolves) {
  ExperimentSpec spec;
  spec.name = "geo";
  spec.workload = 100;
  spec.schedule = "geometric:2,0.5";
  spec.scale = 512;
  auto result = RunExperiment(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& w = result.value().schedule.workloads();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_GT(w[0], w[1]);
}

TEST(ExperimentSpecTest, RejectsBadReferences) {
  ExperimentSpec spec;
  spec.name = "bad";
  spec.dataset = "NoSuchDataset";
  EXPECT_FALSE(RunExperiment(spec).ok());
  spec.dataset = "DBLP";
  spec.system = "NoSuchSystem";
  spec.scale = 512;
  EXPECT_FALSE(RunExperiment(spec).ok());
  spec.system = "Pregel+";
  spec.schedule = "bogus:1";
  EXPECT_FALSE(RunExperiment(spec).ok());
  spec.schedule = "equal:1";
  spec.cluster = "mars";
  EXPECT_FALSE(RunExperiment(spec).ok());
}

}  // namespace
}  // namespace vcmp
