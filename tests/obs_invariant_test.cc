#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/experiment_spec.h"
#include "obs/tracer.h"
#include "service/admission.h"
#include "service/arrival.h"
#include "service/batcher.h"
#include "service/service.h"

namespace vcmp {
namespace {

/// Structural invariants every trace must satisfy, whatever produced it:
/// spans balanced and properly nested per track, timestamps monotone
/// non-decreasing per track, gauge values attached to gauge events only.
void CheckTraceWellFormed(const Tracer& tracer) {
  std::vector<std::vector<double>> span_stack(tracer.tracks().size());
  std::vector<double> last_ts(tracer.tracks().size(), 0.0);
  std::vector<bool> seen(tracer.tracks().size(), false);
  for (const TraceEvent& event : tracer.events()) {
    ASSERT_LT(event.track, tracer.tracks().size());
    if (seen[event.track]) {
      EXPECT_GE(event.ts_seconds, last_ts[event.track])
          << "timestamps must be monotone per track (track "
          << event.track << ", event '" << event.name << "')";
    }
    seen[event.track] = true;
    last_ts[event.track] = event.ts_seconds;
    switch (event.kind) {
      case TraceEvent::Kind::kBegin:
        span_stack[event.track].push_back(event.ts_seconds);
        break;
      case TraceEvent::Kind::kEnd: {
        ASSERT_FALSE(span_stack[event.track].empty())
            << "End with no open span on track " << event.track;
        // Nesting: a span must close at or after it opened.
        EXPECT_GE(event.ts_seconds, span_stack[event.track].back());
        span_stack[event.track].pop_back();
        break;
      }
      case TraceEvent::Kind::kInstant:
      case TraceEvent::Kind::kGauge:
        break;
    }
  }
  for (size_t track = 0; track < span_stack.size(); ++track) {
    EXPECT_TRUE(span_stack[track].empty())
        << "unbalanced spans on track " << track;
    EXPECT_EQ(tracer.open_spans(static_cast<uint32_t>(track)), 0u);
  }
}

// ------------------------------------------------------- batch processing

TEST(TraceInvariantTest, RandomSpecsProduceWellFormedTraces) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 5; ++trial) {
    ExperimentSpec spec;
    spec.name = "prop";
    spec.scale = 512;
    spec.seed = rng();
    spec.workload = 16.0 * (1 + rng() % 6);
    spec.schedule = "equal:" + std::to_string(1 + rng() % 4);
    spec.machines = 2 + rng() % 4;
    Tracer tracer;
    auto result = RunExperiment(spec, &tracer);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_FALSE(tracer.events().empty());
    CheckTraceWellFormed(tracer);
  }
}

TEST(TraceInvariantTest, CountersReconcileWithRunReport) {
  // The contract is bitwise equality, not approximate: instrumentation
  // adds once per batch in the exact order RunReport::Absorb sums, so
  // the trace counters ARE the report aggregates.
  std::mt19937 rng(987654321);
  for (int trial = 0; trial < 4; ++trial) {
    ExperimentSpec spec;
    spec.name = "reconcile";
    spec.scale = 512;
    spec.seed = rng();
    spec.workload = 16.0 * (1 + rng() % 5);
    spec.schedule = "equal:" + std::to_string(1 + rng() % 4);
    Tracer tracer;
    auto result = RunExperiment(spec, &tracer);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const RunReport& report = result.value().report;
    ASSERT_FALSE(report.overloaded);  // Overload clamps total_seconds.

    EXPECT_EQ(tracer.counter("engine.messages"), report.total_messages);
    EXPECT_EQ(tracer.counter("engine.rounds"),
              static_cast<double>(report.total_rounds));
    EXPECT_EQ(tracer.counter("runner.messages"), report.total_messages);
    EXPECT_EQ(tracer.counter("runner.rounds"),
              static_cast<double>(report.total_rounds));
    EXPECT_EQ(tracer.counter("runner.seconds"), report.total_seconds);
    EXPECT_EQ(tracer.counter("runner.batches"),
              static_cast<double>(report.batches.size()));
    EXPECT_EQ(tracer.counter("engine.peak_memory_bytes"),
              report.peak_memory_bytes);
    EXPECT_EQ(tracer.counter("engine.peak_residual_bytes"),
              report.peak_residual_bytes);
  }
}

// --------------------------------------------------------------- serving

/// Closed-form executor: cost proportional to units, no overload. Keeps
/// the property trials fast and the ledger arithmetic exact.
BatchExecutor SyntheticExecutor() {
  return [](const std::vector<QueryArrival>& batch,
            double residual_bytes) -> Result<BatchExecution> {
    double units = 0.0;
    for (const QueryArrival& query : batch) units += query.units;
    BatchExecution exec;
    exec.seconds = 0.25 + 0.05 * units;
    exec.peak_memory_bytes = residual_bytes + units * 1e6;
    exec.residual_bytes = units * 2e5;
    return exec;
  };
}

std::vector<ClientSpec> RandomClients(std::mt19937& rng) {
  std::vector<ClientSpec> clients(2 + rng() % 3);
  for (size_t i = 0; i < clients.size(); ++i) {
    clients[i].name = "client-" + std::to_string(i);
    clients[i].rate_per_second = 0.5 + 0.5 * (rng() % 4);
    clients[i].units_per_query = 1.0 + (rng() % 3);
  }
  return clients;
}

TEST(TraceInvariantTest, ServingLedgerBalancesAtEveryBundle) {
  // At every gauge bundle the lifecycle ledger must satisfy
  //   generated == admitted + shed
  //   admitted  == queued + executing + completed
  // i.e. no query is ever lost or double-counted, at any instant.
  std::mt19937 rng(424242);
  for (int trial = 0; trial < 4; ++trial) {
    ArrivalOptions arrival_options;
    arrival_options.seed = rng();
    arrival_options.horizon_seconds = 30.0;
    ArrivalProcess arrivals(RandomClients(rng), arrival_options);

    AdmissionOptions admission;
    admission.per_client_capacity = 2 + rng() % 3;  // Tight: forces shed.
    admission.total_capacity = 4 + rng() % 4;

    FixedBatcher policy(/*units=*/4.0 + (rng() % 8),
                        /*max_wait_seconds=*/1.0);
    ServiceOptions options;
    options.horizon_seconds = arrival_options.horizon_seconds;
    options.drain_delay_seconds = 2.0;
    Tracer tracer;
    options.tracer = &tracer;
    ServingLoop loop(arrivals, admission, policy, SyntheticExecutor(),
                     options);
    auto report = loop.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    CheckTraceWellFormed(tracer);

    // Replay the gauge stream; "service.residual_bytes" terminates each
    // bundle, at which point the ledger identity must hold exactly.
    std::map<std::string, double> gauges;
    size_t bundles = 0;
    for (const TraceEvent& event : tracer.events()) {
      if (event.kind != TraceEvent::Kind::kGauge) continue;
      gauges[event.name] = event.value;
      if (event.name != "service.residual_bytes") continue;
      ++bundles;
      EXPECT_EQ(gauges.at("service.generated"),
                gauges.at("service.admitted") + gauges.at("service.shed"));
      EXPECT_EQ(gauges.at("service.admitted"),
                gauges.at("service.queued") +
                    gauges.at("service.executing") +
                    gauges.at("service.completed"));
    }
    ASSERT_GT(bundles, 0u);

    // Final ledger state == the report's aggregates, and every arrival
    // is accounted for.
    const ServiceReport& final_report = report.value();
    EXPECT_EQ(gauges.at("service.generated"),
              static_cast<double>(final_report.queries.size()));
    EXPECT_EQ(gauges.at("service.completed"),
              static_cast<double>(final_report.completed));
    EXPECT_EQ(gauges.at("service.shed"),
              static_cast<double>(final_report.shed));
    EXPECT_EQ(gauges.at("service.queued"), 0.0);
    EXPECT_EQ(gauges.at("service.executing"), 0.0);
  }
}

TEST(TraceInvariantTest, ServiceCountersReconcileWithReport) {
  std::mt19937 rng(7771);
  ArrivalOptions arrival_options;
  arrival_options.seed = rng();
  arrival_options.horizon_seconds = 40.0;
  ArrivalProcess arrivals(RandomClients(rng), arrival_options);

  AdmissionOptions admission;  // Roomy: nothing shed.
  FixedBatcher policy(/*units=*/6.0, /*max_wait_seconds=*/1.5);
  ServiceOptions options;
  options.horizon_seconds = arrival_options.horizon_seconds;
  Tracer tracer;
  options.tracer = &tracer;
  ServingLoop loop(arrivals, admission, policy, SyntheticExecutor(),
                   options);
  auto report = loop.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ServiceReport& r = report.value();

  EXPECT_EQ(tracer.counter("service.completed"),
            static_cast<double>(r.completed));
  EXPECT_EQ(tracer.counter("service.shed"), static_cast<double>(r.shed));
  EXPECT_EQ(tracer.counter("service.generated"),
            static_cast<double>(r.queries.size()));
  EXPECT_EQ(tracer.counter("service.batches"),
            static_cast<double>(r.batches.size()));
  // busy_seconds accumulates exec.seconds batch by batch in formation
  // order — the same order the counter Adds — so the sums are bitwise
  // equal.
  double busy = 0.0;
  for (const ServiceBatchTrace& batch : r.batches) busy += batch.seconds;
  EXPECT_EQ(tracer.counter("service.busy_seconds"), busy);
}

}  // namespace
}  // namespace vcmp
