#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace vcmp {
namespace {

TEST(GraphBuilderTest, BuildsSortedCsr) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 2);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  Graph graph = builder.Build({.symmetrize = false});
  EXPECT_EQ(graph.NumVertices(), 4u);
  EXPECT_EQ(graph.NumEdges(), 3u);
  ASSERT_EQ(graph.OutDegree(0), 2u);
  EXPECT_EQ(graph.Neighbors(0)[0], 1u);  // Sorted adjacency.
  EXPECT_EQ(graph.Neighbors(0)[1], 2u);
  EXPECT_EQ(graph.OutDegree(1), 0u);
  EXPECT_EQ(graph.OutDegree(3), 0u);
}

TEST(GraphBuilderTest, SymmetrizeMirrorsEdges) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  Graph graph = builder.Build({.symmetrize = true});
  EXPECT_EQ(graph.NumEdges(), 4u);
  EXPECT_EQ(graph.OutDegree(1), 2u);
  EXPECT_EQ(graph.Neighbors(2)[0], 1u);
}

TEST(GraphBuilderTest, RemovesSelfLoopsAndDuplicates) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  Graph graph = builder.Build(
      {.symmetrize = true, .remove_self_loops = true, .deduplicate = true});
  EXPECT_EQ(graph.NumEdges(), 2u);  // 0->1 and 1->0 once each.
  EXPECT_EQ(graph.OutDegree(0), 1u);
  EXPECT_EQ(graph.OutDegree(1), 1u);
}

TEST(GraphBuilderTest, KeepsParallelEdgesWhenAsked) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  Graph graph = builder.Build({.symmetrize = false,
                               .remove_self_loops = true,
                               .deduplicate = false});
  EXPECT_EQ(graph.OutDegree(0), 2u);
}

TEST(GraphBuilderTest, IgnoresOutOfRangeEndpoints) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 5);
  builder.AddEdge(7, 1);
  builder.AddEdge(0, 1);
  Graph graph = builder.Build({.symmetrize = false});
  EXPECT_EQ(graph.NumEdges(), 1u);
}

TEST(GraphBuilderTest, BulkAdd) {
  GraphBuilder builder(4);
  builder.AddEdges({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(builder.NumBufferedEdges(), 3u);
  Graph graph = builder.Build({.symmetrize = false});
  EXPECT_EQ(graph.NumEdges(), 3u);
}

TEST(GraphTest, OffsetsInvariants) {
  GraphBuilder builder(5);
  builder.AddEdges({{0, 1}, {0, 2}, {3, 4}, {4, 0}});
  Graph graph = builder.Build({.symmetrize = true});
  const auto& offsets = graph.offsets();
  ASSERT_EQ(offsets.size(), graph.NumVertices() + 1u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), graph.NumEdges());
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_LE(offsets[i - 1], offsets[i]);
  }
}

TEST(GraphTest, DegreeStatistics) {
  GraphBuilder builder(4);
  builder.AddEdges({{0, 1}, {0, 2}, {0, 3}});
  Graph graph = builder.Build({.symmetrize = true});
  EXPECT_EQ(graph.MaxDegree(), 3u);  // The hub.
  EXPECT_DOUBLE_EQ(graph.AverageDegree(), 6.0 / 4.0);
  EXPECT_GT(graph.StorageBytes(), 0u);
}

TEST(GraphTest, EmptyGraph) {
  Graph graph;
  EXPECT_EQ(graph.NumVertices(), 0u);
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_EQ(graph.AverageDegree(), 0.0);
}

TEST(GraphTest, ToStringMentionsSize) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  Graph graph = builder.Build({.symmetrize = false});
  EXPECT_NE(graph.ToString().find("n="), std::string::npos);
}

}  // namespace
}  // namespace vcmp
