#ifndef VCMP_TASKS_PAGERANK_H_
#define VCMP_TASKS_PAGERANK_H_

#include <memory>
#include <vector>

#include "engine/vertex_program.h"
#include "tasks/task.h"

namespace vcmp {

/// Classic global PageRank — the paper's "single classic task" used as the
/// light-workload contrast to BPPR in the sync-vs-async comparison
/// (Table 4). Not a multi-processing task: one unit of work, fixed-round
/// power iteration.
class PageRankProgram : public VertexProgram {
 public:
  struct Params {
    double damping = 0.85;
    /// Hard cap on power-iteration rounds.
    uint32_t iterations = 30;
    /// When > 0, the program aggregates the summed |rank delta| each
    /// round (Pregel aggregator) and terminates once it drops below this
    /// tolerance — usually well before the iteration cap.
    double tolerance = 0.0;
  };

  PageRankProgram(const TaskContext& context, const Params& params);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;
  bool UsesComputeRun() const override { return true; }
  void ComputeRun(VertexId v, const MessageRunView& run,
                  MessageSink& sink) override;
  bool ShouldTerminate(uint64_t rounds_completed) const override {
    return rounds_completed > params_.iterations;
  }
  bool TerminateOnAggregate(double aggregate_sum) const override {
    return params_.tolerance > 0.0 && aggregate_sum < params_.tolerance;
  }
  double StateBytes(uint32_t machine) const override;
  const Combiner* combiner() const override { return &sum_combiner_; }
  // Rank mass travels on the single tag 0.
  uint32_t combine_tag_universe() const override { return 1; }

  double Rank(VertexId v) const { return rank_[v]; }
  /// Sum of ranks (== 1 minus leaked dangling mass).
  double TotalRank() const;

 private:
  void Propagate(VertexId v, MessageSink& sink);

  const TaskContext context_;
  const Params params_;
  SumCombiner sum_combiner_;
  std::vector<double> rank_;
};

/// MultiTask adapter so PageRank can run through the multi-processing
/// runner (workload is interpreted as the number of independent PageRank
/// computations; the paper's Table 4 uses workload 1).
class PageRankTask : public MultiTask {
 public:
  PageRankTask() = default;
  explicit PageRankTask(const PageRankProgram::Params& params)
      : params_(params) {}

  std::string name() const override { return "PageRank"; }

  Result<std::unique_ptr<VertexProgram>> MakeProgram(
      const TaskContext& context, ProgramFlavor flavor, double workload,
      uint64_t seed) const override;

 private:
  PageRankProgram::Params params_;
};

}  // namespace vcmp

#endif  // VCMP_TASKS_PAGERANK_H_
