#include "tasks/pagerank.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vcmp {

PageRankProgram::PageRankProgram(const TaskContext& context,
                                 const Params& params)
    : context_(context),
      params_(params),
      rank_(context.graph->NumVertices(),
            1.0 / context.graph->NumVertices()) {}

void PageRankProgram::Compute(VertexId v, std::span<const Message> inbox,
                              MessageSink& sink) {
  const VertexId n = context_.graph->NumVertices();
  if (sink.round() > 0) {
    double incoming = 0.0;
    for (const Message& message : inbox) incoming += message.value;
    double updated = (1.0 - params_.damping) / n + params_.damping * incoming;
    if (params_.tolerance > 0.0) {
      sink.Aggregate(std::fabs(updated - rank_[v]));
    }
    rank_[v] = updated;
  }
  Propagate(v, sink);
}

void PageRankProgram::ComputeRun(VertexId v, const MessageRunView& run,
                                 MessageSink& sink) {
  // Single tag (0): one run per vertex per round, summed in the same
  // left-to-right order Compute's span walk used.
  const VertexId n = context_.graph->NumVertices();
  double updated =
      (1.0 - params_.damping) / n + params_.damping * run.SumValues();
  if (params_.tolerance > 0.0) {
    sink.Aggregate(std::fabs(updated - rank_[v]));
  }
  rank_[v] = updated;
  Propagate(v, sink);
}

void PageRankProgram::Propagate(VertexId v, MessageSink& sink) {
  if (sink.round() >= params_.iterations) return;  // Power iteration done.
  const auto neighbors = context_.graph->Neighbors(v);
  if (neighbors.empty()) return;  // Dangling mass leaks (documented).
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  double share = rank_[v] / static_cast<double>(neighbors.size());
  for (VertexId u : neighbors) {
    sink.Send(u, /*tag=*/0, share, /*multiplicity=*/1.0);
  }
}

double PageRankProgram::StateBytes(uint32_t machine) const {
  (void)machine;
  return 8.0 * context_.graph->NumVertices() /
         context_.partition->num_machines;
}

double PageRankProgram::TotalRank() const {
  return std::accumulate(rank_.begin(), rank_.end(), 0.0);
}

Result<std::unique_ptr<VertexProgram>> PageRankTask::MakeProgram(
    const TaskContext& context, ProgramFlavor flavor, double workload,
    uint64_t seed) const {
  (void)flavor;
  (void)workload;
  (void)seed;
  if (context.graph == nullptr || context.partition == nullptr) {
    return Status::InvalidArgument("PageRank task context missing graph");
  }
  return std::unique_ptr<VertexProgram>(
      std::make_unique<PageRankProgram>(context, params_));
}

}  // namespace vcmp
