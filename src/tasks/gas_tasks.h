#ifndef VCMP_TASKS_GAS_TASKS_H_
#define VCMP_TASKS_GAS_TASKS_H_

#include <vector>

#include "engine/gas_engine.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace vcmp {

/// Delta-push PageRank in the GAS model.
///
/// rank accumulates settled mass; residual mass is pushed to neighbours
/// and vertices re-schedule while their pending mass exceeds `tolerance`.
/// Under the synchronous engine this sweeps in rounds; under the
/// asynchronous engine the same program converges with fewer total
/// updates — the classic GraphLab result the paper's Table 4 reproduces
/// for the light, single-task workload.
class GasPageRank : public GasVertexProgram {
 public:
  struct Params {
    double damping = 0.85;
    /// Pending-mass threshold below which a vertex does not re-push.
    double tolerance_fraction = 1e-3;  // Of 1/n.
  };

  GasPageRank(const Graph& graph, const Partitioning& partition,
              const Params& params);

  void Seed(GasContext& context) override;
  void Process(VertexId v, double signal, GasContext& context) override;
  double StateBytes(uint32_t machine) const override;
  /// Eager asynchronous propagation converges in ~40% fewer updates than
  /// bulk sweeps (the classic GraphLab PageRank result).
  double AsyncWorkFactor() const override { return 0.6; }

  double Rank(VertexId v) const { return rank_[v]; }
  double TotalRank() const;

 private:
  const Graph& graph_;
  const Partitioning& partition_;
  Params params_;
  double tolerance_;
  std::vector<double> rank_;
};

/// Counting-mode BPPR walks in the GAS model (the heavy multi-processing
/// workload of Table 4). Signals carry walk counts; the synchronous engine
/// combines same-target signals into one wire message (the paper's
/// "random walks with the same source ... combined into one message"),
/// the asynchronous engine cannot.
class GasBpprWalks : public GasVertexProgram {
 public:
  struct Params {
    double alpha = 0.2;
    double residual_record_bytes = 8.0;
  };

  GasBpprWalks(const Graph& graph, const Partitioning& partition,
               double walks_per_vertex, const Params& params, uint64_t seed);

  void Seed(GasContext& context) override;
  void Process(VertexId v, double signal, GasContext& context) override;
  double StateBytes(uint32_t machine) const override;

  uint64_t TotalStopped() const;

 private:
  void Move(VertexId v, uint64_t count, GasContext& context);

  const Graph& graph_;
  const Partitioning& partition_;
  const uint64_t walks_per_vertex_;
  Params params_;
  std::vector<uint64_t> stopped_;
};

}  // namespace vcmp

#endif  // VCMP_TASKS_GAS_TASKS_H_
