#include "tasks/bppr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vcmp {

// ---------------------------------------------------------------------------
// BpprCountingProgram
// ---------------------------------------------------------------------------

BpprCountingProgram::BpprCountingProgram(const TaskContext& context,
                                         double walks_per_vertex,
                                         const BpprTask::Params& params,
                                         uint64_t seed)
    : context_(context),
      walks_per_vertex_(static_cast<uint64_t>(
          std::llround(std::max(0.0, walks_per_vertex)))),
      params_(params),
      stopped_(context.graph->NumVertices(), 0),
      residual_per_machine_(context.partition->num_machines, 0.0) {
  // Randomness comes from the engine's per-machine streams (sink.rng());
  // the seed parameter is kept so batch construction remains explicit
  // about its stochastic identity.
  (void)seed;
}

void BpprCountingProgram::Compute(VertexId v,
                                  std::span<const Message> inbox,
                                  MessageSink& sink) {
  uint64_t resident = 0;
  if (sink.round() == 0) {
    resident = walks_per_vertex_;
  } else {
    double incoming = 0.0;
    for (const Message& message : inbox) incoming += message.value;
    resident = static_cast<uint64_t>(std::llround(incoming));
  }
  if (resident == 0) return;

  // Each resident walk stops here with probability alpha. Randomness is
  // drawn from the sink's per-machine stream so machines can compute
  // concurrently and deterministically.
  Rng& rng = sink.rng();
  uint64_t stopping = rng.NextBinomial(resident, params_.alpha);
  const auto neighbors = context_.graph->Neighbors(v);
  if (neighbors.empty()) stopping = resident;  // Dangling: walks end here.
  RecordStops(v, stopping);
  uint64_t moving = resident - stopping;
  if (moving == 0) return;

  // Multinomial split of the survivors over the neighbours via conditional
  // binomials (exact in distribution).
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  uint64_t remaining = moving;
  size_t left = neighbors.size();
  for (VertexId u : neighbors) {
    if (remaining == 0) break;
    uint64_t portion =
        (left == 1)
            ? remaining
            : rng.NextBinomial(remaining, 1.0 / static_cast<double>(left));
    if (portion > 0) {
      sink.Send(u, /*tag=*/0, static_cast<double>(portion),
                static_cast<double>(portion));
      remaining -= portion;
    }
    --left;
  }
}

void BpprCountingProgram::RecordStops(VertexId v, uint64_t count) {
  if (count == 0) return;
  stopped_[v] += count;
  residual_per_machine_[context_.partition->MachineOf(v)] +=
      static_cast<double>(count) * params_.residual_record_bytes;
}

double BpprCountingProgram::ResidualBytes(uint32_t machine) const {
  return residual_per_machine_[machine];
}

double BpprCountingProgram::StateBytes(uint32_t machine) const {
  (void)machine;
  // Walk counters: 8 bytes per local vertex (uniform share).
  return 8.0 * context_.graph->NumVertices() /
         context_.partition->num_machines;
}

uint64_t BpprCountingProgram::TotalStopped() const {
  return std::accumulate(stopped_.begin(), stopped_.end(), uint64_t{0});
}

// ---------------------------------------------------------------------------
// BpprPushProgram
// ---------------------------------------------------------------------------

BpprPushProgram::BpprPushProgram(const TaskContext& context,
                                 double walks_per_vertex,
                                 const BpprTask::Params& params)
    : context_(context),
      walks_per_vertex_(walks_per_vertex),
      params_(params),
      stopped_mass_(context.graph->NumVertices(), 0.0),
      settled_sources_(context.graph->NumVertices()),
      residual_per_machine_(context.partition->num_machines, 0.0) {}

void BpprPushProgram::Compute(VertexId v, std::span<const Message> inbox,
                              MessageSink& sink) {
  if (sink.round() == 0) {
    // Every vertex is the source of its own W-walk budget.
    ProcessMass(v, /*source=*/v, walks_per_vertex_, sink);
    return;
  }
  // Inbox grouped by (target, tag): fold per-source shares.
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    double mass = 0.0;
    while (j < inbox.size() && inbox[j].tag == inbox[i].tag) {
      mass += inbox[j].value;
      ++j;
    }
    ProcessMass(v, inbox[i].tag, mass, sink);
    i = j;
  }
}

void BpprPushProgram::ProcessMass(VertexId v, uint32_t source, double mass,
                                  MessageSink& sink) {
  if (mass <= 0.0) return;
  const auto neighbors = context_.graph->Neighbors(v);
  double settling = neighbors.empty() ? mass : params_.alpha * mass;
  double moving = mass - settling;
  // Fractional mass below one walk settles locally instead of diffusing
  // forever: conserves the estimator's total mass and bounds the
  // per-source diffusion depth.
  if (moving < params_.prune_threshold && !neighbors.empty()) {
    settling = mass;
    moving = 0.0;
  }
  RecordSettle(v, source, settling);
  if (moving <= 0.0 || neighbors.empty()) return;
  // One common broadcast message for this source: every neighbour
  // receives the same per-neighbour share (the walk fractionalized over
  // the out-degree).
  double share = moving / static_cast<double>(neighbors.size());
  sink.Broadcast(v, source, share, /*multiplicity_per_neighbor=*/1.0);
}

void BpprPushProgram::RecordSettle(VertexId v, uint32_t source,
                                   double mass) {
  if (mass <= 0.0) return;
  stopped_mass_[v] += mass;
  if (settled_sources_[v].insert(source).second) {
    ++result_pairs_;
    // One PPR(source, v) record in the batch's intermediate results.
    residual_per_machine_[context_.partition->MachineOf(v)] +=
        params_.residual_record_bytes;
  }
}

double BpprPushProgram::ResidualBytes(uint32_t machine) const {
  return residual_per_machine_[machine];
}

double BpprPushProgram::StateBytes(uint32_t machine) const {
  (void)machine;
  // Per-(vertex, source) mass entries dominate. A hash-map node with its
  // bucket share plus the receiver-ID bookkeeping the broadcast interface
  // forces (Section 3) costs ~100 bytes per pair in the real C++ systems.
  return 100.0 * static_cast<double>(result_pairs_) /
         context_.partition->num_machines;
}

double BpprPushProgram::TotalStoppedMass() const {
  return std::accumulate(stopped_mass_.begin(), stopped_mass_.end(), 0.0);
}

// ---------------------------------------------------------------------------
// BpprTask
// ---------------------------------------------------------------------------

Result<std::unique_ptr<VertexProgram>> BpprTask::MakeProgram(
    const TaskContext& context, ProgramFlavor flavor, double workload,
    uint64_t seed) const {
  if (context.graph == nullptr || context.partition == nullptr) {
    return Status::InvalidArgument("BPPR task context missing graph");
  }
  if (workload <= 0.0) {
    return Status::InvalidArgument("BPPR workload must be positive");
  }
  if (flavor == ProgramFlavor::kBroadcast) {
    return std::unique_ptr<VertexProgram>(
        std::make_unique<BpprPushProgram>(context, workload, params_));
  }
  if (context.combining_system && params_.per_source_traffic) {
    return std::unique_ptr<VertexProgram>(
        std::make_unique<BpprPerSourceProgram>(context, workload, params_,
                                               seed));
  }
  return std::unique_ptr<VertexProgram>(std::make_unique<BpprCountingProgram>(
      context, workload, params_, seed));
}

// ---------------------------------------------------------------------------
// BpprPerSourceProgram
// ---------------------------------------------------------------------------

BpprPerSourceProgram::BpprPerSourceProgram(const TaskContext& context,
                                           double walks_per_vertex,
                                           const BpprTask::Params& params,
                                           uint64_t seed)
    : context_(context),
      walks_per_vertex_(static_cast<uint64_t>(
          std::llround(std::max(0.0, walks_per_vertex)))),
      params_(params),
      stopped_(context.graph->NumVertices(), 0),
      pair_tracker_(context.partition->num_machines),
      residual_per_machine_(context.partition->num_machines, 0.0) {
  (void)seed;
}

void BpprPerSourceProgram::Compute(VertexId v,
                                   std::span<const Message> inbox,
                                   MessageSink& sink) {
  // Per-machine round-pair tracking (v's owner is the executing machine,
  // so each slot is only ever touched by one thread).
  PairTracker& tracker =
      pair_tracker_[context_.partition->MachineOf(v)];
  if (sink.round() != tracker.round) {
    tracker.peak = std::max(tracker.peak, tracker.current);
    tracker.current = 0.0;
    tracker.round = sink.round();
  }
  if (sink.round() == 0) {
    Advance(v, v, walks_per_vertex_, sink);
    tracker.current += 1.0;
    return;
  }
  // Inbox grouped by (target, tag): one resident count per source.
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    double incoming = 0.0;
    while (j < inbox.size() && inbox[j].tag == inbox[i].tag) {
      incoming += inbox[j].value;
      ++j;
    }
    Advance(v, inbox[i].tag,
            static_cast<uint64_t>(std::llround(incoming)), sink);
    tracker.current += 1.0;
    i = j;
  }
}

void BpprPerSourceProgram::Advance(VertexId v, uint32_t source,
                                   uint64_t count, MessageSink& sink) {
  if (count == 0) return;
  Rng& rng = sink.rng();
  uint64_t stopping = rng.NextBinomial(count, params_.alpha);
  const auto neighbors = context_.graph->Neighbors(v);
  if (neighbors.empty()) stopping = count;
  if (stopping > 0) {
    stopped_[v] += stopping;
    residual_per_machine_[context_.partition->MachineOf(v)] +=
        static_cast<double>(stopping) * params_.residual_record_bytes;
  }
  uint64_t moving = count - stopping;
  if (moving == 0) return;
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  uint64_t remaining = moving;
  size_t left = neighbors.size();
  for (VertexId u : neighbors) {
    if (remaining == 0) break;
    uint64_t portion =
        (left == 1)
            ? remaining
            : rng.NextBinomial(remaining, 1.0 / static_cast<double>(left));
    if (portion > 0) {
      sink.Send(u, source, static_cast<double>(portion),
                static_cast<double>(portion));
      remaining -= portion;
    }
    --left;
  }
}

double BpprPerSourceProgram::ResidualBytes(uint32_t machine) const {
  return residual_per_machine_[machine];
}

double BpprPerSourceProgram::StateBytes(uint32_t machine) const {
  const PairTracker& tracker = pair_tracker_[machine];
  // Per-(source, target) hash-map entries of the in-flight walk table.
  double pairs = std::max(tracker.peak, tracker.current);
  return 48.0 * pairs;
}

uint64_t BpprPerSourceProgram::TotalStopped() const {
  return std::accumulate(stopped_.begin(), stopped_.end(), uint64_t{0});
}

// ---------------------------------------------------------------------------
// BpprExactProgram
// ---------------------------------------------------------------------------

BpprExactProgram::BpprExactProgram(const TaskContext& context,
                                   double walks_per_vertex, double alpha,
                                   uint64_t seed)
    : context_(context),
      walks_per_vertex_(
          static_cast<uint64_t>(std::llround(walks_per_vertex))),
      alpha_(alpha),
      stops_(static_cast<size_t>(context.graph->NumVertices()) *
                 context.graph->NumVertices(),
             0),
      residual_per_machine_(context.partition->num_machines, 0.0) {
  (void)seed;
  VCMP_CHECK(context.graph->NumVertices() <= 4096)
      << "BpprExactProgram is for small validation graphs";
}

void BpprExactProgram::Compute(VertexId v, std::span<const Message> inbox,
                               MessageSink& sink) {
  if (sink.round() == 0) {
    Advance(v, v, walks_per_vertex_, sink);
    return;
  }
  // Messages are grouped by (target, tag): fold per-source counts.
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    uint64_t count = 0;
    while (j < inbox.size() && inbox[j].tag == inbox[i].tag) {
      count += static_cast<uint64_t>(std::llround(inbox[j].value));
      ++j;
    }
    Advance(v, inbox[i].tag, count, sink);
    i = j;
  }
}

void BpprExactProgram::Advance(VertexId v, uint32_t source, uint64_t count,
                               MessageSink& sink) {
  if (count == 0) return;
  Rng& rng = sink.rng();
  const auto neighbors = context_.graph->Neighbors(v);
  uint64_t stopping = rng.NextBinomial(count, alpha_);
  if (neighbors.empty()) stopping = count;
  if (stopping > 0) {
    stops_[static_cast<size_t>(source) * context_.graph->NumVertices() + v] +=
        stopping;
    residual_per_machine_[context_.partition->MachineOf(v)] +=
        8.0 * static_cast<double>(stopping);
  }
  uint64_t moving = count - stopping;
  if (moving == 0) return;
  uint64_t remaining = moving;
  size_t left = neighbors.size();
  for (VertexId u : neighbors) {
    if (remaining == 0) break;
    uint64_t portion =
        (left == 1)
            ? remaining
            : rng.NextBinomial(remaining, 1.0 / static_cast<double>(left));
    if (portion > 0) {
      sink.Send(u, source, static_cast<double>(portion),
                static_cast<double>(portion));
      remaining -= portion;
    }
    --left;
  }
}

double BpprExactProgram::ResidualBytes(uint32_t machine) const {
  return residual_per_machine_[machine];
}

double BpprExactProgram::Ppr(VertexId source, VertexId u) const {
  double total = static_cast<double>(walks_per_vertex_);
  if (total == 0.0) return 0.0;
  return static_cast<double>(
             stops_[static_cast<size_t>(source) *
                        context_.graph->NumVertices() +
                    u]) /
         total;
}

}  // namespace vcmp
