#include "tasks/bppr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vcmp {

namespace {

// Small-count fast path for the walk advance: one uniform draw per walk
// decides stop-vs-move and, for movers, the destination bucket. The joint
// distribution of (stop count, per-neighbour counts) is exactly the
// Binomial(alpha) stop draw followed by the conditional-binomial
// multinomial split, but it costs O(resident) draws where the binomial
// chain costs O(resident * degree) once NextBinomial is in its exact
// per-trial regime (n <= 128). Fills counts[0..degree) and returns the
// number of walks that stop. Callers gate on degree >= 2 (degree 1 splits
// for free) and degree <= kPerWalkDegreeMax (counts live on the stack).
constexpr uint64_t kPerWalkResidentMax = 128;
constexpr size_t kPerWalkDegreeMax = 1024;

uint64_t PerWalkStopAndSplit(Rng& rng, size_t degree, uint64_t resident,
                             double alpha, uint32_t* counts) {
  std::fill(counts, counts + degree, 0u);
  const double scale = static_cast<double>(degree) / (1.0 - alpha);
  uint64_t stopping = 0;
  for (uint64_t walk = 0; walk < resident; ++walk) {
    const double x = rng.NextDouble();
    if (x < alpha) {
      ++stopping;
      continue;
    }
    // x | x >= alpha is uniform on [alpha, 1), so the rescale is uniform
    // on [0, degree); the clamp guards the floating-point upper edge.
    size_t index = static_cast<size_t>((x - alpha) * scale);
    if (index >= degree) index = degree - 1;
    ++counts[index];
  }
  return stopping;
}

// Multinomial split of `moving` walks over `neighbors`: one combined
// (count, count) message per nonempty destination, in neighbour order.
// Conditional binomials sample the head; once the remainder is small the
// tail finishes with one uniform draw per walk — the same distribution,
// at O(remaining + left) draws instead of O(remaining * left) once
// NextBinomial is in its exact per-trial regime.
template <typename SendFn>
void MultinomialSplit(Rng& rng, std::span<const VertexId> neighbors,
                      uint64_t moving, SendFn&& send) {
  uint64_t remaining = moving;
  const size_t degree = neighbors.size();
  for (size_t i = 0; i < degree && remaining > 0; ++i) {
    const size_t left = degree - i;
    if (left == 1) {
      send(neighbors[i], remaining);
      return;
    }
    if (remaining <= kPerWalkResidentMax && left <= kPerWalkDegreeMax) {
      uint32_t counts[kPerWalkDegreeMax];
      std::fill(counts, counts + left, 0u);
      for (uint64_t walk = 0; walk < remaining; ++walk) {
        ++counts[rng.NextBounded(static_cast<uint64_t>(left))];
      }
      for (size_t j = 0; j < left; ++j) {
        if (counts[j] > 0) send(neighbors[i + j], counts[j]);
      }
      return;
    }
    uint64_t portion =
        rng.NextBinomial(remaining, 1.0 / static_cast<double>(left));
    if (portion > 0) {
      send(neighbors[i], portion);
      remaining -= portion;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BpprCountingProgram
// ---------------------------------------------------------------------------

BpprCountingProgram::BpprCountingProgram(const TaskContext& context,
                                         double walks_per_vertex,
                                         const BpprTask::Params& params,
                                         uint64_t seed)
    : context_(context),
      walks_per_vertex_(static_cast<uint64_t>(
          std::llround(std::max(0.0, walks_per_vertex)))),
      params_(params),
      stopped_(context.graph->NumVertices(), 0) {
  // Randomness comes from the engine's per-machine streams (sink.rng());
  // the seed parameter is kept so batch construction remains explicit
  // about its stochastic identity.
  (void)seed;
}

void BpprCountingProgram::Compute(VertexId v,
                                  std::span<const Message> inbox,
                                  MessageSink& sink) {
  uint64_t resident = 0;
  if (sink.round() == 0) {
    resident = walks_per_vertex_;
  } else {
    double incoming = 0.0;
    for (const Message& message : inbox) incoming += message.value;
    resident = static_cast<uint64_t>(std::llround(incoming));
  }
  AdvanceResident(v, resident, sink);
}

void BpprCountingProgram::ComputeRun(VertexId v, const MessageRunView& run,
                                     MessageSink& sink) {
  // Counting mode sends on a single tag (0), so each vertex owns exactly
  // one run per round; SumValues folds in the same left-to-right order
  // Compute's span walk did.
  AdvanceResident(
      v, static_cast<uint64_t>(std::llround(run.SumValues())), sink);
}

void BpprCountingProgram::AdvanceResident(VertexId v, uint64_t resident,
                                          MessageSink& sink) {
  if (resident == 0) return;

  // Each resident walk stops here with probability alpha. Randomness is
  // drawn from the sink's per-machine stream so machines can compute
  // concurrently and deterministically.
  Rng& rng = sink.rng();
  const auto neighbors = context_.graph->Neighbors(v);
  if (resident <= kPerWalkResidentMax && neighbors.size() >= 2 &&
      neighbors.size() <= kPerWalkDegreeMax) {
    uint32_t counts[kPerWalkDegreeMax];
    uint64_t stops = PerWalkStopAndSplit(rng, neighbors.size(), resident,
                                         params_.alpha, counts);
    RecordStops(v, stops, sink);
    if (stops == resident) return;
    sink.AddComputeUnits(static_cast<double>(neighbors.size()));
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (counts[i] > 0) {
        sink.Send(neighbors[i], /*tag=*/0, static_cast<double>(counts[i]),
                  static_cast<double>(counts[i]));
      }
    }
    return;
  }
  uint64_t stopping = rng.NextBinomial(resident, params_.alpha);
  if (neighbors.empty()) stopping = resident;  // Dangling: walks end here.
  RecordStops(v, stopping, sink);
  uint64_t moving = resident - stopping;
  if (moving == 0) return;

  // Multinomial split of the survivors over the neighbours (exact in
  // distribution).
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  MultinomialSplit(rng, neighbors, moving, [&](VertexId u, uint64_t portion) {
    sink.Send(u, /*tag=*/0, static_cast<double>(portion),
              static_cast<double>(portion));
  });
}

void BpprCountingProgram::RecordStops(VertexId v, uint64_t count,
                                      MessageSink& sink) {
  if (count == 0) return;
  stopped_[v] += count;
  // Terminated-walk records accrue through the sink's per-vertex log so
  // several shards of one machine can execute concurrently; the engine
  // folds the records in vertex order and reports the per-machine totals
  // in EngineResult::residual_bytes_per_machine.
  sink.AddResidualBytes(static_cast<double>(count) *
                        params_.residual_record_bytes);
}

double BpprCountingProgram::StateBytes(uint32_t machine) const {
  (void)machine;
  // Walk counters: 8 bytes per local vertex (uniform share).
  return 8.0 * context_.graph->NumVertices() /
         context_.partition->num_machines;
}

uint64_t BpprCountingProgram::TotalStopped() const {
  return std::accumulate(stopped_.begin(), stopped_.end(), uint64_t{0});
}

// ---------------------------------------------------------------------------
// BpprPushProgram
// ---------------------------------------------------------------------------

BpprPushProgram::BpprPushProgram(const TaskContext& context,
                                 double walks_per_vertex,
                                 const BpprTask::Params& params)
    : context_(context),
      walks_per_vertex_(walks_per_vertex),
      params_(params),
      stopped_mass_(context.graph->NumVertices(), 0.0),
      settled_sources_(context.graph->NumVertices()) {}

void BpprPushProgram::Compute(VertexId v, std::span<const Message> inbox,
                              MessageSink& sink) {
  if (sink.round() == 0) {
    // Every vertex is the source of its own W-walk budget.
    ProcessMass(v, /*source=*/v, walks_per_vertex_, sink);
    return;
  }
  // Inbox grouped by (target, tag): fold per-source shares.
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    double mass = 0.0;
    while (j < inbox.size() && inbox[j].tag == inbox[i].tag) {
      mass += inbox[j].value;
      ++j;
    }
    ProcessMass(v, inbox[i].tag, mass, sink);
    i = j;
  }
}

void BpprPushProgram::ComputeRun(VertexId v, const MessageRunView& run,
                                 MessageSink& sink) {
  // One run per (vertex, source): the per-tag fold Compute performed.
  ProcessMass(v, run.tag, run.SumValues(), sink);
}

void BpprPushProgram::ProcessMass(VertexId v, uint32_t source, double mass,
                                  MessageSink& sink) {
  if (mass <= 0.0) return;
  const auto neighbors = context_.graph->Neighbors(v);
  double settling = neighbors.empty() ? mass : params_.alpha * mass;
  double moving = mass - settling;
  // Fractional mass below one walk settles locally instead of diffusing
  // forever: conserves the estimator's total mass and bounds the
  // per-source diffusion depth.
  if (moving < params_.prune_threshold && !neighbors.empty()) {
    settling = mass;
    moving = 0.0;
  }
  RecordSettle(v, source, settling, sink);
  if (moving <= 0.0 || neighbors.empty()) return;
  // One common broadcast message for this source: every neighbour
  // receives the same per-neighbour share (the walk fractionalized over
  // the out-degree).
  double share = moving / static_cast<double>(neighbors.size());
  sink.Broadcast(v, source, share, /*multiplicity_per_neighbor=*/1.0);
}

void BpprPushProgram::RecordSettle(VertexId v, uint32_t source, double mass,
                                   MessageSink& sink) {
  if (mass <= 0.0) return;
  stopped_mass_[v] += mass;
  if (settled_sources_[v].insert(source).second) {
    ++result_pairs_;
    // One PPR(source, v) record in the batch's intermediate results,
    // accrued through the sink so concurrent shards of one machine never
    // touch a shared accumulator.
    sink.AddResidualBytes(params_.residual_record_bytes);
  }
}

double BpprPushProgram::StateBytes(uint32_t machine) const {
  (void)machine;
  // Per-(vertex, source) mass entries dominate. A hash-map node with its
  // bucket share plus the receiver-ID bookkeeping the broadcast interface
  // forces (Section 3) costs ~100 bytes per pair in the real C++ systems.
  return 100.0 * static_cast<double>(result_pairs_) /
         context_.partition->num_machines;
}

double BpprPushProgram::TotalStoppedMass() const {
  return std::accumulate(stopped_mass_.begin(), stopped_mass_.end(), 0.0);
}

// ---------------------------------------------------------------------------
// BpprTask
// ---------------------------------------------------------------------------

Result<std::unique_ptr<VertexProgram>> BpprTask::MakeProgram(
    const TaskContext& context, ProgramFlavor flavor, double workload,
    uint64_t seed) const {
  if (context.graph == nullptr || context.partition == nullptr) {
    return Status::InvalidArgument("BPPR task context missing graph");
  }
  if (workload <= 0.0) {
    return Status::InvalidArgument("BPPR workload must be positive");
  }
  if (flavor == ProgramFlavor::kBroadcast) {
    return std::unique_ptr<VertexProgram>(
        std::make_unique<BpprPushProgram>(context, workload, params_));
  }
  if (context.combining_system && params_.per_source_traffic) {
    return std::unique_ptr<VertexProgram>(
        std::make_unique<BpprPerSourceProgram>(context, workload, params_,
                                               seed));
  }
  return std::unique_ptr<VertexProgram>(std::make_unique<BpprCountingProgram>(
      context, workload, params_, seed));
}

// ---------------------------------------------------------------------------
// BpprPerSourceProgram
// ---------------------------------------------------------------------------

BpprPerSourceProgram::BpprPerSourceProgram(const TaskContext& context,
                                           double walks_per_vertex,
                                           const BpprTask::Params& params,
                                           uint64_t seed)
    : context_(context),
      walks_per_vertex_(static_cast<uint64_t>(
          std::llround(std::max(0.0, walks_per_vertex)))),
      params_(params),
      stopped_(context.graph->NumVertices(), 0),
      pair_tracker_(context.partition->num_machines) {
  (void)seed;
}

void BpprPerSourceProgram::Compute(VertexId v,
                                   std::span<const Message> inbox,
                                   MessageSink& sink) {
  if (sink.round() == 0) {
    TrackPair(v, sink.round());
    Advance(v, v, walks_per_vertex_, sink);
    return;
  }
  // Inbox grouped by (target, tag): one resident count per source.
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    double incoming = 0.0;
    while (j < inbox.size() && inbox[j].tag == inbox[i].tag) {
      incoming += inbox[j].value;
      ++j;
    }
    TrackPair(v, sink.round());
    Advance(v, inbox[i].tag,
            static_cast<uint64_t>(std::llround(incoming)), sink);
    i = j;
  }
}

void BpprPerSourceProgram::ComputeRun(VertexId v, const MessageRunView& run,
                                      MessageSink& sink) {
  TrackPair(v, sink.round());
  Advance(v, run.tag, static_cast<uint64_t>(std::llround(run.SumValues())),
          sink);
}

void BpprPerSourceProgram::TrackPair(VertexId v, uint64_t round) {
  // Per-machine round-pair tracking. Several shards of v's machine run
  // concurrently, so the slot is mutex-guarded; within one round every
  // call carries the same `round` and only adds, so the totals are
  // order-independent and the rollover fires exactly once per round.
  std::lock_guard<std::mutex> lock(pair_mutex_);
  PairTracker& tracker = pair_tracker_[context_.partition->MachineOf(v)];
  if (round != tracker.round) {
    tracker.peak = std::max(tracker.peak, tracker.current);
    tracker.current = 0.0;
    tracker.round = round;
  }
  tracker.current += 1.0;
}

void BpprPerSourceProgram::Advance(VertexId v, uint32_t source,
                                   uint64_t count, MessageSink& sink) {
  if (count == 0) return;
  Rng& rng = sink.rng();
  const auto neighbors = context_.graph->Neighbors(v);
  if (count <= kPerWalkResidentMax && neighbors.size() >= 2 &&
      neighbors.size() <= kPerWalkDegreeMax) {
    uint32_t counts[kPerWalkDegreeMax];
    uint64_t stops = PerWalkStopAndSplit(rng, neighbors.size(), count,
                                         params_.alpha, counts);
    if (stops > 0) {
      stopped_[v] += stops;
      sink.AddResidualBytes(static_cast<double>(stops) *
                            params_.residual_record_bytes);
    }
    if (stops == count) return;
    sink.AddComputeUnits(static_cast<double>(neighbors.size()));
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (counts[i] > 0) {
        sink.Send(neighbors[i], source, static_cast<double>(counts[i]),
                  static_cast<double>(counts[i]));
      }
    }
    return;
  }
  uint64_t stopping = rng.NextBinomial(count, params_.alpha);
  if (neighbors.empty()) stopping = count;
  if (stopping > 0) {
    stopped_[v] += stopping;
    sink.AddResidualBytes(static_cast<double>(stopping) *
                          params_.residual_record_bytes);
  }
  uint64_t moving = count - stopping;
  if (moving == 0) return;
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  MultinomialSplit(rng, neighbors, moving, [&](VertexId u, uint64_t portion) {
    sink.Send(u, source, static_cast<double>(portion),
              static_cast<double>(portion));
  });
}

double BpprPerSourceProgram::StateBytes(uint32_t machine) const {
  std::lock_guard<std::mutex> lock(pair_mutex_);
  const PairTracker& tracker = pair_tracker_[machine];
  // Per-(source, target) hash-map entries of the in-flight walk table.
  double pairs = std::max(tracker.peak, tracker.current);
  return 48.0 * pairs;
}

uint64_t BpprPerSourceProgram::TotalStopped() const {
  return std::accumulate(stopped_.begin(), stopped_.end(), uint64_t{0});
}

// ---------------------------------------------------------------------------
// BpprExactProgram
// ---------------------------------------------------------------------------

BpprExactProgram::BpprExactProgram(const TaskContext& context,
                                   double walks_per_vertex, double alpha,
                                   uint64_t seed)
    : context_(context),
      walks_per_vertex_(
          static_cast<uint64_t>(std::llround(walks_per_vertex))),
      alpha_(alpha),
      stops_(static_cast<size_t>(context.graph->NumVertices()) *
                 context.graph->NumVertices(),
             0) {
  (void)seed;
  VCMP_CHECK(context.graph->NumVertices() <= 4096)
      << "BpprExactProgram is for small validation graphs";
}

void BpprExactProgram::Compute(VertexId v, std::span<const Message> inbox,
                               MessageSink& sink) {
  if (sink.round() == 0) {
    Advance(v, v, walks_per_vertex_, sink);
    return;
  }
  // Messages are grouped by (target, tag): fold per-source counts.
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    uint64_t count = 0;
    while (j < inbox.size() && inbox[j].tag == inbox[i].tag) {
      count += static_cast<uint64_t>(std::llround(inbox[j].value));
      ++j;
    }
    Advance(v, inbox[i].tag, count, sink);
    i = j;
  }
}

void BpprExactProgram::Advance(VertexId v, uint32_t source, uint64_t count,
                               MessageSink& sink) {
  if (count == 0) return;
  Rng& rng = sink.rng();
  const auto neighbors = context_.graph->Neighbors(v);
  uint64_t stopping = rng.NextBinomial(count, alpha_);
  if (neighbors.empty()) stopping = count;
  if (stopping > 0) {
    stops_[static_cast<size_t>(source) * context_.graph->NumVertices() + v] +=
        stopping;
    sink.AddResidualBytes(8.0 * static_cast<double>(stopping));
  }
  uint64_t moving = count - stopping;
  if (moving == 0) return;
  uint64_t remaining = moving;
  size_t left = neighbors.size();
  for (VertexId u : neighbors) {
    if (remaining == 0) break;
    uint64_t portion =
        (left == 1)
            ? remaining
            : rng.NextBinomial(remaining, 1.0 / static_cast<double>(left));
    if (portion > 0) {
      sink.Send(u, source, static_cast<double>(portion),
                static_cast<double>(portion));
      remaining -= portion;
    }
    --left;
  }
}

double BpprExactProgram::Ppr(VertexId source, VertexId u) const {
  double total = static_cast<double>(walks_per_vertex_);
  if (total == 0.0) return 0.0;
  return static_cast<double>(
             stops_[static_cast<size_t>(source) *
                        context_.graph->NumVertices() +
                    u]) /
         total;
}

}  // namespace vcmp
