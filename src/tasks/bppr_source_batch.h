#ifndef VCMP_TASKS_BPPR_SOURCE_BATCH_H_
#define VCMP_TASKS_BPPR_SOURCE_BATCH_H_

#include <vector>

#include "tasks/task.h"

namespace vcmp {

/// Alternative workload semantics for BPPR (Section 4.9, "Alternative
/// Workload Settings"): the unit task is one PPR *query* — a source
/// vertex running `walks_per_source` alpha-decay walks — and the workload
/// is the number of queries. A batch therefore contains a subset of the
/// source vertices, in contrast to BpprTask whose batches split every
/// vertex's walk budget.
///
/// Like MSSP/BKHS, large query sets are executed on a deterministic
/// sample of sources with the remainder extrapolated through message
/// multiplicities.
class BpprSourceBatchTask : public MultiTask {
 public:
  struct Params {
    double alpha = 0.2;
    /// Walks per PPR query (the per-source accuracy knob).
    uint64_t walks_per_source = 2000;
    uint32_t max_sampled_sources = 32;
    double residual_record_bytes = 8.0;
  };

  BpprSourceBatchTask() = default;
  explicit BpprSourceBatchTask(const Params& params) : params_(params) {}

  std::string name() const override { return "BPPR(source-batched)"; }

  Result<std::unique_ptr<VertexProgram>> MakeProgram(
      const TaskContext& context, ProgramFlavor flavor, double workload,
      uint64_t seed) const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// Counting-mode walks seeded only at the batch's sampled sources.
class BpprSourceBatchProgram : public VertexProgram {
 public:
  BpprSourceBatchProgram(const TaskContext& context, double num_queries,
                         const BpprSourceBatchTask::Params& params,
                         uint64_t seed);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;
  double StateBytes(uint32_t machine) const override;
  const Combiner* combiner() const override { return &sum_combiner_; }
  // Shares travel on the single tag 0.
  uint32_t combine_tag_universe() const override { return 1; }

  uint32_t num_samples() const {
    return static_cast<uint32_t>(sources_.size());
  }
  VertexId SourceOf(uint32_t sample) const { return sources_[sample]; }
  double extrapolation() const { return extrapolation_; }
  /// Physically simulated walks that terminated (before extrapolation).
  uint64_t TotalStopped() const;

 private:
  void Move(VertexId v, uint64_t count, MessageSink& sink);

  const TaskContext context_;
  const BpprSourceBatchTask::Params params_;
  double extrapolation_ = 1.0;
  SumCombiner sum_combiner_;
  Rng rng_;
  std::vector<VertexId> sources_;
  std::vector<bool> is_source_;
  std::vector<uint64_t> stopped_;
};

}  // namespace vcmp

#endif  // VCMP_TASKS_BPPR_SOURCE_BATCH_H_
