#include "tasks/task_registry.h"

#include "tasks/bkhs.h"
#include "tasks/connected_components.h"
#include "tasks/bppr.h"
#include "tasks/mssp.h"
#include "tasks/pagerank.h"

namespace vcmp {

Result<std::unique_ptr<MultiTask>> MakeTask(const std::string& name) {
  if (name == "BPPR") {
    return std::unique_ptr<MultiTask>(std::make_unique<BpprTask>());
  }
  if (name == "MSSP") {
    return std::unique_ptr<MultiTask>(std::make_unique<MsspTask>());
  }
  if (name == "BKHS") {
    return std::unique_ptr<MultiTask>(std::make_unique<BkhsTask>());
  }
  if (name == "PageRank") {
    return std::unique_ptr<MultiTask>(std::make_unique<PageRankTask>());
  }
  if (name == "ConnectedComponents") {
    return std::unique_ptr<MultiTask>(
        std::make_unique<ConnectedComponentsTask>());
  }
  std::string known;
  for (const std::string& task : RegisteredTaskNames()) {
    if (!known.empty()) known += ", ";
    known += task;
  }
  return Status::NotFound("no task named '" + name + "' (known tasks: " +
                          known + ")");
}

const std::vector<std::string>& BenchmarkTaskNames() {
  static const auto& names =
      *new std::vector<std::string>{"BPPR", "MSSP", "BKHS"};
  return names;
}

const std::vector<std::string>& RegisteredTaskNames() {
  static const auto& names = *new std::vector<std::string>{
      "BPPR", "MSSP", "BKHS", "PageRank", "ConnectedComponents"};
  return names;
}

}  // namespace vcmp
