#include "tasks/gas_tasks.h"

#include <numeric>

#include "common/logging.h"

namespace vcmp {

// ---------------------------------------------------------------------------
// GasPageRank
// ---------------------------------------------------------------------------

GasPageRank::GasPageRank(const Graph& graph, const Partitioning& partition,
                         const Params& params)
    : graph_(graph),
      partition_(partition),
      params_(params),
      tolerance_(params.tolerance_fraction / graph.NumVertices()),
      rank_(graph.NumVertices(), 0.0) {}

void GasPageRank::Seed(GasContext& context) {
  const double initial = (1.0 - params_.damping) / graph_.NumVertices();
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    context.Signal(v, initial, 1.0);
  }
}

void GasPageRank::Process(VertexId v, double signal, GasContext& context) {
  if (signal <= 0.0) return;
  rank_[v] += signal;
  if (signal < tolerance_) return;  // Absorb tiny mass; do not re-push.
  const auto neighbors = graph_.Neighbors(v);
  if (neighbors.empty()) return;  // Dangling mass settles here.
  context.AddComputeUnits(static_cast<double>(neighbors.size()));
  double share =
      params_.damping * signal / static_cast<double>(neighbors.size());
  for (VertexId u : neighbors) {
    context.Signal(u, share, 1.0);
  }
}

double GasPageRank::StateBytes(uint32_t machine) const {
  (void)machine;
  // rank + pending accumulator, 8 bytes each per local vertex.
  return 16.0 * graph_.NumVertices() / partition_.num_machines;
}

double GasPageRank::TotalRank() const {
  return std::accumulate(rank_.begin(), rank_.end(), 0.0);
}

// ---------------------------------------------------------------------------
// GasBpprWalks
// ---------------------------------------------------------------------------

GasBpprWalks::GasBpprWalks(const Graph& graph, const Partitioning& partition,
                           double walks_per_vertex, const Params& params,
                           uint64_t seed)
    : graph_(graph),
      partition_(partition),
      walks_per_vertex_(static_cast<uint64_t>(walks_per_vertex)),
      params_(params),
      stopped_(graph.NumVertices(), 0) {
  // Randomness comes from the context's per-vertex streams (rng() is
  // reseeded per activation); the seed parameter keeps construction
  // explicit about the program's stochastic identity.
  (void)seed;
}

void GasBpprWalks::Seed(GasContext& context) {
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    context.Signal(v, static_cast<double>(walks_per_vertex_),
                   static_cast<double>(walks_per_vertex_));
  }
}

void GasBpprWalks::Process(VertexId v, double signal, GasContext& context) {
  auto resident = static_cast<uint64_t>(signal + 0.5);
  Move(v, resident, context);
}

void GasBpprWalks::Move(VertexId v, uint64_t count, GasContext& context) {
  if (count == 0) return;
  Rng& rng = context.rng();
  uint64_t stopping = rng.NextBinomial(count, params_.alpha);
  const auto neighbors = graph_.Neighbors(v);
  if (neighbors.empty()) stopping = count;
  if (stopping > 0) {
    stopped_[v] += stopping;
    context.AddResidualBytes(static_cast<double>(stopping) *
                             params_.residual_record_bytes);
  }
  uint64_t moving = count - stopping;
  if (moving == 0) return;
  context.AddComputeUnits(static_cast<double>(neighbors.size()));
  uint64_t remaining = moving;
  size_t left = neighbors.size();
  for (VertexId u : neighbors) {
    if (remaining == 0) break;
    uint64_t portion =
        (left == 1)
            ? remaining
            : rng.NextBinomial(remaining, 1.0 / static_cast<double>(left));
    if (portion > 0) {
      context.Signal(u, static_cast<double>(portion),
                     static_cast<double>(portion));
      remaining -= portion;
    }
    --left;
  }
}

double GasBpprWalks::StateBytes(uint32_t machine) const {
  (void)machine;
  return 16.0 * graph_.NumVertices() / partition_.num_machines;
}

uint64_t GasBpprWalks::TotalStopped() const {
  return std::accumulate(stopped_.begin(), stopped_.end(), uint64_t{0});
}

}  // namespace vcmp
