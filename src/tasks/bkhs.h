#ifndef VCMP_TASKS_BKHS_H_
#define VCMP_TASKS_BKHS_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "tasks/task.h"

namespace vcmp {

/// Batch k-Hop Search (Section 2.3 / 3): for each source s in S, collect
/// the set of vertices within k hops of s. The workload is |S|. The
/// program is MSSP truncated after k+1 communication rounds; like MSSP it
/// samples sources and extrapolates via message multiplicities.
class BkhsTask : public MultiTask {
 public:
  struct Params {
    /// Neighbourhood radius (the paper's link-analysis use case is 2-hop
    /// ego networks).
    uint32_t k = 2;
    uint32_t max_sampled_sources = 16;
    /// Bytes per discovered (source, vertex) pair in residual memory.
    double residual_entry_bytes = 4.0;
  };

  BkhsTask() = default;
  explicit BkhsTask(const Params& params) : params_(params) {}

  std::string name() const override { return "BKHS"; }

  Result<std::unique_ptr<VertexProgram>> MakeProgram(
      const TaskContext& context, ProgramFlavor flavor, double workload,
      uint64_t seed) const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// The BKHS vertex program: BFS wavefront per sampled source, stopping
/// after k+1 rounds (the paper's explicit termination condition).
class BkhsProgram : public VertexProgram {
 public:
  BkhsProgram(const TaskContext& context, ProgramFlavor flavor,
              double workload, const BkhsTask::Params& params,
              uint64_t seed);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;
  bool ShouldTerminate(uint64_t rounds_completed) const override {
    return rounds_completed >= params_.k + 1;
  }
  const Combiner* combiner() const override { return &min_combiner_; }
  // Tags are sample indices: [0, num_samples).
  uint32_t combine_tag_universe() const override { return num_samples(); }

  uint32_t num_samples() const {
    return static_cast<uint32_t>(sources_.size());
  }
  VertexId SourceOf(uint32_t sample) const { return sources_[sample]; }
  /// Vertices discovered within k hops of sampled source `sample`
  /// (excluding the source itself).
  uint64_t KHopCount(uint32_t sample) const {
    return khop_count_[sample].load(std::memory_order_relaxed);
  }
  double extrapolation() const { return extrapolation_; }

 private:
  void Visit(VertexId v, uint32_t sample, uint32_t hop, MessageSink& sink);

  const TaskContext context_;
  const ProgramFlavor flavor_;
  const BkhsTask::Params params_;
  const VertexId num_vertices_;
  double extrapolation_ = 1.0;
  MinCombiner min_combiner_;
  std::vector<VertexId> sources_;
  /// samples x n, row-major. uint8_t (not vector<bool>): adjacent vertex
  /// slots must not share a byte once shards of one machine run
  /// concurrently — each vertex column is written only by its owner.
  std::vector<uint8_t> visited_;
  /// Counting-only cross-vertex accumulation: relaxed atomics (integer
  /// adds commute, so the totals stay deterministic).
  std::unique_ptr<std::atomic<uint64_t>[]> khop_count_;
};

}  // namespace vcmp

#endif  // VCMP_TASKS_BKHS_H_
