#ifndef VCMP_TASKS_BPPR_H_
#define VCMP_TASKS_BPPR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "tasks/task.h"

namespace vcmp {

/// Batch Personalized PageRank (Section 2.3 / Section 3).
///
/// The workload W is the number of alpha-decay random walks started at
/// *every* vertex; PPR(s, u) is estimated as the fraction of s's walks that
/// stop at u. Two program families implement the paper's two algorithms:
///
/// * Point-to-point (Pregel/Giraph/GraphD): walks advance one step per
///   round. The implementation is *counting-mode Monte-Carlo*: a vertex
///   holds the number of resident walks, samples terminations binomially
///   and splits the survivors multinomially over its neighbours — exactly
///   the aggregate distribution of per-walk simulation, with message
///   multiplicities equal to the walk counts the real system would send.
///
/// * Broadcast (Pregel+(mirror)): the generalized fractional walk of
///   Section 3 — a forward push that divides the resident walk mass evenly
///   over the neighbours each round, with a mass threshold for
///   termination. Each neighbour receives one common message per round.
class BpprTask : public MultiTask {
 public:
  struct Params {
    /// Walk stop probability per step.
    double alpha = 0.2;
    /// Bytes per terminated-walk record (source, end) in residual memory.
    double residual_record_bytes = 8.0;
    /// Fractional-push pruning threshold in walk units (broadcast
    /// flavour): per-(vertex, source) moving mass below this settles
    /// locally instead of diffusing further.
    double prune_threshold = 0.25;
    /// Use (source, target)-granular traffic on combining systems
    /// (BpprPerSourceProgram). Faithful to per-source combining but the
    /// in-flight pair table approaches O(n^2); off by default — the
    /// pooled program plus logical-work pricing matches the observed
    /// GraphLab behaviour at a fraction of the cost.
    bool per_source_traffic = false;
  };

  BpprTask() = default;
  explicit BpprTask(const Params& params) : params_(params) {}

  std::string name() const override { return "BPPR"; }

  Result<std::unique_ptr<VertexProgram>> MakeProgram(
      const TaskContext& context, ProgramFlavor flavor, double workload,
      uint64_t seed) const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// Counting-mode Monte-Carlo walk program (point-to-point interface).
class BpprCountingProgram : public VertexProgram {
 public:
  BpprCountingProgram(const TaskContext& context, double walks_per_vertex,
                      const BpprTask::Params& params, uint64_t seed);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;
  bool UsesComputeRun() const override { return true; }
  void ComputeRun(VertexId v, const MessageRunView& run,
                  MessageSink& sink) override;
  double StateBytes(uint32_t machine) const override;

  /// Walks that have terminated at u so far (all sources pooled).
  uint64_t StoppedAt(VertexId u) const { return stopped_[u]; }
  uint64_t TotalStopped() const;
  uint64_t walks_per_vertex() const { return walks_per_vertex_; }
  const Combiner* combiner() const override { return &sum_combiner_; }
  // Counting mode sends on the single tag 0.
  uint32_t combine_tag_universe() const override { return 1; }

 private:
  void AdvanceResident(VertexId v, uint64_t resident, MessageSink& sink);
  void RecordStops(VertexId v, uint64_t count, MessageSink& sink);

  const TaskContext context_;
  const uint64_t walks_per_vertex_;
  const BpprTask::Params params_;
  // Walk counts: value and multiplicity streams are integers < 2^53, so
  // the sum fold may be reassociated (shard pre-combining, DESIGN.md §16).
  SumCombiner sum_combiner_{/*exact=*/true};
  std::vector<uint64_t> stopped_;
};

/// Generalized fractional walk (forward push) for the broadcast-only
/// interface of Pregel+(mirror), Section 3 "Pregel-Mirror (BPPR)".
///
/// Mass is tracked PER SOURCE (a personalized PageRank needs the source
/// attribution), so each round an active vertex broadcasts one message
/// per source whose resident mass survived pruning — this per-source
/// diffusion is what makes the broadcast algorithm so much heavier per
/// workload unit than the point-to-point one (the paper runs
/// Pregel+(mirror) at W=160 where Pregel+ handles W=10240), and why the
/// paper notes BPPR's O(n^2) space potential. Mass below
/// `prune_threshold` walks settles locally, bounding the diffusion depth
/// by ~log_d(W).
class BpprPushProgram : public VertexProgram {
 public:
  BpprPushProgram(const TaskContext& context, double walks_per_vertex,
                  const BpprTask::Params& params);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;
  bool UsesComputeRun() const override { return true; }
  void ComputeRun(VertexId v, const MessageRunView& run,
                  MessageSink& sink) override;
  double StateBytes(uint32_t machine) const override;

  /// Walk mass settled at u so far (all sources pooled).
  double StoppedMassAt(VertexId u) const { return stopped_mass_[u]; }
  double TotalStoppedMass() const;
  /// Distinct (source, vertex) result pairs recorded so far.
  uint64_t ResultPairs() const { return result_pairs_; }

 private:
  void ProcessMass(VertexId v, uint32_t source, double mass,
                   MessageSink& sink);
  void RecordSettle(VertexId v, uint32_t source, double mass,
                    MessageSink& sink);

  const TaskContext context_;
  const double walks_per_vertex_;
  const BpprTask::Params params_;
  std::vector<double> stopped_mass_;
  /// Per-vertex set of sources with a settled-mass record (drives the
  /// residual-memory accounting).
  std::vector<std::unordered_set<uint32_t>> settled_sources_;
  /// Atomic: RecordSettle runs concurrently across shards.
  std::atomic<uint64_t> result_pairs_{0};
};

/// Per-source counting-mode walks for systems that combine messages at
/// the sender (GraphLab sync). Combining is only valid within one source
/// (PPR is personalized), so the traffic granularity is (source, target)
/// pairs: each physical message carries one source's walk count and is
/// Sum-combinable. Heavier per workload unit than the pooled program —
/// the state and traffic approach the paper's O(n^2) bound as walks
/// diffuse.
class BpprPerSourceProgram : public VertexProgram {
 public:
  BpprPerSourceProgram(const TaskContext& context, double walks_per_vertex,
                       const BpprTask::Params& params, uint64_t seed);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;
  bool UsesComputeRun() const override { return true; }
  void ComputeRun(VertexId v, const MessageRunView& run,
                  MessageSink& sink) override;
  double StateBytes(uint32_t machine) const override;
  const Combiner* combiner() const override { return &sum_combiner_; }

  uint64_t StoppedAt(VertexId u) const { return stopped_[u]; }
  uint64_t TotalStopped() const;

 private:
  void Advance(VertexId v, uint32_t source, uint64_t count,
               MessageSink& sink);
  void TrackPair(VertexId v, uint64_t round);

  /// Per-machine (source, target) pair counting for state accounting.
  /// Several compute shards of one machine run concurrently, so the
  /// trackers are guarded by `pair_mutex_`; the per-round counts are
  /// pure commutative additions, so the result is order-independent.
  struct PairTracker {
    uint64_t round = ~0ULL;
    double current = 0.0;
    double peak = 0.0;
  };

  const TaskContext context_;
  const uint64_t walks_per_vertex_;
  const BpprTask::Params params_;
  SumCombiner sum_combiner_;
  std::vector<uint64_t> stopped_;
  // MakeProgram builds a fresh program per batch per query, so the
  // mutex only ever orders one query's shard threads.
  // vcmp:query-local(program instance is per-batch per-query)
  mutable std::mutex pair_mutex_;
  std::vector<PairTracker> pair_tracker_;
};

/// Exact per-source BPPR for correctness validation: simulates W walks per
/// source vertex individually tagged by source, and returns the PPR
/// estimate vectors. Quadratic state — test/small-graph use only.
class BpprExactProgram : public VertexProgram {
 public:
  BpprExactProgram(const TaskContext& context, double walks_per_vertex,
                   double alpha, uint64_t seed);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;

  /// PPR estimate of target u for source s: stops(s, u) / W.
  double Ppr(VertexId source, VertexId u) const;

 private:
  void Advance(VertexId v, uint32_t source, uint64_t count,
               MessageSink& sink);

  const TaskContext context_;
  const uint64_t walks_per_vertex_;
  const double alpha_;
  /// stops_[source * n + u] = walks from `source` that stopped at `u`.
  std::vector<uint64_t> stops_;
};

}  // namespace vcmp

#endif  // VCMP_TASKS_BPPR_H_
