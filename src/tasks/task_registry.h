#ifndef VCMP_TASKS_TASK_REGISTRY_H_
#define VCMP_TASKS_TASK_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "tasks/task.h"

namespace vcmp {

/// Creates a benchmark task by paper name: "BPPR", "MSSP", "BKHS",
/// "PageRank". Returns NotFound for anything else.
Result<std::unique_ptr<MultiTask>> MakeTask(const std::string& name);

/// The three multi-processing benchmark names of Section 2.3.
const std::vector<std::string>& BenchmarkTaskNames();

/// Every name MakeTask accepts (benchmark tasks + extensions), in
/// registry order — the source for the CLIs' --list-tasks.
const std::vector<std::string>& RegisteredTaskNames();

}  // namespace vcmp

#endif  // VCMP_TASKS_TASK_REGISTRY_H_
