#ifndef VCMP_TASKS_CONNECTED_COMPONENTS_H_
#define VCMP_TASKS_CONNECTED_COMPONENTS_H_

#include <vector>

#include "engine/vertex_program.h"
#include "tasks/task.h"

namespace vcmp {

/// Hash-min Connected Components — the classic balanced practical Pregel
/// algorithm (BPPA) the paper's Section 2.4 cites from Yan et al.: linear
/// space/computation/communication per vertex and O(log n)-ish rounds.
/// Included as the single-task contrast to the multi-processing
/// benchmarks: unlike BPPR/MSSP, there is no workload knob to batch, so
/// the round-congestion tradeoff does not arise.
class ConnectedComponentsProgram : public VertexProgram {
 public:
  ConnectedComponentsProgram(const TaskContext& context);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;
  bool UsesComputeRun() const override { return true; }
  void ComputeRun(VertexId v, const MessageRunView& run,
                  MessageSink& sink) override;
  double StateBytes(uint32_t machine) const override;
  const Combiner* combiner() const override { return &min_combiner_; }
  // Labels travel on the single tag 0.
  uint32_t combine_tag_universe() const override { return 1; }

  /// The component label (minimum vertex id in the component) of v after
  /// the run.
  VertexId ComponentOf(VertexId v) const {
    return static_cast<VertexId>(labels_[v]);
  }
  /// Number of distinct components.
  uint64_t NumComponents() const;

 private:
  void Offer(VertexId v, uint32_t label, MessageSink& sink);

  const TaskContext context_;
  // Integer labels and unit multiplicities: the fold reassociates exactly.
  MinCombiner min_combiner_{/*exact=*/true};
  std::vector<uint32_t> labels_;
};

/// MultiTask adapter (workload is ignored: CC is one unit task).
class ConnectedComponentsTask : public MultiTask {
 public:
  std::string name() const override { return "ConnectedComponents"; }

  Result<std::unique_ptr<VertexProgram>> MakeProgram(
      const TaskContext& context, ProgramFlavor flavor, double workload,
      uint64_t seed) const override;
};

}  // namespace vcmp

#endif  // VCMP_TASKS_CONNECTED_COMPONENTS_H_
