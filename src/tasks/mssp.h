#ifndef VCMP_TASKS_MSSP_H_
#define VCMP_TASKS_MSSP_H_

#include <memory>
#include <string>
#include <vector>

#include "tasks/task.h"

namespace vcmp {

/// Multiple-Source Shortest Path distance queries (Section 2.3 / 3).
///
/// The workload W is the number of source vertices; each unit task is one
/// SSSP. Distances are hop counts (unit edge weights). For large W the
/// program simulates a deterministic sample of sources and extrapolates:
/// every message carries multiplicity W / samples, so congestion, memory
/// and residual statistics reflect the full source set while the process
/// runs only the sample. Tests use workload <= max_sampled_sources, where
/// execution is exact.
class MsspTask : public MultiTask {
 public:
  struct Params {
    /// Physical sources simulated per batch; larger = finer statistics,
    /// slower benches.
    uint32_t max_sampled_sources = 16;
    /// Bytes per (source, vertex) distance entry in residual memory.
    double residual_entry_bytes = 4.0;
  };

  MsspTask() = default;
  explicit MsspTask(const Params& params) : params_(params) {}

  std::string name() const override { return "MSSP"; }

  Result<std::unique_ptr<VertexProgram>> MakeProgram(
      const TaskContext& context, ProgramFlavor flavor, double workload,
      uint64_t seed) const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// The MSSP vertex program (both flavours; the broadcast variant sends the
/// (source, distance) pair to every neighbour, Section 3 "Pregel-Mirror
/// (MSSP)").
class MsspProgram : public VertexProgram {
 public:
  static constexpr uint32_t kUnreached = static_cast<uint32_t>(-1);

  MsspProgram(const TaskContext& context, ProgramFlavor flavor,
              double workload, const MsspTask::Params& params,
              uint64_t seed);

  void Compute(VertexId v, std::span<const Message> inbox,
               MessageSink& sink) override;
  bool UsesComputeRun() const override { return true; }
  void ComputeRun(VertexId v, const MessageRunView& run,
                  MessageSink& sink) override;
  const Combiner* combiner() const override { return &min_combiner_; }
  // Tags are sample indices: [0, num_samples).
  uint32_t combine_tag_universe() const override { return num_samples(); }

  uint32_t num_samples() const {
    return static_cast<uint32_t>(sources_.size());
  }
  VertexId SourceOf(uint32_t sample) const { return sources_[sample]; }
  /// Hop distance from sampled source `sample` to v (kUnreached if none).
  uint32_t Distance(uint32_t sample, VertexId v) const {
    return dist_[static_cast<size_t>(sample) * num_vertices_ + v];
  }
  double extrapolation() const { return extrapolation_; }

 private:
  void Relax(VertexId v, uint32_t sample, uint32_t distance,
             MessageSink& sink);

  const TaskContext context_;
  const ProgramFlavor flavor_;
  const MsspTask::Params params_;
  const VertexId num_vertices_;
  double extrapolation_ = 1.0;
  std::vector<VertexId> sources_;
  MinCombiner min_combiner_;
  std::vector<uint32_t> dist_;  // samples x n, row-major.
};

}  // namespace vcmp

#endif  // VCMP_TASKS_MSSP_H_
