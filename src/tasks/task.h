#ifndef VCMP_TASKS_TASK_H_
#define VCMP_TASKS_TASK_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "engine/vertex_program.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace vcmp {

/// Everything a task needs to instantiate a program for one batch.
struct TaskContext {
  const Graph* graph = nullptr;
  const Partitioning* partition = nullptr;
  /// Dataset scale factor (stand-in graphs); tasks that sample unit tasks
  /// (MSSP/BKHS) fold it into message multiplicities indirectly via the
  /// engine's stat_scale, so most tasks can ignore it.
  double scale = 1.0;
  /// True when the target system combines same-(target, tag) messages at
  /// the sender (GraphLab sync). Tasks whose pooled representation would
  /// over-combine (BPPR) switch to per-source traffic granularity.
  bool combining_system = false;
};

/// Message interface flavour the target engine exposes (Section 3):
/// basic Pregel+ sends point-to-point; Pregel+(mirror) only broadcasts.
enum class ProgramFlavor { kPointToPoint, kBroadcast };

/// A multi-processing benchmark task (Section 2.3): a workload of
/// independent unit tasks that the runner divides into batches. Workload
/// units are task-specific — random walks per vertex for BPPR, source
/// count for MSSP/BKHS.
class MultiTask {
 public:
  virtual ~MultiTask() = default;

  virtual std::string name() const = 0;

  /// Creates the vertex program executing a batch of `workload` units.
  /// Each batch gets a fresh program; the engine runs it to quiescence.
  virtual Result<std::unique_ptr<VertexProgram>> MakeProgram(
      const TaskContext& context, ProgramFlavor flavor, double workload,
      uint64_t seed) const = 0;

  /// Largest meaningful workload division; 0 = unlimited. (BKHS batches
  /// cannot exceed the source count, for instance.)
  virtual double MinBatchWorkload() const { return 1.0; }
};

}  // namespace vcmp

#endif  // VCMP_TASKS_TASK_H_
