#include "tasks/bkhs.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace vcmp {

BkhsProgram::BkhsProgram(const TaskContext& context, ProgramFlavor flavor,
                         double workload, const BkhsTask::Params& params,
                         uint64_t seed)
    : context_(context),
      flavor_(flavor),
      params_(params),
      num_vertices_(context.graph->NumVertices()) {
  uint32_t samples = static_cast<uint32_t>(
      std::min<double>(params.max_sampled_sources, workload));
  VCMP_CHECK(samples > 0);
  extrapolation_ = workload / samples;
  // Hop counts min-fold exactly; multiplicity sums are exact only for an
  // integral extrapolation factor (see MinCombiner::exact_fold).
  min_combiner_ = MinCombiner(std::rint(extrapolation_) == extrapolation_);
  Rng rng(seed);
  std::vector<bool> used(num_vertices_, false);
  sources_.reserve(samples);
  while (sources_.size() < samples) {
    auto candidate = static_cast<VertexId>(rng.NextBounded(num_vertices_));
    if (used[candidate]) continue;
    used[candidate] = true;
    sources_.push_back(candidate);
  }
  visited_.assign(static_cast<size_t>(samples) * num_vertices_, 0);
  khop_count_ = std::make_unique<std::atomic<uint64_t>[]>(samples);
  for (uint32_t i = 0; i < samples; ++i) {
    khop_count_[i].store(0, std::memory_order_relaxed);
  }
}

void BkhsProgram::Compute(VertexId v, std::span<const Message> inbox,
                          MessageSink& sink) {
  if (sink.round() == 0) {
    for (uint32_t sample = 0; sample < num_samples(); ++sample) {
      if (sources_[sample] == v) Visit(v, sample, 0, sink);
    }
    return;
  }
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    uint32_t hop = static_cast<uint32_t>(inbox[i].value);
    while (j < inbox.size() && inbox[j].tag == inbox[i].tag) {
      hop = std::min(hop, static_cast<uint32_t>(inbox[j].value));
      ++j;
    }
    Visit(v, inbox[i].tag, hop, sink);
    i = j;
  }
}

void BkhsProgram::Visit(VertexId v, uint32_t sample, uint32_t hop,
                        MessageSink& sink) {
  size_t index = static_cast<size_t>(sample) * num_vertices_ + v;
  if (visited_[index]) return;
  visited_[index] = 1;
  if (v != sources_[sample]) {
    khop_count_[sample].fetch_add(1, std::memory_order_relaxed);
    sink.AddResidualBytes(extrapolation_ * params_.residual_entry_bytes);
  }
  if (hop >= params_.k) return;  // Frontier reached the radius.
  const auto neighbors = context_.graph->Neighbors(v);
  if (neighbors.empty()) return;
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  double next_hop = static_cast<double>(hop + 1);
  if (flavor_ == ProgramFlavor::kBroadcast) {
    sink.Broadcast(v, sample, next_hop, extrapolation_);
    return;
  }
  for (VertexId u : neighbors) {
    sink.Send(u, sample, next_hop, extrapolation_);
  }
}

Result<std::unique_ptr<VertexProgram>> BkhsTask::MakeProgram(
    const TaskContext& context, ProgramFlavor flavor, double workload,
    uint64_t seed) const {
  if (context.graph == nullptr || context.partition == nullptr) {
    return Status::InvalidArgument("BKHS task context missing graph");
  }
  if (workload < 1.0) {
    return Status::InvalidArgument("BKHS workload must be >= 1 source");
  }
  return std::unique_ptr<VertexProgram>(std::make_unique<BkhsProgram>(
      context, flavor, workload, params_, seed));
}

}  // namespace vcmp
