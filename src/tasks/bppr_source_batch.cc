#include "tasks/bppr_source_batch.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vcmp {

BpprSourceBatchProgram::BpprSourceBatchProgram(
    const TaskContext& context, double num_queries,
    const BpprSourceBatchTask::Params& params, uint64_t seed)
    : context_(context),
      params_(params),
      rng_(seed),
      is_source_(context.graph->NumVertices(), false),
      stopped_(context.graph->NumVertices(), 0) {
  const VertexId n = context.graph->NumVertices();
  uint32_t samples = static_cast<uint32_t>(std::min<double>(
      std::min<double>(params.max_sampled_sources, num_queries), n));
  VCMP_CHECK(samples > 0);
  // Unlike MSSP/BKHS (whose per-source work grows with the graph), a PPR
  // query's work is W walks regardless of graph size, so the engine's
  // dataset-scale multiplier must NOT amplify it: express the
  // extrapolation in generated-graph units.
  extrapolation_ =
      num_queries / samples / std::max(1.0, context.scale);
  // Walk-count values sum exactly; multiplicities carry the extrapolation
  // factor, so reassociation is exact only when that factor is integral.
  sum_combiner_ = SumCombiner(std::rint(extrapolation_) == extrapolation_);
  sources_.reserve(samples);
  while (sources_.size() < samples) {
    auto candidate = static_cast<VertexId>(rng_.NextBounded(n));
    if (is_source_[candidate]) continue;
    is_source_[candidate] = true;
    sources_.push_back(candidate);
  }
}

void BpprSourceBatchProgram::Compute(VertexId v,
                                     std::span<const Message> inbox,
                                     MessageSink& sink) {
  if (sink.round() == 0) {
    if (is_source_[v]) Move(v, params_.walks_per_source, sink);
    return;
  }
  double incoming = 0.0;
  for (const Message& message : inbox) incoming += message.value;
  Move(v, static_cast<uint64_t>(std::llround(incoming)), sink);
}

void BpprSourceBatchProgram::Move(VertexId v, uint64_t count,
                                  MessageSink& sink) {
  if (count == 0) return;
  Rng& rng = sink.rng();
  uint64_t stopping = rng.NextBinomial(count, params_.alpha);
  const auto neighbors = context_.graph->Neighbors(v);
  if (neighbors.empty()) stopping = count;
  if (stopping > 0) {
    stopped_[v] += stopping;
    sink.AddResidualBytes(static_cast<double>(stopping) * extrapolation_ *
                          params_.residual_record_bytes);
  }
  uint64_t moving = count - stopping;
  if (moving == 0) return;
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  uint64_t remaining = moving;
  size_t left = neighbors.size();
  for (VertexId u : neighbors) {
    if (remaining == 0) break;
    uint64_t portion =
        (left == 1)
            ? remaining
            : rng.NextBinomial(remaining, 1.0 / static_cast<double>(left));
    if (portion > 0) {
      // Physical value stays in walk units; the multiplicity carries the
      // extrapolated query count.
      sink.Send(u, /*tag=*/0, static_cast<double>(portion),
                static_cast<double>(portion) * extrapolation_);
      remaining -= portion;
    }
    --left;
  }
}

double BpprSourceBatchProgram::StateBytes(uint32_t machine) const {
  (void)machine;
  return 8.0 * context_.graph->NumVertices() /
         context_.partition->num_machines;
}

uint64_t BpprSourceBatchProgram::TotalStopped() const {
  return std::accumulate(stopped_.begin(), stopped_.end(), uint64_t{0});
}

Result<std::unique_ptr<VertexProgram>> BpprSourceBatchTask::MakeProgram(
    const TaskContext& context, ProgramFlavor flavor, double workload,
    uint64_t seed) const {
  if (context.graph == nullptr || context.partition == nullptr) {
    return Status::InvalidArgument(
        "BPPR(source-batched) task context missing graph");
  }
  if (workload < 1.0) {
    return Status::InvalidArgument("workload must be >= 1 query");
  }
  if (flavor == ProgramFlavor::kBroadcast) {
    return Status::Unimplemented(
        "source-batched BPPR is defined for the point-to-point interface");
  }
  return std::unique_ptr<VertexProgram>(
      std::make_unique<BpprSourceBatchProgram>(context, workload, params_,
                                               seed));
}

}  // namespace vcmp
