#include "tasks/mssp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace vcmp {

MsspProgram::MsspProgram(const TaskContext& context, ProgramFlavor flavor,
                         double workload, const MsspTask::Params& params,
                         uint64_t seed)
    : context_(context),
      flavor_(flavor),
      params_(params),
      num_vertices_(context.graph->NumVertices()) {
  uint32_t samples = static_cast<uint32_t>(
      std::min<double>(params.max_sampled_sources, workload));
  VCMP_CHECK(samples > 0);
  extrapolation_ = workload / samples;
  // Path lengths min-fold exactly; multiplicities are k * extrapolation_,
  // whose partial sums are exact only when the factor is integral.
  min_combiner_ = MinCombiner(std::rint(extrapolation_) == extrapolation_);
  // Deterministic distinct sources.
  Rng rng(seed);
  std::vector<bool> used(num_vertices_, false);
  sources_.reserve(samples);
  while (sources_.size() < samples) {
    auto candidate = static_cast<VertexId>(rng.NextBounded(num_vertices_));
    if (used[candidate]) continue;
    used[candidate] = true;
    sources_.push_back(candidate);
  }
  dist_.assign(static_cast<size_t>(samples) * num_vertices_, kUnreached);
}

void MsspProgram::Compute(VertexId v, std::span<const Message> inbox,
                          MessageSink& sink) {
  if (sink.round() == 0) {
    for (uint32_t sample = 0; sample < num_samples(); ++sample) {
      if (sources_[sample] == v) Relax(v, sample, 0, sink);
    }
    return;
  }
  // Receiver-side aggregation (Section 3): among messages with the same
  // source, only the smallest length is retained.
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    uint32_t best = kUnreached;
    while (j < inbox.size() && inbox[j].tag == inbox[i].tag) {
      best = std::min(best, static_cast<uint32_t>(inbox[j].value));
      ++j;
    }
    Relax(v, inbox[i].tag, best, sink);
    i = j;
  }
}

void MsspProgram::ComputeRun(VertexId v, const MessageRunView& run,
                             MessageSink& sink) {
  // One run per (vertex, source): the receiver-side min fold over the
  // run's distance column, same element order as Compute's span walk.
  uint32_t best = kUnreached;
  for (size_t i = 0; i < run.count; ++i) {
    best = std::min(best, static_cast<uint32_t>(run.values[i]));
  }
  Relax(v, run.tag, best, sink);
}

void MsspProgram::Relax(VertexId v, uint32_t sample, uint32_t distance,
                        MessageSink& sink) {
  uint32_t& current = dist_[static_cast<size_t>(sample) * num_vertices_ + v];
  if (distance >= current) return;
  if (current == kUnreached) {
    // First time reached: one more (source, vertex) result entry. Accrues
    // through the sink's per-vertex log so concurrent shards of one
    // machine never share an accumulator.
    sink.AddResidualBytes(extrapolation_ * params_.residual_entry_bytes);
  }
  current = distance;
  const auto neighbors = context_.graph->Neighbors(v);
  if (neighbors.empty()) return;
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  double forwarded = static_cast<double>(distance + 1);
  if (flavor_ == ProgramFlavor::kBroadcast) {
    sink.Broadcast(v, sample, forwarded, extrapolation_);
    return;
  }
  for (VertexId u : neighbors) {
    sink.Send(u, sample, forwarded, extrapolation_);
  }
}

Result<std::unique_ptr<VertexProgram>> MsspTask::MakeProgram(
    const TaskContext& context, ProgramFlavor flavor, double workload,
    uint64_t seed) const {
  if (context.graph == nullptr || context.partition == nullptr) {
    return Status::InvalidArgument("MSSP task context missing graph");
  }
  if (workload < 1.0) {
    return Status::InvalidArgument("MSSP workload must be >= 1 source");
  }
  return std::unique_ptr<VertexProgram>(std::make_unique<MsspProgram>(
      context, flavor, workload, params_, seed));
}

}  // namespace vcmp
