#include "tasks/connected_components.h"

#include <unordered_set>

#include "common/logging.h"

namespace vcmp {

ConnectedComponentsProgram::ConnectedComponentsProgram(
    const TaskContext& context)
    : context_(context), labels_(context.graph->NumVertices()) {
  for (VertexId v = 0; v < context.graph->NumVertices(); ++v) {
    labels_[v] = v;
  }
}

void ConnectedComponentsProgram::Compute(VertexId v,
                                         std::span<const Message> inbox,
                                         MessageSink& sink) {
  uint32_t best = labels_[v];
  if (sink.round() == 0) {
    // Seed: offer my id to every neighbour.
    Offer(v, best, sink);
    return;
  }
  for (const Message& message : inbox) {
    best = std::min(best, static_cast<uint32_t>(message.value));
  }
  if (best >= labels_[v]) return;  // No improvement: vote to halt.
  labels_[v] = best;
  Offer(v, best, sink);
}

void ConnectedComponentsProgram::ComputeRun(VertexId v,
                                            const MessageRunView& run,
                                            MessageSink& sink) {
  // Single tag (0): one run per vertex — the hash-min fold over the
  // run's label column, same element order as Compute's span walk.
  uint32_t best = labels_[v];
  for (size_t i = 0; i < run.count; ++i) {
    best = std::min(best, static_cast<uint32_t>(run.values[i]));
  }
  if (best >= labels_[v]) return;  // No improvement: vote to halt.
  labels_[v] = best;
  Offer(v, best, sink);
}

void ConnectedComponentsProgram::Offer(VertexId v, uint32_t label,
                                       MessageSink& sink) {
  const auto neighbors = context_.graph->Neighbors(v);
  sink.AddComputeUnits(static_cast<double>(neighbors.size()));
  for (VertexId u : neighbors) {
    sink.Send(u, /*tag=*/0, static_cast<double>(label), 1.0);
  }
}

double ConnectedComponentsProgram::StateBytes(uint32_t machine) const {
  (void)machine;
  return 4.0 * context_.graph->NumVertices() /
         context_.partition->num_machines;
}

uint64_t ConnectedComponentsProgram::NumComponents() const {
  std::unordered_set<uint32_t> distinct(labels_.begin(), labels_.end());
  return distinct.size();
}

Result<std::unique_ptr<VertexProgram>> ConnectedComponentsTask::MakeProgram(
    const TaskContext& context, ProgramFlavor flavor, double workload,
    uint64_t seed) const {
  (void)flavor;
  (void)workload;
  (void)seed;
  if (context.graph == nullptr || context.partition == nullptr) {
    return Status::InvalidArgument("CC task context missing graph");
  }
  return std::unique_ptr<VertexProgram>(
      std::make_unique<ConnectedComponentsProgram>(context));
}

}  // namespace vcmp
