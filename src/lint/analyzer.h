#ifndef VCMP_LINT_ANALYZER_H_
#define VCMP_LINT_ANALYZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lint/rules.h"

namespace vcmp {
namespace lint {

/// One applied (or unapplied) suppression, for the CLI's summary table:
/// every exception to the determinism contract stays visible.
struct AllowRecord {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;
  bool deterministic_reduction = false;
  bool used = false;  // False = stale annotation (flagged as A1).
};

struct LintReport {
  /// All findings, sorted by (file, line, rule). Suppressed and
  /// baselined entries stay in the list with their status flags set.
  std::vector<Finding> findings;
  std::vector<AllowRecord> allows;
  int files_scanned = 0;
  /// Whole-tree model statistics (the flow-aware pass): function
  /// definitions indexed, name-resolved call edges, and functions the
  /// D6 taint analysis marked as transitively nondeterministic.
  int functions_indexed = 0;
  int call_edges = 0;
  int tainted_functions = 0;

  /// Findings that are neither allowed nor baselined: what fails CI.
  int UnsuppressedCount() const;
};

struct AnalyzerOptions {
  /// `file:line:RULE` entries (see ParseBaseline); matching findings are
  /// reported but do not count as unsuppressed.
  std::vector<std::string> baseline;
};

/// Analyzes in-memory sources: (path, content) pairs. The path is used
/// for rule scoping and reporting only — tests lint fixture content
/// under synthetic paths (e.g. "src/engine/fixture.cc") to pin scoping.
LintReport AnalyzeSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const AnalyzerOptions& options = {});

/// Walks files and directories (recursively; .cc/.h/.hpp/.cpp), lints
/// each file, and merges the reports. Paths are reported as given, with
/// forward slashes, in sorted order.
Result<LintReport> AnalyzePaths(const std::vector<std::string>& paths,
                                const AnalyzerOptions& options = {});

/// Parses a baseline file: one `file:line:RULE` per line, `#` comments
/// and blank lines ignored.
Result<std::vector<std::string>> LoadBaseline(const std::string& path);

/// `file:line: RULE: message` lines (the --diff-friendly format), one
/// per unsuppressed finding, followed by the allow summary table and a
/// one-line verdict.
std::string FormatText(const LintReport& report);

/// Machine-readable report. The lint report carries its own
/// "schema_version": 3 — v3 added the flow-aware rules (C4/D6/D7) and
/// the call-graph model statistics; the shared vcmp export schema
/// (metrics/export.h) versions independently.
std::string ToJson(const LintReport& report);

/// Machine-readable dump of the whole-tree call graph + taint state for
/// the same file set a lint run would analyze (`--callgraph`).
Result<std::string> CallGraphJson(const std::vector<std::string>& paths);

/// `file:line:RULE` lines for every unsuppressed finding — the format
/// LoadBaseline reads back (--write-baseline).
std::string ToBaseline(const LintReport& report);

}  // namespace lint
}  // namespace vcmp

#endif  // VCMP_LINT_ANALYZER_H_
