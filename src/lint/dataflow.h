#ifndef VCMP_LINT_DATAFLOW_H_
#define VCMP_LINT_DATAFLOW_H_

#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/parser.h"
#include "lint/rules.h"

namespace vcmp {
namespace lint {

/// Flow-aware rules that need the parsed IR (parser.h) on top of the
/// token stream:
///
///  - C4: shared-state race analysis over parallel regions. Resolves
///    ParallelFor / ParallelForStealable bodies — inline lambdas,
///    lambdas bound to locals (`auto fn = [&]...; pool.ParallelFor(n,
///    fn)`), and launcher wrappers (a bound lambda that forwards a body
///    parameter to the pool becomes a launcher itself) — then flags
///    every write whose target is shared (ref-captured, or a member
///    field reached through a captured `this`) and not shard-indexed,
///    atomic, or behind a lock taken in the body.
///
///  - D7: pointer-identity ordering. Pointer-keyed map/set keys,
///    relational comparisons between pointer-typed parameters,
///    reinterpret_cast to (u)intptr_t and std::hash over pointer types.
///
/// Both rules are path-scoped through RuleInScope like the token rules;
/// D6 (interprocedural taint) lives in callgraph.h because it needs the
/// whole-tree function index.
void CheckFlow(const std::string& path, const std::vector<Token>& tokens,
               const ParsedFile& parsed, std::vector<Finding>* out);

}  // namespace lint
}  // namespace vcmp

#endif  // VCMP_LINT_DATAFLOW_H_
