#ifndef VCMP_LINT_PARSER_H_
#define VCMP_LINT_PARSER_H_

#include <string>
#include <vector>

#include "lint/lexer.h"

namespace vcmp {
namespace lint {

/// A lightweight structural pass over the lexer's token stream: just
/// enough C++ parsing to give the flow-aware rules (dataflow.h) and the
/// cross-file call graph (callgraph.h) a per-file IR — function
/// definitions with body extents, lambda expressions with their capture
/// lists and parameters, call sites, and the class-scope data members a
/// lambda can reach through `this`. It is deliberately heuristic (no
/// templates instantiated, no overload resolution, no type checking);
/// the rules that consume it are written to stay precise on this
/// codebase's idiom and to fail open (no finding) on constructs the
/// parser does not model.

struct ParamDecl {
  std::string name;
  bool is_pointer = false;  // Declarator contains a '*'.
};

struct FunctionInfo {
  std::string name;        // Unqualified: "Run", "NowNs", "Worker".
  std::string class_name;  // "SyncEngine" for SyncEngine::Run; empty for
                           // free functions and unqualified definitions.
  int line = 0;            // Line of the function name.
  int body_first_line = 0;
  int body_last_line = 0;
  size_t body_begin = 0;  // Token index of the body '{'.
  size_t body_end = 0;    // One past the matching '}'.
  std::vector<ParamDecl> params;
};

struct LambdaInfo {
  int line = 0;          // Line of the '['.
  size_t intro_tok = 0;  // Token index of the '['.
  size_t intro_end = 0;  // One past the capture list's ']'.
  size_t body_begin = 0;
  size_t body_end = 0;
  bool capture_all_ref = false;    // [&]
  bool capture_all_value = false;  // [=]
  bool captures_this = false;      // [this] or [*this]
  std::vector<std::string> ref_captures;    // [&x]
  std::vector<std::string> value_captures;  // [x], [x = expr]
  std::vector<ParamDecl> params;
  /// Variable the lambda is bound to (`auto fn = [...]`), for resolving
  /// `pool.ParallelFor(n, fn)` back to the body. Empty when passed
  /// inline or stored through something the parser does not model.
  std::string bound_name;
  int enclosing_function = -1;  // Index into ParsedFile::functions.
};

struct CallSiteInfo {
  std::string callee;  // Unqualified name as written.
  int line = 0;
  size_t tok = 0;               // Token index of the callee identifier.
  int enclosing_function = -1;  // Index into ParsedFile::functions.
  bool member_call = false;     // Preceded by '.' or '->'.
};

struct ParsedFile {
  std::string path;
  std::vector<FunctionInfo> functions;
  std::vector<LambdaInfo> lambdas;
  std::vector<CallSiteInfo> calls;
  /// Data members declared at class scope in this file (the names a
  /// this-capturing lambda can write without naming `this`).
  std::vector<std::string> member_fields;
  /// Names declared with std::atomic<...> anywhere in this file; writes
  /// to them are synchronization, not races.
  std::vector<std::string> atomic_names;
};

/// Parses one file's token stream. Never fails: unmodelled constructs
/// simply contribute nothing to the IR.
ParsedFile Parse(const std::string& path, const std::vector<Token>& tokens);

}  // namespace lint
}  // namespace vcmp

#endif  // VCMP_LINT_PARSER_H_
