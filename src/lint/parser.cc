#include "lint/parser.h"

#include <unordered_set>

#include "lint/token_cursor.h"

namespace vcmp {
namespace lint {
namespace {

using StringSet = std::unordered_set<std::string_view>;

/// Identifiers that look like calls but are control flow or operators.
const StringSet kNotACall = {
    "if",     "for",      "while",  "switch",   "return", "sizeof",
    "catch",  "new",      "delete", "alignof",  "assert", "decltype",
    "static_assert", "defined", "throw", "co_return", "co_await"};

/// Declaration specifiers that may precede a function name.
const StringSet kQualifiers = {"const",   "noexcept", "override", "final",
                               "mutable", "constexpr", "inline",  "static",
                               "virtual", "explicit",  "friend",  "try"};

bool InSet(const StringSet& set, const std::string& s) {
  return set.count(std::string_view(s)) != 0;
}

class Parser {
 public:
  Parser(const std::string& path, const std::vector<Token>& toks)
      : c_(toks) {
    out_.path = path;
  }

  ParsedFile Run() {
    ParseDeclScope(0, c_.size(), /*class_name=*/"");
    CollectAtomicNames();
    return std::move(out_);
  }

 private:
  /// Walks a namespace/class/translation-unit scope: namespaces and
  /// classes recurse, function definitions descend into ParseBody, and
  /// (at class scope) data-member names are collected.
  void ParseDeclScope(size_t begin, size_t end, const std::string& class_name) {
    const bool at_class_scope = !class_name.empty();
    size_t i = begin;
    while (i < end) {
      if (c_.IsIdent(i, "namespace")) {
        size_t j = i + 1;
        while (c_.IsIdent(j) || c_.IsPunct(j, "::")) ++j;
        if (c_.IsPunct(j, "{")) {
          const size_t close = c_.SkipBalanced(j);
          ParseDeclScope(j + 1, close - 1, "");
          i = close;
          continue;
        }
        i = j + 1;
        continue;
      }
      if ((c_.IsIdent(i, "class") || c_.IsIdent(i, "struct")) &&
          !(i > begin && c_.IsIdent(i - 1, "enum"))) {
        // `class Name [final] [: bases] {` — find the body, skipping the
        // base clause (which may contain templated names). `class Name;`
        // is a forward declaration; `class Name` in a parameter or
        // template header has no body either.
        size_t j = i + 1;
        std::string name;
        while (c_.IsIdent(j)) {
          name = c_.toks[j].text;
          ++j;
        }
        size_t k = j;
        while (k < end && !c_.IsPunct(k, "{") && !c_.IsPunct(k, ";") &&
               !c_.IsPunct(k, ")") && !c_.IsPunct(k, ",")) {
          if (c_.IsPunct(k, "<")) {
            k = c_.SkipAngles(k);
            continue;
          }
          ++k;
        }
        if (k < end && c_.IsPunct(k, "{") && !name.empty()) {
          const size_t close = c_.SkipBalanced(k);
          ParseDeclScope(k + 1, close - 1, name);
          i = close;
          continue;
        }
        i = k + 1;
        continue;
      }
      if (c_.IsIdent(i, "enum")) {  // enum / enum class: skip the body.
        size_t j = i + 1;
        while (j < end && !c_.IsPunct(j, "{") && !c_.IsPunct(j, ";")) ++j;
        i = (j < end && c_.IsPunct(j, "{")) ? c_.SkipBalanced(j) : j + 1;
        continue;
      }
      // Function definition candidate: `name ( params ) quals {`.
      if (c_.IsIdent(i) && c_.IsPunct(i + 1, "(") &&
          !InSet(kNotACall, c_.toks[i].text)) {
        size_t body = 0;
        std::vector<ParamDecl> params;
        if (MatchFunctionDef(i, end, &params, &body)) {
          FunctionInfo fn;
          fn.name = c_.toks[i].text;
          fn.class_name = class_name;
          if (i >= 2 && c_.IsPunct(i - 1, "::") && c_.IsIdent(i - 2)) {
            fn.class_name = c_.toks[i - 2].text;
          }
          fn.line = c_.Line(i);
          fn.params = std::move(params);
          fn.body_begin = body;
          fn.body_end = c_.SkipBalanced(body);
          fn.body_first_line = c_.Line(body);
          fn.body_last_line =
              fn.body_end > 0 ? c_.Line(fn.body_end - 1) : fn.body_first_line;
          const int fn_index = static_cast<int>(out_.functions.size());
          out_.functions.push_back(fn);
          ParseBody(fn.body_begin + 1, fn.body_end - 1, fn_index);
          i = fn.body_end;
          continue;
        }
      }
      if (at_class_scope && c_.IsIdent(i)) {
        // Data member: `type name_;` / `type name_ = init;` /
        // `type name_{init};` / `type name_[N];` with a type-ish token
        // before the name. (Heuristic: over-collection only widens what
        // C4 treats as member state, which is the safe direction.)
        const bool typed_before = i > begin && (c_.IsIdent(i - 1) ||
                                                c_.IsPunct(i - 1, "&") ||
                                                c_.IsPunct(i - 1, "*") ||
                                                c_.IsPunct(i - 1, ">"));
        const bool terminated_after =
            c_.IsPunct(i + 1, ";") || c_.IsPunct(i + 1, "=") ||
            c_.IsPunct(i + 1, "{") || c_.IsPunct(i + 1, "[");
        if (typed_before && terminated_after) {
          out_.member_fields.push_back(c_.toks[i].text);
        }
      }
      if (c_.IsPunct(i, "{")) {  // Unmodelled brace scope: recurse flat.
        const size_t close = c_.SkipBalanced(i);
        ParseDeclScope(i + 1, close - 1, class_name);
        i = close;
        continue;
      }
      ++i;
    }
  }

  /// Matches `name ( params ) [quals] [-> type] [: init-list] {` with the
  /// name at `i`. On success fills params and the body '{' index.
  bool MatchFunctionDef(size_t i, size_t end, std::vector<ParamDecl>* params,
                        size_t* body) {
    const size_t params_end = c_.SkipBalanced(i + 1);
    if (params_end >= c_.size()) return false;
    size_t j = params_end;
    while (j < end) {
      if (c_.IsIdent(j) && InSet(kQualifiers, c_.toks[j].text)) {
        ++j;
        continue;
      }
      if (c_.IsPunct(j, "->")) {  // Trailing return type.
        ++j;
        while (j < end && !c_.IsPunct(j, "{") && !c_.IsPunct(j, ";")) {
          if (c_.IsPunct(j, "<")) {
            j = c_.SkipAngles(j);
            continue;
          }
          ++j;
        }
        continue;
      }
      if (c_.IsPunct(j, ":")) {  // Constructor initializer list.
        ++j;
        while (j < end && !c_.IsPunct(j, "{")) {
          if (c_.IsPunct(j, "(")) {
            j = c_.SkipBalanced(j);
            continue;
          }
          // A '{' directly after an identifier or '>' is a brace
          // initializer (`member_{x}`), not the body.
          if (c_.IsPunct(j + 1, "{") &&
              (c_.IsIdent(j) || c_.IsPunct(j, ">"))) {
            j = c_.SkipBalanced(j + 1);
            continue;
          }
          ++j;
        }
        continue;
      }
      break;
    }
    if (j >= end || !c_.IsPunct(j, "{")) return false;
    ParseParams(i + 2, params_end - 1, params);
    *body = j;
    return true;
  }

  /// Splits a parameter list on top-level commas; each parameter's name
  /// is its last identifier, and it is a pointer when a '*' appears.
  void ParseParams(size_t begin, size_t end, std::vector<ParamDecl>* out) {
    size_t item_begin = begin;
    int depth = 0;
    for (size_t j = begin; j <= end && j < c_.size(); ++j) {
      const bool at_end = j == end;
      bool at_comma = false;
      if (!at_end && c_.toks[j].kind == TokenKind::kPunct) {
        const std::string& p = c_.toks[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        if (p == "<") {
          j = c_.SkipAngles(j) - 1;
          continue;
        }
        at_comma = p == "," && depth == 0;
      }
      if (!at_end && !at_comma) continue;
      ParamDecl param;
      size_t eq = j;  // Ignore default arguments.
      for (size_t k = item_begin; k < j; ++k) {
        if (c_.IsPunct(k, "=")) {
          eq = k;
          break;
        }
      }
      for (size_t k = item_begin; k < eq; ++k) {
        if (c_.IsPunct(k, "*")) param.is_pointer = true;
        if (c_.IsIdent(k) && !InSet(kQualifiers, c_.toks[k].text)) {
          param.name = c_.toks[k].text;
        }
      }
      if (!param.name.empty()) out->push_back(std::move(param));
      item_begin = j + 1;
      if (at_end) break;
    }
  }

  /// True when the '[' at `i` starts a lambda introducer rather than a
  /// subscript or an attribute.
  bool IsLambdaIntro(size_t i) const {
    if (c_.IsPunct(i + 1, "[")) return false;  // [[attribute]]
    if (i == 0) return true;
    const Token& prev = c_.toks[i - 1];
    if (prev.kind == TokenKind::kIdentifier) return prev.text == "return";
    if (prev.kind != TokenKind::kPunct) return false;
    // After a closing token the '[' is a subscript on that expression.
    return prev.text != ")" && prev.text != "]" && prev.text != "}";
  }

  /// Walks a function body: records call sites, parses lambdas (and
  /// recurses into their bodies under the same enclosing function).
  void ParseBody(size_t begin, size_t end, int fn_index) {
    size_t i = begin;
    while (i < end) {
      if (c_.IsPunct(i, "[") && IsLambdaIntro(i)) {
        const size_t after = ParseLambda(i, end, fn_index);
        if (after > i) {
          i = after;
          continue;
        }
      }
      if (c_.IsIdent(i) && c_.IsPunct(i + 1, "(") &&
          !InSet(kNotACall, c_.toks[i].text)) {
        // `Type name(...)` is a declaration, not a call, unless the
        // preceding identifier is a statement keyword.
        const bool decl_like =
            i > begin && c_.IsIdent(i - 1) &&
            !InSet(kNotACall, c_.toks[i - 1].text) &&
            c_.toks[i - 1].text != "else" && c_.toks[i - 1].text != "do";
        if (!decl_like) {
          CallSiteInfo call;
          call.callee = c_.toks[i].text;
          call.line = c_.Line(i);
          call.tok = i;
          call.enclosing_function = fn_index;
          call.member_call =
              i > 0 && (c_.IsPunct(i - 1, ".") || c_.IsPunct(i - 1, "->"));
          out_.calls.push_back(std::move(call));
        }
      }
      ++i;
    }
  }

  /// Parses one lambda whose '[' sits at `i`. Returns the index just
  /// past the lambda (or `i` when it turns out not to be one).
  size_t ParseLambda(size_t i, size_t end, int fn_index) {
    const size_t intro_end = c_.SkipBalanced(i);
    if (intro_end >= c_.size()) return i;
    LambdaInfo lambda;
    lambda.line = c_.Line(i);
    lambda.intro_tok = i;
    lambda.intro_end = intro_end;
    lambda.enclosing_function = fn_index;

    // Capture list: top-level comma-separated entries.
    size_t entry = i + 1;
    int depth = 0;
    for (size_t j = i + 1; j < intro_end; ++j) {
      const bool last = j == intro_end - 1;
      bool at_comma = false;
      if (c_.toks[j].kind == TokenKind::kPunct) {
        const std::string& p = c_.toks[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        at_comma = p == "," && depth == 0;
      }
      if (!at_comma && !last) continue;
      const size_t stop = at_comma ? j : intro_end - 1;
      if (stop > entry) {
        if (c_.IsPunct(entry, "&") && stop == entry + 1) {
          lambda.capture_all_ref = true;
        } else if (c_.IsPunct(entry, "=") && stop == entry + 1) {
          lambda.capture_all_value = true;
        } else if (c_.IsIdent(entry, "this")) {
          lambda.captures_this = true;
        } else if (c_.IsPunct(entry, "*") && c_.IsIdent(entry + 1, "this")) {
          lambda.captures_this = true;
        } else if (c_.IsPunct(entry, "&") && c_.IsIdent(entry + 1)) {
          lambda.ref_captures.push_back(c_.toks[entry + 1].text);
        } else if (c_.IsIdent(entry)) {
          // Plain copy or init-capture `name = expr` / `name{expr}`.
          lambda.value_captures.push_back(c_.toks[entry].text);
        }
      }
      entry = j + 1;
    }

    size_t j = intro_end;
    if (c_.IsPunct(j, "(")) {
      const size_t params_end = c_.SkipBalanced(j);
      ParseParams(j + 1, params_end - 1, &lambda.params);
      j = params_end;
    }
    while (j < end && !c_.IsPunct(j, "{")) {
      if (c_.IsPunct(j, ";") || c_.IsPunct(j, ")") || c_.IsPunct(j, ",")) {
        return i;  // `[x]` was a subscript-like construct after all.
      }
      if (c_.IsPunct(j, "<")) {
        j = c_.SkipAngles(j);
        continue;
      }
      if (c_.IsPunct(j, "(")) {  // noexcept(...) etc.
        j = c_.SkipBalanced(j);
        continue;
      }
      ++j;
    }
    if (j >= end) return i;
    lambda.body_begin = j;
    lambda.body_end = c_.SkipBalanced(j);
    // `auto fn = [...]` — remember the binding for launcher resolution.
    if (i >= 2 && c_.IsPunct(i - 1, "=") && c_.IsIdent(i - 2)) {
      lambda.bound_name = c_.toks[i - 2].text;
    }
    const size_t body_begin = lambda.body_begin;
    const size_t body_end = lambda.body_end;
    out_.lambdas.push_back(std::move(lambda));
    ParseBody(body_begin + 1, body_end - 1, fn_index);
    return body_end;
  }

  /// File-wide scan for `atomic<...> name` declarations (members,
  /// locals, statics alike).
  void CollectAtomicNames() {
    for (size_t i = 0; i + 1 < c_.size(); ++i) {
      if (!c_.IsIdent(i, "atomic")) continue;
      size_t j = i + 1;
      if (c_.IsPunct(j, "<")) j = c_.SkipAngles(j);
      if (c_.IsIdent(j)) out_.atomic_names.push_back(c_.toks[j].text);
    }
  }

  TokenCursor c_;
  ParsedFile out_;
};

}  // namespace

ParsedFile Parse(const std::string& path, const std::vector<Token>& tokens) {
  return Parser(path, tokens).Run();
}

}  // namespace lint
}  // namespace vcmp
