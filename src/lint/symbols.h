#ifndef VCMP_LINT_SYMBOLS_H_
#define VCMP_LINT_SYMBOLS_H_

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "lint/parser.h"

namespace vcmp {
namespace lint {

/// A function definition's address in the analyzed set: file index into
/// the source list, function index into that file's ParsedFile.
struct FunctionRef {
  int file = -1;
  int fn = -1;
  bool operator==(const FunctionRef& o) const {
    return file == o.file && fn == o.fn;
  }
  bool operator<(const FunctionRef& o) const {
    if (file != o.file) return file < o.file;
    return fn < o.fn;
  }
};

/// Cross-file function index: unqualified name -> every definition with
/// that name. Name-based resolution is deliberately conservative — a
/// call resolves to all same-named definitions, so taint never slips
/// through an overload or a same-named method on another class.
class FunctionIndex {
 public:
  static FunctionIndex Build(const std::vector<ParsedFile>& files);

  /// All definitions named `name`; nullptr when none is known.
  const std::vector<FunctionRef>* Lookup(const std::string& name) const;

  const FunctionInfo& Info(const std::vector<ParsedFile>& files,
                           FunctionRef ref) const {
    return files[ref.file].functions[ref.fn];
  }

  size_t NumFunctions() const { return num_functions_; }

 private:
  std::map<std::string, std::vector<FunctionRef>> by_name_;
  size_t num_functions_ = 0;
};

/// Per-file symbol convenience built from the parse: fast membership
/// tests the dataflow rules need on the hot path.
class FileSymbols {
 public:
  explicit FileSymbols(const ParsedFile& parsed);

  bool IsMemberField(const std::string& name) const {
    // The codebase's member naming convention (trailing underscore) is
    // part of the contract: it catches members declared in the paired
    // header, which a single-file parse cannot see.
    if (name.size() > 1 && name.back() == '_') return true;
    return members_.count(name) != 0;
  }
  bool IsAtomic(const std::string& name) const {
    return atomics_.count(name) != 0;
  }

 private:
  std::unordered_set<std::string> members_;
  std::unordered_set<std::string> atomics_;
};

/// Index of the function whose body covers `line`, -1 when none does
/// (innermost match wins so methods of nested classes resolve to the
/// method, not the outer function).
int EnclosingFunction(const ParsedFile& parsed, int line);

}  // namespace lint
}  // namespace vcmp

#endif  // VCMP_LINT_SYMBOLS_H_
