#include "lint/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace vcmp {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Multi-character punctuators, longest first (maximal munch). Only the
/// ones the rules distinguish matter; everything else falls through to
/// single characters.
constexpr std::array<std::string_view, 22> kPuncts = {
    "<<=", ">>=", "...", "->*", "::", "->", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "<<", ">>", "<=", ">=", "==", "!=", "&&", "||"};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_has_token_ = false;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && !line_has_token_) {
        SkipPreprocessor();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          LexLineComment();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          LexBlockComment();
          continue;
        }
      }
      line_has_token_ = true;
      if (IsIdentStart(c)) {
        LexIdentifierOrRawString();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        LexNumber();
      } else if (c == '"') {
        LexString();
      } else if (c == '\'') {
        LexCharLit();
      } else {
        LexPunct();
      }
    }
    return std::move(result_);
  }

 private:
  void Emit(TokenKind kind, size_t begin, size_t end, int line) {
    result_.tokens.push_back(
        Token{kind, std::string(src_.substr(begin, end - begin)), line});
  }

  /// A directive spans to end of line, honoring backslash continuations,
  /// so `#define NOW() steady_clock::now()` contributes no tokens.
  void SkipPreprocessor() {
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // Newline handled by the main loop.
      ++pos_;
    }
  }

  void LexLineComment() {
    const size_t begin = pos_;
    const int line = line_;
    const bool own_line = !line_has_token_;
    pos_ += 2;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    ParseAnnotations(src_.substr(begin, pos_ - begin), line, line, own_line);
  }

  void LexBlockComment() {
    const size_t begin = pos_;
    const int line = line_;
    const bool own_line = !line_has_token_;
    pos_ += 2;
    while (pos_ + 1 < src_.size() &&
           !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = std::min(pos_ + 2, src_.size());
    ParseAnnotations(src_.substr(begin, pos_ - begin), line, line_, own_line);
  }

  /// Extracts lint-allow / deterministic-reduction / query-local markers
  /// from a comment's text. `first_line`/`last_line` delimit the
  /// comment; own-line comments cover the line after the comment ends,
  /// trailing comments cover the line they sit on.
  void ParseAnnotations(std::string_view comment, int first_line,
                        int last_line, bool own_line) {
    const int covered = own_line ? last_line + 1 : first_line;
    ParseOne(comment, "vcmp:lint-allow(", first_line, covered, "");
    ParseOne(comment, "vcmp:deterministic-reduction(", first_line, covered,
             "D4");
    ParseOne(comment, "vcmp:query-local(", first_line, covered, "C3");
  }

  /// `implied_rule` is the rule a purpose-built marker suppresses (its
  /// body is then just the reason); empty means the generic lint-allow
  /// grammar `(RULE, reason)`.
  void ParseOne(std::string_view comment, std::string_view marker,
                int line, int covered, std::string_view implied_rule) {
    size_t at = comment.find(marker);
    while (at != std::string_view::npos) {
      Annotation a;
      a.line = line;
      a.covered_line = covered;
      a.deterministic_reduction = implied_rule == "D4";
      const size_t open = at + marker.size();
      const size_t close = comment.find(')', open);
      if (close == std::string_view::npos) {
        a.malformed = true;
        a.rule = std::string(implied_rule);
      } else {
        std::string_view body = comment.substr(open, close - open);
        if (!implied_rule.empty()) {
          a.rule = std::string(implied_rule);
          a.reason = Trim(body);
          a.malformed = a.reason.empty();
        } else {
          const size_t comma = body.find(',');
          if (comma == std::string_view::npos) {
            a.rule = Trim(body);
            a.malformed = true;  // Reason is mandatory.
          } else {
            a.rule = Trim(body.substr(0, comma));
            a.reason = Trim(body.substr(comma + 1));
            a.malformed = a.rule.empty() || a.reason.empty();
          }
        }
      }
      result_.annotations.push_back(std::move(a));
      at = comment.find(marker, open);
    }
  }

  void LexIdentifierOrRawString() {
    const size_t begin = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    std::string_view ident = src_.substr(begin, pos_ - begin);
    // R"..."  LR"..."  u8R"..."  uR"..."  UR"..." start a raw string.
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (ident == "R" || ident == "LR" || ident == "u8R" || ident == "uR" ||
         ident == "UR")) {
      LexRawString(begin);
      return;
    }
    Emit(TokenKind::kIdentifier, begin, pos_, line_);
  }

  void LexRawString(size_t begin) {
    const int line = line_;
    ++pos_;  // Consume the opening quote.
    const size_t delim_begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    std::string closer = ")";
    closer += src_.substr(delim_begin, pos_ - delim_begin);
    closer += '"';
    const size_t body = pos_;
    const size_t end = src_.find(closer, body);
    if (end == std::string_view::npos) {
      pos_ = src_.size();  // Unterminated: swallow the rest.
    } else {
      for (size_t i = body; i < end; ++i) {
        if (src_[i] == '\n') ++line_;
      }
      pos_ = end + closer.size();
    }
    Emit(TokenKind::kString, begin, pos_, line);
  }

  void LexNumber() {
    const size_t begin = pos_;
    // pp-number: digits, identifier chars, dots, and exponent signs.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > begin &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
                  src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')) {
        ++pos_;
      } else {
        break;
      }
    }
    Emit(TokenKind::kNumber, begin, pos_, line_);
  }

  void LexString() {
    const size_t begin = pos_;
    const int line = line_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;  // Ill-formed, but keep lines right.
      ++pos_;
    }
    pos_ = std::min(pos_ + 1, src_.size());
    Emit(TokenKind::kString, begin, pos_, line);
  }

  void LexCharLit() {
    const size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    pos_ = std::min(pos_ + 1, src_.size());
    Emit(TokenKind::kCharLit, begin, pos_, line_);
  }

  void LexPunct() {
    for (std::string_view p : kPuncts) {
      if (src_.substr(pos_, p.size()) == p) {
        Emit(TokenKind::kPunct, pos_, pos_ + p.size(), line_);
        pos_ += p.size();
        return;
      }
    }
    Emit(TokenKind::kPunct, pos_, pos_ + 1, line_);
    ++pos_;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  /// True once a non-comment token appeared on the current line: gates
  /// both `#` directive detection and own-line comment classification.
  bool line_has_token_ = false;
  LexResult result_;
};

}  // namespace

LexResult Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace lint
}  // namespace vcmp
