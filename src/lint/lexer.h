#ifndef VCMP_LINT_LEXER_H_
#define VCMP_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace vcmp {
namespace lint {

/// A minimal C++ tokenizer for vcmp-lint: just enough lexical fidelity
/// that the rule checkers (rules.h) never see the inside of a comment, a
/// string literal (including raw strings), a character literal, or a
/// preprocessor directive. It is *not* a parser — rules work on token
/// patterns — which keeps the linter dependency-free (no libclang) and
/// fast enough to run on every commit.
enum class TokenKind {
  kIdentifier,  // identifiers and keywords (new, delete, volatile, ...)
  kNumber,      // pp-number (integer/float literals incl. suffixes)
  kString,      // "...", raw R"(...)" and prefixed variants
  kCharLit,     // 'x'
  kPunct,       // operators/punctuation, maximal munch ("::", "+=", ...)
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character.
};

/// An in-source lint annotation, extracted from comments: the
/// vcmp:lint-allow marker taking (RULE, reason), the
/// vcmp:deterministic-reduction marker taking a reason — D4's sanctioned
/// way to bless a provably order-fixed parallel reduction — and the
/// vcmp:query-local marker taking a reason — C3's sanctioned way to
/// bless mutable state that is provably driven by one query at a time.
/// A trailing annotation covers its own line; an annotation on a line of
/// its own covers the next line. Annotations with an empty reason are
/// recorded as malformed (rule A1 flags them — every exception must be
/// justified).
struct Annotation {
  std::string rule;    // "D1".."D5", "C1".."C3", "P1"; "D4" for
                       // reductions, "C3" for query-local.
  std::string reason;  // Trimmed justification text.
  int line = 0;          // Line of the comment itself.
  int covered_line = 0;  // Line whose findings it suppresses.
  bool deterministic_reduction = false;
  bool malformed = false;  // Unparseable rule or missing reason.
  bool used = false;       // Set by the analyzer when it suppresses.
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Annotation> annotations;
};

/// Tokenizes `source`. Comments, preprocessor directives (including
/// continuation lines — macro bodies are invisible to the rules) and
/// literal contents produce no rule-visible identifier tokens; string
/// and char literals appear as single opaque tokens.
LexResult Lex(std::string_view source);

}  // namespace lint
}  // namespace vcmp

#endif  // VCMP_LINT_LEXER_H_
