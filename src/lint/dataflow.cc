#include "lint/dataflow.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "lint/symbols.h"
#include "lint/token_cursor.h"

namespace vcmp {
namespace lint {
namespace {

using StringSet = std::unordered_set<std::string>;

// --- C4: shared-state writes inside parallel regions --------------------

const StringSet kAssignOps = {"=",  "+=", "-=", "*=",  "/=",  "%=",
                              "&=", "|=", "^=", "<<=", ">>="};

/// Container methods that mutate the receiver; `obj.push_back(x)` is a
/// write to `obj` even though no assignment operator appears.
const StringSet kMutatingMethods = {
    "push_back", "emplace_back",  "pop_back", "push_front", "emplace_front",
    "pop_front", "insert",        "emplace",  "erase",      "clear",
    "resize",    "assign",        "append",   "reserve",    "swap",
    "merge",     "push",          "pop"};

/// RAII lock types; one taken in a parallel body before a write makes
/// the write synchronized (coarse: any lock anywhere earlier in the
/// body counts — the goal is zero false findings on locked code).
const StringSet kLockTypes = {"lock_guard", "scoped_lock", "unique_lock"};

/// Identifiers that disqualify the *previous* token from being a type
/// name in the `Type name ...` declaration heuristic.
const StringSet kNotAType = {
    "return", "else",     "new",    "delete",  "break",    "continue",
    "case",   "goto",     "throw",  "do",      "typename", "template",
    "public", "private",  "protected", "operator", "sizeof", "co_return",
    "co_yield", "co_await", "if",   "while",   "switch",   "using",
    "namespace", "struct", "class", "enum",    "union"};

/// A written lvalue, decomposed by walking the token stream: base
/// identifier (possibly `this`), member-access chain, and the token
/// ranges of every subscript along the path.
struct Lvalue {
  bool ok = false;
  std::string base;
  bool via_this = false;
  std::vector<std::string> fields;
  /// (first, one-past-last) token ranges strictly inside each `[...]`.
  std::vector<std::pair<size_t, size_t>> subs;
};

std::string Describe(const Lvalue& lv) {
  std::string d;
  for (const std::string& f : lv.fields) {
    if (!d.empty()) d += ".";
    d += f;
  }
  if (lv.via_this) return "this->" + d;
  return d.empty() ? lv.base : lv.base + "." + d;
}

/// Walks backwards from `p` (the token just before an assignment
/// operator, or just before a `.method(` mutation) to the chain's base
/// identifier. Fails open (ok=false) on anything it does not model —
/// `(*out)[i]`, call results, casts — a missed finding beats a false
/// one here.
Lvalue WalkBackLvalue(const TokenCursor& c, size_t p, size_t floor) {
  Lvalue lv;
  std::vector<std::string> rev_fields;
  while (p > floor) {
    if (c.IsPunct(p, "]")) {
      const size_t close = p;
      int depth = 0;
      while (p > floor) {
        if (c.IsPunct(p, "]")) ++depth;
        if (c.IsPunct(p, "[") && --depth == 0) break;
        --p;
      }
      if (!c.IsPunct(p, "[")) return lv;  // Unbalanced inside the body.
      lv.subs.emplace_back(p + 1, close);
      if (p <= floor) return lv;
      --p;
      continue;
    }
    if (c.IsIdent(p)) {
      const std::string& name = c.toks[p].text;
      if (p > floor + 1 &&
          (c.IsPunct(p - 1, ".") || c.IsPunct(p - 1, "->"))) {
        rev_fields.push_back(name);
        p -= 2;
        continue;
      }
      lv.base = name;
      lv.via_this = name == "this";
      lv.ok = true;
      break;
    }
    return lv;
  }
  lv.fields.assign(rev_fields.rbegin(), rev_fields.rend());
  if (lv.via_this && lv.fields.empty()) lv.ok = false;
  return lv;
}

/// Forwards walk for prefix `++x` / `--x`: ident at `p`, then any
/// `.field` / `->field` / `[...]` suffixes up to `limit`.
Lvalue WalkForwardLvalue(const TokenCursor& c, size_t p, size_t limit) {
  Lvalue lv;
  if (!c.IsIdent(p)) return lv;
  lv.base = c.toks[p].text;
  lv.via_this = lv.base == "this";
  lv.ok = true;
  size_t i = p + 1;
  while (i + 1 < limit) {
    if ((c.IsPunct(i, ".") || c.IsPunct(i, "->")) && c.IsIdent(i + 1)) {
      lv.fields.push_back(c.toks[i + 1].text);
      i += 2;
      continue;
    }
    if (c.IsPunct(i, "[")) {
      const size_t close = c.SkipBalanced(i);
      if (close > c.size()) return lv;
      lv.subs.emplace_back(i + 1, close - 1);
      i = close;
      continue;
    }
    break;
  }
  if (lv.via_this && lv.fields.empty()) lv.ok = false;
  return lv;
}

/// Everything the race check knows about one parallel-body lambda.
struct BodyEnv {
  const LambdaInfo* L = nullptr;
  StringSet params;
  StringSet value_caps;
  StringSet ref_caps;
  StringSet locals;          // Plain locals declared in the body.
  StringSet index_derived;   // Locals whose value derives from a param.
  StringSet shared_aliases;  // Ref locals bound to captured state.
  size_t first_lock_tok = static_cast<size_t>(-1);
};

/// True when [b, e) uses a name from `a` or `b2` *directly* — not
/// through a member access. Directness is the load-bearing distinction:
/// `loads[machine]` is shard-disjoint because `machine` is (derived
/// from) the task index, while `residual[m.target % n]` is not — the
/// member changes the value domain, so distinct tasks may collide.
bool MentionsDirect(const TokenCursor& c, size_t b, size_t e,
                    const StringSet& a, const StringSet& b2) {
  for (size_t i = b; i < e; ++i) {
    if (!c.IsIdent(i)) continue;
    const std::string& t = c.toks[i].text;
    if (a.count(t) == 0 && b2.count(t) == 0) continue;
    if (c.IsPunct(i + 1, ".") || c.IsPunct(i + 1, "->")) continue;
    if (i > b && (c.IsPunct(i - 1, ".") || c.IsPunct(i - 1, "->"))) continue;
    return true;
  }
  return false;
}

bool IsSharedName(const std::string& name, const BodyEnv& env,
                  const FileSymbols& symbols) {
  const LambdaInfo& L = *env.L;
  if (name == "this") return true;
  if (env.params.count(name) != 0 || env.locals.count(name) != 0 ||
      env.index_derived.count(name) != 0 ||
      env.value_caps.count(name) != 0) {
    return false;
  }
  if (env.shared_aliases.count(name) != 0) return true;
  if (env.ref_caps.count(name) != 0) return true;
  if (L.capture_all_ref) return true;  // [&]: unknown names are captured.
  // [this] / [=] reach data members through the captured object pointer.
  if ((L.captures_this || L.capture_all_value) && symbols.IsMemberField(name)) {
    return true;
  }
  return false;
}

/// Statement end for an `=` initializer: the `;` at nesting depth 0
/// (or wherever the enclosing construct closes first).
size_t StatementEnd(const TokenCursor& c, size_t from, size_t limit) {
  int depth = 0;
  for (size_t i = from; i < limit; ++i) {
    if (c.toks[i].kind != TokenKind::kPunct) continue;
    const std::string& p = c.toks[i].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    if (p == ")" || p == "]" || p == "}") {
      if (depth == 0) return i;
      --depth;
    }
    if (p == ";" && depth == 0) return i;
    if (p == "," && depth == 0) return i;  // Next declarator / next arg.
  }
  return limit;
}

/// Range end for a range-for binding: the `)` that closes the for
/// header.
size_t RangeForEnd(const TokenCursor& c, size_t from, size_t limit) {
  int depth = 0;
  for (size_t i = from; i < limit; ++i) {
    if (c.toks[i].kind != TokenKind::kPunct) continue;
    const std::string& p = c.toks[i].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    if (p == ")" || p == "]" || p == "}") {
      if (depth == 0) return i;
      --depth;
    }
    if (p == ";" && depth == 0) return i;
  }
  return limit;
}

/// Declaration pass over a parallel body: classifies every `Type name`
/// declaration as index-derived (initializer directly uses a param or
/// another index-derived name), a shared alias (a reference bound to
/// captured state), or a plain local. A single forward pass suffices —
/// declarations precede uses.
void CollectBodyDecls(const TokenCursor& c,
                      const std::unordered_map<size_t, size_t>& lambda_intros,
                      const FileSymbols& symbols, BodyEnv* env) {
  const LambdaInfo& L = *env->L;
  for (size_t j = L.body_begin + 1; j + 1 < L.body_end; ++j) {
    auto intro = lambda_intros.find(j);
    if (intro != lambda_intros.end()) {
      j = intro->second - 1;  // Skip nested capture lists.
      continue;
    }
    if (!c.IsIdent(j)) continue;
    const Token* prev = c.At(j - 1);
    bool typed_before = false;
    if (prev != nullptr) {
      if (prev->kind == TokenKind::kIdentifier) {
        typed_before = kNotAType.count(prev->text) == 0;
      } else if (prev->kind == TokenKind::kPunct) {
        typed_before =
            prev->text == "&" || prev->text == "&&" || prev->text == "*" ||
            prev->text == ">";
      }
    }
    if (!typed_before) continue;
    const std::string& name = c.toks[j].text;

    size_t init_b = 0;
    size_t init_e = 0;
    bool have_init = false;
    if (c.IsPunct(j + 1, "=")) {
      init_b = j + 2;
      init_e = StatementEnd(c, j + 2, L.body_end);
      have_init = true;
    } else if (c.IsPunct(j + 1, "{")) {
      const size_t close = c.SkipBalanced(j + 1);
      if (close > c.size()) continue;
      init_b = j + 2;
      init_e = close - 1;
      have_init = true;
    } else if (c.IsPunct(j + 1, ":")) {  // Range-for binding.
      init_b = j + 2;
      init_e = RangeForEnd(c, j + 2, L.body_end);
      have_init = true;
    } else if (!c.IsPunct(j + 1, ";")) {
      continue;  // Not a declaration this heuristic models.
    }

    const bool is_ref = c.IsPunct(j - 1, "&") || c.IsPunct(j - 1, "&&");
    if (have_init &&
        MentionsDirect(c, init_b, init_e, env->params, env->index_derived)) {
      env->index_derived.insert(name);
      continue;
    }
    if (is_ref && have_init) {
      bool shared = false;
      for (size_t i = init_b; i < init_e && !shared; ++i) {
        if (!c.IsIdent(i)) continue;
        if (c.IsPunct(i + 1, "(")) continue;  // A call, not a variable.
        if (i > init_b &&
            (c.IsPunct(i - 1, ".") || c.IsPunct(i - 1, "->"))) {
          continue;  // Field names classify via their base.
        }
        shared = IsSharedName(c.toks[i].text, *env, symbols);
      }
      if (shared) {
        env->shared_aliases.insert(name);
        continue;
      }
    }
    env->locals.insert(name);
  }
}

void AnalyzeParallelBody(
    const TokenCursor& c, const FileSymbols& symbols,
    const std::unordered_map<size_t, size_t>& lambda_intros,
    const LambdaInfo& L, const std::string& launcher, const std::string& path,
    std::set<std::pair<int, std::string>>* reported,
    std::vector<Finding>* out) {
  BodyEnv env;
  env.L = &L;
  for (const ParamDecl& p : L.params) env.params.insert(p.name);
  for (const std::string& n : L.value_captures) env.value_caps.insert(n);
  for (const std::string& n : L.ref_captures) env.ref_caps.insert(n);
  CollectBodyDecls(c, lambda_intros, symbols, &env);

  for (size_t j = L.body_begin + 1; j + 1 < L.body_end; ++j) {
    if (c.IsIdent(j) && kLockTypes.count(c.toks[j].text) != 0) {
      env.first_lock_tok = j;
      break;
    }
  }

  auto consider = [&](const Lvalue& lv, size_t op_tok,
                      const std::string& how) {
    if (!lv.ok) return;
    if (!lv.via_this && !IsSharedName(lv.base, env, symbols)) return;
    for (const auto& [b, e] : lv.subs) {
      if (MentionsDirect(c, b, e, env.params, env.index_derived)) return;
    }
    if (symbols.IsAtomic(lv.base)) return;
    for (const std::string& f : lv.fields) {
      if (symbols.IsAtomic(f)) return;
    }
    if (op_tok > env.first_lock_tok) return;  // A lock is held in the body.
    const int line = c.Line(op_tok);
    const std::string desc = Describe(lv);
    if (!reported->insert({line, desc}).second) return;
    Finding f;
    f.file = path;
    f.line = line;
    f.rule = "C4";
    f.message = how + " shared '" + desc + "' inside a " + launcher +
                " body — not shard-indexed, atomic, or lock-guarded; use "
                "per-shard slots reduced after the join, synchronize it, "
                "or annotate vcmp:deterministic-reduction / "
                "vcmp:query-local / vcmp:lint-allow(C4, reason)";
    out->push_back(std::move(f));
  };

  for (size_t j = L.body_begin + 1; j + 1 < L.body_end; ++j) {
    auto intro = lambda_intros.find(j);
    if (intro != lambda_intros.end()) {
      j = intro->second - 1;  // Capture-init `[x = ...]` is not a write.
      continue;
    }
    const Token* t = c.At(j);
    if (t == nullptr) break;
    if (t->kind == TokenKind::kPunct) {
      if (kAssignOps.count(t->text) != 0) {
        consider(WalkBackLvalue(c, j - 1, L.body_begin), j, "write to");
      } else if (t->text == "++" || t->text == "--") {
        if (c.IsIdent(j - 1) || c.IsPunct(j - 1, "]")) {
          consider(WalkBackLvalue(c, j - 1, L.body_begin), j, "write to");
        } else if (c.IsIdent(j + 1)) {
          consider(WalkForwardLvalue(c, j + 1, L.body_end), j, "write to");
        }
      }
      continue;
    }
    if (t->kind == TokenKind::kIdentifier &&
        kMutatingMethods.count(t->text) != 0 && j >= 2 &&
        (c.IsPunct(j - 1, ".") || c.IsPunct(j - 1, "->")) &&
        c.IsPunct(j + 1, "(")) {
      consider(WalkBackLvalue(c, j - 2, L.body_begin), j,
               "mutation ('" + t->text + "') of");
    }
  }
}

/// The launcher set, closed under wrapper lambdas: a bound lambda that
/// forwards one of its own parameters into a known launcher's argument
/// list is itself a launcher (the engines' `parallel_shards` idiom).
std::set<std::string> ComputeLaunchers(const TokenCursor& c,
                                       const ParsedFile& parsed) {
  std::set<std::string> launchers = {"ParallelFor", "ParallelForStealable"};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LambdaInfo& L : parsed.lambdas) {
      if (L.bound_name.empty() || L.params.empty() ||
          launchers.count(L.bound_name) != 0) {
        continue;
      }
      for (const CallSiteInfo& call : parsed.calls) {
        if (call.tok <= L.body_begin || call.tok >= L.body_end ||
            launchers.count(call.callee) == 0 ||
            !c.IsPunct(call.tok + 1, "(")) {
          continue;
        }
        const size_t close = c.SkipBalanced(call.tok + 1);
        StringSet params;
        for (const ParamDecl& p : L.params) params.insert(p.name);
        if (MentionsDirect(c, call.tok + 2, close - 1, params, params)) {
          launchers.insert(L.bound_name);
          changed = true;
          break;
        }
      }
    }
  }
  return launchers;
}

/// Top-level arguments of the call whose `(` is at `open` that consist
/// of a single identifier token — candidates for bound-lambda bodies.
std::vector<std::string> SingleIdentArgs(const TokenCursor& c, size_t open,
                                         size_t close) {
  std::vector<std::string> args;
  int depth = 0;
  size_t seg_start = open + 1;
  auto flush = [&](size_t seg_end) {
    if (seg_end == seg_start + 1 && c.IsIdent(seg_start)) {
      args.push_back(c.toks[seg_start].text);
    }
    seg_start = seg_end + 1;
  };
  for (size_t i = open; i < close; ++i) {
    if (c.toks[i].kind != TokenKind::kPunct) continue;
    const std::string& p = c.toks[i].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    if (p == ")" || p == "]" || p == "}") --depth;
    if (p == "," && depth == 1) flush(i);
  }
  if (close >= 1) flush(close - 1);
  return args;
}

void CheckC4(const std::string& path, const TokenCursor& c,
             const ParsedFile& parsed, std::vector<Finding>* out) {
  const FileSymbols symbols(parsed);
  const std::set<std::string> launchers = ComputeLaunchers(c, parsed);
  std::unordered_map<size_t, size_t> lambda_intros;
  for (const LambdaInfo& L : parsed.lambdas) {
    lambda_intros.emplace(L.intro_tok, L.intro_end);
  }

  std::set<size_t> analyzed;  // Lambda indices, each body checked once.
  std::set<std::pair<int, std::string>> reported;
  for (const CallSiteInfo& call : parsed.calls) {
    if (launchers.count(call.callee) == 0) continue;
    if (!c.IsPunct(call.tok + 1, "(")) continue;
    const size_t open = call.tok + 1;
    const size_t close = c.SkipBalanced(open);
    if (close > c.size()) continue;

    // Inline lambda arguments: the outermost lambdas whose intro sits
    // inside this argument list.
    for (size_t li = 0; li < parsed.lambdas.size(); ++li) {
      const LambdaInfo& L = parsed.lambdas[li];
      if (L.intro_tok <= open || L.intro_tok >= close - 1) continue;
      bool nested = false;
      for (const LambdaInfo& M : parsed.lambdas) {
        if (M.intro_tok > open && M.intro_tok < L.intro_tok &&
            L.intro_tok < M.body_end) {
          nested = true;
          break;
        }
      }
      if (!nested && analyzed.insert(li).second) {
        AnalyzeParallelBody(c, symbols, lambda_intros, L, call.callee, path,
                            &reported, out);
      }
    }

    // Bound-lambda arguments: `auto fn = [&](...){...};
    // pool.ParallelFor(n, fn)`. Prefer a binding in the same enclosing
    // function; fall back to any unique match.
    for (const std::string& name : SingleIdentArgs(c, open, close)) {
      int best = -1;
      for (size_t li = 0; li < parsed.lambdas.size(); ++li) {
        if (parsed.lambdas[li].bound_name != name) continue;
        if (parsed.lambdas[li].enclosing_function ==
            call.enclosing_function) {
          best = static_cast<int>(li);
          break;
        }
        if (best == -1) best = static_cast<int>(li);
      }
      if (best >= 0 && analyzed.insert(static_cast<size_t>(best)).second) {
        AnalyzeParallelBody(c, symbols, lambda_intros,
                            parsed.lambdas[static_cast<size_t>(best)],
                            call.callee, path, &reported, out);
      }
    }
  }
}

// --- D7: pointer-identity ordering --------------------------------------

const StringSet kOrderedByKey = {"map",           "set",
                                 "multimap",      "multiset",
                                 "unordered_map", "unordered_set",
                                 "unordered_multimap", "unordered_multiset"};
const StringSet kCmpOps = {"<", "<=", ">", ">="};

/// Scans the first template argument after the `<` at `open`; true when
/// it contains a `*` at any nesting (a pointer anywhere in the key type
/// makes the key order follow allocation addresses). Bails (false) when
/// the `<` turns out not to open a template argument list.
bool FirstTemplateArgHasPointer(const TokenCursor& c, size_t open) {
  int angle = 0;
  int other = 0;
  for (size_t i = open; i < c.size(); ++i) {
    if (c.toks[i].kind != TokenKind::kPunct) continue;
    const std::string& p = c.toks[i].text;
    if (p == ";" || p == "{" || p == "}") return false;  // Not a template.
    if (p == "(" || p == "[") ++other;
    if (p == ")" || p == "]") {
      if (other == 0) return false;
      --other;
    }
    if (p == "," && angle == 1 && other == 0) return false;  // Arg 2+.
    if (i > open && other == 0 && p.find('*') != std::string::npos) {
      return true;
    }
    for (char ch : p) {
      if (ch == '<') ++angle;
      if (ch == '>' && --angle == 0) return false;
    }
  }
  return false;
}

void CheckD7(const std::string& path, const TokenCursor& c,
             const ParsedFile& parsed, std::vector<Finding>* out) {
  std::set<std::pair<int, std::string>> seen;
  auto report = [&](int line, const std::string& kind, std::string msg) {
    if (!seen.insert({line, kind}).second) return;
    Finding f;
    f.file = path;
    f.line = line;
    f.rule = "D7";
    f.message = std::move(msg);
    out->push_back(std::move(f));
  };

  for (size_t i = 0; i < c.size(); ++i) {
    if (!c.IsIdent(i)) continue;
    const std::string& t = c.toks[i].text;
    const int line = c.Line(i);
    if (kOrderedByKey.count(t) != 0 && c.IsPunct(i + 1, "<") &&
        FirstTemplateArgHasPointer(c, i + 1)) {
      report(line, "key",
             "pointer-keyed 'std::" + t +
                 "' — key order/hashing follows allocation addresses, "
                 "which differ between runs; key by a stable id (vertex "
                 "id, machine index) instead");
    } else if (t == "reinterpret_cast" && c.IsPunct(i + 1, "<")) {
      const size_t end = c.SkipAngles(i + 1);
      for (size_t j = i + 2; j + 1 < end; ++j) {
        if (c.IsIdent(j) &&
            (c.toks[j].text == "uintptr_t" || c.toks[j].text == "intptr_t")) {
          report(line, "ptr-int",
                 "pointer-to-integer cast ('reinterpret_cast<" +
                     c.toks[j].text +
                     ">') — address bits are not stable across runs; "
                     "derive ordering/hashes from a stable id");
          break;
        }
      }
    } else if (t == "hash" && c.IsPunct(i + 1, "<")) {
      const size_t end = c.SkipAngles(i + 1);
      for (size_t j = i + 2; j + 1 < end; ++j) {
        if (c.toks[j].kind == TokenKind::kPunct &&
            c.toks[j].text.find('*') != std::string::npos) {
          report(line, "hash",
                 "'std::hash' over a pointer type — hashes allocation "
                 "addresses, which differ between runs; hash a stable id "
                 "instead");
          break;
        }
      }
    } else if (t == "uintptr_t" || t == "intptr_t") {
      report(line, "ptr-int",
             "'" + t +
                 "' value derived from a pointer — address bits are not "
                 "stable across runs; use a stable id for anything that "
                 "orders or hashes");
    }
  }

  // Relational comparisons between two pointer-typed parameters of the
  // same function or lambda order results by address.
  auto check_ptr_cmps = [&](const std::vector<ParamDecl>& params,
                            size_t body_begin, size_t body_end) {
    StringSet ptr_params;
    for (const ParamDecl& p : params) {
      if (p.is_pointer) ptr_params.insert(p.name);
    }
    if (ptr_params.empty()) return;
    for (size_t j = body_begin + 1; j + 1 < body_end; ++j) {
      if (c.toks[j].kind != TokenKind::kPunct ||
          kCmpOps.count(c.toks[j].text) == 0) {
        continue;
      }
      if (c.IsIdent(j - 1) && c.IsIdent(j + 1) &&
          ptr_params.count(c.toks[j - 1].text) != 0 &&
          ptr_params.count(c.toks[j + 1].text) != 0) {
        report(c.Line(j), "cmp",
               "pointer comparison ('" + c.toks[j - 1].text + " " +
                   c.toks[j].text + " " + c.toks[j + 1].text +
                   "') orders by allocation address, which differs "
                   "between runs; compare stable ids instead");
      }
    }
  };
  for (const FunctionInfo& fn : parsed.functions) {
    check_ptr_cmps(fn.params, fn.body_begin, fn.body_end);
  }
  for (const LambdaInfo& L : parsed.lambdas) {
    check_ptr_cmps(L.params, L.body_begin, L.body_end);
  }
}

}  // namespace

void CheckFlow(const std::string& path, const std::vector<Token>& tokens,
               const ParsedFile& parsed, std::vector<Finding>* out) {
  const TokenCursor c(tokens);
  if (RuleInScope("C4", path)) CheckC4(path, c, parsed, out);
  if (RuleInScope("D7", path)) CheckD7(path, c, parsed, out);
}

}  // namespace lint
}  // namespace vcmp
