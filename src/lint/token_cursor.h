#ifndef VCMP_LINT_TOKEN_CURSOR_H_
#define VCMP_LINT_TOKEN_CURSOR_H_

#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace vcmp {
namespace lint {

/// Read-only navigation helpers over a token stream, shared by the
/// parser, the dataflow rules and the call-graph builder. (rules.cc has
/// an older private cursor that also carries reporting state; new code
/// uses this one.)
struct TokenCursor {
  const std::vector<Token>& toks;

  explicit TokenCursor(const std::vector<Token>& t) : toks(t) {}

  size_t size() const { return toks.size(); }
  const Token* At(size_t i) const {
    return i < toks.size() ? &toks[i] : nullptr;
  }
  bool IsPunct(size_t i, std::string_view p) const {
    const Token* t = At(i);
    return t != nullptr && t->kind == TokenKind::kPunct && t->text == p;
  }
  bool IsIdent(size_t i) const {
    const Token* t = At(i);
    return t != nullptr && t->kind == TokenKind::kIdentifier;
  }
  bool IsIdent(size_t i, std::string_view name) const {
    const Token* t = At(i);
    return t != nullptr && t->kind == TokenKind::kIdentifier &&
           t->text == name;
  }
  int Line(size_t i) const {
    const Token* t = At(i);
    return t != nullptr ? t->line : 0;
  }

  /// Index just past the matching closer for the opener at `open`
  /// (toks[open] must be `(`, `[` or `{`). Returns toks.size() when
  /// unbalanced.
  size_t SkipBalanced(size_t open) const {
    const std::string& o = toks[open].text;
    const std::string_view c = o == "(" ? ")" : o == "[" ? "]" : "}";
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      if (toks[i].text == o) ++depth;
      if (toks[i].text == c && --depth == 0) return i + 1;
    }
    return toks.size();
  }

  /// Index just past a template argument list whose `<` sits at `open`.
  /// Counts '<'/'>' characters so `>>` closes two levels. Gives up (and
  /// returns the index of the `;`) when a statement ends first.
  size_t SkipAngles(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      for (char ch : toks[i].text) {
        if (ch == '<') ++depth;
        if (ch == '>' && --depth == 0) return i + 1;
      }
      if (toks[i].text == ";") return i;  // Not a template list after all.
    }
    return toks.size();
  }
};

}  // namespace lint
}  // namespace vcmp

#endif  // VCMP_LINT_TOKEN_CURSOR_H_
