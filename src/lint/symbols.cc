#include "lint/symbols.h"

namespace vcmp {
namespace lint {

FunctionIndex FunctionIndex::Build(const std::vector<ParsedFile>& files) {
  FunctionIndex index;
  for (size_t f = 0; f < files.size(); ++f) {
    const ParsedFile& file = files[f];
    for (size_t i = 0; i < file.functions.size(); ++i) {
      index.by_name_[file.functions[i].name].push_back(
          FunctionRef{static_cast<int>(f), static_cast<int>(i)});
      ++index.num_functions_;
    }
  }
  return index;
}

const std::vector<FunctionRef>* FunctionIndex::Lookup(
    const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

FileSymbols::FileSymbols(const ParsedFile& parsed) {
  members_.insert(parsed.member_fields.begin(), parsed.member_fields.end());
  atomics_.insert(parsed.atomic_names.begin(), parsed.atomic_names.end());
}

int EnclosingFunction(const ParsedFile& parsed, int line) {
  int best = -1;
  int best_span = 0;
  for (size_t i = 0; i < parsed.functions.size(); ++i) {
    const FunctionInfo& fn = parsed.functions[i];
    if (line < fn.body_first_line || line > fn.body_last_line) continue;
    const int span = fn.body_last_line - fn.body_first_line;
    if (best == -1 || span < best_span) {
      best = static_cast<int>(i);
      best_span = span;
    }
  }
  return best;
}

}  // namespace lint
}  // namespace vcmp
