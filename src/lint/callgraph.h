#ifndef VCMP_LINT_CALLGRAPH_H_
#define VCMP_LINT_CALLGRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "lint/parser.h"
#include "lint/rules.h"
#include "lint/symbols.h"

namespace vcmp {
namespace lint {

/// Whole-tree call graph over every function definition the parser saw,
/// with interprocedural nondeterminism-taint propagation (rule D6).
///
/// Taint sources are the primitives the token rules already police —
/// wall-clock reads, global/unseeded RNG, thread identity, unordered-
/// container iteration — found inside a function's body. Taint then
/// propagates callee -> caller over name-resolved call edges, so a
/// helper that *wraps* a tainted primitive taints everything that calls
/// it, transitively. Two things kill taint:
///  - the sanctioned seam: functions defined in common/wall_clock.{h,cc}
///    are never tainted (self-profiling is the one legitimate clock use);
///  - an explicit in-source blessing covering the primitive's line
///    (vcmp:lint-allow on the primitive's own rule or on D6) — a
///    reviewed exception does not poison its callers.
class CallGraph {
 public:
  /// Per-file taint inputs, parallel to `files`: the primitives found in
  /// each file's token stream (rules.h FindTaintPrimitives), and the
  /// lines where seeding is killed by an annotation.
  struct TaintOptions {
    std::vector<std::vector<TaintPrimitive>> primitives;
    std::vector<std::set<int>> killed_lines;
  };

  static CallGraph Build(const std::vector<ParsedFile>& files);

  void ComputeTaint(const std::vector<ParsedFile>& files,
                    const TaintOptions& options);

  bool IsTainted(FunctionRef ref) const;

  /// Human-readable witness: "Helper -> Wrapper -> std::mt19937 default
  /// seed (src/x.cc:12)". Empty for untainted functions.
  std::string TaintChain(const std::vector<ParsedFile>& files,
                         FunctionRef ref) const;

  const FunctionIndex& index() const { return index_; }
  size_t num_edges() const { return num_edges_; }
  size_t num_tainted() const { return num_tainted_; }

  /// Machine-readable dump (--callgraph): every function with its file,
  /// line, outgoing call edges, and taint state + chain.
  std::string ToJson(const std::vector<ParsedFile>& files) const;

 private:
  struct Node {
    std::vector<FunctionRef> callers;  // Reverse edges for propagation.
    std::vector<FunctionRef> callees;  // Forward edges for the dump.
    bool tainted = false;
    bool seed = false;
    std::string primitive;       // Seed description "what (file:line)".
    FunctionRef tainted_via;     // Callee that propagated taint here.
  };

  Node& NodeFor(FunctionRef ref) { return nodes_[Slot(ref)]; }
  const Node& NodeFor(FunctionRef ref) const { return nodes_[Slot(ref)]; }
  size_t Slot(FunctionRef ref) const {
    return offsets_[ref.file] + static_cast<size_t>(ref.fn);
  }

  FunctionIndex index_;
  std::vector<size_t> offsets_;  // Per-file base into nodes_.
  std::vector<Node> nodes_;
  size_t num_edges_ = 0;
  size_t num_tainted_ = 0;
};

/// True for the files whose definitions the taint analysis treats as the
/// sanctioned wall-clock seam.
bool IsWallClockSeam(const std::string& path);

}  // namespace lint
}  // namespace vcmp

#endif  // VCMP_LINT_CALLGRAPH_H_
