#include "lint/rules.h"

#include <algorithm>
#include <unordered_set>

namespace vcmp {
namespace lint {
namespace {

using StringSet = std::unordered_set<std::string_view>;

const StringSet kClockTypes = {"system_clock", "steady_clock",
                               "high_resolution_clock"};
const StringSet kClockCalls = {"clock_gettime", "gettimeofday",
                               "timespec_get", "mktime", "localtime",
                               "gmtime"};
/// Flagged only in call position (identifier immediately before `(`).
const StringSet kClockCallsBare = {"time", "clock"};

const StringSet kRandCalls = {"rand", "srand", "drand48", "lrand48",
                              "random", "srandom"};
const StringSet kStdEngines = {
    "mt19937",       "mt19937_64",   "minstd_rand",
    "minstd_rand0",  "knuth_b",      "default_random_engine",
    "ranlux24",      "ranlux48",     "ranlux24_base",
    "ranlux48_base"};

const StringSet kUnorderedTypes = {"unordered_map", "unordered_set",
                                   "unordered_multimap",
                                   "unordered_multiset"};
const StringSet kBeginLike = {"begin", "cbegin", "rbegin", "crbegin"};

bool Contains(const StringSet& set, const std::string& s) {
  return set.count(std::string_view(s)) != 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool HasSegment(std::string_view path, std::string_view segment) {
  // Matches `segment` as a whole directory component.
  size_t at = path.find(segment);
  while (at != std::string_view::npos) {
    const bool left_ok = at == 0 || path[at - 1] == '/';
    const size_t end = at + segment.size();
    const bool right_ok = end < path.size() && path[end] == '/';
    if (left_ok && right_ok) return true;
    at = path.find(segment, at + 1);
  }
  return false;
}

struct Cursor {
  const std::vector<Token>& toks;
  const std::string& path;
  std::vector<Finding>* out;

  const Token* At(size_t i) const { return i < toks.size() ? &toks[i] : nullptr; }
  bool IsPunct(size_t i, std::string_view p) const {
    const Token* t = At(i);
    return t != nullptr && t->kind == TokenKind::kPunct && t->text == p;
  }
  bool IsIdent(size_t i) const {
    const Token* t = At(i);
    return t != nullptr && t->kind == TokenKind::kIdentifier;
  }

  void Report(const std::string& rule, int line, std::string message) const {
    Finding f;
    f.file = path;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    out->push_back(std::move(f));
  }

  /// Index just past the matching closer for the opener at `open`
  /// (toks[open] must be `(`, `[` or `{`). Returns toks.size() when
  /// unbalanced.
  size_t SkipBalanced(size_t open) const {
    const std::string& o = toks[open].text;
    const std::string_view c = o == "(" ? ")" : o == "[" ? "]" : "}";
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      if (toks[i].text == o) ++depth;
      if (toks[i].text == c && --depth == 0) return i + 1;
    }
    return toks.size();
  }

  /// Index just past a template argument list whose `<` sits at `open`.
  /// Counts '<'/'>' characters so `>>` closes two levels.
  size_t SkipAngles(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      for (char ch : toks[i].text) {
        if (ch == '<') ++depth;
        if (ch == '>' && --depth == 0) return i + 1;
      }
      if (toks[i].text == ";") return i;  // Gave up: not a template list.
    }
    return toks.size();
  }
};

/// True when the identifier at `i` is in call position: `name(` that is
/// neither a member access (`x.time(...)`), nor a declaration of a
/// function by that name (`long time(...)` — preceded by a type name),
/// and, when qualified, is qualified from `std`.
bool IsFreeCall(const Cursor& c, size_t i) {
  if (!c.IsPunct(i + 1, "(")) return false;
  if (i >= 1) {
    if (c.IsPunct(i - 1, ".") || c.IsPunct(i - 1, "->")) return false;
    if (c.IsPunct(i - 1, "::")) {
      return i >= 2 && c.IsIdent(i - 2) && c.toks[i - 2].text == "std";
    }
    if (c.IsIdent(i - 1) && c.toks[i - 1].text != "return") return false;
  }
  return true;
}

// --- D1: wall-clock reads outside the sanctioned seam -------------------

void CheckD1(const Cursor& c) {
  for (size_t i = 0; i < c.toks.size(); ++i) {
    if (!c.IsIdent(i)) continue;
    const std::string& t = c.toks[i].text;
    if (Contains(kClockTypes, t)) {
      c.Report("D1", c.toks[i].line,
               "wall-clock read ('" + t +
                   "') outside common/wall_clock — route timing through "
                   "vcmp::wallclock or the simulated clock");
    } else if (Contains(kClockCalls, t) ||
               (Contains(kClockCallsBare, t) && IsFreeCall(c, i))) {
      c.Report("D1", c.toks[i].line,
               "C time call ('" + t +
                   "') outside common/wall_clock — route timing through "
                   "vcmp::wallclock or the simulated clock");
    }
  }
}

// --- D2: unseeded or global RNG -----------------------------------------

void CheckD2(const Cursor& c) {
  for (size_t i = 0; i < c.toks.size(); ++i) {
    if (!c.IsIdent(i)) continue;
    const std::string& t = c.toks[i].text;
    if (t == "random_device") {
      c.Report("D2", c.toks[i].line,
               "'std::random_device' is nondeterministic — derive seeds "
               "from the run's explicit seed (common/rng.h Fork())");
      continue;
    }
    if (Contains(kRandCalls, t) && IsFreeCall(c, i)) {
      c.Report("D2", c.toks[i].line,
               "global RNG call ('" + t +
                   "') — use an explicitly seeded vcmp::Rng instead");
      continue;
    }
    if (Contains(kStdEngines, t)) {
      // `std::mt19937 g;`, `std::mt19937 g{}` and `std::mt19937 g()` (or
      // the temporaries `mt19937{}` / `mt19937()`) default-construct with
      // a fixed-but-implementation-defined seed nobody chose; seeded
      // constructions pass an argument and are accepted.
      size_t j = i + 1;
      if (c.IsIdent(j)) ++j;  // Skip the declared name, if any.
      const bool empty_braces = c.IsPunct(j, "{") && c.IsPunct(j + 1, "}");
      const bool empty_parens = c.IsPunct(j, "(") && c.IsPunct(j + 1, ")");
      const bool bare_decl = j == i + 2 && c.IsPunct(j, ";");
      if (empty_braces || empty_parens || bare_decl) {
        c.Report("D2", c.toks[i].line,
                 "default-constructed 'std::" + t +
                     "' (unseeded engine) — seed it explicitly from the "
                     "run's seed, or use vcmp::Rng");
      }
    }
  }
}

// --- D3: iteration over unordered containers in output-feeding files ----

/// The D3 detection core, shared with the taint seeder (D6): every
/// iteration over a name declared with an unordered type in this file,
/// as (line, container-name) pairs in token order.
void CollectUnorderedIterations(
    const Cursor& c, std::vector<std::pair<int, std::string>>* out) {
  // Pass 1: names declared with an unordered type in this file, e.g.
  // `std::unordered_map<K, V> name` (members, locals, params alike).
  StringSet tracked_storage;  // Views into token text — toks outlive us.
  for (size_t i = 0; i < c.toks.size(); ++i) {
    if (!c.IsIdent(i) || !Contains(kUnorderedTypes, c.toks[i].text)) continue;
    size_t j = i + 1;
    if (c.IsPunct(j, "<")) j = c.SkipAngles(j);
    while (c.IsPunct(j, "&") || c.IsPunct(j, "*") ||
           (c.IsIdent(j) && c.toks[j].text == "const")) {
      ++j;
    }
    if (c.IsIdent(j)) {
      tracked_storage.insert(std::string_view(c.toks[j].text));
    }
  }
  if (tracked_storage.empty()) return;

  auto is_tracked = [&](size_t i) {
    return c.IsIdent(i) &&
           tracked_storage.count(std::string_view(c.toks[i].text)) != 0;
  };

  // Pass 2a: range-for whose range expression names a tracked variable.
  for (size_t i = 0; i + 1 < c.toks.size(); ++i) {
    if (!c.IsIdent(i) || c.toks[i].text != "for" || !c.IsPunct(i + 1, "(")) {
      continue;
    }
    const size_t close = c.SkipBalanced(i + 1);
    // Find the top-level range-for colon (lexed as a single ":").
    size_t colon = 0;
    int depth = 0;
    for (size_t j = i + 1; j < close; ++j) {
      if (c.toks[j].kind != TokenKind::kPunct) continue;
      const std::string& p = c.toks[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      if (p == ")" || p == "]" || p == "}") --depth;
      if (p == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    for (size_t j = colon + 1; j + 1 < close; ++j) {
      if (is_tracked(j)) {
        out->emplace_back(c.toks[i].line, c.toks[j].text);
        break;
      }
    }
  }

  // Pass 2b: explicit iterator walks (`name.begin()` and friends).
  for (size_t i = 0; i + 2 < c.toks.size(); ++i) {
    if (!is_tracked(i)) continue;
    if (!(c.IsPunct(i + 1, ".") || c.IsPunct(i + 1, "->"))) continue;
    if (c.IsIdent(i + 2) && Contains(kBeginLike, c.toks[i + 2].text) &&
        c.IsPunct(i + 3, "(")) {
      out->emplace_back(c.toks[i].line, c.toks[i].text);
    }
  }
}

void CheckD3(const Cursor& c) {
  std::vector<std::pair<int, std::string>> iterations;
  CollectUnorderedIterations(c, &iterations);
  for (const auto& [line, name] : iterations) {
    c.Report("D3", line,
             "iteration over unordered container '" + name +
                 "' — hash order is not deterministic; iterate a "
                 "sorted copy or an ordered container");
  }
}

// --- D4: shared accumulation inside ParallelFor -------------------------

void CheckD4(const Cursor& c) {
  for (size_t i = 0; i + 1 < c.toks.size(); ++i) {
    if (!c.IsIdent(i) ||
        (c.toks[i].text != "ParallelFor" &&
         c.toks[i].text != "ParallelForStealable") ||
        !c.IsPunct(i + 1, "(")) {
      continue;
    }
    const size_t begin = i + 1;
    const size_t end = c.SkipBalanced(begin);

    // Names declared inside the region (lambda params, locals, range-for
    // bindings): identifier preceded by a type-ish token (`&`, `*`, or
    // another identifier) and followed by a declarator terminator.
    // Capture lists (`[` right after `(` or `,`) are skipped: `[&x]`
    // names shared state, not a local.
    StringSet declared;
    for (size_t j = begin + 1; j + 1 < end; ++j) {
      if (c.IsPunct(j, "[") &&
          (c.IsPunct(j - 1, "(") || c.IsPunct(j - 1, ","))) {
        j = c.SkipBalanced(j) - 1;
        continue;
      }
      if (!c.IsIdent(j)) continue;
      const bool typed_before =
          c.IsPunct(j - 1, "&") || c.IsPunct(j - 1, "*") || c.IsIdent(j - 1);
      const bool terminated_after =
          c.IsPunct(j + 1, "=") || c.IsPunct(j + 1, ";") ||
          c.IsPunct(j + 1, ",") || c.IsPunct(j + 1, ")") ||
          c.IsPunct(j + 1, ":") || c.IsPunct(j + 1, "{");
      if (typed_before && terminated_after) {
        declared.insert(std::string_view(c.toks[j].text));
      }
    }

    // Compound accumulation whose lvalue's base identifier is captured
    // (not declared in the region) orders floating-point adds by thread
    // schedule — exactly what the determinism contract forbids.
    for (size_t j = begin; j < end; ++j) {
      if (!(c.IsPunct(j, "+=") || c.IsPunct(j, "-="))) continue;
      size_t p = j;
      std::string base;
      while (p > begin) {
        --p;
        if (c.IsPunct(p, "]")) {  // Walk back over a subscript.
          int depth = 0;
          while (p > begin) {
            if (c.IsPunct(p, "]")) ++depth;
            if (c.IsPunct(p, "[") && --depth == 0) break;
            --p;
          }
          continue;
        }
        if (c.IsIdent(p)) {
          base = c.toks[p].text;
          if (p >= 1 && (c.IsPunct(p - 1, ".") || c.IsPunct(p - 1, "->"))) {
            --p;  // Keep walking to the chain's base object.
            continue;
          }
          break;
        }
        break;
      }
      if (!base.empty() && declared.count(std::string_view(base)) == 0) {
        c.Report("D4", c.toks[j].line,
                 "accumulation into captured '" + base + "' inside " +
                     c.toks[i].text +
                     " — floating-point order becomes "
                     "schedule-dependent; use per-shard slots reduced "
                     "serially, or annotate "
                     "vcmp:deterministic-reduction(reason)");
      }
    }
    i = end;
  }
}

// --- C1: naked new/delete in engine hot paths ---------------------------

void CheckC1(const Cursor& c) {
  for (size_t i = 0; i < c.toks.size(); ++i) {
    if (!c.IsIdent(i)) continue;
    const std::string& t = c.toks[i].text;
    if (t == "new") {
      c.Report("C1", c.toks[i].line,
               "naked 'new' in an engine hot path — engine buffers must "
               "be owned (vector/unique_ptr) so steady-state rounds "
               "allocate nothing");
    } else if (t == "delete" && !(i >= 1 && c.IsPunct(i - 1, "="))) {
      // `= delete` (deleted special members) is declaration syntax.
      c.Report("C1", c.toks[i].line,
               "naked 'delete' in an engine hot path — ownership belongs "
               "to containers/smart pointers");
    }
  }
}

// --- C2: volatile used as synchronization -------------------------------

void CheckC2(const Cursor& c) {
  for (size_t i = 0; i < c.toks.size(); ++i) {
    if (c.IsIdent(i) && c.toks[i].text == "volatile") {
      c.Report("C2", c.toks[i].line,
               "'volatile' is not synchronization — use std::atomic or a "
               "mutex (ThreadPool-visible state must be race-free under "
               "TSan)");
    }
  }
}

// --- C3: mutable static/member scratch state in query compute paths ----

/// Concurrent queries share engines, tasks and the out-of-core layer by
/// const reference (DESIGN.md section 14): any `mutable` member or
/// non-const `static` in those directories is a potential cross-query
/// channel. State that is provably driven by one query at a time (or is
/// result-neutral) carries a query-local annotation with a reason.
void CheckC3(const Cursor& c) {
  for (size_t i = 0; i < c.toks.size(); ++i) {
    if (!c.IsIdent(i)) continue;
    const std::string& t = c.toks[i].text;
    if (t == "mutable") {
      // `](...) mutable {` is a lambda qualifier (by-value captures the
      // lambda mutates locally), not shared state.
      if (i >= 1 && c.IsPunct(i - 1, ")")) continue;
      c.Report("C3", c.toks[i].line,
               "'mutable' member in a query compute path — concurrent "
               "queries share this object const; move the scratch into "
               "the QueryContext, or annotate vcmp:query-local(reason) "
               "if one query provably drives it at a time");
    } else if (t == "static") {
      // Walk the declaration specifiers. const/constexpr/constinit
      // before the declarator makes the object immutable after its
      // thread-safe initialization; a `(` first means a static function
      // declaration (no state). `=`, `{` or `;` first means mutable
      // static data — shared by every concurrent query.
      bool immutable = false;
      bool function_like = false;
      size_t j = i + 1;
      while (j < c.toks.size()) {
        if (c.IsIdent(j)) {
          const std::string& s = c.toks[j].text;
          if (s == "const" || s == "constexpr" || s == "constinit") {
            immutable = true;
            break;
          }
          ++j;
          continue;
        }
        if (c.IsPunct(j, "<")) {
          j = c.SkipAngles(j);
          continue;
        }
        if (c.IsPunct(j, "(")) {
          function_like = true;
          break;
        }
        if (c.IsPunct(j, ";") || c.IsPunct(j, "=") || c.IsPunct(j, "{")) {
          break;
        }
        ++j;  // Pointers/references/scope qualifiers.
      }
      if (immutable || function_like) continue;
      c.Report("C3", c.toks[i].line,
               "non-const 'static' state in a query compute path — "
               "shared across concurrent queries; make it "
               "const/constexpr, move it into per-query state, or "
               "annotate vcmp:query-local(reason) if it is provably "
               "result-neutral or single-query");
    }
  }
}

// --- P1: AoS std::vector<Message> buffers in engine hot paths -----------

void CheckP1(const Cursor& c) {
  for (size_t i = 0; i + 2 < c.toks.size(); ++i) {
    if (!c.IsIdent(i) || c.toks[i].text != "vector") continue;
    if (!c.IsPunct(i + 1, "<")) continue;
    if (!c.IsIdent(i + 2) || c.toks[i + 2].text != "Message") continue;
    // The closer may lex as ">" or fold into ">>" when nested.
    const Token* closer = c.At(i + 3);
    if (closer == nullptr || closer->kind != TokenKind::kPunct ||
        closer->text.empty() || closer->text[0] != '>') {
      continue;
    }
    c.Report("P1", c.toks[i].line,
             "AoS 'std::vector<Message>' buffer in an engine hot path — "
             "use the SoA MessageBlock (engine/message_block.h) so "
             "grouping and delivery stay column-oriented");
  }
}

// --- D5: direct file I/O in the engine outside the src/ooc seam ---------

void CheckD5(const Cursor& c) {
  for (size_t i = 0; i < c.toks.size(); ++i) {
    if (!c.IsIdent(i)) continue;
    const std::string& t = c.toks[i].text;
    if ((t == "fopen" || t == "freopen" || t == "tmpfile") &&
        IsFreeCall(c, i)) {
      c.Report("D5", c.toks[i].line,
               "direct file I/O ('" + t +
                   "') in the engine — disk access belongs behind the "
                   "src/ooc seam (spill_file/state_file) so budgets, "
                   "checksums and cleanup stay in one place");
    } else if (t == "ofstream" || t == "ifstream" || t == "fstream") {
      c.Report("D5", c.toks[i].line,
               "direct file stream ('std::" + t +
                   "') in the engine — disk access belongs behind the "
                   "src/ooc seam (spill_file/state_file) so budgets, "
                   "checksums and cleanup stay in one place");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> rules = {
      {"D1", "no wall-clock reads outside common/wall_clock",
       "Reruns must be byte-identical (DESIGN.md §7): any system_clock /\n"
       "steady_clock / C time read that feeds results or reports makes\n"
       "output depend on when the run happened. All timing goes through\n"
       "the one sanctioned seam, vcmp::wallclock (common/wall_clock.h),\n"
       "or the simulated clock, so it can be faked, frozen and audited.\n"
       "Fix: call wallclock::NowNs()/SecondsSince(); if the read is\n"
       "provably result-neutral, annotate vcmp:lint-allow(D1, reason)."},
      {"D2", "no unseeded or global RNG",
       "std::random_device, rand()/srand() and default-constructed std\n"
       "engines draw entropy nobody chose, so reruns diverge. Every\n"
       "random stream must derive from the run's explicit seed.\n"
       "Fix: use vcmp::Rng (common/rng.h) and Fork() substreams; seed\n"
       "std engines explicitly from the run seed when interop demands."},
      {"D3", "no unordered-container iteration in output-feeding files",
       "Hash-table iteration order is implementation- and run-dependent\n"
       "(it varies with pointer values and rehash history). Iterating an\n"
       "unordered_map/set anywhere results or reports flow makes output\n"
       "order nondeterministic.\n"
       "Fix: iterate a sorted copy of the keys, or use an ordered\n"
       "container when iteration is the common operation."},
      {"D4", "no shared accumulation in ParallelFor without a "
             "deterministic-reduction annotation",
       "`shared += x` inside ParallelFor orders floating-point adds by\n"
       "thread schedule, so sums drift between runs. The sanctioned\n"
       "pattern is per-shard slots reduced serially after the join\n"
       "(DESIGN.md §9). Provably order-fixed reductions (integer adds,\n"
       "shard-owned slots) carry vcmp:deterministic-reduction(reason)."},
      {"C4", "no unsynchronized shared-state writes inside parallel "
             "regions",
       "Flow-aware race check over ParallelFor/ParallelForStealable\n"
       "bodies (including lambdas bound to locals and launcher wrappers\n"
       "that forward a body to the pool): a write to a ref-captured\n"
       "variable or a member field is flagged unless the write is\n"
       "shard-indexed (subscripted directly by a lambda parameter or a\n"
       "value derived from one), the target is std::atomic, a lock is\n"
       "taken in the body before the write, or the site carries\n"
       "vcmp:deterministic-reduction / vcmp:query-local / a C4 allow.\n"
       "This is the rule that catches the PR-6 bug class:\n"
       "  residual_per_machine_[m.target % machines] += bytes;\n"
       "inside ParallelForStealable — subscript not shard-disjoint."},
      {"C1", "no naked new/delete in engine hot paths",
       "Engine rounds must not allocate in steady state: naked new and\n"
       "delete hide ownership and fragment the hot path. Buffers belong\n"
       "in std::vector/unique_ptr owned by the engine and reused across\n"
       "rounds (DESIGN.md §11)."},
      {"C2", "no volatile-as-synchronization",
       "volatile neither orders memory nor makes accesses atomic; code\n"
       "using it to share state across ThreadPool workers is racy under\n"
       "TSan and the memory model. Use std::atomic or a mutex."},
      {"C3", "no mutable static/member scratch state in query compute "
             "paths without a query-local annotation",
       "Concurrent queries share engines, tasks and the out-of-core\n"
       "layer by const reference (DESIGN.md §14): a mutable member or a\n"
       "non-const static is a cross-query channel. Move scratch into the\n"
       "QueryContext, or annotate vcmp:query-local(reason) when one\n"
       "query provably drives the object at a time."},
      {"P1", "no AoS std::vector<Message> buffers in engine hot paths",
       "Message flow is the dominant cost in vertex-centric engines; the\n"
       "SoA MessageBlock (engine/message_block.h) keeps grouping and\n"
       "delivery column-oriented. An AoS std::vector<Message> in the\n"
       "engine regresses the layout contract (DESIGN.md §11)."},
      {"D5", "no direct file I/O in the engine outside the src/ooc seam",
       "Engine disk access goes through the src/ooc seam (spill_file /\n"
       "state_file) so byte budgets, checksums and cleanup stay in one\n"
       "place and out-of-core runs stay reproducible. Direct fopen /\n"
       "fstream in the engine bypasses all three."},
      {"D6", "no calls into functions that transitively reach "
             "nondeterminism",
       "Interprocedural taint over the whole-tree call graph: wall-clock\n"
       "reads, global/unseeded RNG, thread identity and unordered\n"
       "iteration taint the function containing them, and taint\n"
       "propagates callee -> caller through name-resolved call edges. A\n"
       "call site in result-producing code whose callee is tainted is\n"
       "flagged with the full witness chain down to the primitive.\n"
       "Two things kill taint: the sanctioned seam (functions defined in\n"
       "common/wall_clock.{h,cc}), and an in-source allow on the\n"
       "primitive's own line (its token rule or D6) — a reviewed\n"
       "exception does not poison its callers.\n"
       "Fix: route the primitive through the seam or a seeded Rng, or\n"
       "annotate the primitive's line with a reason."},
      {"D7", "no pointer-identity ordering (pointer-keyed maps, pointer "
             "comparisons, pointer hashing)",
       "Allocation addresses differ between runs, so any ordering or\n"
       "hashing derived from pointer values is nondeterministic even\n"
       "through std::map: pointer-keyed map/set keys, relational\n"
       "comparisons between pointers, reinterpret_cast to uintptr_t and\n"
       "std::hash over pointer types all order results by address.\n"
       "Fix: key and sort by stable ids (vertex id, machine index) —\n"
       "every vcmp object that needs ordering has one."},
      {"A1", "every lint annotation parses and carries a reason, and "
             "every allow matches a finding",
       "The annotation table is the repo's audited list of exceptions to\n"
       "the determinism contract; it only stays trustworthy if every\n"
       "entry parses, is justified, and still covers a real finding.\n"
       "Malformed and stale annotations are flagged and A1 is itself not\n"
       "suppressible."},
  };
  return rules;
}

bool RuleInScope(std::string_view rule, std::string_view path) {
  if (rule == "D1") {
    return !EndsWith(path, "common/wall_clock.h") &&
           !EndsWith(path, "common/wall_clock.cc");
  }
  if (rule == "D3") return !HasSegment(path, "common");
  if (rule == "C1" || rule == "P1" || rule == "D5") {
    return HasSegment(path, "engine");
  }
  if (rule == "C3") {
    // The directories concurrent queries execute through by const
    // reference (DESIGN.md section 14).
    return HasSegment(path, "engine") || HasSegment(path, "tasks") ||
           HasSegment(path, "ooc");
  }
  if (rule == "D6") {
    // Call sites are flagged where results and reports are produced or
    // transformed. common/ (pure utilities — but their *primitives*
    // still seed taint) and lint/ (a host-side tool) are out of scope,
    // as are bench/tools/tests, whose output is allowed to mention real
    // time.
    return HasSegment(path, "engine") || HasSegment(path, "tasks") ||
           HasSegment(path, "ooc") || HasSegment(path, "core") ||
           HasSegment(path, "service") || HasSegment(path, "sim") ||
           HasSegment(path, "graph") || HasSegment(path, "metrics") ||
           HasSegment(path, "obs");
  }
  return true;  // D2, D4, C2, C4, D7 (and A1) apply everywhere.
}

std::vector<TaintPrimitive> FindTaintPrimitives(
    const std::vector<Token>& tokens) {
  static const std::string kNoPath;
  const Cursor c{tokens, kNoPath, nullptr};  // Report() is never called.
  std::vector<TaintPrimitive> out;

  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!c.IsIdent(i)) continue;
    const std::string& t = tokens[i].text;
    // Wall-clock reads (D1's alphabet, without D1's path exemption —
    // the seam is excluded later, at the graph level, so its *callers*
    // stay clean while any other clock wrapper taints its callers).
    if (Contains(kClockTypes, t) || Contains(kClockCalls, t) ||
        (Contains(kClockCallsBare, t) && IsFreeCall(c, i))) {
      out.push_back({tokens[i].line, "wall-clock read '" + t + "'"});
      continue;
    }
    // Global / unseeded RNG (D2's alphabet).
    if (t == "random_device" ||
        (Contains(kRandCalls, t) && IsFreeCall(c, i))) {
      out.push_back({tokens[i].line, "nondeterministic RNG '" + t + "'"});
      continue;
    }
    if (Contains(kStdEngines, t)) {
      size_t j = i + 1;
      if (c.IsIdent(j)) ++j;
      const bool empty_braces = c.IsPunct(j, "{") && c.IsPunct(j + 1, "}");
      const bool empty_parens = c.IsPunct(j, "(") && c.IsPunct(j + 1, ")");
      const bool bare_decl = j == i + 2 && c.IsPunct(j, ";");
      if (empty_braces || empty_parens || bare_decl) {
        out.push_back({tokens[i].line, "unseeded engine 'std::" + t + "'"});
      }
      continue;
    }
    // Thread identity: schedule-dependent by definition.
    if ((t == "pthread_self" || t == "gettid") && IsFreeCall(c, i)) {
      out.push_back({tokens[i].line, "thread identity '" + t + "'"});
      continue;
    }
    if (t == "get_id" && i >= 2 && c.IsPunct(i - 1, "::") &&
        c.IsIdent(i - 2) && tokens[i - 2].text == "this_thread") {
      out.push_back(
          {tokens[i].line, "thread identity 'std::this_thread::get_id'"});
      continue;
    }
  }

  // Unordered-container iteration (D3's detection core, no path
  // exemption).
  std::vector<std::pair<int, std::string>> iterations;
  CollectUnorderedIterations(c, &iterations);
  for (const auto& [line, name] : iterations) {
    out.push_back({line, "unordered iteration over '" + name + "'"});
  }

  std::sort(out.begin(), out.end(),
            [](const TaintPrimitive& a, const TaintPrimitive& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.what < b.what;
            });
  return out;
}

void CheckTokens(const std::string& path, const std::vector<Token>& tokens,
                 std::vector<Finding>* out) {
  Cursor c{tokens, path, out};
  if (RuleInScope("D1", path)) CheckD1(c);
  if (RuleInScope("D2", path)) CheckD2(c);
  if (RuleInScope("D3", path)) CheckD3(c);
  if (RuleInScope("D4", path)) CheckD4(c);
  if (RuleInScope("C1", path)) CheckC1(c);
  if (RuleInScope("C2", path)) CheckC2(c);
  if (RuleInScope("C3", path)) CheckC3(c);
  if (RuleInScope("P1", path)) CheckP1(c);
  if (RuleInScope("D5", path)) CheckD5(c);
  std::sort(out->begin(), out->end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

}  // namespace lint
}  // namespace vcmp
