#include "lint/callgraph.h"

#include <algorithm>
#include <deque>

#include "lint/rules.h"
#include "metrics/export.h"

namespace vcmp {
namespace lint {
namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

bool IsWallClockSeam(const std::string& path) {
  return EndsWith(path, "common/wall_clock.h") ||
         EndsWith(path, "common/wall_clock.cc");
}

CallGraph CallGraph::Build(const std::vector<ParsedFile>& files) {
  CallGraph graph;
  graph.index_ = FunctionIndex::Build(files);
  graph.offsets_.resize(files.size() + 1, 0);
  for (size_t f = 0; f < files.size(); ++f) {
    graph.offsets_[f + 1] = graph.offsets_[f] + files[f].functions.size();
  }
  graph.nodes_.resize(graph.offsets_.back());

  for (size_t f = 0; f < files.size(); ++f) {
    for (const CallSiteInfo& call : files[f].calls) {
      if (call.enclosing_function < 0) continue;
      const FunctionRef caller{static_cast<int>(f), call.enclosing_function};
      const std::vector<FunctionRef>* targets =
          graph.index_.Lookup(call.callee);
      if (targets == nullptr) continue;
      for (const FunctionRef& callee : *targets) {
        if (callee == caller) continue;  // Self-recursion adds nothing.
        Node& callee_node = graph.NodeFor(callee);
        // Dedupe parallel edges (same caller calling the callee twice).
        if (std::find(callee_node.callers.begin(), callee_node.callers.end(),
                      caller) != callee_node.callers.end()) {
          continue;
        }
        callee_node.callers.push_back(caller);
        graph.NodeFor(caller).callees.push_back(callee);
        ++graph.num_edges_;
      }
    }
  }
  return graph;
}

void CallGraph::ComputeTaint(const std::vector<ParsedFile>& files,
                             const TaintOptions& options) {
  std::deque<FunctionRef> worklist;
  for (size_t f = 0; f < files.size(); ++f) {
    if (IsWallClockSeam(files[f].path)) continue;  // The sanctioned seam.
    if (f >= options.primitives.size()) continue;
    // Primitives are attributed to the function whose body covers their
    // line; primitives outside any parsed function (file-scope
    // initializers) cannot seed the graph.
    for (const TaintPrimitive& primitive : options.primitives[f]) {
      if (f < options.killed_lines.size() &&
          options.killed_lines[f].count(primitive.line) != 0) {
        continue;  // Blessed in source: a reviewed exception.
      }
      const int fn = EnclosingFunction(files[f], primitive.line);
      if (fn < 0) continue;
      const FunctionRef ref{static_cast<int>(f), fn};
      Node& node = NodeFor(ref);
      if (node.tainted) continue;
      node.tainted = true;
      node.seed = true;
      node.primitive = primitive.what + " (" + files[f].path + ":" +
                       std::to_string(primitive.line) + ")";
      worklist.push_back(ref);
    }
  }

  while (!worklist.empty()) {
    const FunctionRef ref = worklist.front();
    worklist.pop_front();
    for (const FunctionRef& caller : NodeFor(ref).callers) {
      Node& node = NodeFor(caller);
      if (node.tainted) continue;
      if (IsWallClockSeam(files[caller.file].path)) continue;
      node.tainted = true;
      node.tainted_via = ref;
      worklist.push_back(caller);
    }
  }

  num_tainted_ = 0;
  for (const Node& node : nodes_) num_tainted_ += node.tainted ? 1 : 0;
}

bool CallGraph::IsTainted(FunctionRef ref) const {
  return NodeFor(ref).tainted;
}

std::string CallGraph::TaintChain(const std::vector<ParsedFile>& files,
                                  FunctionRef ref) const {
  if (!IsTainted(ref)) return "";
  std::string chain;
  FunctionRef at = ref;
  // The chain is acyclic by construction (tainted_via points at the
  // function that was tainted first), but cap it defensively.
  for (int hops = 0; hops < 64; ++hops) {
    const Node& node = NodeFor(at);
    const FunctionInfo& info = index_.Info(files, at);
    if (!chain.empty()) chain += " -> ";
    chain += info.class_name.empty() ? info.name
                                     : info.class_name + "::" + info.name;
    if (node.seed) {
      chain += " -> " + node.primitive;
      break;
    }
    at = node.tainted_via;
  }
  return chain;
}

std::string CallGraph::ToJson(const std::vector<ParsedFile>& files) const {
  std::string functions = "[";
  bool first = true;
  for (size_t f = 0; f < files.size(); ++f) {
    for (size_t i = 0; i < files[f].functions.size(); ++i) {
      const FunctionRef ref{static_cast<int>(f), static_cast<int>(i)};
      const FunctionInfo& info = files[f].functions[i];
      const Node& node = NodeFor(ref);
      JsonWriter item(/*with_schema_version=*/false);
      item.Field("name", info.class_name.empty()
                             ? info.name
                             : info.class_name + "::" + info.name);
      item.Field("file", files[f].path);
      item.Field("line", static_cast<uint64_t>(info.line));
      std::string calls = "[";
      for (size_t e = 0; e < node.callees.size(); ++e) {
        const FunctionInfo& callee = index_.Info(files, node.callees[e]);
        if (e != 0) calls += ",";
        calls += "\"" +
                 (callee.class_name.empty()
                      ? callee.name
                      : callee.class_name + "::" + callee.name) +
                 "\"";
      }
      calls += "]";
      item.RawField("calls", calls);
      item.Field("tainted", node.tainted);
      if (node.tainted) item.Field("taint_chain", TaintChain(files, ref));
      if (!first) functions += ",";
      first = false;
      functions += item.Close();
    }
  }
  functions += "]";

  JsonWriter json(/*with_schema_version=*/false);
  json.Field("schema_version", static_cast<uint64_t>(3));
  json.Field("tool", "vcmp_lint --callgraph");
  json.Field("function_count",
             static_cast<uint64_t>(index_.NumFunctions()));
  json.Field("edge_count", static_cast<uint64_t>(num_edges_));
  json.Field("tainted_count", static_cast<uint64_t>(num_tainted_));
  json.RawField("functions", functions);
  return json.Close();
}

}  // namespace lint
}  // namespace vcmp
