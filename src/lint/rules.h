#ifndef VCMP_LINT_RULES_H_
#define VCMP_LINT_RULES_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace vcmp {
namespace lint {

/// One diagnostic. `file` is the path the analyzer was given (forward
/// slashes); findings print as `file:line: RULE: message`.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  /// Suppressed by a vcmp:lint-allow / deterministic-reduction
  /// annotation; `allow_reason` carries its justification.
  bool allowed = false;
  std::string allow_reason;
  /// Matched an entry of the checked-in baseline file (legacy debt that
  /// is visible but does not fail the build).
  bool baselined = false;
};

struct RuleInfo {
  const char* id;
  const char* summary;
  /// Longer rationale + remediation text printed by `vcmp_lint --explain`.
  const char* detail;
};

/// The rule set, in report order. D* rules guard determinism (byte-
/// identical reruns, DESIGN.md §7/§9); C* rules guard the concurrency
/// contract; P* rules guard the engine data-layout/perf contract
/// (DESIGN.md §11); A1 keeps the annotation mechanism itself honest.
const std::vector<RuleInfo>& AllRules();

/// True when `rule` applies to `path` (forward-slash separated, relative
/// or absolute). Scoping is purely path-based:
///  - D1 everywhere except the sanctioned seam common/wall_clock.{h,cc};
///  - D2, D4, C2 everywhere;
///  - D3 everywhere except src/common/ (pure utilities — every other
///    directory feeds reports, traces, or message delivery);
///  - C1 and P1 only under engine/ (the hot paths).
bool RuleInScope(std::string_view rule, std::string_view path);

/// Runs every in-scope rule over one file's token stream, appending raw
/// findings (no annotation/baseline processing — the analyzer does that).
void CheckTokens(const std::string& path, const std::vector<Token>& tokens,
                 std::vector<Finding>* out);

/// One nondeterminism source found in a token stream — the seed material
/// for the interprocedural taint analysis (rule D6, callgraph.h). These
/// are the primitives the token rules police (wall clock, global/unseeded
/// RNG, thread identity, unordered iteration), found with NO path
/// scoping: a D3-exempt utility file still seeds taint, because its
/// callers in result-producing code inherit the nondeterminism.
struct TaintPrimitive {
  int line = 0;
  std::string what;  // e.g. "std::random_device", "unordered iteration
                     // over 'cache_'", "std::this_thread::get_id".
};

std::vector<TaintPrimitive> FindTaintPrimitives(
    const std::vector<Token>& tokens);

}  // namespace lint
}  // namespace vcmp

#endif  // VCMP_LINT_RULES_H_
