#include "lint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/string_util.h"
#include "metrics/export.h"

namespace vcmp {
namespace lint {
namespace {

bool LintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".hpp" || ext == ".cpp";
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string FindingKey(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ":" + f.rule;
}

/// Lints one file's content; applies annotations; emits A1 findings for
/// malformed or stale annotations.
void AnalyzeOne(const std::string& path, const std::string& content,
                LintReport* report) {
  LexResult lex = Lex(content);
  // Annotations naming an unknown rule (e.g. the literal "RULE" in doc
  // comments showing the grammar) are documentation, not suppressions.
  // A typo'd rule id therefore suppresses nothing — the finding it meant
  // to cover stays open, which is the failure mode that gets noticed.
  auto known_rule = [](const std::string& r) {
    for (const RuleInfo& info : AllRules()) {
      if (r == info.id) return true;
    }
    return false;
  };
  std::erase_if(lex.annotations, [&](const Annotation& a) {
    return !a.deterministic_reduction && !known_rule(a.rule) &&
           !(a.malformed && a.rule.empty());
  });
  std::vector<Finding> findings;
  CheckTokens(path, lex.tokens, &findings);

  for (Finding& f : findings) {
    for (Annotation& a : lex.annotations) {
      if (a.malformed || a.rule != f.rule) continue;
      if (a.covered_line != f.line) continue;
      f.allowed = true;
      f.allow_reason = a.reason;
      a.used = true;
      break;
    }
  }

  // Annotation hygiene (A1): unparseable/reason-free annotations, and
  // allows that no longer match a finding (stale suppressions rot the
  // exception table). A1 is deliberately not suppressible.
  for (const Annotation& a : lex.annotations) {
    if (a.malformed) {
      Finding f;
      f.file = path;
      f.line = a.line;
      f.rule = "A1";
      f.message =
          "malformed lint annotation — expected vcmp:lint-allow(RULE, "
          "reason) or vcmp:deterministic-reduction(reason) with a "
          "non-empty reason";
      findings.push_back(std::move(f));
    } else if (!a.used) {
      Finding f;
      f.file = path;
      f.line = a.line;
      f.rule = "A1";
      f.message = "stale '" + a.rule +
                  "' annotation: no finding on the covered line — remove "
                  "it or move it next to the code it justifies";
      findings.push_back(std::move(f));
    }
    report->allows.push_back(AllowRecord{path, a.line, a.rule, a.reason,
                                         a.deterministic_reduction, a.used});
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& x, const Finding& y) {
              if (x.line != y.line) return x.line < y.line;
              return x.rule < y.rule;
            });
  report->findings.insert(report->findings.end(), findings.begin(),
                          findings.end());
  report->files_scanned += 1;
}

}  // namespace

int LintReport::UnsuppressedCount() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.allowed && !f.baselined) ++n;
  }
  return n;
}

LintReport AnalyzeSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const AnalyzerOptions& options) {
  LintReport report;
  for (const auto& [path, content] : sources) {
    AnalyzeOne(path, content, &report);
  }
  const std::set<std::string> baseline(options.baseline.begin(),
                                       options.baseline.end());
  for (Finding& f : report.findings) {
    if (!f.allowed && baseline.count(FindingKey(f)) != 0) {
      f.baselined = true;
    }
  }
  return report;
}

Result<LintReport> AnalyzePaths(const std::vector<std::string>& paths,
                                const AnalyzerOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && LintableExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(fs::path(path).generic_string());
    } else {
      return Status::NotFound("no such file or directory: '" + path + "'");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    auto content = ReadFile(file);
    if (!content.ok()) return content.status();
    sources.emplace_back(file, std::move(content).value());
  }
  return AnalyzeSources(sources, options);
}

Result<std::vector<std::string>> LoadBaseline(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  std::vector<std::string> entries;
  for (std::string& line : SplitString(content.value(), "\n")) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back()))) {
      line.pop_back();
    }
    if (!line.empty()) entries.push_back(line);
  }
  return entries;
}

std::string FormatText(const LintReport& report) {
  std::ostringstream out;
  int allowed = 0;
  int baselined = 0;
  for (const Finding& f : report.findings) {
    if (f.allowed) {
      ++allowed;
      continue;
    }
    if (f.baselined) {
      ++baselined;
      continue;
    }
    out << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
        << "\n";
  }
  if (!report.allows.empty()) {
    out << "\nlint-allow annotations (" << report.allows.size() << "):\n";
    for (const AllowRecord& a : report.allows) {
      out << "  " << a.file << ":" << a.line << "  " << a.rule
          << (a.deterministic_reduction ? " (reduction)" : "") << "  "
          << a.reason << (a.used ? "" : "  [STALE]") << "\n";
    }
  }
  const int open = report.UnsuppressedCount();
  out << "\nvcmp_lint: " << report.files_scanned << " files, "
      << report.findings.size() << " findings (" << open << " open, "
      << allowed << " allowed, " << baselined << " baselined)\n";
  return out.str();
}

std::string ToJson(const LintReport& report) {
  int allowed = 0;
  int baselined = 0;
  std::string findings = "[";
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (f.allowed) ++allowed;
    if (f.baselined) ++baselined;
    JsonWriter item(/*with_schema_version=*/false);
    item.Field("file", f.file);
    item.Field("line", static_cast<uint64_t>(f.line));
    item.Field("rule", f.rule);
    item.Field("message", f.message);
    item.Field("status", f.allowed     ? "allowed"
                         : f.baselined ? "baselined"
                                       : "open");
    if (f.allowed) item.Field("reason", f.allow_reason);
    if (i != 0) findings += ",";
    findings += item.Close();
  }
  findings += "]";

  std::string allows = "[";
  for (size_t i = 0; i < report.allows.size(); ++i) {
    const AllowRecord& a = report.allows[i];
    JsonWriter item(/*with_schema_version=*/false);
    item.Field("file", a.file);
    item.Field("line", static_cast<uint64_t>(a.line));
    item.Field("rule", a.rule);
    item.Field("reason", a.reason);
    item.Field("deterministic_reduction", a.deterministic_reduction);
    item.Field("used", a.used);
    if (i != 0) allows += ",";
    allows += item.Close();
  }
  allows += "]";

  JsonWriter json;
  json.Field("tool", "vcmp_lint");
  json.Field("files_scanned", static_cast<uint64_t>(report.files_scanned));
  json.Field("finding_count",
             static_cast<uint64_t>(report.findings.size()));
  json.Field("open_count",
             static_cast<uint64_t>(report.UnsuppressedCount()));
  json.Field("allowed_count", static_cast<uint64_t>(allowed));
  json.Field("baselined_count", static_cast<uint64_t>(baselined));
  json.RawField("findings", findings);
  json.RawField("allows", allows);
  return json.Close();
}

std::string ToBaseline(const LintReport& report) {
  std::string out =
      "# vcmp_lint baseline: findings listed here are known legacy debt.\n"
      "# One `file:line:RULE` per line; regenerate with --write-baseline.\n";
  for (const Finding& f : report.findings) {
    if (!f.allowed && !f.baselined) out += FindingKey(f) + "\n";
  }
  return out;
}

}  // namespace lint
}  // namespace vcmp
