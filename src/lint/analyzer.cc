#include "lint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/string_util.h"
#include "lint/callgraph.h"
#include "lint/dataflow.h"
#include "lint/parser.h"
#include "lint/symbols.h"
#include "metrics/export.h"

namespace vcmp {
namespace lint {
namespace {

/// The lint JSON report's own schema version (independent of the shared
/// vcmp export schema): v3 added C4/D6/D7 and the call-graph stats.
constexpr uint64_t kLintSchemaVersion = 3;

bool LintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".hpp" || ext == ".cpp";
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string FindingKey(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ":" + f.rule;
}

/// Per-file intermediate state for the two-pass analysis: pass 1 lexes,
/// parses and runs the per-file rules; pass 2 builds the whole-tree
/// call graph, propagates D6 taint across files, then applies
/// annotations and hygiene per file.
struct FileAnalysis {
  std::string path;
  LexResult lex;
  ParsedFile parsed;
  std::vector<TaintPrimitive> primitives;
  std::vector<Finding> findings;
};

/// An annotation suppresses a finding on its covered line with the same
/// rule, plus two deliberate cross-matches: the parallel-region
/// annotations also bless the flow-aware race rule on the same site —
/// vcmp:deterministic-reduction (rule D4) and vcmp:query-local (rule
/// C3) both imply C4, so a site blessed under the old token rule does
/// not need a second annotation for the stronger analysis.
bool AnnotationMatches(const Annotation& a, const Finding& f) {
  if (a.covered_line != f.line) return false;
  if (a.rule == f.rule) return true;
  if (f.rule == "C4" && (a.rule == "D4" || a.rule == "C3")) return true;
  return false;
}

void AnalyzeFilePass1(FileAnalysis* fa) {
  // Annotations naming an unknown rule (e.g. the literal "RULE" in doc
  // comments showing the grammar) are documentation, not suppressions.
  // A typo'd rule id therefore suppresses nothing — the finding it meant
  // to cover stays open, which is the failure mode that gets noticed.
  auto known_rule = [](const std::string& r) {
    for (const RuleInfo& info : AllRules()) {
      if (r == info.id) return true;
    }
    return false;
  };
  std::erase_if(fa->lex.annotations, [&](const Annotation& a) {
    return !a.deterministic_reduction && !known_rule(a.rule) &&
           !(a.malformed && a.rule.empty());
  });
  fa->parsed = Parse(fa->path, fa->lex.tokens);
  fa->primitives = FindTaintPrimitives(fa->lex.tokens);
  CheckTokens(fa->path, fa->lex.tokens, &fa->findings);
  CheckFlow(fa->path, fa->lex.tokens, fa->parsed, &fa->findings);
}

/// Applies annotations to one file's findings, then emits A1 hygiene
/// findings, sorts, and folds into the report.
void FinishFile(FileAnalysis* fa, LintReport* report) {
  std::vector<Finding>& findings = fa->findings;
  for (Finding& f : findings) {
    for (Annotation& a : fa->lex.annotations) {
      if (a.malformed || !AnnotationMatches(a, f)) continue;
      f.allowed = true;
      f.allow_reason = a.reason;
      a.used = true;
      break;
    }
  }

  // Annotation hygiene (A1): unparseable/reason-free annotations, and
  // allows that no longer match a finding (stale suppressions rot the
  // exception table). A1 is deliberately not suppressible.
  for (const Annotation& a : fa->lex.annotations) {
    if (a.malformed) {
      Finding f;
      f.file = fa->path;
      f.line = a.line;
      f.rule = "A1";
      f.message =
          "malformed lint annotation — expected vcmp:lint-allow(RULE, "
          "reason) or vcmp:deterministic-reduction(reason) with a "
          "non-empty reason";
      findings.push_back(std::move(f));
    } else if (!a.used) {
      Finding f;
      f.file = fa->path;
      f.line = a.line;
      f.rule = "A1";
      f.message = "stale '" + a.rule +
                  "' annotation: no finding on the covered line — remove "
                  "it or move it next to the code it justifies";
      findings.push_back(std::move(f));
    }
    report->allows.push_back(AllowRecord{fa->path, a.line, a.rule, a.reason,
                                         a.deterministic_reduction, a.used});
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& x, const Finding& y) {
              if (x.line != y.line) return x.line < y.line;
              return x.rule < y.rule;
            });
  report->findings.insert(report->findings.end(), findings.begin(),
                          findings.end());
  report->files_scanned += 1;
}

/// Pass-1 analyzes every source, then runs the cross-file model: call
/// graph, D6 taint (annotations on a primitive's line kill its seed —
/// and killing a seed counts as the annotation being used), and D6 call
/// site findings with a witness chain.
std::vector<FileAnalysis> RunPasses(
    const std::vector<std::pair<std::string, std::string>>& sources,
    CallGraph* graph_out) {
  std::vector<FileAnalysis> files(sources.size());
  std::vector<ParsedFile> parsed;
  parsed.reserve(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    files[i].path = sources[i].first;
    files[i].lex = Lex(sources[i].second);
    AnalyzeFilePass1(&files[i]);
    parsed.push_back(files[i].parsed);
  }

  CallGraph graph = CallGraph::Build(parsed);
  CallGraph::TaintOptions taint;
  taint.primitives.resize(files.size());
  taint.killed_lines.resize(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    taint.primitives[i] = files[i].primitives;
    for (const TaintPrimitive& p : files[i].primitives) {
      for (Annotation& a : files[i].lex.annotations) {
        if (a.malformed || a.covered_line != p.line) continue;
        if (a.rule == "D1" || a.rule == "D2" || a.rule == "D3" ||
            a.rule == "D6") {
          taint.killed_lines[i].insert(p.line);
          a.used = true;  // A reviewed seed exception is a live allow.
        }
      }
    }
  }
  graph.ComputeTaint(parsed, taint);

  for (size_t i = 0; i < files.size(); ++i) {
    if (!RuleInScope("D6", files[i].path)) continue;
    std::set<std::pair<int, std::string>> seen;
    for (const CallSiteInfo& call : files[i].parsed.calls) {
      const std::vector<FunctionRef>* targets =
          graph.index().Lookup(call.callee);
      if (targets == nullptr) continue;
      const FunctionRef* tainted = nullptr;
      for (const FunctionRef& t : *targets) {
        if (graph.IsTainted(t)) {
          tainted = &t;
          break;
        }
      }
      if (tainted == nullptr) continue;
      if (!seen.insert({call.line, call.callee}).second) continue;
      Finding f;
      f.file = files[i].path;
      f.line = call.line;
      f.rule = "D6";
      f.message = "call to '" + call.callee +
                  "' transitively reaches nondeterminism: " +
                  graph.TaintChain(parsed, *tainted) +
                  " — route it through the sanctioned seam or a seeded "
                  "Rng, or annotate the primitive's line";
      files[i].findings.push_back(std::move(f));
    }
  }

  *graph_out = std::move(graph);
  return files;
}

}  // namespace

int LintReport::UnsuppressedCount() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.allowed && !f.baselined) ++n;
  }
  return n;
}

LintReport AnalyzeSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const AnalyzerOptions& options) {
  LintReport report;
  CallGraph graph;
  std::vector<FileAnalysis> files = RunPasses(sources, &graph);
  for (FileAnalysis& fa : files) {
    FinishFile(&fa, &report);
  }
  report.functions_indexed = static_cast<int>(graph.index().NumFunctions());
  report.call_edges = static_cast<int>(graph.num_edges());
  report.tainted_functions = static_cast<int>(graph.num_tainted());
  const std::set<std::string> baseline(options.baseline.begin(),
                                       options.baseline.end());
  for (Finding& f : report.findings) {
    if (!f.allowed && baseline.count(FindingKey(f)) != 0) {
      f.baselined = true;
    }
  }
  return report;
}

namespace {

/// Fixture corpora (tests/lint_fixtures/) deliberately contain
/// violations; directory walks skip them so repo-wide runs stay clean.
/// A fixture passed as an explicit file path still lints.
bool InFixtureDir(const std::filesystem::path& p) {
  for (const auto& part : p) {
    if (part.string() == "lint_fixtures") return true;
  }
  return false;
}

Result<std::vector<std::pair<std::string, std::string>>> CollectSources(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && LintableExtension(it->path()) &&
            !InFixtureDir(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(fs::path(path).generic_string());
    } else {
      return Status::NotFound("no such file or directory: '" + path + "'");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    auto content = ReadFile(file);
    if (!content.ok()) return content.status();
    sources.emplace_back(file, std::move(content).value());
  }
  return sources;
}

}  // namespace

Result<LintReport> AnalyzePaths(const std::vector<std::string>& paths,
                                const AnalyzerOptions& options) {
  auto sources = CollectSources(paths);
  if (!sources.ok()) return sources.status();
  return AnalyzeSources(sources.value(), options);
}

Result<std::string> CallGraphJson(const std::vector<std::string>& paths) {
  auto sources = CollectSources(paths);
  if (!sources.ok()) return sources.status();
  CallGraph graph;
  std::vector<FileAnalysis> files = RunPasses(sources.value(), &graph);
  std::vector<ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const FileAnalysis& fa : files) parsed.push_back(fa.parsed);
  return graph.ToJson(parsed);
}

Result<std::vector<std::string>> LoadBaseline(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  std::vector<std::string> entries;
  for (std::string& line : SplitString(content.value(), "\n")) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back()))) {
      line.pop_back();
    }
    if (!line.empty()) entries.push_back(line);
  }
  return entries;
}

std::string FormatText(const LintReport& report) {
  std::ostringstream out;
  int allowed = 0;
  int baselined = 0;
  for (const Finding& f : report.findings) {
    if (f.allowed) {
      ++allowed;
      continue;
    }
    if (f.baselined) {
      ++baselined;
      continue;
    }
    out << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
        << "\n";
  }
  if (!report.allows.empty()) {
    out << "\nlint-allow annotations (" << report.allows.size() << "):\n";
    for (const AllowRecord& a : report.allows) {
      out << "  " << a.file << ":" << a.line << "  " << a.rule
          << (a.deterministic_reduction ? " (reduction)" : "") << "  "
          << a.reason << (a.used ? "" : "  [STALE]") << "\n";
    }
  }
  const int open = report.UnsuppressedCount();
  out << "\nvcmp_lint: " << report.files_scanned << " files, "
      << report.functions_indexed << " functions, " << report.call_edges
      << " call edges (" << report.tainted_functions << " tainted), "
      << report.findings.size() << " findings (" << open << " open, "
      << allowed << " allowed, " << baselined << " baselined)\n";
  return out.str();
}

std::string ToJson(const LintReport& report) {
  int allowed = 0;
  int baselined = 0;
  std::string findings = "[";
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (f.allowed) ++allowed;
    if (f.baselined) ++baselined;
    JsonWriter item(/*with_schema_version=*/false);
    item.Field("file", f.file);
    item.Field("line", static_cast<uint64_t>(f.line));
    item.Field("rule", f.rule);
    item.Field("message", f.message);
    item.Field("status", f.allowed     ? "allowed"
                         : f.baselined ? "baselined"
                                       : "open");
    if (f.allowed) item.Field("reason", f.allow_reason);
    if (i != 0) findings += ",";
    findings += item.Close();
  }
  findings += "]";

  std::string allows = "[";
  for (size_t i = 0; i < report.allows.size(); ++i) {
    const AllowRecord& a = report.allows[i];
    JsonWriter item(/*with_schema_version=*/false);
    item.Field("file", a.file);
    item.Field("line", static_cast<uint64_t>(a.line));
    item.Field("rule", a.rule);
    item.Field("reason", a.reason);
    item.Field("deterministic_reduction", a.deterministic_reduction);
    item.Field("used", a.used);
    if (i != 0) allows += ",";
    allows += item.Close();
  }
  allows += "]";

  JsonWriter json(/*with_schema_version=*/false);
  json.Field("schema_version", kLintSchemaVersion);
  json.Field("tool", "vcmp_lint");
  json.Field("files_scanned", static_cast<uint64_t>(report.files_scanned));
  json.Field("functions_indexed",
             static_cast<uint64_t>(report.functions_indexed));
  json.Field("call_edges", static_cast<uint64_t>(report.call_edges));
  json.Field("tainted_functions",
             static_cast<uint64_t>(report.tainted_functions));
  json.Field("finding_count",
             static_cast<uint64_t>(report.findings.size()));
  json.Field("open_count",
             static_cast<uint64_t>(report.UnsuppressedCount()));
  json.Field("allowed_count", static_cast<uint64_t>(allowed));
  json.Field("baselined_count", static_cast<uint64_t>(baselined));
  json.RawField("findings", findings);
  json.RawField("allows", allows);
  return json.Close();
}

std::string ToBaseline(const LintReport& report) {
  std::string out =
      "# vcmp_lint baseline: findings listed here are known legacy debt.\n"
      "# One `file:line:RULE` per line; regenerate with --write-baseline.\n";
  for (const Finding& f : report.findings) {
    if (!f.allowed && !f.baselined) out += FindingKey(f) + "\n";
  }
  return out;
}

}  // namespace lint
}  // namespace vcmp
