#include "sim/monetary_model.h"

#include <cmath>

#include "common/string_util.h"
#include "common/units.h"

namespace vcmp {

double MonetaryModel::ClusterRatePerSecond(const ClusterSpec& cluster) const {
  const MachineSpec& m = cluster.machine;
  double per_machine_hour =
      params_.credits_per_core_hour * m.cores +
      params_.credits_per_gib_hour * BytesToGiB(m.memory_bytes) +
      params_.credits_per_disk_hour;
  return per_machine_hour * cluster.num_machines / 3600.0;
}

double MonetaryModel::Cost(const ClusterSpec& cluster, double seconds,
                           bool overloaded,
                           double overload_cutoff_seconds) const {
  double billed = overloaded ? overload_cutoff_seconds : seconds;
  return ClusterRatePerSecond(cluster) * billed;
}

std::string MonetaryModel::Format(double credits, bool lower_bound) {
  return StrFormat("%s$%.0f", lower_bound ? ">" : "", std::ceil(credits));
}

}  // namespace vcmp
