#ifndef VCMP_SIM_SIM_CLOCK_H_
#define VCMP_SIM_SIM_CLOCK_H_

#include <limits>

namespace vcmp {

/// The discrete-event simulated clock of the serving layer.
///
/// All service-level timing (arrivals, queueing, batch execution, residual
/// drain) is expressed in simulated seconds on this clock — never in wall
/// time — which is what makes serving runs bit-reproducible: the same
/// seeds produce the same event sequence on any machine. The clock only
/// moves forward; Horizon() is the +inf sentinel used for "no pending
/// event".
class SimClock {
 public:
  static constexpr double Horizon() {
    return std::numeric_limits<double>::infinity();
  }

  double now() const { return now_; }

  /// Advances to `t`. Earlier times are clamped (re-delivering an event
  /// at the current instant is legal; travelling backwards is not).
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }

  void AdvanceBy(double dt) {
    if (dt > 0.0) now_ += dt;
  }

 private:
  double now_ = 0.0;
};

}  // namespace vcmp

#endif  // VCMP_SIM_SIM_CLOCK_H_
