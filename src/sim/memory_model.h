#ifndef VCMP_SIM_MEMORY_MODEL_H_
#define VCMP_SIM_MEMORY_MODEL_H_

#include "sim/cluster_spec.h"
#include "sim/round_load.h"

namespace vcmp {

/// Memory pressure of one machine during one round.
struct MemoryAssessment {
  /// Total resident bytes demanded this round.
  double demand_bytes = 0.0;
  /// Multiplier (>= 1) applied to the round's time: 1 while comfortably
  /// inside usable memory, rising once demand approaches / exceeds it
  /// (virtual-memory thrashing), per Section 4.3.
  double thrash_multiplier = 1.0;
  /// Demand exceeded physical memory: the paper's Overflow -> Overload.
  bool overflow = false;
};

/// Models per-machine memory consumption and the latency penalty of
/// exceeding it (the memory-bound state of Fig. 11).
///
/// demand = state + in-memory message buffers (scaled by the system's
/// object overhead) + residual memory of this and earlier batches.
/// Out-of-core systems cap the buffered-message contribution at their
/// budget — the excess goes to the disk model instead.
class MemoryModel {
 public:
  struct Params {
    /// Demand below thrash_onset_fraction * usable costs nothing.
    double thrash_onset_fraction = 0.8;
    /// Quadratic penalty coefficient: multiplier at demand == physical
    /// memory is 1 + thrash_coefficient.
    double thrash_coefficient = 5.0;
  };

  MemoryModel() = default;
  explicit MemoryModel(const Params& params) : params_(params) {}

  /// Assesses one machine's round. `message_memory_overhead` is the
  /// system's in-memory bytes-per-serialized-byte factor (Java object
  /// overhead etc.). `ooc_budget_bytes` > 0 caps buffered messages (the
  /// GraphD mechanism); 0 means fully in-memory.
  MemoryAssessment Assess(const MachineRoundLoad& load,
                          const MachineSpec& machine,
                          double message_memory_overhead,
                          double ooc_budget_bytes) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace vcmp

#endif  // VCMP_SIM_MEMORY_MODEL_H_
