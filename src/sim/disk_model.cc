#include "sim/disk_model.h"

#include <algorithm>
#include <cmath>

namespace vcmp {
namespace {

// Average in-flight writes per unit utilisation when the disk keeps up;
// set so an unsaturated out-of-core round shows a ~20-entry queue at ~27%
// utilisation, the regime of the paper's Table 3.
constexpr double kUnsaturatedQueueScale = 72.0;

}  // namespace

DiskAssessment DiskModel::Assess(double spill_bytes,
                                 double resident_message_bytes,
                                 double edge_stream_bytes,
                                 const MachineSpec& machine,
                                 double compute_seconds) const {
  DiskAssessment out;
  // Spilled messages are written this round and streamed back next round
  // (both directions charged here); resident messages incur the
  // write-behind share; the edge partition streams once per round.
  out.io_bytes = edge_stream_bytes + 2.0 * spill_bytes +
                 params_.write_through_fraction * resident_message_bytes;
  if (out.io_bytes <= 0.0) return out;
  out.io_seconds = out.io_bytes / machine.disk_bandwidth;

  const double window = params_.overlap_fraction * compute_seconds;
  if (out.io_seconds > window) {
    // Disk-bound: producers outpace the disk. A backlog queue forms and
    // the machine stalls for the un-hidden I/O, amplified by contention.
    double backlog_seconds = out.io_seconds - window;
    out.overuse_seconds = backlog_seconds;
    out.queue_length =
        backlog_seconds * machine.disk_bandwidth / params_.queue_entry_bytes;
    // Deep queues serve entries slower (queue management + seeks), so the
    // stall grows super-linearly with the backlog — this is why a single
    // Full-Parallelism batch is dramatically worse than a few batches
    // each staying near the saturation point.
    out.stall_seconds =
        params_.saturation_penalty * backlog_seconds *
        (1.0 + params_.queue_depth_coefficient * std::sqrt(out.queue_length));
    out.utilization = 1.0;
  } else {
    // Fully hidden behind compute: the disk is busy io_seconds out of the
    // round, with only the in-flight buffer queued. Little's law with the
    // per-entry service time gives an average queue proportional to the
    // utilisation.
    out.utilization = out.io_seconds / std::max(compute_seconds, 1e-9);
    out.queue_length = out.utilization * kUnsaturatedQueueScale;
  }
  return out;
}

}  // namespace vcmp
