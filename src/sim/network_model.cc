#include "sim/network_model.h"

#include <algorithm>

namespace vcmp {

NetworkAssessment NetworkModel::Assess(const MachineRoundLoad& load,
                                       const MachineSpec& machine,
                                       double compute_seconds) const {
  NetworkAssessment out;
  double direction_bytes =
      std::max(load.cross_bytes_in, load.cross_bytes_out);
  out.transfer_seconds = direction_bytes / machine.network_bandwidth;
  // Traffic that fits inside the overlap window rides along with compute;
  // the remainder is a post-compute flush at full line rate.
  double window = params_.overlap_fraction * compute_seconds;
  out.overuse_seconds = std::max(0.0, out.transfer_seconds - window);
  return out;
}

}  // namespace vcmp
