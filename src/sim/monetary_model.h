#ifndef VCMP_SIM_MONETARY_MODEL_H_
#define VCMP_SIM_MONETARY_MODEL_H_

#include <string>

#include "sim/cluster_spec.h"

namespace vcmp {

/// Cloud billing model of Section 4.6: "the cost per-unit-time is
/// determined by collectively considering the disk cost, memory cost, and
/// CPU cost", and the total is positively correlated with running time.
/// Overloaded runs are billed at the 6000 s cut-off and flagged as a lower
/// bound (the paper prints them with a leading '>').
class MonetaryModel {
 public:
  struct Params {
    /// Credits per core-hour, per GiB-hour of memory, per machine-hour of
    /// disk. Chosen so a full Docker-32 cluster costs ~57 credits/hour,
    /// matching the optimum totals reported under Fig. 7.
    double credits_per_core_hour = 0.09;
    double credits_per_gib_hour = 0.012;
    double credits_per_disk_hour = 0.2;
  };

  MonetaryModel() = default;
  explicit MonetaryModel(const Params& params) : params_(params) {}

  /// Credits per second for the whole cluster.
  double ClusterRatePerSecond(const ClusterSpec& cluster) const;

  /// Cost of a run; `overloaded` bills the cut-off time instead.
  double Cost(const ClusterSpec& cluster, double seconds, bool overloaded,
              double overload_cutoff_seconds) const;

  /// Renders a cost the way the paper's Fig. 7 x-axis does: "$59" or
  /// ">$117" for overloaded lower bounds.
  static std::string Format(double credits, bool lower_bound);

 private:
  Params params_;
};

}  // namespace vcmp

#endif  // VCMP_SIM_MONETARY_MODEL_H_
