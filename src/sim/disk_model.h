#ifndef VCMP_SIM_DISK_MODEL_H_
#define VCMP_SIM_DISK_MODEL_H_

#include "sim/cluster_spec.h"
#include "sim/round_load.h"

namespace vcmp {

/// Disk behaviour of one out-of-core machine during one round.
struct DiskAssessment {
  /// Bytes streamed to/from disk this round (edge stream + message spill).
  double io_bytes = 0.0;
  /// Raw sequential transfer time for io_bytes.
  double io_seconds = 0.0;
  /// Disk utilisation over the round in [0, 1]: the fraction of the round
  /// the disk is performing at least one operation (paper footnote 2).
  double utilization = 0.0;
  /// Time at 100% utilisation — the paper's "overuse time (I/O)".
  double overuse_seconds = 0.0;
  /// Average number of buffered writes waiting for the disk (paper
  /// Table 3, "I/O queue length").
  double queue_length = 0.0;
  /// Extra stall time added to the round because producers outpaced the
  /// disk (the disk-bound state of Fig. 11).
  double stall_seconds = 0.0;
};

/// Models the GraphD-style out-of-core disk path (Section 4.4).
///
/// Every round streams the machine's edge partition from disk; message
/// bytes beyond the in-memory budget are spilled. While the compute phase
/// can hide disk I/O behind it, demand beyond that window makes the disk
/// the bottleneck: utilisation pins at 100%, a write queue forms, and the
/// queueing adds stall time.
class DiskModel {
 public:
  struct Params {
    /// Fraction of compute time that can hide disk transfers (GraphD's
    /// dedicated I/O threads overlap streaming with computation).
    double overlap_fraction = 0.85;
    /// Bytes per queued message used to convert backlog bytes into the
    /// queue length the paper reports.
    double queue_entry_bytes = 64.0 * 1024.0;
    /// Multiplier converting saturated-disk backlog time into stall time
    /// (seek amplification + queue management under contention).
    double saturation_penalty = 1.6;
    /// Deep queues degrade per-entry service (seek-bound random writes):
    /// the stall is further scaled by 1 + coeff * sqrt(queue_length).
    double queue_depth_coefficient = 0.004;
    /// Fraction of the *in-budget* message buffer that still flows through
    /// the disk each round (GraphD's semi-streaming write-behind). This is
    /// what keeps disk utilisation at a stable ~20-27% once spilling
    /// stops, as in the paper's Table 3.
    double write_through_fraction = 0.15;
  };

  DiskModel() = default;
  explicit DiskModel(const Params& params) : params_(params) {}

  /// `spill_bytes`: message bytes beyond the memory budget this round
  /// (written now, streamed back next round). `resident_message_bytes`:
  /// in-budget message bytes, a write_through_fraction of which touches
  /// the disk. `edge_stream_bytes`: the per-round edge stream (0 for
  /// in-memory systems). `compute_seconds` sizes the overlap window.
  DiskAssessment Assess(double spill_bytes, double resident_message_bytes,
                        double edge_stream_bytes,
                        const MachineSpec& machine,
                        double compute_seconds) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace vcmp

#endif  // VCMP_SIM_DISK_MODEL_H_
