#ifndef VCMP_SIM_COST_MODEL_H_
#define VCMP_SIM_COST_MODEL_H_

#include "engine/system_profile.h"
#include "metrics/round_stats.h"
#include "sim/cluster_spec.h"
#include "sim/disk_model.h"
#include "sim/memory_model.h"
#include "sim/network_model.h"
#include "sim/round_load.h"

namespace vcmp {

/// Calibration constants of the simulated-time model. Values were fixed
/// once against the paper's anchor measurements (Fig. 4/6 running times and
/// per-round message counts, Table 2 memory figures, Table 3 utilisation)
/// and are shared by every experiment; see DESIGN.md section 6.
struct CostParams {
  /// Seconds of one core processing one logical message (receive,
  /// deserialize, apply, emit), before profile multipliers. Calibrated so
  /// Pregel+ sustains ~1.8M fine-grained messages/s per 8-core machine,
  /// reproducing the paper's Fig. 6 anchor (W=1024, 1 batch: 173 s).
  double seconds_per_message = 2.1e-6;
  /// Seconds per active vertex per round (scheduling, state touch).
  double seconds_per_active_vertex = 9.0e-9;
  /// Seconds per task-declared compute unit (edge scans etc.).
  double seconds_per_compute_unit = 4.0e-9;
  /// Fraction of a machine's cores the compute phase can actually use
  /// (message handling parallelises imperfectly).
  double core_utilization = 0.55;
  /// Synchronisation barrier: fixed part + per-machine part, seconds.
  double barrier_base_seconds = 0.012;
  double barrier_per_machine_seconds = 0.0012;
  /// Per-batch fixed overhead (task injection, result collection).
  double batch_overhead_seconds = 1.2;
  /// Runs longer than this are reported as Overload (paper: 6000 s).
  double overload_cutoff_seconds = 6000.0;

  MemoryModel::Params memory;
  NetworkModel::Params network;
  DiskModel::Params disk;
};

/// Maps one round's measured machine loads to simulated wall-clock time
/// and the monitored runtime statistics of the paper's Section 4
/// (memory demand, disk utilisation, network/disk overuse).
///
/// Round time = max over machines of
///   thrash(mem_demand) * [compute + unhidden-network + disk-stall]
/// plus the synchronisation barrier. All inputs are paper-scale.
class CostModel {
 public:
  CostModel(const ClusterSpec& cluster, const SystemProfile& profile,
            const CostParams& params = {});

  /// Evaluates one round. `edge_stream_bytes_per_machine` is the per-round
  /// out-of-core edge stream (0 for in-memory systems).
  RoundStats EvaluateRound(const ClusterRoundLoad& loads,
                           double edge_stream_bytes_per_machine) const;

  const ClusterSpec& cluster() const { return cluster_; }
  const SystemProfile& profile() const { return profile_; }
  const CostParams& params() const { return params_; }

 private:
  ClusterSpec cluster_;
  SystemProfile profile_;
  CostParams params_;
  MemoryModel memory_model_;
  NetworkModel network_model_;
  DiskModel disk_model_;
};

}  // namespace vcmp

#endif  // VCMP_SIM_COST_MODEL_H_
