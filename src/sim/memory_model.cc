#include "sim/memory_model.h"

#include <algorithm>
#include <cmath>

namespace vcmp {

MemoryAssessment MemoryModel::Assess(const MachineRoundLoad& load,
                                     const MachineSpec& machine,
                                     double message_memory_overhead,
                                     double ooc_budget_bytes) const {
  MemoryAssessment out;
  double message_bytes = load.buffered_message_bytes * message_memory_overhead;
  if (ooc_budget_bytes > 0.0) {
    // Out-of-core systems never hold more than the budget in memory; the
    // excess is streamed to disk (accounted by DiskModel).
    message_bytes = std::min(message_bytes, ooc_budget_bytes);
  }
  out.demand_bytes = load.state_bytes + load.residual_bytes + message_bytes;

  const double onset =
      params_.thrash_onset_fraction * machine.usable_memory_bytes;
  if (out.demand_bytes > machine.memory_bytes) {
    out.overflow = true;
    out.thrash_multiplier = 1.0 + params_.thrash_coefficient;
    return out;
  }
  if (out.demand_bytes > onset) {
    // Quadratic ramp from 1.0 at the onset to 1 + coefficient at physical
    // capacity: approaching usable memory starts paging out cold pages,
    // and the penalty accelerates as hot data is evicted (Section 4.3).
    double span = machine.memory_bytes - onset;
    double excess = (out.demand_bytes - onset) / std::max(span, 1.0);
    out.thrash_multiplier = 1.0 + params_.thrash_coefficient * excess * excess;
  }
  return out;
}

}  // namespace vcmp
