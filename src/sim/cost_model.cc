#include "sim/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace vcmp {

CostModel::CostModel(const ClusterSpec& cluster, const SystemProfile& profile,
                     const CostParams& params)
    : cluster_(cluster),
      profile_(profile),
      params_(params),
      memory_model_(params.memory),
      network_model_(params.network),
      disk_model_(params.disk) {
  VCMP_CHECK(cluster_.num_machines > 0);
}

RoundStats CostModel::EvaluateRound(
    const ClusterRoundLoad& loads,
    double edge_stream_bytes_per_machine) const {
  VCMP_CHECK(loads.size() == cluster_.num_machines)
      << "round load must cover every machine";
  const MachineSpec& machine = cluster_.machine;

  RoundStats stats;
  double slowest_machine_seconds = 0.0;
  const double effective_cores =
      std::max(1.0, machine.cores * params_.core_utilization) *
      machine.core_speed;

  for (const MachineRoundLoad& load : loads) {
    stats.messages += load.recv_messages;
    stats.message_bytes += load.recv_messages * profile_.bytes_per_message;
    stats.cross_machine_bytes += load.cross_bytes_out;
    stats.active_vertices += load.active_vertices;

    // --- Compute phase ---
    double compute =
        (params_.seconds_per_message * load.processed_messages +
         params_.seconds_per_active_vertex * load.active_vertices +
         params_.seconds_per_compute_unit * load.compute_units) *
        profile_.compute_factor / effective_cores;

    // --- Network ---
    NetworkAssessment net = network_model_.Assess(load, machine, compute);

    // --- Disk (out-of-core only) ---
    DiskAssessment disk;
    if (profile_.out_of_core) {
      double buffered =
          load.buffered_message_bytes * profile_.message_memory_overhead;
      double spill;
      double resident;
      if (load.measured_spill_bytes >= 0.0) {
        // Real OOC path active: bill the bytes the engine actually moved
        // through its spill files instead of the modeled overflow.
        spill = load.measured_spill_bytes;
        resident = std::max(0.0, buffered - spill);
      } else {
        spill = std::max(0.0, buffered - profile_.ooc_budget_bytes);
        resident = std::min(buffered, profile_.ooc_budget_bytes);
      }
      const double edge_stream = load.measured_edge_stream_bytes >= 0.0
                                     ? load.measured_edge_stream_bytes
                                     : edge_stream_bytes_per_machine;
      disk = disk_model_.Assess(spill, resident, edge_stream, machine,
                                compute);
      stats.spilled_bytes += spill;
    }

    // --- Memory ---
    MemoryAssessment mem = memory_model_.Assess(
        load, machine, profile_.message_memory_overhead,
        profile_.out_of_core ? profile_.ooc_budget_bytes : 0.0);

    double machine_seconds =
        (compute + net.overuse_seconds + disk.stall_seconds) *
        mem.thrash_multiplier;

    slowest_machine_seconds =
        std::max(slowest_machine_seconds, machine_seconds);
    stats.compute_seconds = std::max(stats.compute_seconds, compute);
    stats.network_seconds =
        std::max(stats.network_seconds, net.overuse_seconds);
    stats.disk_stall_seconds =
        std::max(stats.disk_stall_seconds, disk.stall_seconds);
    stats.network_overuse_seconds += net.overuse_seconds;
    stats.disk_overuse_seconds += disk.overuse_seconds;
    stats.disk_utilization =
        std::max(stats.disk_utilization, disk.utilization);
    stats.disk_io_seconds = std::max(stats.disk_io_seconds, disk.io_seconds);
    stats.disk_saturated = stats.disk_saturated || disk.stall_seconds > 0.0;
    stats.io_queue_length = std::max(stats.io_queue_length, disk.queue_length);
    stats.max_memory_bytes = std::max(stats.max_memory_bytes, mem.demand_bytes);
    stats.max_buffered_bytes =
        std::max(stats.max_buffered_bytes,
                 load.buffered_message_bytes *
                     profile_.message_memory_overhead);
    stats.max_residual_bytes =
        std::max(stats.max_residual_bytes, load.residual_bytes);
    stats.thrash_multiplier =
        std::max(stats.thrash_multiplier, mem.thrash_multiplier);
    stats.overflow = stats.overflow || mem.overflow;
  }

  stats.barrier_seconds =
      (params_.barrier_base_seconds +
       params_.barrier_per_machine_seconds * cluster_.num_machines) *
      profile_.barrier_factor;
  stats.total_seconds = slowest_machine_seconds + stats.barrier_seconds;
  // Overuse is reported per-cluster in the paper's tables (the master's
  // view); keep the average machine's value.
  stats.network_overuse_seconds /= cluster_.num_machines;
  stats.disk_overuse_seconds /= cluster_.num_machines;
  return stats;
}

}  // namespace vcmp
