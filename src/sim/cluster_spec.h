#ifndef VCMP_SIM_CLUSTER_SPEC_H_
#define VCMP_SIM_CLUSTER_SPEC_H_

#include <cstdint>
#include <string>

namespace vcmp {

/// Hardware description of one machine in a simulated cluster.
struct MachineSpec {
  /// Physical memory. Exceeding it marks the run overloaded (the paper's
  /// "Overflow"/"Overload" entries).
  double memory_bytes = 16.0 * (1ULL << 30);
  /// Memory available to the VC-system; the remainder is reserved for the
  /// OS and resident services (the paper: "usable memory capacity ~14GB").
  double usable_memory_bytes = 14.0 * (1ULL << 30);
  uint32_t cores = 8;
  /// Relative single-core speed (1.0 = Galaxy's i7-3770 @ 3.4GHz).
  double core_speed = 1.0;
  /// Effective disk bandwidth under the out-of-core access pattern
  /// (interleaved message-stream writes + edge-stream reads): commodity
  /// HDDs deliver ~40 MB/s in this regime, SSDs ~300 MB/s.
  double disk_bandwidth = 40.0 * (1ULL << 20);
  /// Full-duplex NIC bandwidth per machine (1 GbE).
  double network_bandwidth = 117.0 * (1ULL << 20);
};

/// A named cluster: machine count, per-machine hardware, billing mode.
struct ClusterSpec {
  std::string name;
  uint32_t num_machines = 8;
  MachineSpec machine;
  /// Cloud clusters are billed per machine-second (Section 4.6).
  bool cloud = false;

  /// The paper's three clusters (Table 1, bottom).
  static ClusterSpec Galaxy8();
  static ClusterSpec Galaxy27();
  static ClusterSpec Docker32();

  /// Same hardware, different machine count (used by the varying-#machines
  /// panels, e.g. Fig. 3(c): 2/4/8 Galaxy machines).
  ClusterSpec WithMachines(uint32_t machines) const;

  std::string ToString() const;
};

}  // namespace vcmp

#endif  // VCMP_SIM_CLUSTER_SPEC_H_
