#include "sim/cluster_spec.h"

#include "common/string_util.h"

namespace vcmp {

ClusterSpec ClusterSpec::Galaxy8() {
  ClusterSpec spec;
  spec.name = "Galaxy-8";
  spec.num_machines = 8;
  spec.machine = MachineSpec{};  // 16GB, 8 cores, HDD, 1GbE.
  spec.cloud = false;
  return spec;
}

ClusterSpec ClusterSpec::Galaxy27() {
  ClusterSpec spec = Galaxy8();
  spec.name = "Galaxy-27";
  spec.num_machines = 27;
  return spec;
}

ClusterSpec ClusterSpec::Docker32() {
  ClusterSpec spec;
  spec.name = "Docker-32";
  spec.num_machines = 32;
  spec.machine.memory_bytes = 16.0 * (1ULL << 30);
  spec.machine.usable_memory_bytes = 14.0 * (1ULL << 30);
  spec.machine.cores = 15;  // 15 virtual cores of Xeon E5-2637 v2.
  spec.machine.core_speed = 0.9;  // Virtualised cores are a bit slower.
  spec.machine.disk_bandwidth = 300.0 * (1ULL << 20);  // SSD.
  spec.machine.network_bandwidth = 117.0 * (1ULL << 20);
  spec.cloud = true;
  return spec;
}

ClusterSpec ClusterSpec::WithMachines(uint32_t machines) const {
  ClusterSpec spec = *this;
  spec.num_machines = machines;
  spec.name = StrFormat("%s[x%u]", name.c_str(), machines);
  return spec;
}

std::string ClusterSpec::ToString() const {
  return StrFormat("%s(%u machines, %.0fGB mem, %u cores)", name.c_str(),
                   num_machines, machine.memory_bytes / (1ULL << 30),
                   machine.cores);
}

}  // namespace vcmp
