#ifndef VCMP_SIM_ROUND_LOAD_H_
#define VCMP_SIM_ROUND_LOAD_H_

#include <cstdint>
#include <vector>

namespace vcmp {

/// What one simulated machine did during one communication round, in
/// paper-scale units (the engine multiplies generated-graph statistics by
/// the dataset scale factor before filling this in).
///
/// These are the *measured* quantities; the cost model turns them into
/// simulated time. Message counts are logical: a physical message with
/// multiplicity k counts as k.
struct MachineRoundLoad {
  /// Logical messages received this round (the congestion measure).
  double recv_messages = 0.0;
  /// Wire messages actually deserialized and handled this round; equals
  /// recv_messages unless the system combines messages at the sender.
  double processed_messages = 0.0;
  /// Messages sent this round.
  double sent_messages = 0.0;
  /// Serialized bytes received / sent that crossed the network (messages
  /// whose sender lives on another machine).
  double cross_bytes_in = 0.0;
  double cross_bytes_out = 0.0;
  /// Peak bytes buffered in message queues (in + out) during the round.
  double buffered_message_bytes = 0.0;
  /// Vertices whose compute function ran.
  double active_vertices = 0.0;
  /// Task-specific extra work in edge-scan units (e.g. forward-push edge
  /// traversals that do not emit one message per unit of work).
  double compute_units = 0.0;
  /// Graph share + vertex state resident on this machine.
  double state_bytes = 0.0;
  /// Accumulated intermediate results (this batch + all earlier batches)
  /// that must be retained for final aggregation — the paper's residual
  /// memory.
  double residual_bytes = 0.0;
  /// Real out-of-core measurements, set only when the src/ooc runtime is
  /// active. Negative means "not measured": the cost model then falls
  /// back to its modeled spill estimate and the shared edge-stream
  /// heuristic. Paper-scale bytes, like every other field here.
  double measured_spill_bytes = -1.0;
  double measured_edge_stream_bytes = -1.0;

  MachineRoundLoad& operator+=(const MachineRoundLoad& other) {
    recv_messages += other.recv_messages;
    processed_messages += other.processed_messages;
    sent_messages += other.sent_messages;
    cross_bytes_in += other.cross_bytes_in;
    cross_bytes_out += other.cross_bytes_out;
    buffered_message_bytes += other.buffered_message_bytes;
    active_vertices += other.active_vertices;
    compute_units += other.compute_units;
    state_bytes += other.state_bytes;
    residual_bytes += other.residual_bytes;
    // Measured fields stay "unmeasured" only when both sides are; a
    // merge with one measured side treats the other as zero.
    if (measured_spill_bytes >= 0.0 || other.measured_spill_bytes >= 0.0) {
      measured_spill_bytes = (measured_spill_bytes < 0.0
                                  ? 0.0 : measured_spill_bytes) +
                             (other.measured_spill_bytes < 0.0
                                  ? 0.0 : other.measured_spill_bytes);
    }
    if (measured_edge_stream_bytes >= 0.0 ||
        other.measured_edge_stream_bytes >= 0.0) {
      measured_edge_stream_bytes =
          (measured_edge_stream_bytes < 0.0 ? 0.0
                                            : measured_edge_stream_bytes) +
          (other.measured_edge_stream_bytes < 0.0
               ? 0.0 : other.measured_edge_stream_bytes);
    }
    return *this;
  }
};

/// Per-round loads for every machine in the cluster.
using ClusterRoundLoad = std::vector<MachineRoundLoad>;

}  // namespace vcmp

#endif  // VCMP_SIM_ROUND_LOAD_H_
