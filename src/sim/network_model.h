#ifndef VCMP_SIM_NETWORK_MODEL_H_
#define VCMP_SIM_NETWORK_MODEL_H_

#include "sim/cluster_spec.h"
#include "sim/round_load.h"

namespace vcmp {

/// Network behaviour of one machine during one round.
struct NetworkAssessment {
  /// Wire time for this machine's traffic (max of send/receive directions,
  /// full duplex).
  double transfer_seconds = 0.0;
  /// Time spent with the NIC saturated — the paper's "network overuse
  /// time". Traffic overlapping compute is absorbed by the burst window;
  /// only the excess pins the link at max bandwidth.
  double overuse_seconds = 0.0;
};

/// Models per-round network transfer time and bandwidth overuse
/// (Section 4.3/4.4 "overuse time (network)").
class NetworkModel {
 public:
  struct Params {
    /// Fraction of a round's compute time during which outgoing traffic
    /// can be overlapped (MPI/Netty progress threads flush while compute
    /// runs); transfer demand beyond this window saturates the NIC.
    double overlap_fraction = 0.7;
  };

  NetworkModel() = default;
  explicit NetworkModel(const Params& params) : params_(params) {}

  /// `compute_seconds` is the machine's compute time this round, used to
  /// size the overlap window.
  NetworkAssessment Assess(const MachineRoundLoad& load,
                           const MachineSpec& machine,
                           double compute_seconds) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace vcmp

#endif  // VCMP_SIM_NETWORK_MODEL_H_
