// Budget arithmetic for the real out-of-core path (DESIGN.md section
// 13.5). The hard per-machine budget (paper-scale bytes) is split into
// fixed shares: 60% for buffered messages (the resident inbox cap that
// triggers spilling), 35% for the vertex cache, and the remaining 5%
// for fixed overheads (spill staging page, plans, counters). The
// governor also computes the infeasible floor — the smallest budget for
// which one spill page and one copy of the largest section per cache
// way still fit — and validates requested budgets against it.
#ifndef VCMP_OOC_MEMORY_GOVERNOR_H_
#define VCMP_OOC_MEMORY_GOVERNOR_H_

#include <cstdint>

#include "common/status.h"

namespace vcmp {

class MemoryGovernor {
 public:
  struct Config {
    uint64_t budget_bytes = 0;  // Paper-scale.
    double stat_scale = 1.0;    // Paper bytes = real bytes * stat_scale.
    double bytes_per_message = 20.0;
    double message_memory_overhead = 1.2;
    uint64_t max_section_real_bytes = 0;
    uint32_t cache_ways = 4;
    uint32_t spill_page_messages = 4096;
  };

  static constexpr double kMessageShare = 0.60;
  static constexpr double kCacheShare = 0.35;

  /// Paper-scale bytes of the message share — what the cost model's
  /// ooc_budget_bytes is set to so modeled and measured spilling answer
  /// against the same resident allowance.
  static double MessageShareBytes(uint64_t budget_bytes) {
    return kMessageShare * static_cast<double>(budget_bytes);
  }

  /// Smallest budget (paper-scale bytes) this configuration can run
  /// under: the message share must hold one spill page and the cache
  /// share one copy of the largest section in every way.
  static uint64_t MinFeasibleBytes(const Config& config);

  /// OK, or InvalidArgument naming the floor when the budget is below it.
  static Status Validate(const Config& config);

  explicit MemoryGovernor(const Config& config);

  /// Maximum messages resident in one machine's inbox between rounds;
  /// delivery past the cap spills to the MessageStream.
  uint64_t resident_message_cap() const { return resident_message_cap_; }

  /// Real-byte capacity of one machine's vertex cache.
  uint64_t cache_capacity_bytes() const { return cache_capacity_bytes_; }

  /// Paper-scale bytes one resident message is billed at.
  double paper_bytes_per_message() const { return paper_bytes_per_message_; }

 private:
  uint64_t resident_message_cap_ = 0;
  uint64_t cache_capacity_bytes_ = 0;
  double paper_bytes_per_message_ = 0.0;
};

}  // namespace vcmp

#endif  // VCMP_OOC_MEMORY_GOVERNOR_H_
