// Versioned, checksummed on-disk page format for SoA MessageBlock
// columns (DESIGN.md section 13.1). A spill file is a fixed header
// followed by pages; each page is a small header (message count + FNV-1a
// checksum over the column bytes) followed by the four columns written
// back to back: targets, tags, values, multiplicities. Pages stream back
// in write order, so a restore reproduces the exact append sequence.
#ifndef VCMP_OOC_SPILL_FILE_H_
#define VCMP_OOC_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/message_block.h"
#include "graph/graph.h"

namespace vcmp {

inline constexpr uint32_t kSpillMagic = 0x4c505356;  // "VSPL" little-endian.
inline constexpr uint32_t kSpillVersion = 1;

/// FNV-1a over a byte range; `seed` chains checksums across ranges.
uint64_t Fnv1aHash(const void* data, size_t size,
                   uint64_t seed = 0xcbf29ce484222325ULL);

/// Sequential page writer. Open → WritePage* → Finish. Reopening an
/// existing path truncates it.
class SpillFileWriter {
 public:
  SpillFileWriter() = default;
  ~SpillFileWriter();
  SpillFileWriter(const SpillFileWriter&) = delete;
  SpillFileWriter& operator=(const SpillFileWriter&) = delete;

  Status Open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  Status WritePage(const VertexId* targets, const uint32_t* tags,
                   const double* values, const double* multiplicities,
                   uint32_t count);
  /// Flushes and closes; the file is complete only after Finish.
  Status Finish();

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t pages_written() const { return pages_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_written_ = 0;
  uint64_t pages_written_ = 0;
};

/// Sequential page reader. ReadPage appends one page's messages to the
/// destination block and returns the message count, 0 at clean EOF.
/// Corruption (bad magic/version, checksum mismatch, truncated page)
/// yields an IoError Status — never a crash or silent short read.
class SpillFileReader {
 public:
  SpillFileReader() = default;
  ~SpillFileReader();
  SpillFileReader(const SpillFileReader&) = delete;
  SpillFileReader& operator=(const SpillFileReader&) = delete;

  Status Open(const std::string& path);
  Result<uint64_t> ReadPage(MessageBlock* out);
  void Close();

  uint64_t bytes_read() const { return bytes_read_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_read_ = 0;
  // Column scratch, reused across pages.
  std::vector<VertexId> targets_;
  std::vector<uint32_t> tags_;
  std::vector<double> values_;
  std::vector<double> multiplicities_;
};

}  // namespace vcmp

#endif  // VCMP_OOC_SPILL_FILE_H_
