#include "ooc/ooc_runtime.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <system_error>

#include "common/string_util.h"

namespace vcmp {
namespace {

/// Position bounds of `sections` equal contiguous ranges over n
/// vertices: section s covers [bounds[s], bounds[s+1]).
std::vector<uint64_t> SectionBounds(uint64_t n, uint32_t sections) {
  std::vector<uint64_t> bounds(sections + 1);
  for (uint32_t s = 0; s <= sections; ++s) {
    bounds[s] = n * s / sections;
  }
  return bounds;
}

uint32_t ClampSections(uint32_t requested, uint64_t n) {
  uint32_t sections = requested == 0 ? 1 : requested;
  if (n > 0 && sections > n) sections = static_cast<uint32_t>(n);
  return sections;
}

uint64_t MaxSectionRealBytes(
    const OocRuntime::Setup& setup,
    const std::vector<std::vector<VertexId>>& vertices_by_machine) {
  uint64_t max_bytes = 0;
  for (const std::vector<VertexId>& vertices : vertices_by_machine) {
    const uint32_t sections =
        ClampSections(setup.options.cache_sections, vertices.size());
    std::vector<uint64_t> bounds = SectionBounds(vertices.size(), sections);
    for (uint32_t s = 0; s < sections; ++s) {
      const uint64_t bytes = (bounds[s + 1] - bounds[s]) * sizeof(VertexRecord);
      max_bytes = std::max(max_bytes, bytes);
    }
  }
  return max_bytes;
}

MemoryGovernor::Config GovernorConfig(
    const OocRuntime::Setup& setup,
    const std::vector<std::vector<VertexId>>& vertices_by_machine) {
  MemoryGovernor::Config config;
  config.budget_bytes = setup.options.memory_budget_bytes;
  config.stat_scale = setup.stat_scale;
  config.bytes_per_message = setup.bytes_per_message;
  config.message_memory_overhead = setup.message_memory_overhead;
  config.max_section_real_bytes =
      MaxSectionRealBytes(setup, vertices_by_machine);
  config.cache_ways = setup.options.cache_ways;
  config.spill_page_messages = setup.options.spill_page_messages;
  return config;
}

}  // namespace

uint64_t OocRuntime::MinFeasibleBudgetBytes(
    const Setup& setup,
    const std::vector<std::vector<VertexId>>& vertices_by_machine) {
  return MemoryGovernor::MinFeasibleBytes(
      GovernorConfig(setup, vertices_by_machine));
}

Result<std::unique_ptr<OocRuntime>> OocRuntime::Create(
    const Setup& setup, const Graph& graph,
    const std::vector<std::vector<VertexId>>& vertices_by_machine) {
  if (setup.machines == 0 || vertices_by_machine.size() != setup.machines) {
    return Status::InvalidArgument("ooc runtime machine count mismatch");
  }
  MemoryGovernor::Config config = GovernorConfig(setup, vertices_by_machine);
  VCMP_RETURN_IF_ERROR(MemoryGovernor::Validate(config));

  std::unique_ptr<OocRuntime> runtime(new OocRuntime());
  runtime->governor_ = std::make_unique<MemoryGovernor>(config);
  runtime->vertices_by_machine_ = &vertices_by_machine;
  runtime->prefetch_enabled_ = setup.options.prefetch;

  // Spill directory: a caller-provided path is used as-is (files only
  // are cleaned up); an empty path gets a unique directory under the
  // system temp dir, removed with the runtime.
  std::error_code ec;
  if (setup.options.directory.empty()) {
    // Distinct directories per runtime instance; the counter value is
    // never observable in results, so the cross-query sharing is benign.
    // vcmp:query-local(unique temp-dir suffix only; result-neutral)
    static std::atomic<uint64_t> instance_counter{0};
    const uint64_t instance =
        instance_counter.fetch_add(1, std::memory_order_relaxed);
    std::filesystem::path base = std::filesystem::temp_directory_path(ec);
    if (ec) return Status::IoError("cannot resolve temp dir: " + ec.message());
    runtime->directory_ =
        (base / StrFormat("vcmp_ooc_%d_%llu", static_cast<int>(getpid()),
                          static_cast<unsigned long long>(instance)))
            .string();
    runtime->owns_directory_ = true;
  } else {
    runtime->directory_ = setup.options.directory;
  }
  std::filesystem::create_directories(runtime->directory_, ec);
  if (ec) {
    return Status::IoError("cannot create ooc directory " +
                           runtime->directory_ + ": " + ec.message());
  }

  runtime->position_of_vertex_.assign(graph.NumVertices(), 0);
  runtime->machines_.resize(setup.machines);
  for (uint32_t machine = 0; machine < setup.machines; ++machine) {
    Machine& m = runtime->machines_[machine];
    const std::vector<VertexId>& vertices = vertices_by_machine[machine];
    for (uint64_t i = 0; i < vertices.size(); ++i) {
      runtime->position_of_vertex_[vertices[i]] = i;
    }
    const uint32_t sections =
        ClampSections(setup.options.cache_sections, vertices.size());
    m.section_begin = SectionBounds(vertices.size(), sections);
    m.section_degree_sum.assign(sections, 0.0);
    m.section_needed.assign(sections, 0);
    std::vector<std::vector<VertexRecord>> section_records(sections);
    for (uint32_t s = 0; s < sections; ++s) {
      section_records[s].reserve(m.section_begin[s + 1] - m.section_begin[s]);
      for (uint64_t i = m.section_begin[s]; i < m.section_begin[s + 1]; ++i) {
        const VertexId v = vertices[i];
        const uint64_t degree = graph.OutDegree(v);
        section_records[s].push_back(
            {v, static_cast<uint32_t>(std::min<uint64_t>(degree, ~0u))});
        m.section_degree_sum[s] += static_cast<double>(degree);
      }
    }
    m.state_path = (std::filesystem::path(runtime->directory_) /
                    StrFormat("state_m%u.vvst", machine))
                       .string();
    m.spill_path = (std::filesystem::path(runtime->directory_) /
                    StrFormat("spill_m%u.vspl", machine))
                       .string();
    VCMP_RETURN_IF_ERROR(WriteStateFile(m.state_path, section_records));
    VCMP_RETURN_IF_ERROR(m.reader.Open(m.state_path));
    m.cache.Configure(&m.reader, setup.options.cache_ways,
                      runtime->governor_->cache_capacity_bytes());
    m.stream.Configure(m.spill_path, setup.options.spill_page_messages);
  }
  return runtime;
}

OocRuntime::~OocRuntime() {
  // Outstanding background reads capture machine slots and file readers;
  // drain them before any teardown touches either.
  prefetch_group_.Wait();
  std::error_code ec;
  for (Machine& m : machines_) {
    m.reader.Close();
    std::filesystem::remove(m.state_path, ec);
    std::filesystem::remove(m.spill_path, ec);
  }
  if (owns_directory_ && !directory_.empty()) {
    std::filesystem::remove(directory_, ec);
  }
}

uint32_t OocRuntime::SectionOfPosition(const Machine& m,
                                       uint64_t position) const {
  const uint32_t sections =
      static_cast<uint32_t>(m.section_begin.size()) - 1;
  const uint64_t n = m.section_begin[sections];
  uint32_t s = static_cast<uint32_t>(
      std::min<uint64_t>(position * sections / n, sections - 1));
  while (position < m.section_begin[s]) --s;
  while (position >= m.section_begin[s + 1]) ++s;
  return s;
}

void OocRuntime::RecordError(Machine& m, Status status) {
  if (m.error.ok()) m.error = std::move(status);
}

Status OocRuntime::ConsumeError() {
  Status first = Status::OK();
  for (Machine& m : machines_) {
    if (first.ok() && !m.error.ok()) first = m.error;
    m.error = Status::OK();
  }
  return first;
}

void OocRuntime::RestoreInbox(uint32_t machine, MessageBlock* inbox) {
  Machine& m = machines_[machine];
  if (!m.stream.has_spill()) return;
  Result<uint64_t> restored = m.stream.Restore(inbox);
  if (!restored.ok()) {
    RecordError(m, restored.status());
    return;
  }
  m.restored_this_round += restored.value();
}

Status OocRuntime::LoadSection(Machine& m, uint32_t section) {
  // Prefetch staging is consulted first so a prefetched section installs
  // at exactly the point a synchronous load would have — the LRU state
  // (and therefore every eviction and measured byte) is identical with
  // prefetch on or off.
  auto staged = std::lower_bound(
      m.staged.begin(), m.staged.end(), section,
      [](const auto& entry, uint32_t s) { return entry.first < s; });
  if (staged != m.staged.end() && staged->first == section) {
    m.cache.ApplyLoaded(section, std::move(staged->second));
  } else {
    bool loaded = false;
    VCMP_RETURN_IF_ERROR(m.cache.EnsureResident(section, &loaded));
    if (!loaded) return Status::OK();  // Hit: no bytes moved.
  }
  m.stream_bytes_this_round +=
      static_cast<double>(m.reader.section_bytes(section)) +
      8.0 * m.section_degree_sum[section];
  return Status::OK();
}

void OocRuntime::TouchSections(uint32_t machine,
                               std::span<const MessageRun> runs) {
  Machine& m = machines_[machine];
  const uint32_t sections = static_cast<uint32_t>(m.section_needed.size());
  for (const MessageRun& run : runs) {
    const uint64_t position = position_of_vertex_[run.target];
    m.section_needed[SectionOfPosition(m, position)] = 1;
  }
  for (uint32_t s = 0; s < sections; ++s) {
    if (m.section_needed[s] == 0) continue;
    m.section_needed[s] = 0;
    if (m.cache.IsResident(s)) {
      bool loaded = false;
      Status touched = m.cache.EnsureResident(s, &loaded);  // Hit + touch.
      if (!touched.ok()) RecordError(m, std::move(touched));
      continue;
    }
    Status loaded = LoadSection(m, s);
    if (!loaded.ok()) RecordError(m, std::move(loaded));
  }
  m.staged.clear();
}

void OocRuntime::StreamAllDegrees(uint32_t machine,
                                  std::vector<uint32_t>* degrees) {
  Machine& m = machines_[machine];
  const uint32_t sections =
      static_cast<uint32_t>(m.section_begin.size()) - 1;
  degrees->assign((*vertices_by_machine_)[machine].size(), 0);
  for (uint32_t s = 0; s < sections; ++s) {
    if (!m.cache.IsResident(s)) {
      Status loaded = LoadSection(m, s);
      if (!loaded.ok()) {
        RecordError(m, std::move(loaded));
        return;
      }
    } else {
      bool loaded = false;
      Status touched = m.cache.EnsureResident(s, &loaded);
      if (!touched.ok()) {
        RecordError(m, std::move(touched));
        return;
      }
    }
    const std::vector<VertexRecord>& records = m.cache.Records(s);
    for (uint64_t i = 0; i < records.size(); ++i) {
      (*degrees)[m.section_begin[s] + i] = records[i].degree;
    }
  }
}

void OocRuntime::SpillMessages(uint32_t machine, const MessageBlock& outbox,
                               size_t from, size_t count) {
  Machine& m = machines_[machine];
  Status appended =
      m.stream.Append(outbox.targets() + from, outbox.tags() + from,
                      outbox.values() + from,
                      outbox.multiplicities() + from, count);
  if (!appended.ok()) RecordError(m, std::move(appended));
}

void OocRuntime::FinishDeliverRound(uint32_t machine) {
  Machine& m = machines_[machine];
  Status finished = m.stream.EndRound();
  if (!finished.ok()) RecordError(m, std::move(finished));
}

void OocRuntime::SchedulePrefetch(uint32_t machine,
                                  const MessageBlock& inbox) {
  if (!prefetch_enabled_) return;
  Machine& m = machines_[machine];
  m.prefetch_wish.clear();
  const VertexId* targets = inbox.targets();
  for (size_t i = 0; i < inbox.size(); ++i) {
    const uint64_t position = position_of_vertex_[targets[i]];
    m.section_needed[SectionOfPosition(m, position)] = 1;
  }
  for (uint32_t s = 0; s < m.section_needed.size(); ++s) {
    if (m.section_needed[s] == 0) continue;
    m.section_needed[s] = 0;
    if (!m.cache.IsResident(s)) m.prefetch_wish.push_back(s);
  }
}

void OocRuntime::LaunchPrefetch(ThreadPool* pool) {
  if (!prefetch_enabled_) return;
  for (Machine& m : machines_) {
    if (m.prefetch_wish.empty()) continue;
    prefetch_group_.Submit(*pool, [&m] {
      for (uint32_t s : m.prefetch_wish) {
        std::vector<VertexRecord> records;
        Status read = m.reader.ReadSection(s, &records);
        if (!read.ok()) {
          RecordError(m, std::move(read));
          break;
        }
        m.staged.emplace_back(s, std::move(records));
      }
      m.prefetch_wish.clear();
    });
  }
}

uint64_t OocRuntime::TakeRestoredMessages(uint32_t machine) {
  Machine& m = machines_[machine];
  const uint64_t restored = m.restored_this_round;
  m.restored_this_round = 0;
  return restored;
}

double OocRuntime::TakeRoundStreamBytes(uint32_t machine) {
  Machine& m = machines_[machine];
  const double bytes = m.stream_bytes_this_round;
  m.stream_bytes_this_round = 0.0;
  return bytes;
}

void OocRuntime::NoteRoundLiveBytes(uint32_t machine,
                                    double inbox_and_outbox_real_bytes) {
  Machine& m = machines_[machine];
  const double live = inbox_and_outbox_real_bytes +
                      static_cast<double>(m.cache.resident_bytes()) +
                      static_cast<double>(m.stream.staging_bytes());
  m.peak_live_bytes = std::max(m.peak_live_bytes, live);
}

OocRunStats OocRuntime::run_stats() const {
  OocRunStats stats;
  for (const Machine& m : machines_) {
    stats.spill_bytes_written += static_cast<double>(m.stream.bytes_written());
    stats.spill_bytes_read += static_cast<double>(m.stream.bytes_read());
    stats.spilled_messages += m.stream.messages_spilled();
    stats.restored_messages += m.stream.messages_restored();
    stats.spill_pages += m.stream.pages_written();
    const VertexCache::Stats& cache = m.cache.stats();
    stats.cache_hits += cache.hits;
    stats.cache_misses += cache.misses;
    stats.prefetch_loads += cache.prefetch_loads;
    stats.cache_evictions += cache.evictions;
    stats.state_bytes_read += static_cast<double>(m.reader.bytes_read());
    stats.peak_live_bytes =
        std::max(stats.peak_live_bytes, m.peak_live_bytes);
  }
  return stats;
}

}  // namespace vcmp
