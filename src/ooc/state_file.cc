#include "ooc/state_file.h"

#include "common/string_util.h"
#include "ooc/spill_file.h"  // Fnv1aHash.

namespace vcmp {
namespace {

struct StateHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t num_sections;
  uint32_t reserved;
};

struct SectionHeader {
  uint32_t count;
  uint32_t flags;  // Reserved, written as 0.
  uint64_t checksum;
};

static_assert(sizeof(StateHeader) == 16, "state file header is 16 bytes");
static_assert(sizeof(SectionHeader) == 16, "section header is 16 bytes");

}  // namespace

Status WriteStateFile(
    const std::string& path,
    const std::vector<std::vector<VertexRecord>>& sections) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create state file " + path);
  }
  StateHeader header{kStateMagic, kStateVersion,
                     static_cast<uint32_t>(sections.size()), 0};
  bool ok = std::fwrite(&header, sizeof(header), 1, file) == 1;
  for (const std::vector<VertexRecord>& records : sections) {
    SectionHeader section{static_cast<uint32_t>(records.size()), 0,
                          Fnv1aHash(records.data(),
                                    records.size() * sizeof(VertexRecord))};
    ok = ok && std::fwrite(&section, sizeof(section), 1, file) == 1;
    if (!records.empty()) {
      ok = ok && std::fwrite(records.data(), sizeof(VertexRecord),
                             records.size(), file) == records.size();
    }
  }
  ok = std::fflush(file) == 0 && ok;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) return Status::IoError("short write to state file " + path);
  return Status::OK();
}

StateFileReader::~StateFileReader() { Close(); }

void StateFileReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status StateFileReader::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IoError("cannot open state file " + path);
  }
  path_ = path;
  bytes_read_ = 0;
  counts_.clear();
  offsets_.clear();
  checksums_.clear();
  StateHeader header{};
  if (std::fread(&header, sizeof(header), 1, file_) != 1) {
    return Status::IoError("truncated state header in " + path_);
  }
  if (header.magic != kStateMagic) {
    return Status::IoError("bad state magic in " + path_);
  }
  if (header.version != kStateVersion) {
    return Status::IoError(StrFormat("unsupported state version %u in %s",
                                     header.version, path_.c_str()));
  }
  uint64_t offset = sizeof(header);
  counts_.reserve(header.num_sections);
  for (uint32_t s = 0; s < header.num_sections; ++s) {
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IoError("cannot seek section header in " + path_);
    }
    SectionHeader section{};
    if (std::fread(&section, sizeof(section), 1, file_) != 1) {
      return Status::IoError("truncated section header in " + path_);
    }
    counts_.push_back(section.count);
    checksums_.push_back(section.checksum);
    offsets_.push_back(offset + sizeof(section));
    offset += sizeof(section) +
              static_cast<uint64_t>(section.count) * sizeof(VertexRecord);
  }
  // `offset` is now the exact size the headers promise; a shorter file
  // has a truncated section body and must be rejected here, not when the
  // missing section happens to be read mid-run.
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek to end of " + path_);
  }
  const long actual = std::ftell(file_);
  if (actual < 0 || static_cast<uint64_t>(actual) < offset) {
    return Status::IoError("truncated state file " + path_);
  }
  return Status::OK();
}

Status StateFileReader::ReadSection(uint32_t section,
                                    std::vector<VertexRecord>* out) {
  if (file_ == nullptr) return Status::Internal("state reader not open");
  if (section >= counts_.size()) {
    return Status::OutOfRange(
        StrFormat("section %u out of range in %s", section, path_.c_str()));
  }
  const uint32_t count = counts_[section];
  out->resize(count);
  if (count > 0) {
    if (std::fseek(file_, static_cast<long>(offsets_[section]), SEEK_SET) !=
        0) {
      return Status::IoError("cannot seek section in " + path_);
    }
    if (std::fread(out->data(), sizeof(VertexRecord), count, file_) != count) {
      return Status::IoError("truncated section body in " + path_);
    }
  }
  if (Fnv1aHash(out->data(), count * sizeof(VertexRecord)) !=
      checksums_[section]) {
    return Status::IoError(
        StrFormat("checksum mismatch in section %u of %s", section,
                  path_.c_str()));
  }
  bytes_read_ += sizeof(SectionHeader) +
                 static_cast<uint64_t>(count) * sizeof(VertexRecord);
  return Status::OK();
}

}  // namespace vcmp
