// Per-machine paged message spill channel (DESIGN.md section 13.2).
// During delivery, messages past the resident cap are appended here in
// fixed sender order; at the start of the next round Restore streams
// every spilled message back in the exact append order, so the inbox
// ends up identical to the uncapped run's. Only one staging page is
// ever resident — full pages go straight to disk.
#ifndef VCMP_OOC_MESSAGE_STREAM_H_
#define VCMP_OOC_MESSAGE_STREAM_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "engine/message_block.h"
#include "ooc/spill_file.h"

namespace vcmp {

class MessageStream {
 public:
  /// `path` is reused round over round (each spill round truncates it);
  /// `page_messages` is the spill page granularity.
  void Configure(std::string path, uint32_t page_messages);

  /// Appends `count` messages given as raw columns. Opens the round's
  /// spill file lazily on first use after a Restore.
  Status Append(const VertexId* targets, const uint32_t* tags,
                const double* values, const double* multiplicities,
                size_t count);

  /// Flushes the partial staging page and finishes the file. Must be
  /// called at the end of a delivery that appended anything.
  Status EndRound();

  /// True when spilled messages are waiting to be restored.
  bool has_spill() const { return pending_messages_ > 0; }

  /// Streams every spilled message back, appending to `inbox` in the
  /// original order. Returns the number restored (0 when none pending).
  Result<uint64_t> Restore(MessageBlock* inbox);

  /// Real bytes of the staging page currently held in memory.
  uint64_t staging_bytes() const {
    return staging_.size() * MessageBlock::kBytesPerMessage;
  }

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t messages_spilled() const { return messages_spilled_; }
  uint64_t messages_restored() const { return messages_restored_; }
  uint64_t pages_written() const { return pages_written_; }

 private:
  Status FlushFullPages(bool flush_partial);

  std::string path_;
  uint32_t page_messages_ = 4096;
  MessageBlock staging_;
  SpillFileWriter writer_;
  uint64_t pending_messages_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t messages_spilled_ = 0;
  uint64_t messages_restored_ = 0;
  uint64_t pages_written_ = 0;
};

}  // namespace vcmp

#endif  // VCMP_OOC_MESSAGE_STREAM_H_
