// Multi-section LRU cache over one machine's vertex-state file
// (DESIGN.md section 13.4). Sections are the paging unit; section s is
// mapped to way s % ways and evicted LRU *within its way* under a
// per-way byte budget. All mutation happens on the engine's fixed
// barrier points in ascending section order, so the resident set —
// and therefore every measured byte — evolves identically at any
// thread count, with prefetch on or off.
#ifndef VCMP_OOC_VERTEX_CACHE_H_
#define VCMP_OOC_VERTEX_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ooc/state_file.h"

namespace vcmp {

class VertexCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t prefetch_loads = 0;
    uint64_t evictions = 0;
    double bytes_loaded = 0.0;  // Real bytes brought in from the file.
  };

  /// `reader` must outlive the cache. `capacity_bytes` is the real-byte
  /// budget across all ways; each way gets an equal share.
  void Configure(StateFileReader* reader, uint32_t ways,
                 uint64_t capacity_bytes);

  bool IsResident(uint32_t section) const {
    return sections_[section].resident;
  }

  /// Makes `section` resident, loading synchronously (and evicting LRU
  /// within its way) when absent. `*loaded_from_disk` reports whether a
  /// real read happened (false on a hit).
  Status EnsureResident(uint32_t section, bool* loaded_from_disk);

  /// Installs a section buffer the prefetch worker already read. A
  /// no-op when the section is somehow resident already; counted as a
  /// prefetch load, not a miss.
  void ApplyLoaded(uint32_t section, std::vector<VertexRecord>&& records);

  const std::vector<VertexRecord>& Records(uint32_t section) const {
    return sections_[section].records;
  }

  uint64_t resident_bytes() const { return resident_bytes_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Section {
    std::vector<VertexRecord> records;
    bool resident = false;
    uint64_t lru_tick = 0;
  };

  void Touch(uint32_t section) { sections_[section].lru_tick = ++tick_; }
  void MakeRoom(uint32_t way, uint64_t incoming_bytes);
  void Install(uint32_t section, std::vector<VertexRecord>&& records);

  StateFileReader* reader_ = nullptr;
  std::vector<Section> sections_;
  uint32_t ways_ = 1;
  uint64_t way_capacity_bytes_ = 0;
  std::vector<uint64_t> way_bytes_;
  uint64_t resident_bytes_ = 0;
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace vcmp

#endif  // VCMP_OOC_VERTEX_CACHE_H_
