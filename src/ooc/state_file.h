// Sectioned vertex-state file (DESIGN.md section 13.3). One file per
// machine holds that machine's vertices split into fixed contiguous
// sections — the paging granularity of the VertexCache. Each section
// carries its own FNV-1a checksum so a damaged section is detected on
// load, not silently consumed. Records are fixed 8-byte rows
// {vertex id, out-degree}; the degree column is what round-0 shard
// planning and the streamed-adjacency accounting consume.
#ifndef VCMP_OOC_STATE_FILE_H_
#define VCMP_OOC_STATE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace vcmp {

inline constexpr uint32_t kStateMagic = 0x54535656;  // "VVST" little-endian.
inline constexpr uint32_t kStateVersion = 1;

struct VertexRecord {
  VertexId id = 0;
  uint32_t degree = 0;
};
static_assert(sizeof(VertexRecord) == 8, "vertex record is 8 bytes");

/// Writes a complete state file in one shot (sections in order).
Status WriteStateFile(const std::string& path,
                      const std::vector<std::vector<VertexRecord>>& sections);

/// Random-access section reader. Open scans the section headers once to
/// index byte offsets; ReadSection then seeks, reads, and verifies the
/// checksum of a single section.
class StateFileReader {
 public:
  StateFileReader() = default;
  ~StateFileReader();
  StateFileReader(const StateFileReader&) = delete;
  StateFileReader& operator=(const StateFileReader&) = delete;

  Status Open(const std::string& path);
  void Close();

  uint32_t num_sections() const {
    return static_cast<uint32_t>(counts_.size());
  }
  uint32_t section_count(uint32_t section) const { return counts_[section]; }
  /// Real bytes one resident copy of `section` occupies.
  uint64_t section_bytes(uint32_t section) const {
    return static_cast<uint64_t>(counts_[section]) * sizeof(VertexRecord);
  }

  Status ReadSection(uint32_t section, std::vector<VertexRecord>* out);

  uint64_t bytes_read() const { return bytes_read_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<uint32_t> counts_;
  std::vector<uint64_t> offsets_;  // Byte offset of each section's records.
  std::vector<uint64_t> checksums_;
  uint64_t bytes_read_ = 0;
};

}  // namespace vcmp

#endif  // VCMP_OOC_STATE_FILE_H_
