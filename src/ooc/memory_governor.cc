#include "ooc/memory_governor.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace vcmp {
namespace {

double PaperBytesPerMessage(const MemoryGovernor::Config& config) {
  return config.bytes_per_message * config.message_memory_overhead *
         std::max(config.stat_scale, 1e-12);
}

}  // namespace

uint64_t MemoryGovernor::MinFeasibleBytes(const Config& config) {
  const double per_message = PaperBytesPerMessage(config);
  const double message_floor =
      std::max<uint32_t>(config.spill_page_messages, 1) * per_message /
      kMessageShare;
  const double cache_floor =
      static_cast<double>(config.max_section_real_bytes) *
      std::max(config.stat_scale, 1e-12) *
      std::max<uint32_t>(config.cache_ways, 1) / kCacheShare;
  return static_cast<uint64_t>(std::ceil(std::max(message_floor, cache_floor)));
}

Status MemoryGovernor::Validate(const Config& config) {
  const uint64_t floor = MinFeasibleBytes(config);
  if (config.budget_bytes < floor) {
    return Status::InvalidArgument(StrFormat(
        "memory budget %llu bytes is below the minimum feasible budget "
        "%llu bytes for this configuration (one spill page of %u messages "
        "in the %.0f%% message share and the largest vertex-state section "
        "in each of %u cache ways in the %.0f%% cache share must fit)",
        static_cast<unsigned long long>(config.budget_bytes),
        static_cast<unsigned long long>(floor), config.spill_page_messages,
        100.0 * kMessageShare, config.cache_ways, 100.0 * kCacheShare));
  }
  return Status::OK();
}

MemoryGovernor::MemoryGovernor(const Config& config) {
  paper_bytes_per_message_ = PaperBytesPerMessage(config);
  resident_message_cap_ = static_cast<uint64_t>(
      MessageShareBytes(config.budget_bytes) / paper_bytes_per_message_);
  cache_capacity_bytes_ = static_cast<uint64_t>(
      kCacheShare * static_cast<double>(config.budget_bytes) /
      std::max(config.stat_scale, 1e-12));
}

}  // namespace vcmp
