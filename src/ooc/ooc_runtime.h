// Orchestrator for real bounded-memory execution (DESIGN.md section
// 13.6). One runtime per engine run owns, per machine: a MessageStream
// for inter-round message overflow, a sectioned vertex-state file with
// its StateFileReader, and a VertexCache governed by the shared
// MemoryGovernor split of the hard budget. All round-lifecycle calls
// are either machine-local (safe from the engine's per-machine prep and
// delivery tasks) or main-thread barrier steps; prefetch is the only
// background work, one ThreadPool job per machine, consumed strictly
// after the pool barrier so results stay bit-identical at every thread
// count, budget, and prefetch setting.
#ifndef VCMP_OOC_OOC_RUNTIME_H_
#define VCMP_OOC_OOC_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/message_block.h"
#include "graph/graph.h"
#include "ooc/memory_governor.h"
#include "ooc/message_stream.h"
#include "ooc/ooc_options.h"
#include "ooc/state_file.h"
#include "ooc/vertex_cache.h"

namespace vcmp {

class OocRuntime {
 public:
  struct Setup {
    OocOptions options;
    uint32_t machines = 0;
    double stat_scale = 1.0;
    double bytes_per_message = 20.0;
    double message_memory_overhead = 1.2;
  };

  /// The smallest budget (paper-scale bytes) Create would accept for
  /// this setup and vertex placement.
  static uint64_t MinFeasibleBudgetBytes(
      const Setup& setup,
      const std::vector<std::vector<VertexId>>& vertices_by_machine);

  /// Validates the budget against the infeasible floor, creates the
  /// spill directory, writes one sectioned vertex-state file per
  /// machine, and opens caches and message streams. The vertex lists
  /// must outlive the runtime.
  static Result<std::unique_ptr<OocRuntime>> Create(
      const Setup& setup, const Graph& graph,
      const std::vector<std::vector<VertexId>>& vertices_by_machine);

  ~OocRuntime();
  OocRuntime(const OocRuntime&) = delete;
  OocRuntime& operator=(const OocRuntime&) = delete;

  uint64_t resident_message_cap() const {
    return governor_->resident_message_cap();
  }
  const std::string& directory() const { return directory_; }

  // --- Round lifecycle, in engine order ------------------------------
  // Machine-local calls record failures in a per-machine error slot
  // (they run inside ParallelFor tasks); the engine folds them at the
  // next barrier via ConsumeError().

  /// Streams last round's spilled messages back into `inbox`, appended
  /// after the resident messages in original order.
  void RestoreInbox(uint32_t machine, MessageBlock* inbox);

  /// Makes the vertex-state sections behind this round's message
  /// targets resident, in ascending section order, consuming prefetch
  /// buffers where available and loading synchronously otherwise.
  void TouchSections(uint32_t machine, std::span<const MessageRun> runs);

  /// Round 0: streams every section through the cache in order and
  /// copies out the out-degree column (indexed by position in the
  /// machine's vertex list) for shard planning.
  void StreamAllDegrees(uint32_t machine, std::vector<uint32_t>* degrees);

  /// Delivery: spills outbox messages [from, from+count) to `machine`'s
  /// stream, and closes the round's spill file.
  void SpillMessages(uint32_t machine, const MessageBlock& outbox,
                     size_t from, size_t count);
  void FinishDeliverRound(uint32_t machine);

  /// True when `machine` has spilled messages awaiting restore — such a
  /// machine must not be treated as quiescent.
  bool has_pending_spill(uint32_t machine) const {
    return machines_[machine].stream.has_spill();
  }

  /// Queues next round's sections (from the resident inbox targets) and
  /// launches one background read job per machine. No-op when prefetch
  /// is disabled. The engine must call WaitPrefetch() before the next
  /// round touches the caches.
  void SchedulePrefetch(uint32_t machine, const MessageBlock& inbox);
  void LaunchPrefetch(ThreadPool* pool);

  /// Happens-before barrier for the background jobs LaunchPrefetch
  /// submitted: after it returns their staged sections are plain data.
  /// Scoped to THIS runtime's jobs (not a pool-wide drain), so several
  /// queries can run their prefetchers on one shared pool without
  /// coupling at each other's barriers.
  void WaitPrefetch() { prefetch_group_.Wait(); }

  /// First recorded per-machine error, cleared; OK when none.
  Status ConsumeError();

  // --- Measured statistics -------------------------------------------

  /// Messages restored into `machine`'s inbox this round (reset on read);
  /// the engine bills these as measured spill bytes.
  uint64_t TakeRestoredMessages(uint32_t machine);

  /// Real bytes streamed from the vertex-state layer for `machine` this
  /// round — section records plus 8 bytes per edge of the loaded
  /// sections' adjacency (reset on read).
  double TakeRoundStreamBytes(uint32_t machine);

  /// Folds `inbox_and_outbox_real_bytes` with the runtime's own live
  /// bytes (cache + spill staging) into the per-machine peak.
  void NoteRoundLiveBytes(uint32_t machine,
                          double inbox_and_outbox_real_bytes);

  OocRunStats run_stats() const;

 private:
  struct Machine {
    MessageStream stream;
    StateFileReader reader;
    VertexCache cache;
    std::vector<uint64_t> section_begin;  // Position bounds, size S+1.
    std::vector<double> section_degree_sum;
    uint64_t restored_this_round = 0;
    double stream_bytes_this_round = 0.0;
    double peak_live_bytes = 0.0;
    std::vector<uint32_t> prefetch_wish;
    std::vector<std::pair<uint32_t, std::vector<VertexRecord>>> staged;
    std::vector<uint8_t> section_needed;  // Scratch, size S.
    Status error;
    std::string state_path;
    std::string spill_path;
  };

  OocRuntime() = default;

  uint32_t SectionOfPosition(const Machine& m, uint64_t position) const;
  static void RecordError(Machine& m, Status status);
  Status LoadSection(Machine& m, uint32_t section);

  std::string directory_;
  bool owns_directory_ = false;
  std::unique_ptr<MemoryGovernor> governor_;
  /// deque, not vector: Machine owns FILE*-backed members and is neither
  /// movable nor copyable; deque growth constructs in place.
  std::deque<Machine> machines_;
  const std::vector<std::vector<VertexId>>* vertices_by_machine_ = nullptr;
  std::vector<uint64_t> position_of_vertex_;
  bool prefetch_enabled_ = true;
  /// Completion scope for the background prefetch jobs; the destructor's
  /// implicit Wait keeps task captures of `machines_` alive long enough.
  TaskGroup prefetch_group_;
};

}  // namespace vcmp

#endif  // VCMP_OOC_OOC_RUNTIME_H_
