#include "ooc/spill_file.h"

#include <cstring>

#include "common/string_util.h"

namespace vcmp {
namespace {

struct FileHeader {
  uint32_t magic;
  uint32_t version;
};

struct PageHeader {
  uint32_t count;
  uint32_t flags;  // Reserved, written as 0.
  uint64_t checksum;
};

static_assert(sizeof(FileHeader) == 8, "spill file header is 8 bytes");
static_assert(sizeof(PageHeader) == 16, "spill page header is 16 bytes");

}  // namespace

uint64_t Fnv1aHash(const void* data, size_t size, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

SpillFileWriter::~SpillFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillFileWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::Internal("spill writer already open: " + path_);
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot create spill file " + path);
  }
  path_ = path;
  bytes_written_ = 0;
  pages_written_ = 0;
  FileHeader header{kSpillMagic, kSpillVersion};
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    return Status::IoError("cannot write spill header to " + path_);
  }
  bytes_written_ += sizeof(header);
  return Status::OK();
}

Status SpillFileWriter::WritePage(const VertexId* targets,
                                  const uint32_t* tags, const double* values,
                                  const double* multiplicities,
                                  uint32_t count) {
  if (file_ == nullptr) return Status::Internal("spill writer not open");
  if (count == 0) return Status::OK();
  PageHeader header{count, 0, 0};
  header.checksum = Fnv1aHash(targets, count * sizeof(VertexId));
  header.checksum = Fnv1aHash(tags, count * sizeof(uint32_t), header.checksum);
  header.checksum =
      Fnv1aHash(values, count * sizeof(double), header.checksum);
  header.checksum =
      Fnv1aHash(multiplicities, count * sizeof(double), header.checksum);
  bool ok = std::fwrite(&header, sizeof(header), 1, file_) == 1;
  ok = ok && std::fwrite(targets, sizeof(VertexId), count, file_) == count;
  ok = ok && std::fwrite(tags, sizeof(uint32_t), count, file_) == count;
  ok = ok && std::fwrite(values, sizeof(double), count, file_) == count;
  ok = ok &&
       std::fwrite(multiplicities, sizeof(double), count, file_) == count;
  if (!ok) return Status::IoError("short write to spill file " + path_);
  bytes_written_ += sizeof(header) + static_cast<uint64_t>(count) *
                                         MessageBlock::kBytesPerMessage;
  ++pages_written_;
  return Status::OK();
}

Status SpillFileWriter::Finish() {
  if (file_ == nullptr) return Status::OK();
  bool ok = std::fflush(file_) == 0;
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  if (!ok) return Status::IoError("cannot finish spill file " + path_);
  return Status::OK();
}

SpillFileReader::~SpillFileReader() { Close(); }

void SpillFileReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status SpillFileReader::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IoError("cannot open spill file " + path);
  }
  path_ = path;
  bytes_read_ = 0;
  FileHeader header{};
  if (std::fread(&header, sizeof(header), 1, file_) != 1) {
    return Status::IoError("truncated spill header in " + path_);
  }
  if (header.magic != kSpillMagic) {
    return Status::IoError("bad spill magic in " + path_);
  }
  if (header.version != kSpillVersion) {
    return Status::IoError(StrFormat("unsupported spill version %u in %s",
                                     header.version, path_.c_str()));
  }
  bytes_read_ += sizeof(header);
  return Status::OK();
}

Result<uint64_t> SpillFileReader::ReadPage(MessageBlock* out) {
  if (file_ == nullptr) return Status::Internal("spill reader not open");
  PageHeader header{};
  size_t got = std::fread(&header, 1, sizeof(header), file_);
  if (got == 0 && std::feof(file_)) return uint64_t{0};  // Clean EOF.
  if (got != sizeof(header)) {
    return Status::IoError("truncated page header in " + path_);
  }
  const uint32_t count = header.count;
  if (count == 0) {
    return Status::IoError("corrupt page (zero count) in " + path_);
  }
  targets_.resize(count);
  tags_.resize(count);
  values_.resize(count);
  multiplicities_.resize(count);
  bool ok =
      std::fread(targets_.data(), sizeof(VertexId), count, file_) == count;
  ok = ok &&
       std::fread(tags_.data(), sizeof(uint32_t), count, file_) == count;
  ok = ok && std::fread(values_.data(), sizeof(double), count, file_) == count;
  ok = ok && std::fread(multiplicities_.data(), sizeof(double), count,
                        file_) == count;
  if (!ok) return Status::IoError("truncated page body in " + path_);
  uint64_t checksum = Fnv1aHash(targets_.data(), count * sizeof(VertexId));
  checksum = Fnv1aHash(tags_.data(), count * sizeof(uint32_t), checksum);
  checksum = Fnv1aHash(values_.data(), count * sizeof(double), checksum);
  checksum =
      Fnv1aHash(multiplicities_.data(), count * sizeof(double), checksum);
  if (checksum != header.checksum) {
    return Status::IoError("checksum mismatch in spill page of " + path_);
  }
  out->AppendColumns(targets_.data(), tags_.data(), values_.data(),
                     multiplicities_.data(), count);
  bytes_read_ += sizeof(header) + static_cast<uint64_t>(count) *
                                      MessageBlock::kBytesPerMessage;
  return uint64_t{count};
}

}  // namespace vcmp
