#include "ooc/vertex_cache.h"

#include <utility>

namespace vcmp {

void VertexCache::Configure(StateFileReader* reader, uint32_t ways,
                            uint64_t capacity_bytes) {
  reader_ = reader;
  ways_ = ways == 0 ? 1 : ways;
  if (ways_ > reader->num_sections() && reader->num_sections() > 0) {
    ways_ = reader->num_sections();
  }
  way_capacity_bytes_ = capacity_bytes / ways_;
  sections_.assign(reader->num_sections(), Section{});
  way_bytes_.assign(ways_, 0);
  resident_bytes_ = 0;
  tick_ = 0;
  stats_ = Stats{};
}

void VertexCache::MakeRoom(uint32_t way, uint64_t incoming_bytes) {
  // Evict LRU sections of this way until the incoming section fits. A
  // section larger than the way budget still loads alone (the governor
  // validates the budget against the largest section up front).
  while (way_bytes_[way] > 0 &&
         way_bytes_[way] + incoming_bytes > way_capacity_bytes_) {
    uint32_t victim = 0;
    uint64_t oldest = ~0ULL;
    for (uint32_t s = way; s < sections_.size(); s += ways_) {
      if (sections_[s].resident && sections_[s].lru_tick < oldest) {
        oldest = sections_[s].lru_tick;
        victim = s;
      }
    }
    Section& evicted = sections_[victim];
    const uint64_t bytes = reader_->section_bytes(victim);
    way_bytes_[way] -= bytes;
    resident_bytes_ -= bytes;
    evicted.resident = false;
    evicted.records.clear();
    evicted.records.shrink_to_fit();
    ++stats_.evictions;
  }
}

void VertexCache::Install(uint32_t section,
                          std::vector<VertexRecord>&& records) {
  const uint32_t way = section % ways_;
  const uint64_t bytes = reader_->section_bytes(section);
  MakeRoom(way, bytes);
  Section& slot = sections_[section];
  slot.records = std::move(records);
  slot.resident = true;
  way_bytes_[way] += bytes;
  resident_bytes_ += bytes;
  Touch(section);
}

Status VertexCache::EnsureResident(uint32_t section, bool* loaded_from_disk) {
  if (sections_[section].resident) {
    ++stats_.hits;
    Touch(section);
    if (loaded_from_disk != nullptr) *loaded_from_disk = false;
    return Status::OK();
  }
  ++stats_.misses;
  std::vector<VertexRecord> records;
  VCMP_RETURN_IF_ERROR(reader_->ReadSection(section, &records));
  stats_.bytes_loaded += static_cast<double>(reader_->section_bytes(section));
  Install(section, std::move(records));
  if (loaded_from_disk != nullptr) *loaded_from_disk = true;
  return Status::OK();
}

void VertexCache::ApplyLoaded(uint32_t section,
                              std::vector<VertexRecord>&& records) {
  if (sections_[section].resident) return;
  ++stats_.prefetch_loads;
  stats_.bytes_loaded += static_cast<double>(reader_->section_bytes(section));
  Install(section, std::move(records));
}

}  // namespace vcmp
