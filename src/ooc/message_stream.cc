#include "ooc/message_stream.h"

#include <utility>

namespace vcmp {

void MessageStream::Configure(std::string path, uint32_t page_messages) {
  path_ = std::move(path);
  page_messages_ = page_messages == 0 ? 1 : page_messages;
}

Status MessageStream::Append(const VertexId* targets, const uint32_t* tags,
                             const double* values,
                             const double* multiplicities, size_t count) {
  if (count == 0) return Status::OK();
  if (!writer_.is_open()) {
    VCMP_RETURN_IF_ERROR(writer_.Open(path_));
  }
  staging_.AppendColumns(targets, tags, values, multiplicities, count);
  pending_messages_ += count;
  messages_spilled_ += count;
  return FlushFullPages(/*flush_partial=*/false);
}

Status MessageStream::FlushFullPages(bool flush_partial) {
  size_t offset = 0;
  while (staging_.size() - offset >= page_messages_) {
    VCMP_RETURN_IF_ERROR(writer_.WritePage(
        staging_.targets() + offset, staging_.tags() + offset,
        staging_.values() + offset, staging_.multiplicities() + offset,
        page_messages_));
    offset += page_messages_;
  }
  if (flush_partial && staging_.size() > offset) {
    VCMP_RETURN_IF_ERROR(writer_.WritePage(
        staging_.targets() + offset, staging_.tags() + offset,
        staging_.values() + offset, staging_.multiplicities() + offset,
        static_cast<uint32_t>(staging_.size() - offset)));
    offset = staging_.size();
  }
  if (offset > 0) staging_.EraseFront(offset);
  return Status::OK();
}

Status MessageStream::EndRound() {
  if (!writer_.is_open()) return Status::OK();
  VCMP_RETURN_IF_ERROR(FlushFullPages(/*flush_partial=*/true));
  pages_written_ += writer_.pages_written();
  bytes_written_ += writer_.bytes_written();
  return writer_.Finish();
}

Result<uint64_t> MessageStream::Restore(MessageBlock* inbox) {
  if (pending_messages_ == 0) return uint64_t{0};
  SpillFileReader reader;
  VCMP_RETURN_IF_ERROR(reader.Open(path_));
  uint64_t restored = 0;
  for (;;) {
    VCMP_ASSIGN_OR_RETURN(uint64_t count, reader.ReadPage(inbox));
    if (count == 0) break;
    restored += count;
  }
  if (restored != pending_messages_) {
    return Status::IoError("spill restore count mismatch in " + path_);
  }
  bytes_read_ += reader.bytes_read();
  messages_restored_ += restored;
  pending_messages_ = 0;
  return restored;
}

}  // namespace vcmp
