// Configuration and run statistics for the real out-of-core path
// (DESIGN.md section 13). OocOptions rides inside EngineOptions and
// RunnerOptions; OocRunStats is reported back on EngineResult so callers
// can see the measured I/O a bounded-memory run actually performed.
#ifndef VCMP_OOC_OOC_OPTIONS_H_
#define VCMP_OOC_OOC_OPTIONS_H_

#include <cstdint>
#include <string>

namespace vcmp {

/// Knobs for real bounded-memory execution. When `enabled`, the engine
/// pages message overflow to disk and keeps vertex state behind a
/// sectioned LRU cache instead of only modelling the spill.
struct OocOptions {
  bool enabled = false;

  /// Hard per-machine memory budget in *paper-scale* bytes (the same
  /// scale the cost model and RoundStats use). Must be at least
  /// MemoryGovernor::MinFeasibleBytes for the run's configuration.
  uint64_t memory_budget_bytes = 0;

  /// Directory for spill and vertex-state files. Empty means a unique
  /// directory under the system temp dir, removed when the run's
  /// runtime is destroyed.
  std::string directory;

  /// Vertex-state sections per machine (paging granularity of the
  /// vertex cache). Clamped to [1, vertices-on-machine].
  uint32_t cache_sections = 64;

  /// Set-associativity of the vertex cache: section s lives in way
  /// s % cache_ways, and LRU eviction is local to a way.
  uint32_t cache_ways = 4;

  /// Prefetch next round's sections on the thread pool while the main
  /// thread finishes the round. Never changes results — only whether a
  /// section load happens on the barrier or in the background.
  bool prefetch = true;

  /// Messages per spill page (one checksum + one write per page).
  uint32_t spill_page_messages = 4096;
};

/// Measured I/O and cache behaviour of one engine run. All byte counts
/// here are *real file bytes* (what touched disk), not paper-scale;
/// RoundStats.spilled_bytes carries the paper-scale equivalent.
struct OocRunStats {
  double spill_bytes_written = 0.0;
  double spill_bytes_read = 0.0;
  uint64_t spilled_messages = 0;
  uint64_t restored_messages = 0;
  uint64_t spill_pages = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t prefetch_loads = 0;
  uint64_t cache_evictions = 0;
  double state_bytes_read = 0.0;
  double peak_live_bytes = 0.0;

  void Accumulate(const OocRunStats& other) {
    spill_bytes_written += other.spill_bytes_written;
    spill_bytes_read += other.spill_bytes_read;
    spilled_messages += other.spilled_messages;
    restored_messages += other.restored_messages;
    spill_pages += other.spill_pages;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    prefetch_loads += other.prefetch_loads;
    cache_evictions += other.cache_evictions;
    state_bytes_read += other.state_bytes_read;
    if (other.peak_live_bytes > peak_live_bytes) {
      peak_live_bytes = other.peak_live_bytes;
    }
  }
};

}  // namespace vcmp

#endif  // VCMP_OOC_OOC_OPTIONS_H_
