#ifndef VCMP_GRAPH_DATASETS_H_
#define VCMP_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace vcmp {

/// The six benchmark datasets of the paper's Table 1.
enum class DatasetId {
  kWebSt = 0,
  kDblp,
  kLiveJournal,
  kOrkut,
  kTwitter,
  kFriendster,
};

/// Static description of a paper dataset and its synthetic stand-in.
///
/// SNAP downloads are unavailable offline, so each dataset is reproduced by
/// a deterministic generator matched on vertex count, average degree, and
/// degree skew. Billion-edge graphs are generated at 1/default_scale size;
/// the cost model multiplies extensive statistics (messages, bytes, memory)
/// back by the scale factor so reported numbers correspond to paper scale.
struct DatasetInfo {
  DatasetId id;
  const char* name;
  /// Node/edge counts from the paper's Table 1.
  uint64_t paper_nodes;
  uint64_t paper_edges;
  double paper_avg_degree;
  /// Default down-scaling factor for generation (1 = full size).
  double default_scale;
  /// Generator family used for the stand-in ("rmat" or "pa").
  const char* generator;
};

/// A loaded dataset: the generated stand-in graph plus the scale factor
/// the simulator must apply to extensive statistics.
struct Dataset {
  DatasetInfo info;
  Graph graph;
  double scale = 1.0;

  /// Paper-scale vertex count (generated vertices x scale).
  double PaperScaleVertices() const {
    return static_cast<double>(graph.NumVertices()) * scale;
  }
};

/// All six paper datasets in Table 1 order.
const std::vector<DatasetInfo>& AllDatasets();

/// Looks a dataset up by its paper name (e.g. "DBLP", case-sensitive).
Result<DatasetInfo> FindDataset(const std::string& name);

/// Generates the stand-in graph for `id`. scale_override > 0 replaces the
/// default scale (larger = smaller generated graph, faster benches).
Dataset LoadDataset(DatasetId id, double scale_override = 0.0);

}  // namespace vcmp

#endif  // VCMP_GRAPH_DATASETS_H_
