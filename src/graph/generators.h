#ifndef VCMP_GRAPH_GENERATORS_H_
#define VCMP_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace vcmp {

/// Parameters for the recursive-matrix (R-MAT) generator of Chakrabarti,
/// Zhan & Faloutsos. Produces the heavy-tailed degree distributions that
/// characterise the paper's web/social datasets.
struct RmatParams {
  VertexId num_vertices = 1 << 16;
  uint64_t num_edges = 1 << 20;
  /// Quadrant probabilities; must sum to ~1. Defaults are the Graph500
  /// "skewed social network" setting.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  uint64_t seed = 1;
  bool symmetrize = true;
};

/// Generates an R-MAT graph. num_vertices is rounded up to a power of two
/// internally for quadrant recursion; vertices beyond the requested count
/// are remapped back into range, preserving skew.
Graph GenerateRmat(const RmatParams& params);

/// Parameters for preferential attachment (Barabási–Albert), used for the
/// co-authorship stand-in (DBLP) whose degree tail is lighter than R-MAT's.
struct PreferentialAttachmentParams {
  VertexId num_vertices = 1 << 16;
  /// Edges attached per arriving vertex (= half the average degree after
  /// symmetrisation).
  uint32_t edges_per_vertex = 4;
  uint64_t seed = 1;
};

Graph GeneratePreferentialAttachment(
    const PreferentialAttachmentParams& params);

/// Erdős–Rényi G(n, m): m uniformly random edges. Used by tests as a
/// skew-free control.
struct ErdosRenyiParams {
  VertexId num_vertices = 1 << 10;
  uint64_t num_edges = 1 << 13;
  uint64_t seed = 1;
  bool symmetrize = true;
};

Graph GenerateErdosRenyi(const ErdosRenyiParams& params);

/// Deterministic ring lattice (each vertex linked to `k` successors),
/// useful for tests that need exact hand-computable answers.
Graph GenerateRing(VertexId num_vertices, uint32_t k = 1);

}  // namespace vcmp

#endif  // VCMP_GRAPH_GENERATORS_H_
