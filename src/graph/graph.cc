#include "graph/graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace vcmp {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  VCMP_CHECK(!offsets_.empty()) << "CSR offsets must have size n+1 >= 1";
  VCMP_CHECK(offsets_.front() == 0);
  VCMP_CHECK(offsets_.back() == targets_.size())
      << "CSR offsets and targets disagree on edge count";
}

uint64_t Graph::MaxDegree() const {
  uint64_t max_degree = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    max_degree = std::max(max_degree, OutDegree(v));
  }
  return max_degree;
}

std::string Graph::ToString() const {
  return StrFormat("Graph(n=%s, m=%s, d_avg=%.1f)",
                   FormatCount(NumVertices()).c_str(),
                   FormatCount(static_cast<double>(NumEdges())).c_str(),
                   AverageDegree());
}

}  // namespace vcmp
