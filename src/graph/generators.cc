#include "graph/generators.h"

#include <bit>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/graph_builder.h"

namespace vcmp {

Graph GenerateRmat(const RmatParams& params) {
  VCMP_CHECK(params.num_vertices > 1);
  double total = params.a + params.b + params.c + params.d;
  VCMP_CHECK(std::fabs(total - 1.0) < 1e-6)
      << "R-MAT quadrant probabilities must sum to 1, got " << total;

  const uint32_t levels =
      std::bit_width(static_cast<uint32_t>(params.num_vertices - 1));
  Rng rng(params.seed);
  GraphBuilder builder(params.num_vertices);

  for (uint64_t e = 0; e < params.num_edges; ++e) {
    uint64_t row = 0;
    uint64_t col = 0;
    for (uint32_t level = 0; level < levels; ++level) {
      // Perturb quadrant probabilities slightly per level (standard R-MAT
      // noise) to avoid perfectly self-similar artefacts.
      double noise = 0.9 + 0.2 * rng.NextDouble();
      double pa = params.a * noise;
      double pb = params.b;
      double pc = params.c;
      double pd = params.d;
      double norm = pa + pb + pc + pd;
      double draw = rng.NextDouble() * norm;
      row <<= 1;
      col <<= 1;
      if (draw < pa) {
        // top-left quadrant: no bits set
      } else if (draw < pa + pb) {
        col |= 1;
      } else if (draw < pa + pb + pc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    // Remap overshoot (power-of-two padding) back into range.
    VertexId u = static_cast<VertexId>(row % params.num_vertices);
    VertexId v = static_cast<VertexId>(col % params.num_vertices);
    builder.AddEdge(u, v);
  }
  return builder.Build({.symmetrize = params.symmetrize});
}

Graph GeneratePreferentialAttachment(
    const PreferentialAttachmentParams& params) {
  VCMP_CHECK(params.num_vertices > params.edges_per_vertex);
  Rng rng(params.seed);
  GraphBuilder builder(params.num_vertices);

  // Endpoint pool: sampling a uniform element of `pool` is proportional to
  // current degree (each edge contributes both endpoints).
  std::vector<VertexId> pool;
  pool.reserve(2ULL * params.num_vertices * params.edges_per_vertex);

  // Seed clique over the first edges_per_vertex + 1 vertices.
  const VertexId seed_size = params.edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  for (VertexId u = seed_size; u < params.num_vertices; ++u) {
    for (uint32_t j = 0; j < params.edges_per_vertex; ++j) {
      VertexId v = pool[rng.NextBounded(pool.size())];
      builder.AddEdge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  return builder.Build({.symmetrize = true});
}

Graph GenerateErdosRenyi(const ErdosRenyiParams& params) {
  Rng rng(params.seed);
  GraphBuilder builder(params.num_vertices);
  for (uint64_t e = 0; e < params.num_edges; ++e) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(params.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(params.num_vertices));
    builder.AddEdge(u, v);
  }
  return builder.Build({.symmetrize = params.symmetrize});
}

Graph GenerateRing(VertexId num_vertices, uint32_t k) {
  GraphBuilder builder(num_vertices);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      builder.AddEdge(u, (u + j) % num_vertices);
    }
  }
  return builder.Build({.symmetrize = true});
}

}  // namespace vcmp
