#ifndef VCMP_GRAPH_ANALYSIS_H_
#define VCMP_GRAPH_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace vcmp {

/// Degree-distribution statistics of a graph — the properties the
/// synthetic stand-ins must match for the paper's congestion phenomena to
/// transfer (datasets.h).
struct DegreeStats {
  uint64_t max_degree = 0;
  double mean_degree = 0.0;
  /// E[d^2] / E[d]: the size-biased mean neighbour degree. This is the
  /// skew measure that drives frontier growth (BKHS), mirroring benefit
  /// and hub congestion.
  double neighbor_degree_bias = 0.0;
  /// Share of directed edges incident to the top 1% highest-degree
  /// vertices.
  double top1pct_edge_share = 0.0;
  uint64_t isolated_vertices = 0;

  std::string ToString() const;
};

/// Computes degree statistics in one CSR pass.
DegreeStats ComputeDegreeStats(const Graph& graph);

/// Degree histogram with power-of-two buckets: bucket b counts vertices
/// with degree in [2^b, 2^(b+1)).
std::vector<uint64_t> DegreeHistogram(const Graph& graph);

/// Estimates the effective diameter (the 90th-percentile pairwise hop
/// distance) by BFS from `samples` deterministic sources — the MSSP
/// application the paper's introduction cites (Aingworth et al.'s
/// matrix-free diameter estimation).
struct DiameterEstimate {
  /// 90th-percentile finite hop distance.
  uint32_t effective_diameter = 0;
  /// Largest finite distance seen from any sampled source.
  uint32_t max_observed = 0;
  /// Fraction of (sampled source, vertex) pairs that are connected.
  double reachable_fraction = 0.0;
};

DiameterEstimate EstimateDiameter(const Graph& graph, uint32_t samples = 8,
                                  uint64_t seed = 17);

}  // namespace vcmp

#endif  // VCMP_GRAPH_ANALYSIS_H_
