#ifndef VCMP_GRAPH_GRAPH_BUILDER_H_
#define VCMP_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace vcmp {

/// Options controlling GraphBuilder::Build().
struct GraphBuildOptions {
  /// Add the reverse of every edge (social graphs in the paper are
  /// undirected; web graphs are directed).
  bool symmetrize = true;
  /// Drop (u, u) edges.
  bool remove_self_loops = true;
  /// Collapse parallel edges.
  bool deduplicate = true;
};

/// Accumulates an edge list and freezes it into an immutable CSR Graph.
///
/// Usage:
///   GraphBuilder b(num_vertices);
///   b.AddEdge(0, 1);
///   Graph g = b.Build({.symmetrize = true});
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  /// Appends a directed edge u -> v. Ignores edges whose endpoint is out of
  /// range (generators may overshoot at graph boundaries).
  void AddEdge(VertexId u, VertexId v) {
    if (u >= num_vertices_ || v >= num_vertices_) return;
    sources_.push_back(u);
    targets_.push_back(v);
  }

  /// Bulk append.
  void AddEdges(const std::vector<std::pair<VertexId, VertexId>>& edges);

  size_t NumBufferedEdges() const { return sources_.size(); }
  VertexId num_vertices() const { return num_vertices_; }

  /// Sorts, optionally symmetrises/deduplicates, and produces the CSR
  /// graph. The builder is left empty afterwards.
  Graph Build(const GraphBuildOptions& options = {});

 private:
  VertexId num_vertices_;
  std::vector<VertexId> sources_;
  std::vector<VertexId> targets_;
};

}  // namespace vcmp

#endif  // VCMP_GRAPH_GRAPH_BUILDER_H_
