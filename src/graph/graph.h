#ifndef VCMP_GRAPH_GRAPH_H_
#define VCMP_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace vcmp {

/// Vertex identifier. 32 bits suffices for every stand-in dataset (the
/// billion-edge graphs are generated at reduced scale; see datasets.h).
using VertexId = uint32_t;
using EdgeIndex = uint64_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Immutable directed graph in CSR (compressed sparse row) form.
///
/// The adjacency of vertex v is the half-open range
/// targets()[offsets()[v] .. offsets()[v+1]). Construction goes through
/// GraphBuilder, which sorts, deduplicates and (optionally) symmetrises
/// the edge list.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays. offsets.size() must equal
  /// num_vertices + 1 and offsets.back() must equal targets.size();
  /// GraphBuilder guarantees this.
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeIndex NumEdges() const { return targets_.size(); }

  uint64_t OutDegree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbours of v as a contiguous view into the CSR target array.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return std::span<const VertexId>(targets_.data() + offsets_[v],
                                     OutDegree(v));
  }

  /// Average out-degree; the paper's d_avg column.
  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : static_cast<double>(NumEdges()) / NumVertices();
  }

  /// Maximum out-degree across all vertices (drives mirroring decisions).
  uint64_t MaxDegree() const;

  /// In-memory footprint of the CSR arrays in bytes.
  uint64_t StorageBytes() const {
    return offsets_.size() * sizeof(EdgeIndex) +
           targets_.size() * sizeof(VertexId);
  }

  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return targets_; }

  /// One-line summary, e.g. "Graph(n=613.6K, m=4.0M, d_avg=6.5)".
  std::string ToString() const;

 private:
  std::vector<EdgeIndex> offsets_;  // size NumVertices() + 1
  std::vector<VertexId> targets_;  // size NumEdges()
};

}  // namespace vcmp

#endif  // VCMP_GRAPH_GRAPH_H_
