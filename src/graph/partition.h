#ifndef VCMP_GRAPH_PARTITION_H_
#define VCMP_GRAPH_PARTITION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace vcmp {

/// A vertex partitioning: assignment[v] is the machine owning vertex v.
struct Partitioning {
  uint32_t num_machines = 1;
  std::vector<uint32_t> assignment;

  uint32_t MachineOf(VertexId v) const { return assignment[v]; }

  /// Number of directed edges whose endpoints live on different machines
  /// (each crossing edge costs one network message per traversal).
  uint64_t CountCrossEdges(const Graph& graph) const;

  /// Vertices per machine.
  std::vector<uint64_t> MachineLoads() const;

  /// max load / mean load; 1.0 is perfectly balanced.
  double LoadImbalance() const;
};

/// Strategy interface. Each VC-system in the paper has a default strategy:
/// Pregel+/Giraph/GraphD hash vertices, GraphLab cuts along edges.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual Partitioning Partition(const Graph& graph,
                                 uint32_t num_machines) const = 0;
  virtual std::string name() const = 0;
};

/// Random hash on vertex IDs (Pregel+'s default).
class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(uint64_t seed = 0x9a7f) : seed_(seed) {}
  Partitioning Partition(const Graph& graph,
                         uint32_t num_machines) const override;
  std::string name() const override { return "hash"; }

 private:
  uint64_t seed_;
};

/// Contiguous ID ranges; preserves generator locality, used as a baseline.
class BlockPartitioner : public Partitioner {
 public:
  Partitioning Partition(const Graph& graph,
                         uint32_t num_machines) const override;
  std::string name() const override { return "block"; }
};

/// Linear Deterministic Greedy streaming partitioner: assigns each vertex
/// to the machine holding most of its already-placed neighbours, weighted
/// by a capacity penalty. Approximates GraphLab's communication-minimising
/// placement while staying one-pass and deterministic.
class GreedyEdgeCutPartitioner : public Partitioner {
 public:
  /// `slack` > 1 allows machines to exceed the average load by that factor.
  explicit GreedyEdgeCutPartitioner(double slack = 1.05) : slack_(slack) {}
  Partitioning Partition(const Graph& graph,
                         uint32_t num_machines) const override;
  std::string name() const override { return "greedy-edge-cut"; }

 private:
  double slack_;
};

/// Creates the default partitioner for a named strategy ("hash", "block",
/// "greedy-edge-cut").
std::unique_ptr<Partitioner> MakePartitioner(const std::string& name);

}  // namespace vcmp

#endif  // VCMP_GRAPH_PARTITION_H_
