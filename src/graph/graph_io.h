#ifndef VCMP_GRAPH_GRAPH_IO_H_
#define VCMP_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace vcmp {

/// Writes `graph` as a SNAP-style whitespace-separated edge list
/// ("# comment" lines allowed). Each directed CSR edge becomes one line.
Status SaveEdgeListText(const Graph& graph, const std::string& path);

/// Parses a SNAP-style edge list. `symmetrize` mirrors every edge (the SNAP
/// social graphs the paper uses are undirected but stored one-directional).
Result<Graph> LoadEdgeListText(const std::string& path,
                               bool symmetrize = true);

/// Compact binary snapshot of the CSR arrays (magic + counts + raw data).
/// Round-trips losslessly and ~20x faster than the text form.
Status SaveBinary(const Graph& graph, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

}  // namespace vcmp

#endif  // VCMP_GRAPH_GRAPH_IO_H_
