#include "graph/partition.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vcmp {

uint64_t Partitioning::CountCrossEdges(const Graph& graph) const {
  uint64_t cross = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    uint32_t home = assignment[v];
    for (VertexId u : graph.Neighbors(v)) {
      if (assignment[u] != home) ++cross;
    }
  }
  return cross;
}

std::vector<uint64_t> Partitioning::MachineLoads() const {
  std::vector<uint64_t> loads(num_machines, 0);
  for (uint32_t machine : assignment) ++loads[machine];
  return loads;
}

double Partitioning::LoadImbalance() const {
  if (assignment.empty()) return 1.0;
  std::vector<uint64_t> loads = MachineLoads();
  uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  double mean = static_cast<double>(assignment.size()) / num_machines;
  return static_cast<double>(max_load) / std::max(mean, 1.0);
}

namespace {

uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Partitioning HashPartitioner::Partition(const Graph& graph,
                                        uint32_t num_machines) const {
  VCMP_CHECK(num_machines > 0);
  Partitioning part;
  part.num_machines = num_machines;
  part.assignment.resize(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    part.assignment[v] =
        static_cast<uint32_t>(MixHash(v ^ seed_) % num_machines);
  }
  return part;
}

Partitioning BlockPartitioner::Partition(const Graph& graph,
                                         uint32_t num_machines) const {
  VCMP_CHECK(num_machines > 0);
  Partitioning part;
  part.num_machines = num_machines;
  part.assignment.resize(graph.NumVertices());
  uint64_t n = graph.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    part.assignment[v] = static_cast<uint32_t>(
        std::min<uint64_t>(v * num_machines / std::max<uint64_t>(n, 1),
                           num_machines - 1));
  }
  return part;
}

Partitioning GreedyEdgeCutPartitioner::Partition(
    const Graph& graph, uint32_t num_machines) const {
  VCMP_CHECK(num_machines > 0);
  Partitioning part;
  part.num_machines = num_machines;
  part.assignment.assign(graph.NumVertices(), num_machines);  // = unplaced

  // Capacity in EDGE units (a vertex weighs degree + 1): GraphLab-style
  // partitioners balance adjacency, which also spreads hubs — and with
  // them the PPR mass that concentrates on high-degree vertices — across
  // machines.
  const double capacity =
      slack_ *
      (static_cast<double>(graph.NumEdges() + graph.NumVertices()) /
       num_machines);
  std::vector<double> loads(num_machines, 0.0);
  std::vector<double> score(num_machines);

  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    // Count already-placed neighbours per machine.
    std::fill(score.begin(), score.end(), 0.0);
    for (VertexId u : graph.Neighbors(v)) {
      if (part.assignment[u] < num_machines) {
        score[part.assignment[u]] += 1.0;
      }
    }
    // LDG objective: neighbours(machine) * (1 - load/capacity).
    uint32_t best = 0;
    double best_score = -1.0;
    double weight = static_cast<double>(graph.OutDegree(v)) + 1.0;
    for (uint32_t machine = 0; machine < num_machines; ++machine) {
      double penalty = 1.0 - loads[machine] / capacity;
      if (penalty <= 0.0) continue;  // Machine is at capacity.
      double s = (score[machine] + 1.0) * penalty;
      if (s > best_score) {
        best_score = s;
        best = machine;
      }
    }
    if (best_score < 0.0) {
      // Everything full (only possible with tiny slack): least-loaded wins.
      best = static_cast<uint32_t>(
          std::min_element(loads.begin(), loads.end()) - loads.begin());
    }
    part.assignment[v] = best;
    loads[best] += weight;
  }
  return part;
}

std::unique_ptr<Partitioner> MakePartitioner(const std::string& name) {
  if (name == "hash") return std::make_unique<HashPartitioner>();
  if (name == "block") return std::make_unique<BlockPartitioner>();
  if (name == "greedy-edge-cut") {
    return std::make_unique<GreedyEdgeCutPartitioner>();
  }
  VCMP_CHECK(false) << "unknown partitioner '" << name << "'";
  return nullptr;
}

}  // namespace vcmp
