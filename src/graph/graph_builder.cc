#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

namespace vcmp {

void GraphBuilder::AddEdges(
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  sources_.reserve(sources_.size() + edges.size());
  targets_.reserve(targets_.size() + edges.size());
  for (const auto& [u, v] : edges) AddEdge(u, v);
}

Graph GraphBuilder::Build(const GraphBuildOptions& options) {
  const VertexId n = num_vertices_;
  if (options.symmetrize) {
    // Append the reverse of every buffered edge.
    size_t original = sources_.size();
    sources_.reserve(2 * original);
    targets_.reserve(2 * original);
    for (size_t i = 0; i < original; ++i) {
      sources_.push_back(targets_[i]);
      targets_.push_back(sources_[i]);
    }
  }

  // Counting sort by source vertex into CSR layout (O(n + m)).
  std::vector<EdgeIndex> offsets(static_cast<size_t>(n) + 1, 0);
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (options.remove_self_loops && sources_[i] == targets_[i]) continue;
    ++offsets[sources_[i] + 1];
  }
  for (size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> adj(offsets.back());
  {
    std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < sources_.size(); ++i) {
      if (options.remove_self_loops && sources_[i] == targets_[i]) continue;
      adj[cursor[sources_[i]]++] = targets_[i];
    }
  }
  sources_.clear();
  sources_.shrink_to_fit();
  targets_.clear();
  targets_.shrink_to_fit();

  // Per-vertex sort (for deterministic iteration order) and optional dedup.
  if (options.deduplicate) {
    std::vector<VertexId> compacted;
    compacted.reserve(adj.size());
    std::vector<EdgeIndex> new_offsets(static_cast<size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      auto begin = adj.begin() + static_cast<int64_t>(offsets[v]);
      auto end = adj.begin() + static_cast<int64_t>(offsets[v + 1]);
      std::sort(begin, end);
      auto unique_end = std::unique(begin, end);
      compacted.insert(compacted.end(), begin, unique_end);
      new_offsets[v + 1] = compacted.size();
    }
    return Graph(std::move(new_offsets), std::move(compacted));
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adj.begin() + static_cast<int64_t>(offsets[v]),
              adj.begin() + static_cast<int64_t>(offsets[v + 1]));
  }
  return Graph(std::move(offsets), std::move(adj));
}

}  // namespace vcmp
