#include "graph/vertex_cut.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace vcmp {
namespace {

/// Tracks which machines hold replicas of a vertex, as a bitset over
/// machines (clusters here are <= 64 machines… the paper's largest is 32;
/// fall back to bytes for bigger clusters).
class ReplicaTable {
 public:
  ReplicaTable(VertexId num_vertices, uint32_t machines)
      : machines_(machines), bits_(num_vertices, 0),
        wide_(machines > 64 ? static_cast<size_t>(num_vertices) * machines
                            : 0,
              0) {}

  bool Has(VertexId v, uint32_t machine) const {
    if (machines_ <= 64) return (bits_[v] >> machine) & 1ULL;
    return wide_[static_cast<size_t>(v) * machines_ + machine] != 0;
  }

  void Add(VertexId v, uint32_t machine) {
    if (machines_ <= 64) {
      bits_[v] |= (1ULL << machine);
    } else {
      wide_[static_cast<size_t>(v) * machines_ + machine] = 1;
    }
  }

  uint32_t Count(VertexId v) const {
    if (machines_ <= 64) {
      return static_cast<uint32_t>(__builtin_popcountll(bits_[v]));
    }
    uint32_t count = 0;
    for (uint32_t m = 0; m < machines_; ++m) {
      count += wide_[static_cast<size_t>(v) * machines_ + m];
    }
    return count;
  }

  /// First machine holding v (the master), or num_machines if none.
  uint32_t First(VertexId v) const {
    if (machines_ <= 64) {
      return bits_[v] == 0
                 ? machines_
                 : static_cast<uint32_t>(__builtin_ctzll(bits_[v]));
    }
    for (uint32_t m = 0; m < machines_; ++m) {
      if (wide_[static_cast<size_t>(v) * machines_ + m]) return m;
    }
    return machines_;
  }

 private:
  uint32_t machines_;
  std::vector<uint64_t> bits_;
  std::vector<uint8_t> wide_;
};

VertexCut Finalize(const Graph& graph, uint32_t machines,
                   std::vector<uint32_t> edge_machine,
                   const ReplicaTable& table) {
  VertexCut cut;
  cut.num_machines = machines;
  cut.edge_machine = std::move(edge_machine);
  cut.master.resize(graph.NumVertices());
  cut.replicas.resize(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    uint32_t first = table.First(v);
    cut.master[v] = first == machines ? v % machines : first;
    cut.replicas[v] = std::max(1u, table.Count(v));
  }
  return cut;
}

}  // namespace

double VertexCut::ReplicationFactor() const {
  if (replicas.empty()) return 1.0;
  double total = 0.0;
  for (uint32_t r : replicas) total += r;
  return total / static_cast<double>(replicas.size());
}

double VertexCut::EdgeImbalance(const Graph& graph) const {
  if (edge_machine.empty()) return 1.0;
  std::vector<uint64_t> loads(num_machines, 0);
  for (uint32_t machine : edge_machine) ++loads[machine];
  uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  double mean =
      static_cast<double>(graph.NumEdges()) / std::max(num_machines, 1u);
  return static_cast<double>(max_load) / std::max(mean, 1.0);
}

std::string VertexCut::ToString() const {
  return StrFormat("VertexCut(machines=%u, replication=%.2f)", num_machines,
                   ReplicationFactor());
}

VertexCut GreedyVertexCut(const Graph& graph, uint32_t num_machines) {
  VCMP_CHECK(num_machines > 0);
  ReplicaTable table(graph.NumVertices(), num_machines);
  std::vector<uint32_t> edge_machine(graph.NumEdges());
  std::vector<uint64_t> loads(num_machines, 0);
  // Balance constraint: locality candidates are only eligible while under
  // capacity; without it the first machine snowballs (every placed edge
  // makes it a locality candidate for its endpoints' remaining edges).
  const double capacity =
      1.1 * static_cast<double>(graph.NumEdges()) / num_machines + 8.0;

  auto least_loaded_of = [&](auto&& candidate_filter) {
    uint32_t best = num_machines;
    for (uint32_t m = 0; m < num_machines; ++m) {
      if (!candidate_filter(m)) continue;
      if (best == num_machines || loads[m] < loads[best]) best = m;
    }
    return best;
  };
  auto under_capacity = [&](uint32_t m) {
    return static_cast<double>(loads[m]) < capacity;
  };

  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    auto neighbors = graph.Neighbors(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      VertexId v = neighbors[i];
      EdgeIndex e = graph.offsets()[u] + i;
      // PowerGraph greedy rules, ties broken toward the lighter machine:
      // 1. an under-capacity machine holding both endpoints;
      uint32_t choice = least_loaded_of([&](uint32_t m) {
        return under_capacity(m) && table.Has(u, m) && table.Has(v, m);
      });
      // 2. else an under-capacity machine holding either endpoint;
      if (choice == num_machines) {
        choice = least_loaded_of([&](uint32_t m) {
          return under_capacity(m) &&
                 (table.Has(u, m) || table.Has(v, m));
        });
      }
      // 3. else the globally least-loaded machine.
      if (choice == num_machines) {
        choice = least_loaded_of([&](uint32_t) { return true; });
      }
      edge_machine[e] = choice;
      table.Add(u, choice);
      table.Add(v, choice);
      ++loads[choice];
    }
  }
  return Finalize(graph, num_machines, std::move(edge_machine), table);
}

VertexCut RandomVertexCut(const Graph& graph, uint32_t num_machines,
                          uint64_t seed) {
  VCMP_CHECK(num_machines > 0);
  ReplicaTable table(graph.NumVertices(), num_machines);
  std::vector<uint32_t> edge_machine(graph.NumEdges());
  Rng rng(seed);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    auto neighbors = graph.Neighbors(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      EdgeIndex e = graph.offsets()[u] + i;
      auto machine = static_cast<uint32_t>(rng.NextBounded(num_machines));
      edge_machine[e] = machine;
      table.Add(u, machine);
      table.Add(neighbors[i], machine);
    }
  }
  return Finalize(graph, num_machines, std::move(edge_machine), table);
}

}  // namespace vcmp
