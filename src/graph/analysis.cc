#include "graph/analysis.h"

#include <algorithm>
#include <bit>
#include <queue>

#include "common/rng.h"
#include "common/string_util.h"

namespace vcmp {

std::string DegreeStats::ToString() const {
  return StrFormat(
      "DegreeStats(max=%llu, mean=%.1f, E[d2]/E[d]=%.1f, top1%%=%.0f%%, "
      "isolated=%llu)",
      static_cast<unsigned long long>(max_degree), mean_degree,
      neighbor_degree_bias, 100.0 * top1pct_edge_share,
      static_cast<unsigned long long>(isolated_vertices));
}

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  const VertexId n = graph.NumVertices();
  if (n == 0) return stats;

  std::vector<uint64_t> degrees(n);
  double sum = 0.0;
  double sum_squares = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    uint64_t d = graph.OutDegree(v);
    degrees[v] = d;
    sum += static_cast<double>(d);
    sum_squares += static_cast<double>(d) * static_cast<double>(d);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.isolated_vertices;
  }
  stats.mean_degree = sum / n;
  stats.neighbor_degree_bias = sum > 0.0 ? sum_squares / sum : 0.0;

  // Top-1% edge share.
  std::sort(degrees.begin(), degrees.end(), std::greater<uint64_t>());
  size_t top = std::max<size_t>(1, n / 100);
  double top_edges = 0.0;
  for (size_t i = 0; i < top; ++i) {
    top_edges += static_cast<double>(degrees[i]);
  }
  stats.top1pct_edge_share = sum > 0.0 ? top_edges / sum : 0.0;
  return stats;
}

std::vector<uint64_t> DegreeHistogram(const Graph& graph) {
  std::vector<uint64_t> histogram;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    uint64_t d = graph.OutDegree(v);
    size_t bucket =
        d == 0 ? 0 : static_cast<size_t>(std::bit_width(d));  // log2+1.
    if (bucket >= histogram.size()) histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
  }
  return histogram;
}

DiameterEstimate EstimateDiameter(const Graph& graph, uint32_t samples,
                                  uint64_t seed) {
  DiameterEstimate estimate;
  const VertexId n = graph.NumVertices();
  if (n == 0 || samples == 0) return estimate;
  samples = std::min<uint32_t>(samples, n);

  Rng rng(seed);
  std::vector<uint64_t> distance_counts;  // distance_counts[d] = pairs.
  uint64_t reachable_pairs = 0;
  std::vector<uint32_t> dist(n);
  constexpr uint32_t kUnreached = static_cast<uint32_t>(-1);

  for (uint32_t s = 0; s < samples; ++s) {
    auto source = static_cast<VertexId>(rng.NextBounded(n));
    std::fill(dist.begin(), dist.end(), kUnreached);
    std::queue<VertexId> queue;
    dist[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop();
      for (VertexId u : graph.Neighbors(v)) {
        if (dist[u] != kUnreached) continue;
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] == kUnreached || v == source) continue;
      ++reachable_pairs;
      if (dist[v] >= distance_counts.size()) {
        distance_counts.resize(dist[v] + 1, 0);
      }
      ++distance_counts[dist[v]];
      estimate.max_observed = std::max(estimate.max_observed, dist[v]);
    }
  }
  estimate.reachable_fraction =
      static_cast<double>(reachable_pairs) /
      (static_cast<double>(samples) * (n - 1));
  // 90th percentile of the finite-distance distribution.
  uint64_t target = static_cast<uint64_t>(0.9 * reachable_pairs);
  uint64_t seen = 0;
  for (size_t d = 0; d < distance_counts.size(); ++d) {
    seen += distance_counts[d];
    if (seen >= target) {
      estimate.effective_diameter = static_cast<uint32_t>(d);
      break;
    }
  }
  return estimate;
}

}  // namespace vcmp
