#ifndef VCMP_GRAPH_VERTEX_CUT_H_
#define VCMP_GRAPH_VERTEX_CUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace vcmp {

/// A PowerGraph-style vertex cut: EDGES are assigned to machines and a
/// vertex is replicated on every machine holding one of its edges (one
/// master + mirrors). On power-law graphs this is the GraphLab family's
/// answer to hub skew — the paper's GraphLab/PowerLyra citations build on
/// it: a hub's adjacency is spread across machines instead of
/// concentrating its entire neighbourhood traffic on one.
struct VertexCut {
  uint32_t num_machines = 1;
  /// Owning machine per directed CSR edge index.
  std::vector<uint32_t> edge_machine;
  /// Master machine per vertex (the replica holding the authoritative
  /// state).
  std::vector<uint32_t> master;
  /// Replicas per vertex (>= 1 for every vertex with edges).
  std::vector<uint32_t> replicas;

  /// Average replicas per vertex — PowerGraph's replication factor; the
  /// per-round replica-synchronisation traffic is proportional to
  /// (factor - 1).
  double ReplicationFactor() const;

  /// max / mean edges per machine.
  double EdgeImbalance(const Graph& graph) const;

  std::string ToString() const;
};

/// PowerGraph's greedy edge placement: assign each edge to a machine
/// already holding both endpoints if possible, else one endpoint
/// (preferring the less loaded), else the least-loaded machine.
/// Single-pass, deterministic.
VertexCut GreedyVertexCut(const Graph& graph, uint32_t num_machines);

/// Baseline: hash edges uniformly (replication approaches
/// min(degree, machines) for hubs).
VertexCut RandomVertexCut(const Graph& graph, uint32_t num_machines,
                          uint64_t seed = 0x7c);

}  // namespace vcmp

#endif  // VCMP_GRAPH_VERTEX_CUT_H_
