#include "graph/datasets.h"

#include <cmath>

#include "common/logging.h"
#include "graph/generators.h"

namespace vcmp {
namespace {

// Table 1 of the paper (K=10^3, M=10^6, B=10^9). default_scale keeps every
// generated stand-in under ~15M directed edges so a full bench sweep runs
// in seconds; the simulator multiplies extensive statistics back by scale.
const std::vector<DatasetInfo> kDatasets = {
    {DatasetId::kWebSt, "Web-St", 281'900, 2'300'000, 8.2, 1.0, "rmat"},
    {DatasetId::kDblp, "DBLP", 613'600, 4'000'000, 6.5, 1.0, "pa"},
    {DatasetId::kLiveJournal, "LiveJournal", 4'000'000, 34'700'000, 8.7, 8.0,
     "rmat"},
    {DatasetId::kOrkut, "Orkut", 3'100'000, 117'200'000, 36.9, 16.0, "rmat"},
    {DatasetId::kTwitter, "Twitter", 41'700'000, 1'500'000'000, 35.2, 256.0,
     "rmat"},
    {DatasetId::kFriendster, "Friendster", 65'600'000, 1'800'000'000, 46.1,
     256.0, "rmat"},
};

uint64_t SeedFor(DatasetId id) {
  // Stable per-dataset seed so every binary generates identical graphs.
  return 0xdb5ULL + 97ULL * static_cast<uint64_t>(id);
}

}  // namespace

const std::vector<DatasetInfo>& AllDatasets() { return kDatasets; }

Result<DatasetInfo> FindDataset(const std::string& name) {
  for (const DatasetInfo& info : kDatasets) {
    if (name == info.name) return info;
  }
  std::string known;
  for (const DatasetInfo& info : kDatasets) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  return Status::NotFound("no dataset named '" + name +
                          "' (known datasets: " + known + ")");
}

Dataset LoadDataset(DatasetId id, double scale_override) {
  const DatasetInfo& info = kDatasets[static_cast<size_t>(id)];
  double scale = scale_override > 0.0 ? scale_override : info.default_scale;
  auto scaled_nodes = static_cast<VertexId>(
      std::llround(static_cast<double>(info.paper_nodes) / scale));
  auto scaled_edges = static_cast<uint64_t>(
      std::llround(static_cast<double>(info.paper_edges) / scale));
  VCMP_CHECK(scaled_nodes > 16) << "scale too aggressive for " << info.name;

  Dataset dataset;
  dataset.info = info;
  dataset.scale = scale;
  if (std::string(info.generator) == "pa") {
    // Preferential attachment adds edges_per_vertex undirected edges per
    // arriving vertex; after symmetrisation the directed edge count is
    // ~2 * n * epv, so epv = d_avg / 2 reproduces the average degree.
    PreferentialAttachmentParams params;
    params.num_vertices = scaled_nodes;
    params.edges_per_vertex =
        static_cast<uint32_t>(std::max(1.0, info.paper_avg_degree / 2.0));
    params.seed = SeedFor(id);
    dataset.graph = GeneratePreferentialAttachment(params);
  } else {
    // R-MAT with Graph500 skew; symmetrisation roughly doubles directed
    // edges but deduplication loses an input-dependent share, so sample
    // adaptively: start at half the target and correct once from the
    // measured yield (deterministic: the seed is fixed).
    RmatParams params;
    params.num_vertices = scaled_nodes;
    params.seed = SeedFor(id);
    params.symmetrize = true;
    if (id == DatasetId::kTwitter || id == DatasetId::kFriendster) {
      // The billion-edge stand-ins are generated at deep scale reduction;
      // Graph500 skew at that reduction produces relative hub degrees far
      // above the originals'. Soften the quadrant skew so the stand-in's
      // degree tail matches the real graphs' after scaling.
      params.a = 0.47;
      params.b = params.c = 0.22;
      params.d = 0.09;
    }
    double samples = static_cast<double>(scaled_edges) / 2.0;
    for (int attempt = 0; attempt < 3; ++attempt) {
      params.num_edges = static_cast<uint64_t>(samples);
      dataset.graph = GenerateRmat(params);
      double yield = static_cast<double>(dataset.graph.NumEdges());
      if (yield >= 0.9 * static_cast<double>(scaled_edges)) break;
      samples *= static_cast<double>(scaled_edges) / std::max(yield, 1.0);
    }
  }
  return dataset;
}

}  // namespace vcmp
