#include "graph/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"

namespace vcmp {
namespace {

constexpr uint64_t kBinaryMagic = 0x7663'6d70'6772'6601ULL;  // "vcmpgrf\1"

}  // namespace

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "# vcmp edge list: " << graph.NumVertices() << " vertices, "
      << graph.NumEdges() << " directed edges\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) {
      out << v << '\t' << u << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Graph> LoadEdgeListText(const std::string& path, bool symmetrize) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  uint64_t max_vertex = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    uint64_t u = 0;
    uint64_t v = 0;
    if (!(fields >> u >> v)) {
      return Status::IoError("malformed edge line: '" + line + "'");
    }
    max_vertex = std::max(max_vertex, std::max(u, v));
    edges.emplace_back(u, v);
  }
  if (edges.empty()) return Status::IoError("no edges in " + path);
  if (max_vertex >= static_cast<uint64_t>(kInvalidVertex)) {
    return Status::OutOfRange("vertex id exceeds 32-bit range");
  }
  GraphBuilder builder(static_cast<VertexId>(max_vertex + 1));
  for (const auto& [u, v] : edges) {
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.Build({.symmetrize = symmetrize});
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  uint64_t n = graph.NumVertices();
  uint64_t m = graph.NumEdges();
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(&n), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(&m), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(graph.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(graph.targets().data()),
            static_cast<std::streamsize>(m * sizeof(VertexId)));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Graph> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  uint64_t magic = 0;
  uint64_t n = 0;
  uint64_t m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(uint64_t));
  in.read(reinterpret_cast<char*>(&n), sizeof(uint64_t));
  in.read(reinterpret_cast<char*>(&m), sizeof(uint64_t));
  if (!in || magic != kBinaryMagic) {
    return Status::IoError("not a vcmp binary graph: " + path);
  }
  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> targets(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(EdgeIndex)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(m * sizeof(VertexId)));
  if (!in) return Status::IoError("truncated binary graph: " + path);
  if (offsets.front() != 0 || offsets.back() != m) {
    return Status::IoError("corrupt CSR offsets in " + path);
  }
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace vcmp
