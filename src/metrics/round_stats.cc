#include "metrics/round_stats.h"

#include "common/string_util.h"

namespace vcmp {

std::string RoundStats::ToString() const {
  return StrFormat(
      "round %llu: msgs=%s mem=%s time=%.3fs (cpu=%.3f net=%.3f disk=%.3f "
      "barrier=%.3f thrash=x%.2f)%s",
      static_cast<unsigned long long>(round), FormatCount(messages).c_str(),
      FormatBytes(max_memory_bytes).c_str(), total_seconds, compute_seconds,
      network_seconds, disk_stall_seconds, barrier_seconds, thrash_multiplier,
      overflow ? " OVERFLOW" : "");
}

}  // namespace vcmp
