#ifndef VCMP_METRICS_EXPORT_H_
#define VCMP_METRICS_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "metrics/round_stats.h"
#include "metrics/run_report.h"

namespace vcmp {

/// Writes per-round statistics as CSV (header + one row per round), the
/// raw material for re-plotting the paper's figures.
Status WriteRoundStatsCsv(const std::vector<RoundStats>& rounds,
                          const std::string& path);

/// Serialises a RunReport as a JSON object (hand-rolled writer — no
/// external dependency; keys are stable for downstream tooling).
std::string RunReportToJson(const RunReport& report);

/// Writes RunReportToJson(report) to `path`.
Status WriteRunReportJson(const RunReport& report, const std::string& path);

namespace internal_export {

/// Escapes a string for JSON embedding (quotes, backslashes, control
/// characters).
std::string JsonEscape(const std::string& raw);

}  // namespace internal_export
}  // namespace vcmp

#endif  // VCMP_METRICS_EXPORT_H_
