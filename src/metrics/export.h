#ifndef VCMP_METRICS_EXPORT_H_
#define VCMP_METRICS_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "metrics/round_stats.h"
#include "metrics/run_report.h"

namespace vcmp {

/// Version stamped as "schema_version" into every JSON export (run
/// reports, service reports, BENCH_*.json). Bump when a key changes
/// meaning or disappears so downstream tooling can dispatch on it.
inline constexpr int kJsonSchemaVersion = 2;

/// The one JSON object builder every exporter and bench binary shares
/// (no external dependency). Keys print in insertion order; doubles use
/// round-trip %.17g formatting (NaN and ±Inf become null — JSON has no
/// literal for them); strings are escaped. Usage:
///
///   JsonWriter json;                       // stamps schema_version
///   json.Field("threads", 8.0);
///   json.Field("workload", "BPPR W=4096");
///   json.RawField("batches", "[...]");     // pre-serialised nested value
///   WriteTextFile(json.Close(), path);
class JsonWriter {
 public:
  /// Starts "{"; stamps the shared "schema_version" field unless told
  /// not to (nested objects skip it).
  explicit JsonWriter(bool with_schema_version = true);

  void Field(const std::string& key, double value);
  void Field(const std::string& key, bool value);
  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, const char* value);
  void Field(const std::string& key, uint64_t value);
  /// Inserts `raw_json` verbatim (arrays, nested objects).
  void RawField(const std::string& key, const std::string& raw_json);

  /// Closes the object and returns the serialised text. The writer is
  /// spent afterwards.
  std::string Close();

 private:
  void Key(const std::string& key);

  std::string out_;
  bool first_ = true;
};

/// Writes `text` (plus a trailing newline) to `path`.
Status WriteTextFile(const std::string& text, const std::string& path);

/// Writes per-round statistics as CSV (header + one row per round), the
/// raw material for re-plotting the paper's figures.
Status WriteRoundStatsCsv(const std::vector<RoundStats>& rounds,
                          const std::string& path);

/// Serialises a RunReport as a JSON object (hand-rolled writer — no
/// external dependency; keys are stable for downstream tooling).
std::string RunReportToJson(const RunReport& report);

/// Writes RunReportToJson(report) to `path`.
Status WriteRunReportJson(const RunReport& report, const std::string& path);

namespace internal_export {

/// Escapes a string for JSON embedding (quotes, backslashes, control
/// characters).
std::string JsonEscape(const std::string& raw);

}  // namespace internal_export
}  // namespace vcmp

#endif  // VCMP_METRICS_EXPORT_H_
