#ifndef VCMP_METRICS_ROUND_STATS_H_
#define VCMP_METRICS_ROUND_STATS_H_

#include <cstdint>
#include <string>

namespace vcmp {

/// Everything measured and modelled for one communication round, at paper
/// scale. Produced by the cost model from the engine's ClusterRoundLoad.
struct RoundStats {
  uint64_t round = 0;

  // --- Measured (engine-side) ---
  /// Logical messages exchanged this round, cluster-wide (the paper's
  /// message-congestion measure).
  double messages = 0.0;
  /// Serialized message bytes cluster-wide.
  double message_bytes = 0.0;
  /// Bytes that crossed machine boundaries.
  double cross_machine_bytes = 0.0;
  double active_vertices = 0.0;
  /// Physical messages put on the wire this round (equals the logical
  /// sent units unless a combiner or mirror routing merged messages).
  double wire_messages = 0.0;
  /// Logical sent units per wire message (1.0 when nothing merged).
  double combined_ratio = 1.0;

  // --- Modelled (cost-model-side) ---
  double compute_seconds = 0.0;   // Slowest machine's compute.
  double network_seconds = 0.0;   // Un-hidden network flush time.
  double disk_stall_seconds = 0.0;
  double barrier_seconds = 0.0;
  double total_seconds = 0.0;     // Round wall-clock.

  /// Peak memory demand on the most loaded machine (bytes).
  double max_memory_bytes = 0.0;
  /// Peak in-memory message-buffer demand (before any out-of-core cap) on
  /// the most loaded machine — what GraphD would have to hold without
  /// spilling; the quantity the disk-bound tuner models.
  double max_buffered_bytes = 0.0;
  /// Residual memory on the most loaded machine (bytes).
  double max_residual_bytes = 0.0;
  double thrash_multiplier = 1.0;
  bool overflow = false;

  /// Bytes spilled to disk this round, summed over machines. Modeled
  /// overflow for plain out-of-core profiles; the engine's *measured*
  /// spill-file traffic when the real src/ooc path is active.
  double spilled_bytes = 0.0;

  double network_overuse_seconds = 0.0;
  double disk_overuse_seconds = 0.0;
  /// Raw transfer time demanded from the bottleneck machine's disk.
  double disk_io_seconds = 0.0;
  double disk_utilization = 0.0;  // Max over machines, in [0, 1].
  double io_queue_length = 0.0;   // Max over machines.
  /// True when a write queue formed (disk demand outran the overlap
  /// window) on any machine this round.
  bool disk_saturated = false;

  std::string ToString() const;
};

}  // namespace vcmp

#endif  // VCMP_METRICS_ROUND_STATS_H_
