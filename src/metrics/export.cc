#include "metrics/export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace vcmp {

Status WriteRoundStatsCsv(const std::vector<RoundStats>& rounds,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "round,messages,message_bytes,cross_machine_bytes,"
         "active_vertices,compute_seconds,network_seconds,"
         "disk_stall_seconds,barrier_seconds,total_seconds,"
         "max_memory_bytes,max_residual_bytes,thrash_multiplier,overflow,"
         "network_overuse_seconds,disk_overuse_seconds,disk_utilization,"
         "io_queue_length,disk_saturated\n";
  for (const RoundStats& r : rounds) {
    out << StrFormat(
        "%llu,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
        "%.17g,%.17g,%.17g,%d,%.17g,%.17g,%.17g,%.17g,%d\n",
        static_cast<unsigned long long>(r.round), r.messages,
        r.message_bytes, r.cross_machine_bytes, r.active_vertices,
        r.compute_seconds, r.network_seconds, r.disk_stall_seconds,
        r.barrier_seconds, r.total_seconds, r.max_memory_bytes,
        r.max_residual_bytes, r.thrash_multiplier, r.overflow ? 1 : 0,
        r.network_overuse_seconds, r.disk_overuse_seconds,
        r.disk_utilization, r.io_queue_length, r.disk_saturated ? 1 : 0);
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

namespace internal_export {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace internal_export

namespace {

void AppendField(std::ostringstream& out, const char* key, double value,
                 bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << StrFormat("%.17g", value);
}

void AppendField(std::ostringstream& out, const char* key, bool value,
                 bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << (value ? "true" : "false");
}

void AppendField(std::ostringstream& out, const char* key,
                 const std::string& value, bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":\"" << internal_export::JsonEscape(value)
      << "\"";
}

}  // namespace

std::string RunReportToJson(const RunReport& report) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  AppendField(out, "system", report.system, &first);
  AppendField(out, "dataset", report.dataset, &first);
  AppendField(out, "task", report.task, &first);
  AppendField(out, "cluster", report.cluster, &first);
  AppendField(out, "workload", report.workload, &first);
  AppendField(out, "total_seconds", report.total_seconds, &first);
  AppendField(out, "overloaded", report.overloaded, &first);
  AppendField(out, "total_rounds",
              static_cast<double>(report.total_rounds), &first);
  AppendField(out, "total_messages", report.total_messages, &first);
  AppendField(out, "messages_per_round", report.MessagesPerRound(),
              &first);
  AppendField(out, "peak_memory_bytes", report.peak_memory_bytes, &first);
  AppendField(out, "peak_residual_bytes", report.peak_residual_bytes,
              &first);
  AppendField(out, "network_overuse_seconds",
              report.network_overuse_seconds, &first);
  AppendField(out, "disk_overuse_seconds", report.disk_overuse_seconds,
              &first);
  AppendField(out, "disk_utilization", report.disk_utilization, &first);
  AppendField(out, "disk_saturated", report.disk_saturated, &first);
  AppendField(out, "max_io_queue_length", report.max_io_queue_length,
              &first);
  AppendField(out, "monetary_cost", report.monetary_cost, &first);
  out << ",\"batches\":[";
  for (size_t i = 0; i < report.batches.size(); ++i) {
    const BatchReport& batch = report.batches[i];
    if (i > 0) out << ",";
    out << "{";
    bool batch_first = true;
    AppendField(out, "workload", batch.workload, &batch_first);
    AppendField(out, "seconds", batch.seconds, &batch_first);
    AppendField(out, "overloaded", batch.overloaded, &batch_first);
    AppendField(out, "rounds", static_cast<double>(batch.rounds),
                &batch_first);
    AppendField(out, "messages", batch.messages, &batch_first);
    AppendField(out, "peak_memory_bytes", batch.peak_memory_bytes,
                &batch_first);
    AppendField(out, "peak_residual_bytes", batch.peak_residual_bytes,
                &batch_first);
    out << "}";
  }
  out << "]}";
  return out.str();
}

Status WriteRunReportJson(const RunReport& report,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << RunReportToJson(report) << "\n";
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace vcmp
