#include "metrics/export.h"

#include <cmath>
#include <fstream>

#include "common/string_util.h"

namespace vcmp {

Status WriteRoundStatsCsv(const std::vector<RoundStats>& rounds,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "round,messages,message_bytes,cross_machine_bytes,"
         "active_vertices,compute_seconds,network_seconds,"
         "disk_stall_seconds,barrier_seconds,total_seconds,"
         "max_memory_bytes,max_residual_bytes,thrash_multiplier,overflow,"
         "network_overuse_seconds,disk_overuse_seconds,disk_utilization,"
         "io_queue_length,disk_saturated,spilled_bytes\n";
  for (const RoundStats& r : rounds) {
    out << StrFormat(
        "%llu,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
        "%.17g,%.17g,%.17g,%d,%.17g,%.17g,%.17g,%.17g,%d,%.17g\n",
        static_cast<unsigned long long>(r.round), r.messages,
        r.message_bytes, r.cross_machine_bytes, r.active_vertices,
        r.compute_seconds, r.network_seconds, r.disk_stall_seconds,
        r.barrier_seconds, r.total_seconds, r.max_memory_bytes,
        r.max_residual_bytes, r.thrash_multiplier, r.overflow ? 1 : 0,
        r.network_overuse_seconds, r.disk_overuse_seconds,
        r.disk_utilization, r.io_queue_length, r.disk_saturated ? 1 : 0,
        r.spilled_bytes);
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

namespace internal_export {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace internal_export

JsonWriter::JsonWriter(bool with_schema_version) : out_("{") {
  if (with_schema_version) {
    Field("schema_version", static_cast<uint64_t>(kJsonSchemaVersion));
  }
}

void JsonWriter::Key(const std::string& key) {
  if (!first_) out_ += ",";
  first_ = false;
  out_ += '"';
  out_ += internal_export::JsonEscape(key);
  out_ += "\":";
}

void JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  // JSON has no NaN/Infinity literals; "%.17g" would emit "nan"/"inf"
  // and corrupt the document. null is the conventional stand-in.
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  out_ += StrFormat("%.17g", value);
}

void JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  out_ += '"';
  out_ += internal_export::JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Field(const std::string& key, const char* value) {
  Field(key, std::string(value));
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  Key(key);
  out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
}

void JsonWriter::RawField(const std::string& key,
                          const std::string& raw_json) {
  Key(key);
  out_ += raw_json;
}

std::string JsonWriter::Close() {
  out_ += "}";
  return std::move(out_);
}

Status WriteTextFile(const std::string& text, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << text << "\n";
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

std::string RunReportToJson(const RunReport& report) {
  JsonWriter json;
  json.Field("system", report.system);
  json.Field("dataset", report.dataset);
  json.Field("task", report.task);
  json.Field("cluster", report.cluster);
  json.Field("workload", report.workload);
  json.Field("total_seconds", report.total_seconds);
  json.Field("overloaded", report.overloaded);
  json.Field("total_rounds", report.total_rounds);
  json.Field("total_messages", report.total_messages);
  json.Field("messages_per_round", report.MessagesPerRound());
  json.Field("peak_memory_bytes", report.peak_memory_bytes);
  json.Field("peak_residual_bytes", report.peak_residual_bytes);
  json.Field("network_overuse_seconds", report.network_overuse_seconds);
  json.Field("disk_overuse_seconds", report.disk_overuse_seconds);
  json.Field("disk_utilization", report.disk_utilization);
  json.Field("disk_saturated", report.disk_saturated);
  json.Field("max_io_queue_length", report.max_io_queue_length);
  json.Field("spilled_bytes", report.spilled_bytes);
  json.Field("monetary_cost", report.monetary_cost);
  std::string batches = "[";
  for (size_t i = 0; i < report.batches.size(); ++i) {
    const BatchReport& batch = report.batches[i];
    if (i > 0) batches += ",";
    JsonWriter item(/*with_schema_version=*/false);
    item.Field("workload", batch.workload);
    item.Field("seconds", batch.seconds);
    item.Field("overloaded", batch.overloaded);
    item.Field("rounds", batch.rounds);
    item.Field("messages", batch.messages);
    item.Field("peak_memory_bytes", batch.peak_memory_bytes);
    item.Field("peak_residual_bytes", batch.peak_residual_bytes);
    item.Field("spilled_bytes", batch.spilled_bytes);
    batches += item.Close();
  }
  batches += "]";
  json.RawField("batches", batches);
  return json.Close();
}

Status WriteRunReportJson(const RunReport& report,
                          const std::string& path) {
  return WriteTextFile(RunReportToJson(report), path);
}

}  // namespace vcmp
