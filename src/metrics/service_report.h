#ifndef VCMP_METRICS_SERVICE_REPORT_H_
#define VCMP_METRICS_SERVICE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace vcmp {

/// Lifecycle of one query through the serving layer. Times are simulated
/// seconds on the service clock.
struct QueryOutcome {
  uint64_t id = 0;
  uint32_t client = 0;
  std::string task;
  double units = 0.0;
  double arrival_seconds = 0.0;
  /// Batch execution start/finish; zero when shed.
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  bool shed = false;

  double QueueSeconds() const { return start_seconds - arrival_seconds; }
  double LatencySeconds() const {
    return finish_seconds - arrival_seconds;
  }
};

/// One formed batch: what the policy decided and what executing it cost.
/// The feasibility invariant of the dynamic policy — predicted peak plus
/// `residual_at_formation_bytes` under p*M — is checked against this
/// trace in tests and in the standing bench.
struct ServiceBatchTrace {
  double start_seconds = 0.0;
  double seconds = 0.0;
  size_t queries = 0;
  double units = 0.0;
  double residual_at_formation_bytes = 0.0;
  double peak_memory_bytes = 0.0;
  bool overloaded = false;
};

/// Summary of one serving run (one policy, one arrival trace).
struct ServiceReport {
  std::string policy;
  std::string dataset;
  std::string system;
  double horizon_seconds = 0.0;

  std::vector<QueryOutcome> queries;
  std::vector<ServiceBatchTrace> batches;

  /// Aggregates (filled by Finalize()).
  uint64_t completed = 0;
  uint64_t shed = 0;
  std::vector<uint64_t> per_client_completed;
  std::vector<uint64_t> per_client_shed;
  double total_units = 0.0;
  double mean_batch_units = 0.0;
  double p50_latency_seconds = 0.0;
  double p95_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  double mean_queue_seconds = 0.0;
  /// Completed queries per simulated second of makespan.
  double throughput_qps = 0.0;
  /// Last completion time (the simulated makespan).
  double makespan_seconds = 0.0;
  /// Engine-busy fraction of the makespan.
  double utilization = 0.0;
  double peak_memory_bytes = 0.0;
  double peak_residual_bytes = 0.0;
  /// True when any batch entered the paper's memory-overload state.
  bool memory_overload = false;

  /// Computes every aggregate from `queries` and `batches`.
  /// `num_clients` sizes the per-client vectors; `busy_seconds` is the
  /// summed batch execution time.
  void Finalize(uint32_t num_clients, double busy_seconds);

  /// Nearest-rank percentile of completed-query latency (q in (0, 1]).
  double LatencyPercentile(double q) const;

  /// One-line summary for logs and tables.
  std::string ToString() const;
};

/// JSON export (schema_version-stamped, shared JsonWriter).
std::string ServiceReportToJson(const ServiceReport& report,
                                bool include_queries = false);
Status WriteServiceReportJson(const ServiceReport& report,
                              const std::string& path,
                              bool include_queries = false);

/// Per-query CSV (one row per query, shed rows included) for latency
/// distribution plots.
Status WriteQueryOutcomesCsv(const std::vector<QueryOutcome>& queries,
                             const std::string& path);

}  // namespace vcmp

#endif  // VCMP_METRICS_SERVICE_REPORT_H_
