#include "metrics/run_report.h"

#include <algorithm>

#include "common/string_util.h"

namespace vcmp {

void RunReport::Absorb(const BatchReport& batch) {
  batches.push_back(batch);
  total_seconds += batch.seconds;
  overloaded = overloaded || batch.overloaded;
  total_rounds += batch.rounds;
  total_messages += batch.messages;
  peak_memory_bytes = std::max(peak_memory_bytes, batch.peak_memory_bytes);
  peak_residual_bytes =
      std::max(peak_residual_bytes, batch.peak_residual_bytes);
  peak_buffered_bytes =
      std::max(peak_buffered_bytes, batch.peak_buffered_bytes);
  network_overuse_seconds += batch.network_overuse_seconds;
  disk_overuse_seconds += batch.disk_overuse_seconds;
  // Time-weighted average across batches.
  double previous_seconds = total_seconds - batch.seconds;
  disk_utilization =
      total_seconds <= 0.0
          ? 0.0
          : (disk_utilization * previous_seconds +
             batch.disk_utilization * batch.seconds) /
                total_seconds;
  disk_saturated = disk_saturated || batch.disk_saturated;
  max_io_queue_length =
      std::max(max_io_queue_length, batch.max_io_queue_length);
  spilled_bytes += batch.spilled_bytes;
}

std::string RunReport::ToString() const {
  return StrFormat(
      "%s/%s/%s on %s W=%.0f: %s in %zu batches (%llu rounds, %s msgs/round,"
      " peak mem %s)%s",
      task.c_str(), system.c_str(), dataset.c_str(), cluster.c_str(),
      workload, FormatSeconds(overloaded ? -1.0 : total_seconds).c_str(),
      batches.size(), static_cast<unsigned long long>(total_rounds),
      FormatCount(MessagesPerRound()).c_str(),
      FormatBytes(peak_memory_bytes).c_str(),
      overloaded ? " OVERLOADED" : "");
}

}  // namespace vcmp
