#include "metrics/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace vcmp {

std::string RenderBarChart(const std::vector<ChartBar>& bars, int bar_width,
                           const std::string& unit) {
  if (bars.empty()) return "";
  double max_value = 0.0;
  size_t label_width = 0;
  for (const ChartBar& bar : bars) {
    max_value = std::max(max_value, bar.value);
    label_width = std::max(label_width, bar.label.size());
  }
  if (max_value <= 0.0) max_value = 1.0;

  std::ostringstream out;
  for (const ChartBar& bar : bars) {
    out << bar.label
        << std::string(label_width - bar.label.size(), ' ')
        << (bar.highlight ? " *|" : "  |");
    int filled = bar.saturated
                     ? bar_width
                     : static_cast<int>(
                           std::lround(bar.value / max_value * bar_width));
    filled = std::clamp(filled, bar.value > 0.0 ? 1 : 0, bar_width);
    out << std::string(filled, '#');
    if (bar.saturated) {
      out << "> Overload";
    } else {
      out << std::string(bar_width - filled, ' ') << " "
          << StrFormat("%.1f%s", bar.value, unit.c_str());
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace vcmp
