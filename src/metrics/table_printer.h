#ifndef VCMP_METRICS_TABLE_PRINTER_H_
#define VCMP_METRICS_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace vcmp {

/// Aligned plain-text tables for bench output, mimicking the row/column
/// structure of the paper's tables and figure series.
///
///   TablePrinter t({"#batches", "time", "memory"});
///   t.AddRow({"1", "173.3s", "4.3GB"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule and 2-space column gaps.
  void Print(std::ostream& out) const;
  std::string ToString() const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Figure 4: ... ==") for bench output.
void PrintBanner(std::ostream& out, const std::string& title);

}  // namespace vcmp

#endif  // VCMP_METRICS_TABLE_PRINTER_H_
