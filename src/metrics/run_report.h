#ifndef VCMP_METRICS_RUN_REPORT_H_
#define VCMP_METRICS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vcmp {

/// Summary of one executed batch.
struct BatchReport {
  double workload = 0.0;
  double seconds = 0.0;
  bool overloaded = false;
  uint64_t rounds = 0;
  double messages = 0.0;           // Logical, paper scale.
  double peak_memory_bytes = 0.0;  // Max machine demand.
  double peak_residual_bytes = 0.0;
  double peak_buffered_bytes = 0.0;
  double network_overuse_seconds = 0.0;
  double disk_overuse_seconds = 0.0;
  /// Time-weighted disk utilisation of the batch.
  double disk_utilization = 0.0;
  bool disk_saturated = false;
  double max_io_queue_length = 0.0;
  /// Bytes spilled to disk over the batch (modeled, or measured when the
  /// real out-of-core path ran).
  double spilled_bytes = 0.0;
};

/// Summary of a complete multi-processing run (all batches).
struct RunReport {
  std::string system;
  std::string dataset;
  std::string task;
  std::string cluster;
  double workload = 0.0;

  std::vector<BatchReport> batches;

  double total_seconds = 0.0;
  bool overloaded = false;
  uint64_t total_rounds = 0;
  double total_messages = 0.0;
  double peak_memory_bytes = 0.0;
  double peak_residual_bytes = 0.0;
  double peak_buffered_bytes = 0.0;
  double network_overuse_seconds = 0.0;
  double disk_overuse_seconds = 0.0;
  /// Time-weighted disk utilisation over all batches.
  double disk_utilization = 0.0;
  bool disk_saturated = false;
  double max_io_queue_length = 0.0;
  /// Bytes spilled to disk over the whole run.
  double spilled_bytes = 0.0;
  /// Cloud credits (only populated for cloud clusters).
  double monetary_cost = 0.0;

  /// Average logical messages per round — the paper's congestion measure.
  double MessagesPerRound() const {
    return total_rounds == 0 ? 0.0 : total_messages / total_rounds;
  }

  /// Folds one batch's report into the run totals.
  void Absorb(const BatchReport& batch);

  /// One-line summary for logs.
  std::string ToString() const;
};

}  // namespace vcmp

#endif  // VCMP_METRICS_RUN_REPORT_H_
