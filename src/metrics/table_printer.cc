#include "metrics/table_printer.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace vcmp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  VCMP_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, table has "
      << headers_.size() << " columns";
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream out;
  Print(out);
  return out.str();
}

void PrintBanner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

}  // namespace vcmp
