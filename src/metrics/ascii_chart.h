#ifndef VCMP_METRICS_ASCII_CHART_H_
#define VCMP_METRICS_ASCII_CHART_H_

#include <string>
#include <vector>

namespace vcmp {

/// One bar of an ASCII chart.
struct ChartBar {
  std::string label;
  double value = 0.0;
  /// Overloaded runs render as a full-width bar capped with '>'.
  bool saturated = false;
  /// The optimum bar gets a '*' marker (the paper's yellow arrows).
  bool highlight = false;
};

/// Renders a horizontal bar chart the way the paper's figures stack
/// per-batch running times:
///
///   1-batch   |############################> Overload
///   2-batch   |#############                1983.4s
///   4-batch * |############                 1966.7s
///
/// `unit` is appended to each value (e.g. "s"). Width excludes labels.
std::string RenderBarChart(const std::vector<ChartBar>& bars,
                           int bar_width = 40,
                           const std::string& unit = "s");

}  // namespace vcmp

#endif  // VCMP_METRICS_ASCII_CHART_H_
