#include "metrics/service_report.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/string_util.h"
#include "metrics/export.h"

namespace vcmp {

double ServiceReport::LatencyPercentile(double q) const {
  std::vector<double> latencies;
  latencies.reserve(queries.size());
  for (const QueryOutcome& query : queries) {
    if (!query.shed) latencies.push_back(query.LatencySeconds());
  }
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  // Nearest-rank: the smallest latency covering a q fraction of queries.
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(latencies.size())));
  rank = std::min(std::max<size_t>(rank, 1), latencies.size());
  return latencies[rank - 1];
}

void ServiceReport::Finalize(uint32_t num_clients, double busy_seconds) {
  completed = 0;
  shed = 0;
  per_client_completed.assign(num_clients, 0);
  per_client_shed.assign(num_clients, 0);
  total_units = 0.0;
  makespan_seconds = 0.0;
  max_latency_seconds = 0.0;
  mean_queue_seconds = 0.0;
  for (const QueryOutcome& query : queries) {
    if (query.shed) {
      ++shed;
      if (query.client < num_clients) ++per_client_shed[query.client];
      continue;
    }
    ++completed;
    if (query.client < num_clients) ++per_client_completed[query.client];
    total_units += query.units;
    makespan_seconds = std::max(makespan_seconds, query.finish_seconds);
    max_latency_seconds =
        std::max(max_latency_seconds, query.LatencySeconds());
    mean_queue_seconds += query.QueueSeconds();
  }
  if (completed > 0) {
    mean_queue_seconds /= static_cast<double>(completed);
  }
  p50_latency_seconds = LatencyPercentile(0.50);
  p95_latency_seconds = LatencyPercentile(0.95);
  p99_latency_seconds = LatencyPercentile(0.99);
  throughput_qps = makespan_seconds > 0.0
                       ? static_cast<double>(completed) / makespan_seconds
                       : 0.0;
  utilization =
      makespan_seconds > 0.0 ? busy_seconds / makespan_seconds : 0.0;

  mean_batch_units = 0.0;
  peak_memory_bytes = 0.0;
  peak_residual_bytes = 0.0;
  memory_overload = false;
  for (const ServiceBatchTrace& batch : batches) {
    mean_batch_units += batch.units;
    peak_memory_bytes = std::max(peak_memory_bytes, batch.peak_memory_bytes);
    peak_residual_bytes =
        std::max(peak_residual_bytes, batch.residual_at_formation_bytes);
    memory_overload = memory_overload || batch.overloaded;
  }
  if (!batches.empty()) {
    mean_batch_units /= static_cast<double>(batches.size());
  }
}

std::string ServiceReport::ToString() const {
  return StrFormat(
      "[%s] %llu done / %llu shed, p50 %.2fs p95 %.2fs p99 %.2fs, "
      "%.2f q/s, util %.0f%%, %zu batches (mean %.0f units)%s",
      policy.c_str(), static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(shed), p50_latency_seconds,
      p95_latency_seconds, p99_latency_seconds, throughput_qps,
      100.0 * utilization, batches.size(), mean_batch_units,
      memory_overload ? " OVERLOAD" : "");
}

std::string ServiceReportToJson(const ServiceReport& report,
                                bool include_queries) {
  JsonWriter json;
  json.Field("policy", report.policy);
  json.Field("dataset", report.dataset);
  json.Field("system", report.system);
  json.Field("horizon_seconds", report.horizon_seconds);
  json.Field("completed", report.completed);
  json.Field("shed", report.shed);
  json.Field("total_units", report.total_units);
  json.Field("num_batches", static_cast<uint64_t>(report.batches.size()));
  json.Field("mean_batch_units", report.mean_batch_units);
  json.Field("p50_latency_seconds", report.p50_latency_seconds);
  json.Field("p95_latency_seconds", report.p95_latency_seconds);
  json.Field("p99_latency_seconds", report.p99_latency_seconds);
  json.Field("max_latency_seconds", report.max_latency_seconds);
  json.Field("mean_queue_seconds", report.mean_queue_seconds);
  json.Field("throughput_qps", report.throughput_qps);
  json.Field("makespan_seconds", report.makespan_seconds);
  json.Field("utilization", report.utilization);
  json.Field("peak_memory_bytes", report.peak_memory_bytes);
  json.Field("peak_residual_bytes", report.peak_residual_bytes);
  json.Field("memory_overload", report.memory_overload);
  std::string batches = "[";
  for (size_t i = 0; i < report.batches.size(); ++i) {
    const ServiceBatchTrace& batch = report.batches[i];
    if (i > 0) batches += ",";
    JsonWriter item(/*with_schema_version=*/false);
    item.Field("start_seconds", batch.start_seconds);
    item.Field("seconds", batch.seconds);
    item.Field("queries", static_cast<uint64_t>(batch.queries));
    item.Field("units", batch.units);
    item.Field("residual_at_formation_bytes",
               batch.residual_at_formation_bytes);
    item.Field("peak_memory_bytes", batch.peak_memory_bytes);
    item.Field("overloaded", batch.overloaded);
    batches += item.Close();
  }
  batches += "]";
  json.RawField("batches", batches);
  if (include_queries) {
    std::string queries = "[";
    for (size_t i = 0; i < report.queries.size(); ++i) {
      const QueryOutcome& query = report.queries[i];
      if (i > 0) queries += ",";
      JsonWriter item(/*with_schema_version=*/false);
      item.Field("id", query.id);
      item.Field("client", static_cast<uint64_t>(query.client));
      item.Field("task", query.task);
      item.Field("units", query.units);
      item.Field("arrival_seconds", query.arrival_seconds);
      item.Field("start_seconds", query.start_seconds);
      item.Field("finish_seconds", query.finish_seconds);
      item.Field("shed", query.shed);
      queries += item.Close();
    }
    queries += "]";
    json.RawField("queries", queries);
  }
  return json.Close();
}

Status WriteServiceReportJson(const ServiceReport& report,
                              const std::string& path,
                              bool include_queries) {
  return WriteTextFile(ServiceReportToJson(report, include_queries), path);
}

Status WriteQueryOutcomesCsv(const std::vector<QueryOutcome>& queries,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "id,client,task,units,arrival_seconds,start_seconds,"
         "finish_seconds,queue_seconds,latency_seconds,shed\n";
  for (const QueryOutcome& query : queries) {
    out << StrFormat(
        "%llu,%u,%s,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%d\n",
        static_cast<unsigned long long>(query.id), query.client,
        query.task.c_str(), query.units, query.arrival_seconds,
        query.start_seconds, query.finish_seconds,
        query.shed ? 0.0 : query.QueueSeconds(),
        query.shed ? 0.0 : query.LatencySeconds(), query.shed ? 1 : 0);
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace vcmp
