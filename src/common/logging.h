#ifndef VCMP_COMMON_LOGGING_H_
#define VCMP_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace vcmp {

/// Log severity levels, ordered by importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; writes one line to stderr at destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process at destruction; used by VCMP_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace vcmp

#define VCMP_LOG(level)                                              \
  ::vcmp::internal_logging::LogMessage(::vcmp::LogLevel::k##level,   \
                                       __FILE__, __LINE__)           \
      .stream()

/// Invariant check: logs the failed condition and aborts when false.
#define VCMP_CHECK(cond)                                             \
  if (cond) {                                                        \
  } else /* NOLINT */                                                \
    ::vcmp::internal_logging::FatalLogMessage(__FILE__, __LINE__)    \
        .stream()                                                    \
        << "Check failed: " #cond " "

#define VCMP_CHECK_OK(expr)                                          \
  do {                                                               \
    ::vcmp::Status _st = (expr);                                     \
    VCMP_CHECK(_st.ok()) << _st.ToString();                          \
  } while (0)

#endif  // VCMP_COMMON_LOGGING_H_
