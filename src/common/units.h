#ifndef VCMP_COMMON_UNITS_H_
#define VCMP_COMMON_UNITS_H_

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/result.h"

namespace vcmp {

/// Byte-size constants, decimal flavour used informally in the paper text
/// ("16GB memory") is actually binary in practice; we use binary units.
inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

/// Counts used by the paper's dataset table (K=10^3, M=10^6, B=10^9).
inline constexpr uint64_t kKilo = 1000ULL;
inline constexpr uint64_t kMega = 1000ULL * kKilo;
inline constexpr uint64_t kGiga = 1000ULL * kMega;

/// Converts bytes to fractional GiB for reporting.
inline double BytesToGiB(double bytes) {
  return bytes / static_cast<double>(kGiB);
}

/// Converts bytes to fractional MiB for reporting.
inline double BytesToMiB(double bytes) {
  return bytes / static_cast<double>(kMiB);
}

/// Parses a human byte size like "512MiB", "2.5GiB", "64K", "4096".
/// Suffixes are binary and case-insensitive: B, K/KB/KiB, M/MB/MiB,
/// G/GB/GiB; fractional values are allowed ("2.5GiB"). Rejects empty,
/// negative, non-finite, and unrecognised inputs with InvalidArgument.
inline Result<uint64_t> ParseByteSize(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty byte size");
  const char* begin = text.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) {
    return Status::InvalidArgument("malformed byte size '" + text + "'");
  }
  if (!std::isfinite(value) || value < 0.0) {
    return Status::InvalidArgument("byte size must be a non-negative finite "
                                   "number, got '" + text + "'");
  }
  std::string suffix;
  for (const char* c = end; *c != '\0'; ++c) {
    if (!std::isspace(static_cast<unsigned char>(*c))) {
      suffix.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(*c))));
    }
  }
  double multiplier = 1.0;
  if (suffix.empty() || suffix == "b") {
    multiplier = 1.0;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    multiplier = static_cast<double>(kKiB);
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    multiplier = static_cast<double>(kMiB);
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    multiplier = static_cast<double>(kGiB);
  } else {
    return Status::InvalidArgument("unrecognised byte-size suffix in '" +
                                   text + "' (use B, KiB, MiB, or GiB)");
  }
  const double bytes = value * multiplier;
  if (bytes > 9.2e18) {
    return Status::OutOfRange("byte size '" + text + "' overflows 64 bits");
  }
  return static_cast<uint64_t>(bytes);
}

}  // namespace vcmp

#endif  // VCMP_COMMON_UNITS_H_
