#ifndef VCMP_COMMON_UNITS_H_
#define VCMP_COMMON_UNITS_H_

#include <cstdint>

namespace vcmp {

/// Byte-size constants, decimal flavour used informally in the paper text
/// ("16GB memory") is actually binary in practice; we use binary units.
inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

/// Counts used by the paper's dataset table (K=10^3, M=10^6, B=10^9).
inline constexpr uint64_t kKilo = 1000ULL;
inline constexpr uint64_t kMega = 1000ULL * kKilo;
inline constexpr uint64_t kGiga = 1000ULL * kMega;

/// Converts bytes to fractional GiB for reporting.
inline double BytesToGiB(double bytes) {
  return bytes / static_cast<double>(kGiB);
}

/// Converts bytes to fractional MiB for reporting.
inline double BytesToMiB(double bytes) {
  return bytes / static_cast<double>(kMiB);
}

}  // namespace vcmp

#endif  // VCMP_COMMON_UNITS_H_
