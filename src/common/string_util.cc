#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace vcmp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1 for the terminating NUL that vsnprintf writes.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> SplitString(const std::string& s,
                                     const std::string& delims) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find_first_of(delims, start);
    if (end == std::string::npos) end = s.size();
    if (end > start) parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string FormatSeconds(double seconds) {
  if (seconds < 0) return "Overload";
  if (seconds >= 600.0) return StrFormat("%.0fmin", seconds / 60.0);
  if (seconds >= 100.0) return StrFormat("%.0fs", seconds);
  return StrFormat("%.1fs", seconds);
}

std::string FormatBytes(double bytes) {
  constexpr double kGb = 1024.0 * 1024.0 * 1024.0;
  constexpr double kMb = 1024.0 * 1024.0;
  constexpr double kKb = 1024.0;
  if (bytes >= kGb) return StrFormat("%.1fGB", bytes / kGb);
  if (bytes >= kMb) return StrFormat("%.0fMB", bytes / kMb);
  if (bytes >= kKb) return StrFormat("%.0fKB", bytes / kKb);
  return StrFormat("%.0fB", bytes);
}

std::string FormatCount(double count) {
  if (count >= 1e9) return StrFormat("%.1fB", count / 1e9);
  if (count >= 1e6) return StrFormat("%.1fM", count / 1e6);
  if (count >= 1e4) return StrFormat("%.1fK", count / 1e3);
  return StrFormat("%.0f", count);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace vcmp
