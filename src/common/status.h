#ifndef VCMP_COMMON_STATUS_H_
#define VCMP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace vcmp {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
};

/// RocksDB-style status object. vcmp does not use exceptions; fallible
/// operations return a Status (or a Result<T>, see result.h) that callers
/// must inspect.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string; "OK" for success.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code();
}

/// Propagates a non-OK status to the caller.
#define VCMP_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::vcmp::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace vcmp

#endif  // VCMP_COMMON_STATUS_H_
