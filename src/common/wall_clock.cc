#include "common/wall_clock.h"

// The allowlisted home of wall-clock reads (vcmp-lint D1): the only
// translation unit in src/, tools/ or bench/ that may name a real clock.
#include <chrono>

namespace vcmp {
namespace wallclock {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double SecondsSince(uint64_t start_ns) {
  return static_cast<double>(NowNs() - start_ns) * 1e-9;
}

}  // namespace wallclock
}  // namespace vcmp
