#ifndef VCMP_COMMON_STRING_UTIL_H_
#define VCMP_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vcmp {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(const std::string& s,
                                     const std::string& delims);

/// Renders a duration in seconds the way the paper's tables do:
/// "173.3s", "39min", or "Overload" past the cut-off.
std::string FormatSeconds(double seconds);

/// Renders a byte count as "1.5GB" / "63.7MB" / "412KB" / "12B".
std::string FormatBytes(double bytes);

/// Renders a large count as "63.7M" / "1.5B" / "2048".
std::string FormatCount(double count);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace vcmp

#endif  // VCMP_COMMON_STRING_UTIL_H_
