#include "common/math/lma.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace vcmp {
namespace {

/// Solves the n x n linear system A x = b in-place via Gaussian elimination
/// with partial pivoting. Returns false when A is (numerically) singular.
bool SolveLinearSystem(std::vector<double>& a, std::vector<double>& b,
                       int n, std::vector<double>* x) {
  for (int col = 0; col < n; ++col) {
    // Pivot selection.
    int pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (int row = col + 1; row < n; ++row) {
      double candidate = std::fabs(a[row * n + col]);
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (best < 1e-14) return false;
    if (pivot != col) {
      for (int k = 0; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    // Elimination.
    for (int row = col + 1; row < n; ++row) {
      double factor = a[row * n + col] / a[col * n + col];
      for (int k = col; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (int row = n - 1; row >= 0; --row) {
    double sum = b[row];
    for (int k = row + 1; k < n; ++k) sum -= a[row * n + k] * (*x)[k];
    (*x)[row] = sum / a[row * n + row];
  }
  return true;
}

double SumSquaredError(const LmaModel& model, const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       const std::vector<double>& theta) {
  double sse = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double r = ys[i] - model(theta, xs[i], nullptr);
    sse += r * r;
  }
  return sse;
}

}  // namespace

LmaFit LevenbergMarquardt(const LmaModel& model, const std::vector<double>& xs,
                          const std::vector<double>& ys,
                          const std::vector<double>& initial,
                          const LmaOptions& options) {
  const int n = static_cast<int>(initial.size());
  const size_t m = xs.size();
  LmaFit fit;
  fit.params = initial;
  fit.residual = SumSquaredError(model, xs, ys, fit.params);

  double lambda = options.initial_lambda;
  std::vector<double> jacobian_row(n);
  std::vector<double> jtj(n * n);
  std::vector<double> jtr(n);
  std::vector<double> damped(n * n);
  std::vector<double> rhs(n);
  std::vector<double> step;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    fit.iterations = iter + 1;
    // Build J^T J and J^T r at the current parameters.
    std::fill(jtj.begin(), jtj.end(), 0.0);
    std::fill(jtr.begin(), jtr.end(), 0.0);
    for (size_t i = 0; i < m; ++i) {
      double predicted = model(fit.params, xs[i], jacobian_row.data());
      double r = ys[i] - predicted;
      for (int a = 0; a < n; ++a) {
        jtr[a] += jacobian_row[a] * r;
        for (int b = 0; b < n; ++b) {
          jtj[a * n + b] += jacobian_row[a] * jacobian_row[b];
        }
      }
    }
    // Damped normal equations: (J^T J + lambda * diag(J^T J)) step = J^T r.
    bool improved = false;
    for (int attempt = 0; attempt < 24 && !improved; ++attempt) {
      damped = jtj;
      for (int a = 0; a < n; ++a) {
        double d = jtj[a * n + a];
        damped[a * n + a] += lambda * (d > 1e-12 ? d : 1e-12);
      }
      rhs = jtr;
      if (!SolveLinearSystem(damped, rhs, n, &step)) {
        lambda *= 10.0;
        continue;
      }
      std::vector<double> candidate(n);
      for (int a = 0; a < n; ++a) candidate[a] = fit.params[a] + step[a];
      double sse = SumSquaredError(model, xs, ys, candidate);
      if (std::isfinite(sse) && sse < fit.residual) {
        double relative_drop =
            (fit.residual - sse) / std::max(fit.residual, 1e-30);
        fit.params = std::move(candidate);
        fit.residual = sse;
        lambda = std::max(lambda * 0.1, 1e-12);
        improved = true;
        if (relative_drop < options.tolerance) {
          fit.converged = true;
          return fit;
        }
      } else {
        lambda *= 10.0;
      }
    }
    if (!improved) {
      // Damping saturated: local optimum.
      fit.converged = true;
      return fit;
    }
  }
  fit.converged = fit.residual < std::numeric_limits<double>::infinity();
  return fit;
}

double PowerLawFit::Eval(double x) const {
  return a * std::pow(x, b) + c;
}

double PowerLawFit::Invert(double y) const {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  double numerator = y - c;
  if (numerator <= 0.0) return 0.0;
  return std::pow(numerator / a, 1.0 / b);
}

Result<PowerLawFit> FitPowerLaw(const std::vector<double>& xs,
                                const std::vector<double>& ys,
                                const LmaOptions& options) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("xs and ys must have equal length");
  }
  if (xs.size() < 3) {
    return Status::InvalidArgument(
        "power-law fit needs at least 3 observations");
  }
  for (double x : xs) {
    if (x <= 0.0) {
      return Status::InvalidArgument("power-law fit requires positive x");
    }
  }

  // f(x; a, b, c) = a * x^b + c with analytic Jacobian.
  LmaModel model = [](const std::vector<double>& theta, double x,
                      double* jac) {
    double a = theta[0], b = theta[1], c = theta[2];
    double xb = std::pow(x, b);
    if (jac != nullptr) {
      jac[0] = xb;
      jac[1] = a * xb * std::log(x);
      jac[2] = 1.0;
    }
    return a * xb + c;
  };

  double y_min = *std::min_element(ys.begin(), ys.end());
  double y_max = *std::max_element(ys.begin(), ys.end());
  double x_max = *std::max_element(xs.begin(), xs.end());
  double scale = std::max((y_max - y_min) / std::max(x_max, 1.0), 1e-9);

  // The paper initialises (a, b, c) randomly and keeps the best converged
  // fit; we do the same with a deterministic restart stream seeded from
  // options.seed, plus one informed initial guess (linear model).
  Rng rng(options.seed);
  PowerLawFit best;
  best.residual = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < std::max(options.restarts, 1); ++restart) {
    std::vector<double> initial(3);
    if (restart == 0) {
      initial = {scale, 1.0, y_min};
    } else {
      initial = {scale * (0.1 + 2.0 * rng.NextDouble()),
                 0.5 + 1.5 * rng.NextDouble(),
                 y_min * (0.5 + rng.NextDouble())};
    }
    LmaFit fit = LevenbergMarquardt(model, xs, ys, initial, options);
    if (fit.residual < best.residual && fit.params[0] > 0.0 &&
        fit.params[1] > 0.0) {
      best.a = fit.params[0];
      best.b = fit.params[1];
      best.c = fit.params[2];
      best.residual = fit.residual;
      best.converged = fit.converged;
    }
  }
  if (!std::isfinite(best.residual)) {
    return Status::Internal("LMA failed to produce a finite power-law fit");
  }
  return best;
}

}  // namespace vcmp
