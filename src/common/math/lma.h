#ifndef VCMP_COMMON_MATH_LMA_H_
#define VCMP_COMMON_MATH_LMA_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"

namespace vcmp {

/// Options for the Levenberg–Marquardt solver.
struct LmaOptions {
  int max_iterations = 200;
  /// Convergence threshold on the relative decrease of the squared error.
  double tolerance = 1e-10;
  /// Initial damping factor lambda.
  double initial_lambda = 1e-3;
  /// Number of random restarts; the best (lowest-residual) fit wins.
  int restarts = 8;
  /// Seed for the restart initialisation stream.
  uint64_t seed = 0x5eedULL;
};

/// Result of a nonlinear least-squares fit.
struct LmaFit {
  std::vector<double> params;
  /// Sum of squared residuals at the solution.
  double residual = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Model interface: given parameters theta and input x, returns f(x; theta)
/// and writes df/dtheta_i into jacobian_row (length = theta.size()).
using LmaModel = std::function<double(const std::vector<double>& theta,
                                      double x, double* jacobian_row)>;

/// General Levenberg–Marquardt nonlinear least squares:
/// minimises sum_i (y_i - f(x_i; theta))^2 starting from `initial`.
/// Uses the standard damped normal equations with multiplicative lambda
/// adaptation (x10 on rejection, /10 on acceptance), per Madsen, Nielsen &
/// Tingleff (2004), the reference the paper cites.
LmaFit LevenbergMarquardt(const LmaModel& model,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys,
                          const std::vector<double>& initial,
                          const LmaOptions& options = {});

/// A fitted power-law memory model M(W) = a * W^b + c (paper Eq. 2).
struct PowerLawFit {
  double a = 0.0;
  double b = 1.0;
  double c = 0.0;
  double residual = 0.0;
  bool converged = false;

  /// Evaluates a * x^b + c.
  double Eval(double x) const;

  /// Inverts the model: returns x such that Eval(x) = y, i.e.
  /// ((y - c) / a)^(1/b). Returns 0 when y <= c or the fit is degenerate
  /// (a <= 0), matching the planner's "no budget left" semantics.
  double Invert(double y) const;
};

/// Fits M(W) = a*W^b + c to (xs, ys) with randomly-restarted LMA, as the
/// paper's tuning framework does (Section 5, "Training"). xs must be
/// positive. Returns InvalidArgument for degenerate input (fewer than 3
/// points or mismatched lengths).
Result<PowerLawFit> FitPowerLaw(const std::vector<double>& xs,
                                const std::vector<double>& ys,
                                const LmaOptions& options = {});

}  // namespace vcmp

#endif  // VCMP_COMMON_MATH_LMA_H_
