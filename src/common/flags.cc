#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace vcmp {

void FlagParser::Define(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  VCMP_CHECK(flags_.find(name) == flags_.end())
      << "flag --" << name << " defined twice";
  Flag flag;
  flag.value = default_value;
  flag.default_value = default_value;
  flag.help = help;
  flags_.emplace(name, std::move(flag));
  definition_order_.push_back(name);
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument '" +
                                     arg + "'");
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t equals = body.find('=');
    if (equals != std::string::npos) {
      name = body.substr(0, equals);
      value = body.substr(equals + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name +
                                     " (see --help)");
    }
    if (!has_value) {
      // `--key value` when the next token is not a flag; bare `--key`
      // means boolean true.
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return Status::OK();
}

std::string FlagParser::HelpText() const {
  std::ostringstream out;
  out << program_ << " - " << description_ << "\n\nFlags:\n";
  for (const std::string& name : definition_order_) {
    const Flag& flag = flags_.at(name);
    out << StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_value.c_str());
  }
  return out.str();
}

const FlagParser::Flag& FlagParser::Require(const std::string& name) const {
  auto it = flags_.find(name);
  VCMP_CHECK(it != flags_.end()) << "flag --" << name << " not defined";
  return it->second;
}

std::string FlagParser::GetString(const std::string& name) const {
  return Require(name).value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::atof(Require(name).value.c_str());
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return std::atoll(Require(name).value.c_str());
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& value = Require(name).value;
  return value == "true" || value == "1" || value == "yes";
}

bool FlagParser::IsSet(const std::string& name) const {
  return Require(name).set;
}

}  // namespace vcmp
