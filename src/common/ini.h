#ifndef VCMP_COMMON_INI_H_
#define VCMP_COMMON_INI_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace vcmp {

/// A parsed INI document: ordered sections of key/value pairs.
///
///   # comment
///   [experiment.fig04-light]
///   dataset = DBLP
///   workload = 1024
///
/// Duplicate keys within a section are an error; duplicate section names
/// are an error; keys before the first section header live in the ""
/// section. Values keep internal whitespace but are trimmed at the ends.
class IniDocument {
 public:
  struct Section {
    std::string name;
    std::map<std::string, std::string> values;
  };

  /// Parses INI text. Errors carry 1-based line numbers.
  static Result<IniDocument> Parse(const std::string& text);

  /// Reads and parses a file.
  static Result<IniDocument> Load(const std::string& path);

  const std::vector<Section>& sections() const { return sections_; }

  /// Finds a section by exact name (nullptr if absent).
  const Section* FindSection(const std::string& name) const;

  /// Typed access with defaults; the key's absence returns the fallback,
  /// a malformed number is an error.
  static Result<double> GetDouble(const Section& section,
                                  const std::string& key, double fallback);
  static Result<int64_t> GetInt(const Section& section,
                                const std::string& key, int64_t fallback);
  static std::string GetString(const Section& section,
                               const std::string& key,
                               const std::string& fallback);

 private:
  std::vector<Section> sections_;
};

}  // namespace vcmp

#endif  // VCMP_COMMON_INI_H_
