#ifndef VCMP_COMMON_THREAD_POOL_H_
#define VCMP_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vcmp {

/// Persistent fixed-size worker pool with a submit/wait barrier API.
///
/// The engines create one pool per Run and reuse it for every superstep,
/// replacing the per-round std::thread spawn/join that dominated the
/// orchestration cost of short rounds. Workers are started once in the
/// constructor and parked on a condition variable between rounds; Wait()
/// is the barrier that ends a round's parallel section.
///
/// With zero workers every Submit executes inline on the calling thread,
/// so serial and parallel executions share one code path.
class ThreadPool {
 public:
  /// Starts `num_workers` threads (0 = inline execution).
  explicit ThreadPool(uint32_t num_workers);

  /// Blocks until all submitted tasks finished, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw and must not call Submit/Wait
  /// on the same pool (no nested parallelism).
  void Submit(std::function<void()> task);

  /// Barrier: returns once every task submitted so far has completed.
  void Wait();

  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Invokes `fn(i)` for every i in [0, count), statically sharded
  /// round-robin across the workers plus the calling thread (shard s takes
  /// indices s, s + S, s + 2S, ...). Returns after all indices ran; the
  /// caller participates, so the pool is never idle-waited from outside.
  void ParallelFor(uint32_t count, const std::function<void(uint32_t)>& fn);

  /// Work-stealing variant of ParallelFor for skewed index costs.
  ///
  /// Ownership stays static — index i belongs to participant i mod P — but
  /// a participant that drains its own indices claims leftovers from
  /// victims in the fixed scan order (p + 1) mod P, (p + 2) mod P, ...
  /// Victim selection and steal order are pure functions of participant
  /// and index numbers, never of timing. Which thread *executes* an index
  /// still depends on the schedule, so `fn` must write only to state keyed
  /// by the index (per-shard slots/arenas); any cross-index reduction must
  /// happen after the barrier, in fixed index order.
  void ParallelForStealable(uint32_t count,
                            const std::function<void(uint32_t)>& fn);

  /// Hardware concurrency with a floor of 1 (the standard allows 0).
  static uint32_t HardwareThreads() {
    return std::max(1u, std::thread::hardware_concurrency());
  }

  /// Single policy point for turning an `execution_threads` option into a
  /// worker count: 0 means "use the hardware", and the hardware clamp is
  /// applied only when the caller asked for it. Both engines route their
  /// thread options through here so they cannot drift apart.
  static uint32_t ResolveThreads(uint32_t requested, bool clamp_to_hardware) {
    uint32_t threads = requested == 0 ? HardwareThreads()
                                      : std::max(1u, requested);
    if (clamp_to_hardware) threads = std::min(threads, HardwareThreads());
    return threads;
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // Signals workers: task or stop.
  std::condition_variable done_cv_;   // Signals Wait(): all tasks done.
  std::deque<std::function<void()>> queue_;
  uint64_t inflight_ = 0;  // Queued plus currently-running tasks.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Sorts [begin, end) with `cmp` using the pool: shards are sorted
/// concurrently, then merged in fixed shard order. For a strict total
/// order (every tie broken deterministically, e.g. by vertex id) the
/// output is bit-identical to a serial std::sort.
template <typename Iter, typename Cmp>
void ParallelSort(ThreadPool& pool, Iter begin, Iter end, Cmp cmp) {
  const size_t n = static_cast<size_t>(end - begin);
  constexpr size_t kMinChunk = 4096;  // Below this, sharding costs more.
  const uint32_t shards = static_cast<uint32_t>(
      std::min<size_t>(pool.num_workers() + 1, std::max<size_t>(n / kMinChunk, 1)));
  if (shards <= 1) {
    std::sort(begin, end, cmp);
    return;
  }
  std::vector<size_t> bounds(shards + 1);
  for (uint32_t s = 0; s <= shards; ++s) bounds[s] = n * s / shards;
  pool.ParallelFor(shards, [&](uint32_t s) {
    std::sort(begin + bounds[s], begin + bounds[s + 1], cmp);
  });
  for (uint32_t s = 2; s <= shards; ++s) {
    std::inplace_merge(begin, begin + bounds[s - 1], begin + bounds[s], cmp);
  }
}

}  // namespace vcmp

#endif  // VCMP_COMMON_THREAD_POOL_H_
