#ifndef VCMP_COMMON_THREAD_POOL_H_
#define VCMP_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vcmp {

/// Persistent fixed-size worker pool with a submit/wait barrier API.
///
/// The engines reuse one pool for every superstep of a run, replacing the
/// per-round std::thread spawn/join that dominated the orchestration cost
/// of short rounds. Workers are started once in the constructor and
/// parked on a condition variable between rounds; Wait() is the barrier
/// that ends a round's parallel section.
///
/// One pool may be shared by several driver threads (one per in-flight
/// query in concurrent multi-query execution): Submit is thread-safe, and
/// ParallelFor / ParallelForStealable track the completion of *their own*
/// shards with a per-call latch, so concurrent calls return independently
/// instead of coupling at a pool-wide barrier. Wait() remains the
/// pool-wide drain and is only meaningful for a single-owner pool; shared
/// users scope their background work with a TaskGroup instead.
///
/// With zero workers every Submit executes inline on the calling thread,
/// so serial and parallel executions share one code path.
class ThreadPool {
 public:
  /// Starts `num_workers` threads (0 = inline execution).
  explicit ThreadPool(uint32_t num_workers);

  /// Blocks until all submitted tasks finished, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe. Tasks must not throw and must not call
  /// Submit/Wait on the same pool (no nested parallelism).
  void Submit(std::function<void()> task);

  /// Pool-wide barrier: returns once every task submitted so far has
  /// completed — including tasks submitted by OTHER threads sharing the
  /// pool. Single-owner pools only; shared users wait on a TaskGroup.
  void Wait();

  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Invokes `fn(i)` for every i in [0, count), statically sharded
  /// round-robin across the workers plus the calling thread (shard s takes
  /// indices s, s + S, s + 2S, ...). Returns after all indices ran; the
  /// caller participates, so the pool is never idle-waited from outside.
  /// Completion is tracked per call, so concurrent ParallelFor calls from
  /// different driver threads finish independently.
  void ParallelFor(uint32_t count, const std::function<void(uint32_t)>& fn);

  /// Work-stealing variant of ParallelFor for skewed index costs.
  ///
  /// Ownership stays static — index i belongs to participant i mod P — but
  /// a participant that drains its own indices claims leftovers from
  /// victims in the fixed scan order (p + 1) mod P, (p + 2) mod P, ...
  /// Victim selection and steal order are pure functions of participant
  /// and index numbers, never of timing. Which thread *executes* an index
  /// still depends on the schedule, so `fn` must write only to state keyed
  /// by the index (per-shard slots/arenas); any cross-index reduction must
  /// happen after the barrier, in fixed index order.
  void ParallelForStealable(uint32_t count,
                            const std::function<void(uint32_t)>& fn);

  /// Hardware concurrency with a floor of 1 (the standard allows 0).
  static uint32_t HardwareThreads() {
    return std::max(1u, std::thread::hardware_concurrency());
  }

  /// Single policy point for turning an `execution_threads` option into a
  /// worker count: 0 means "use the hardware", and the hardware clamp is
  /// applied only when the caller asked for it. Both engines route their
  /// thread options through here so they cannot drift apart.
  static uint32_t ResolveThreads(uint32_t requested, bool clamp_to_hardware) {
    uint32_t threads = requested == 0 ? HardwareThreads()
                                      : std::max(1u, requested);
    if (clamp_to_hardware) threads = std::min(threads, HardwareThreads());
    return threads;
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // Signals workers: task or stop.
  std::condition_variable done_cv_;   // Signals Wait(): all tasks done.
  std::deque<std::function<void()>> queue_;
  uint64_t inflight_ = 0;  // Queued plus currently-running tasks.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Completion scope for a subset of a pool's tasks.
///
/// A shared pool serves several queries at once, so the pool-wide Wait()
/// would couple them: one query draining its background jobs would block
/// on every other query's work too (and might never observe an idle pool
/// while peers keep submitting rounds). A TaskGroup counts only the tasks
/// submitted through it, giving each owner — e.g. each query's
/// out-of-core prefetcher — a private happens-before barrier on the
/// shared pool. Wait() establishes the same ordering guarantee the pool
/// barrier did: everything the group's tasks wrote is visible after it
/// returns.
///
/// Submit/Wait may be called from one owner thread at a time; distinct
/// TaskGroups are independent.
class TaskGroup {
 public:
  TaskGroup() = default;
  /// Waits for stragglers so task captures never dangle.
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on `pool`, counted against this group.
  void Submit(ThreadPool& pool, std::function<void()> task);

  /// Returns once every task submitted through this group completed.
  void Wait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  uint64_t pending_ = 0;
};

/// Sorts [begin, end) with `cmp` using the pool: shards are sorted
/// concurrently, then merged in fixed shard order. For a strict total
/// order (every tie broken deterministically, e.g. by vertex id) the
/// output is bit-identical to a serial std::sort.
template <typename Iter, typename Cmp>
void ParallelSort(ThreadPool& pool, Iter begin, Iter end, Cmp cmp) {
  const size_t n = static_cast<size_t>(end - begin);
  constexpr size_t kMinChunk = 4096;  // Below this, sharding costs more.
  const uint32_t shards = static_cast<uint32_t>(
      std::min<size_t>(pool.num_workers() + 1, std::max<size_t>(n / kMinChunk, 1)));
  if (shards <= 1) {
    std::sort(begin, end, cmp);
    return;
  }
  std::vector<size_t> bounds(shards + 1);
  for (uint32_t s = 0; s <= shards; ++s) bounds[s] = n * s / shards;
  pool.ParallelFor(shards, [&](uint32_t s) {
    std::sort(begin + bounds[s], begin + bounds[s + 1], cmp);
  });
  for (uint32_t s = 2; s <= shards; ++s) {
    std::inplace_merge(begin, begin + bounds[s - 1], begin + bounds[s], cmp);
  }
}

}  // namespace vcmp

#endif  // VCMP_COMMON_THREAD_POOL_H_
