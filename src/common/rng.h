#ifndef VCMP_COMMON_RNG_H_
#define VCMP_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace vcmp {

/// Deterministic pseudo-random number generator (SplitMix64 core).
///
/// Every stochastic component in vcmp draws from an explicitly seeded Rng so
/// that tests and benchmark tables are bit-reproducible across runs and
/// machines. SplitMix64 passes BigCrush, has a 2^64 period per stream, and
/// supports cheap stream splitting via Fork().
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGamma) {}

  /// Next 64 uniformly distributed bits.
  uint64_t NextUint64() { return Mix(state_ += kGamma); }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation (biased by < 2^-64
    // per draw which is negligible for simulation purposes).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextUint64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Binomial(n, p) sample. Exact for small n; uses a normal approximation
  /// with continuity correction for large n*p*(1-p), which is what the
  /// aggregate walk-count simulation needs (n up to billions).
  uint64_t NextBinomial(uint64_t n, double p);

  /// Standard normal via the polar (Marsaglia) method.
  double NextGaussian();

  /// Derives an independent child stream; deterministic given this stream's
  /// state, so Fork() sequences are reproducible.
  Rng Fork() { return Rng(NextUint64()); }

  /// Combines a base seed with stream coordinates (round, vertex, ...) into
  /// a decorrelated child seed. The engines reseed per vertex through this
  /// so the draw sequence depends only on (seed, coordinates) — never on
  /// which thread or shard executed the vertex.
  static uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b) {
    return Mix(Mix(seed + a * kGamma) + b * kGamma);
  }

  /// Folds a query namespace into a base seed: concurrent multi-query
  /// execution gives every in-flight query its own stream family so two
  /// queries sharing a base seed still draw decorrelated randomness.
  /// Query 0 is the identity, so single-query runs keep their historical
  /// streams bit for bit.
  static uint64_t QuerySeed(uint64_t seed, uint64_t query) {
    return query == 0 ? seed : Mix(seed + query * kGamma);
  }

  /// Per-vertex reseed with a query namespace:
  /// MixSeed(seed, query, round, v). The stream depends only on those
  /// four coordinates — never on the thread, shard, or concurrency level
  /// that executed the vertex — and query 0 reproduces the three-argument
  /// form exactly.
  static uint64_t MixSeed(uint64_t seed, uint64_t query, uint64_t round,
                          uint64_t v) {
    return MixSeed(QuerySeed(seed, query), round, v);
  }

 private:
  /// Natural log of k!: table below 10, Stirling–De Moivre series above
  /// (error < 1e-8 at k = 10, shrinking as k grows). Thread-safe, unlike
  /// std::lgamma which may write the global signgam.
  static double LogFactorial(uint64_t k) {
    static constexpr double kSmall[10] = {
        0.0,
        0.0,
        0.69314718055994530942,
        1.79175946922805500081,
        3.17805383034794561965,
        4.78749174278204599425,
        6.57925121201010099506,
        8.52516136106541430017,
        10.60460290274525022842,
        12.80182748008146961121};
    if (k < 10) return kSmall[k];
    const double kk = static_cast<double>(k);
    const double inv = 1.0 / kk;
    return (kk + 0.5) * std::log(kk) - kk + 0.91893853320467274178 +
           inv * (1.0 / 12.0) - inv * inv * inv * (1.0 / 360.0);
  }

  /// Poisson(lambda) via Hörmann's transformed rejection with squeeze
  /// (PTRS, 1993); requires lambda >= 10. Expected cost is ~2.4 uniforms
  /// independent of lambda, against the ~lambda multiplies of Knuth's
  /// product method; the sampler itself is exact (rejection, not an
  /// approximation).
  uint64_t NextPoissonPtrs(double lambda) {
    const double log_lambda = std::log(lambda);
    const double b = 0.931 + 2.53 * std::sqrt(lambda);
    const double a = -0.059 + 0.02483 * b;
    const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    const double v_r = 0.9277 - 3.6224 / (b - 2.0);
    while (true) {
      const double u = NextDouble() - 0.5;
      const double v = NextDouble();
      const double us = 0.5 - std::fabs(u);
      // us == 0 only when u == -0.5, which drives kf to -inf and retries.
      const double kf = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
      if (us >= 0.07 && v <= v_r) return static_cast<uint64_t>(kf);
      if (kf < 0.0 || (us < 0.013 && v > us)) continue;
      if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
          kf * log_lambda - lambda -
              LogFactorial(static_cast<uint64_t>(kf))) {
        return static_cast<uint64_t>(kf);
      }
    }
  }

  static constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

  /// SplitMix64 output function: bijective mix of one state word.
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state_;
};

inline double Rng::NextGaussian() {
  // Polar method: rejection-samples a point in the unit disc.
  while (true) {
    double u = 2.0 * NextDouble() - 1.0;
    double v = 2.0 * NextDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

inline uint64_t Rng::NextBinomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - NextBinomial(n, 1.0 - p);  // Symmetry; now p <= 0.5.
  double np = static_cast<double>(n) * p;
  double var = np * (1.0 - p);
  if (var > 64.0) {
    // Normal approximation with continuity correction; clamp to support.
    double x = np + std::sqrt(var) * NextGaussian() + 0.5;
    if (x < 0.0) return 0;
    if (x > static_cast<double>(n)) return n;
    return static_cast<uint64_t>(x);
  }
  if (n <= 128) {
    // Exact by n Bernoulli draws. Draw i's uniform is Mix(state + i*gamma),
    // so the draws can be generated from the loop index instead of chaining
    // through state_: identical outputs and final state, but without the
    // loop-carried dependency the mix pipelines/vectorizes instead of
    // serialising on its ~15-cycle latency. The double compare
    // `(z >> 11) * 2^-53 < p` is equivalently `(z >> 11) < ceil(p * 2^53)`
    // (both sides exact: p * 2^53 only scales the exponent).
    const uint64_t threshold =
        static_cast<uint64_t>(std::ceil(p * 0x1.0p53));
    const uint64_t base = state_;
    state_ = base + n * kGamma;
    uint64_t count = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      count += (Mix(base + i * kGamma) >> 11) < threshold ? 1 : 0;
    }
    return count;
  }
  // Large n but small mean (var <= 64 and p <= 0.5 implies np <= 128):
  // Poisson(np) approximation. PTRS transformed rejection where it is
  // valid (np >= 10) at ~2.4 uniforms per draw; Knuth's product method
  // below that, where its ~np multiplies are already cheap.
  if (np >= 10.0) {
    const uint64_t k = NextPoissonPtrs(np);
    return k < n ? k : n;  // Clamp to the binomial support.
  }
  double limit = std::exp(-np);
  uint64_t k = 0;
  double prod = NextDouble();
  while (prod > limit && k < n) {
    ++k;
    prod *= NextDouble();
  }
  return k;
}

}  // namespace vcmp

#endif  // VCMP_COMMON_RNG_H_
