#ifndef VCMP_COMMON_RNG_H_
#define VCMP_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace vcmp {

/// Deterministic pseudo-random number generator (SplitMix64 core).
///
/// Every stochastic component in vcmp draws from an explicitly seeded Rng so
/// that tests and benchmark tables are bit-reproducible across runs and
/// machines. SplitMix64 passes BigCrush, has a 2^64 period per stream, and
/// supports cheap stream splitting via Fork().
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGamma) {}

  /// Next 64 uniformly distributed bits.
  uint64_t NextUint64() { return Mix(state_ += kGamma); }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation (biased by < 2^-64
    // per draw which is negligible for simulation purposes).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextUint64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Binomial(n, p) sample. Exact for small n; uses a normal approximation
  /// with continuity correction for large n*p*(1-p), which is what the
  /// aggregate walk-count simulation needs (n up to billions).
  uint64_t NextBinomial(uint64_t n, double p);

  /// Standard normal via the polar (Marsaglia) method.
  double NextGaussian();

  /// Derives an independent child stream; deterministic given this stream's
  /// state, so Fork() sequences are reproducible.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

  /// SplitMix64 output function: bijective mix of one state word.
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state_;
};

inline double Rng::NextGaussian() {
  // Polar method: rejection-samples a point in the unit disc.
  while (true) {
    double u = 2.0 * NextDouble() - 1.0;
    double v = 2.0 * NextDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

inline uint64_t Rng::NextBinomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - NextBinomial(n, 1.0 - p);  // Symmetry; now p <= 0.5.
  double np = static_cast<double>(n) * p;
  double var = np * (1.0 - p);
  if (var > 64.0) {
    // Normal approximation with continuity correction; clamp to support.
    double x = np + std::sqrt(var) * NextGaussian() + 0.5;
    if (x < 0.0) return 0;
    if (x > static_cast<double>(n)) return n;
    return static_cast<uint64_t>(x);
  }
  if (n <= 128) {
    // Exact by n Bernoulli draws. Draw i's uniform is Mix(state + i*gamma),
    // so the draws can be generated from the loop index instead of chaining
    // through state_: identical outputs and final state, but without the
    // loop-carried dependency the mix pipelines/vectorizes instead of
    // serialising on its ~15-cycle latency. The double compare
    // `(z >> 11) * 2^-53 < p` is equivalently `(z >> 11) < ceil(p * 2^53)`
    // (both sides exact: p * 2^53 only scales the exponent).
    const uint64_t threshold =
        static_cast<uint64_t>(std::ceil(p * 0x1.0p53));
    const uint64_t base = state_;
    state_ = base + n * kGamma;
    uint64_t count = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      count += (Mix(base + i * kGamma) >> 11) < threshold ? 1 : 0;
    }
    return count;
  }
  // Large n but small mean (var <= 64 and p <= 0.5 implies np <= 128):
  // Poisson(np) approximation via Knuth's product method.
  double limit = std::exp(-np);
  uint64_t k = 0;
  double prod = NextDouble();
  while (prod > limit && k < n) {
    ++k;
    prod *= NextDouble();
  }
  return k;
}

}  // namespace vcmp

#endif  // VCMP_COMMON_RNG_H_
