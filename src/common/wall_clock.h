#ifndef VCMP_COMMON_WALL_CLOCK_H_
#define VCMP_COMMON_WALL_CLOCK_H_

#include <cstdint>

namespace vcmp {
namespace wallclock {

/// The project's only sanctioned wall-clock seam.
///
/// Everything vcmp reports deterministically — run reports, traces,
/// service metrics — is priced on the *simulated* clock (sim/sim_clock.h
/// and the cost models), never on wall time. The one legitimate use of a
/// real clock is self-profiling: phase timers and benchmark harnesses
/// that measure how long *this process* took, where the numbers are
/// diagnostic and explicitly excluded from golden outputs.
///
/// vcmp-lint rule D1 forbids direct `std::chrono::{system,steady,
/// high_resolution}_clock` (and C `time()` family) reads everywhere
/// except this module, so every wall-clock read in the tree is forced
/// through here and is auditable in one place. If you are tempted to
/// call NowNs() to influence an algorithm, a report, or a trace: don't —
/// that breaks the byte-identical-rerun contract (DESIGN.md §7/§9).
///
/// Monotonic (steady_clock); safe for interval measurement across
/// suspend-free runs. Not meaningful as a calendar timestamp.

/// Nanoseconds on the monotonic clock, from an unspecified epoch.
uint64_t NowNs();

/// Seconds elapsed since a NowNs() reading.
double SecondsSince(uint64_t start_ns);

}  // namespace wallclock
}  // namespace vcmp

#endif  // VCMP_COMMON_WALL_CLOCK_H_
