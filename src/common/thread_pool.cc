#include "common/thread_pool.h"

#include <memory>

namespace vcmp {

namespace {

/// Per-call completion latch for the ParallelFor variants: each call
/// waits for its own shards only, so concurrent calls from several driver
/// threads sharing one pool return independently (the pool-wide Wait()
/// would make every caller wait for everyone's work). The decrement and
/// the final predicate check share one mutex, so the notifying task never
/// touches the latch after the waiter could have destroyed it.
struct CallLatch {
  std::mutex mutex;
  std::condition_variable cv;
  uint32_t pending;

  explicit CallLatch(uint32_t count) : pending(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex);
    if (--pending == 0) cv.notify_one();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

ThreadPool::ThreadPool(uint32_t num_workers) {
  workers_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // Inline execution: serial and parallel share one code path.
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++inflight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void ThreadPool::ParallelFor(uint32_t count,
                             const std::function<void(uint32_t)>& fn) {
  const uint32_t shards = std::min(num_workers() + 1, count);
  if (shards <= 1) {
    for (uint32_t i = 0; i < count; ++i) fn(i);
    return;
  }
  CallLatch latch(shards - 1);
  for (uint32_t s = 1; s < shards; ++s) {
    Submit([&fn, &latch, s, shards, count] {
      for (uint32_t i = s; i < count; i += shards) fn(i);
      latch.CountDown();
    });
  }
  for (uint32_t i = 0; i < count; i += shards) fn(i);  // Caller is shard 0.
  latch.Wait();
}

void ThreadPool::ParallelForStealable(
    uint32_t count, const std::function<void(uint32_t)>& fn) {
  const uint32_t participants = std::min(num_workers() + 1, count);
  if (participants <= 1) {
    for (uint32_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One claim flag per index: exchange(acq_rel) makes the winner's read of
  // any prior writes to the index's inputs visible and runs fn exactly once.
  auto claimed = std::make_unique<std::atomic<uint8_t>[]>(count);
  for (uint32_t i = 0; i < count; ++i) {
    claimed[i].store(0, std::memory_order_relaxed);
  }
  std::atomic<uint8_t>* flags = claimed.get();
  auto run_as = [flags, &fn, participants, count](uint32_t p) {
    // Own indices first, then victims in the fixed order p+1, p+2, ...
    // (mod P); within each victim, ascending index order.
    for (uint32_t v = 0; v < participants; ++v) {
      const uint32_t owner = (p + v) % participants;
      for (uint32_t i = owner; i < count; i += participants) {
        if (flags[i].exchange(1, std::memory_order_acq_rel) == 0) fn(i);
      }
    }
  };
  CallLatch latch(participants - 1);
  for (uint32_t p = 1; p < participants; ++p) {
    Submit([run_as, &latch, p] {
      run_as(p);
      latch.CountDown();
    });
  }
  run_as(0);  // Caller is participant 0.
  latch.Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--inflight_ == 0) done_cv_.notify_all();
    }
  }
}

void TaskGroup::Submit(ThreadPool& pool, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool.Submit([this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace vcmp
