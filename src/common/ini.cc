#include "common/ini.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace vcmp {
namespace {

std::string Trim(const std::string& raw) {
  size_t begin = raw.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = raw.find_last_not_of(" \t\r");
  return raw.substr(begin, end - begin + 1);
}

}  // namespace

Result<IniDocument> IniDocument::Parse(const std::string& text) {
  IniDocument document;
  document.sections_.push_back(Section{"", {}});
  Section* current = &document.sections_.back();

  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == ';') {
      continue;
    }
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']' || trimmed.size() < 3) {
        return Status::InvalidArgument(
            StrFormat("line %d: malformed section header '%s'", line_number,
                      trimmed.c_str()));
      }
      std::string name = Trim(trimmed.substr(1, trimmed.size() - 2));
      if (document.FindSection(name) != nullptr) {
        return Status::InvalidArgument(StrFormat(
            "line %d: duplicate section '%s'", line_number, name.c_str()));
      }
      document.sections_.push_back(Section{name, {}});
      current = &document.sections_.back();
      continue;
    }
    size_t equals = trimmed.find('=');
    if (equals == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "line %d: expected 'key = value', got '%s'", line_number,
          trimmed.c_str()));
    }
    std::string key = Trim(trimmed.substr(0, equals));
    std::string value = Trim(trimmed.substr(equals + 1));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("line %d: empty key", line_number));
    }
    if (!current->values.emplace(key, value).second) {
      return Status::InvalidArgument(
          StrFormat("line %d: duplicate key '%s' in section '%s'",
                    line_number, key.c_str(), current->name.c_str()));
    }
  }
  // Drop the implicit preamble section if unused.
  if (document.sections_.front().values.empty()) {
    document.sections_.erase(document.sections_.begin());
  }
  return document;
}

Result<IniDocument> IniDocument::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return Parse(contents);
}

const IniDocument::Section* IniDocument::FindSection(
    const std::string& name) const {
  for (const Section& section : sections_) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

Result<double> IniDocument::GetDouble(const Section& section,
                                      const std::string& key,
                                      double fallback) {
  auto it = section.values.find(key);
  if (it == section.values.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("key '" + key + "' is not a number: '" +
                                   it->second + "'");
  }
  return value;
}

Result<int64_t> IniDocument::GetInt(const Section& section,
                                    const std::string& key,
                                    int64_t fallback) {
  VCMP_ASSIGN_OR_RETURN(double value,
                        GetDouble(section, key,
                                  static_cast<double>(fallback)));
  return static_cast<int64_t>(value);
}

std::string IniDocument::GetString(const Section& section,
                                   const std::string& key,
                                   const std::string& fallback) {
  auto it = section.values.find(key);
  return it == section.values.end() ? fallback : it->second;
}

}  // namespace vcmp
