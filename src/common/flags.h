#ifndef VCMP_COMMON_FLAGS_H_
#define VCMP_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace vcmp {

/// Minimal command-line flag parser for the tools and examples.
///
/// Accepts `--key=value`, `--key value` and bare `--key` (boolean true).
/// Flags must be registered before Parse so that typos are hard errors and
/// `HelpText()` is complete.
///
///   FlagParser flags("vcmp_sim", "Run a simulated multi-processing job");
///   flags.Define("workload", "10240", "total workload W");
///   flags.Define("tune", "false", "use the Section-5 tuner");
///   VCMP_RETURN_IF_ERROR(flags.Parse(argc, argv));
///   double w = flags.GetDouble("workload");
class FlagParser {
 public:
  FlagParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers a flag with its default value and help line.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv. Returns InvalidArgument on unknown flags, missing
  /// values, or non-flag positional arguments.
  Status Parse(int argc, const char* const* argv);

  /// True when --help was passed (callers print HelpText() and exit 0).
  bool help_requested() const { return help_requested_; }
  std::string HelpText() const;

  /// Typed access; the flag must have been defined (CHECK otherwise).
  std::string GetString(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True when the flag was explicitly set on the command line.
  bool IsSet(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool set = false;
  };

  const Flag& Require(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> definition_order_;
  bool help_requested_ = false;
};

}  // namespace vcmp

#endif  // VCMP_COMMON_FLAGS_H_
