#ifndef VCMP_COMMON_RESULT_H_
#define VCMP_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace vcmp {

/// Value-or-error return type. A Result is either OK and holds a T, or
/// holds a non-OK Status. Accessing value() on an error Result is a
/// programming error (checked in debug builds via assert-like abort).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error status to the caller.
#define VCMP_ASSIGN_OR_RETURN(lhs, expr)             \
  auto VCMP_CONCAT_(_res_, __LINE__) = (expr);       \
  if (!VCMP_CONCAT_(_res_, __LINE__).ok())           \
    return VCMP_CONCAT_(_res_, __LINE__).status();   \
  lhs = std::move(VCMP_CONCAT_(_res_, __LINE__)).value()

#define VCMP_CONCAT_INNER_(a, b) a##b
#define VCMP_CONCAT_(a, b) VCMP_CONCAT_INNER_(a, b)

}  // namespace vcmp

#endif  // VCMP_COMMON_RESULT_H_
