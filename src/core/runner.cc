#include "core/runner.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/tracer.h"
#include "sim/monetary_model.h"

namespace vcmp {

MultiProcessingRunner::MultiProcessingRunner(const Dataset& dataset,
                                             RunnerOptions options)
    : dataset_(dataset),
      options_(std::move(options)),
      profile_(options_.profile_override.has_value()
                   ? *options_.profile_override
                   : ProfileFor(options_.system)) {
  if (options_.shared_partition != nullptr) {
    partition_ = options_.shared_partition;
  } else {
    std::unique_ptr<Partitioner> partitioner =
        MakePartitioner(profile_.partitioner);
    owned_partition_ = partitioner->Partition(dataset_.graph,
                                              options_.cluster.num_machines);
    partition_ = &owned_partition_;
  }
}

Result<RunReport> MultiProcessingRunner::Run(const MultiTask& task,
                                             const BatchSchedule& schedule) {
  if (schedule.NumBatches() == 0) {
    return Status::InvalidArgument("empty batch schedule");
  }

  RunReport report;
  report.system = profile_.name;
  report.dataset = dataset_.info.name;
  report.task = task.name();
  report.cluster = options_.cluster.name;
  report.workload = schedule.TotalWorkload();

  TaskContext context{&dataset_.graph, partition_, dataset_.scale,
                      profile_.combines_messages};
  ProgramFlavor flavor = profile_.mirroring ? ProgramFlavor::kBroadcast
                                            : ProgramFlavor::kPointToPoint;

  // The engine keeps carryover in generated-graph-scale bytes; the hook
  // API (initial_residual_bytes / residual_observer) speaks paper-scale
  // like every report, so conversion happens here at the boundary.
  std::vector<double> carryover(options_.cluster.num_machines, 0.0);
  if (!options_.initial_residual_bytes.empty()) {
    if (options_.initial_residual_bytes.size() != carryover.size()) {
      return Status::InvalidArgument(
          "initial_residual_bytes must have one entry per machine");
    }
    for (uint32_t machine = 0; machine < carryover.size(); ++machine) {
      carryover[machine] =
          options_.initial_residual_bytes[machine] / dataset_.scale;
    }
  }
  Tracer* const tracer = options_.tracer;
  uint32_t batch_track = 0;
  uint32_t engine_track = 0;
  if (tracer != nullptr) {
    batch_track = tracer->AddTrack(options_.trace_label, "batches");
    engine_track = tracer->AddTrack(options_.trace_label, "engine");
  }

  // One context for the whole run: batches of a query execute in order,
  // so reusing it keeps engine scratch buffers warm across batches while
  // the query id namespaces every per-vertex RNG stream.
  QueryContext query_context(options_.query_id);
  query_context.pool = options_.pool;
  // Program seeds derive from the query-namespaced base seed, so two
  // queries sharing options_.seed generate decorrelated workloads; query
  // 0 reproduces the historical seed sequence exactly.
  const uint64_t program_seed_base =
      Rng::QuerySeed(options_.seed, options_.query_id);

  uint64_t batch_index = 0;
  for (double workload : schedule.workloads()) {
    ++batch_index;
    if (workload <= 0.0) continue;  // Degenerate split (Fig. 9 extremes).

    VCMP_ASSIGN_OR_RETURN(
        std::unique_ptr<VertexProgram> program,
        task.MakeProgram(context, flavor, workload,
                         program_seed_base * 1315423911ULL + batch_index));

    EngineOptions engine_options;
    engine_options.cluster = options_.cluster;
    engine_options.profile = profile_;
    engine_options.cost = options_.cost;
    engine_options.stat_scale = dataset_.scale;
    engine_options.carryover_residual_bytes = carryover;
    engine_options.max_rounds = options_.max_rounds;
    engine_options.execution_threads = options_.execution_threads;
    engine_options.clamp_threads_to_hardware =
        options_.clamp_threads_to_hardware;
    engine_options.collect_phase_times = options_.collect_phase_times;
    engine_options.sender_combining = options_.sender_combining;
    engine_options.checkpoint_interval_rounds =
        options_.checkpoint_interval_rounds;
    engine_options.ooc = options_.ooc;
    engine_options.seed = options_.seed + batch_index;
    if (tracer != nullptr) {
      // Batches line up end to end on the report's own running sum, so
      // engine round spans land inside their batch span (batch.seconds
      // >= engine seconds; the overhead is the uninstrumented tail).
      engine_options.tracer = tracer;
      engine_options.trace_track = engine_track;
      engine_options.trace_time_offset_seconds = report.total_seconds;
    }

    SyncEngine engine(dataset_.graph, *partition_, engine_options);
    VCMP_ASSIGN_OR_RETURN(EngineResult result,
                          engine.Run(*program, query_context));
    if (options_.engine_observer) options_.engine_observer(result);

    BatchReport batch;
    batch.workload = workload;
    batch.seconds = result.seconds + options_.cost.batch_overhead_seconds;
    batch.overloaded = result.overloaded;
    batch.rounds = result.num_rounds;
    batch.messages = result.total_messages;
    batch.peak_memory_bytes = result.peak_memory_bytes;
    batch.peak_residual_bytes = result.peak_residual_bytes;
    batch.peak_buffered_bytes = result.peak_buffered_bytes;
    batch.network_overuse_seconds = result.network_overuse_seconds;
    batch.disk_overuse_seconds = result.disk_overuse_seconds;
    batch.disk_utilization = result.disk_utilization;
    batch.disk_saturated = result.disk_saturated;
    batch.max_io_queue_length = result.max_io_queue_length;
    batch.spilled_bytes = result.spilled_bytes;
    const double batch_start_seconds = report.total_seconds;
    report.Absorb(batch);
    if (tracer != nullptr) {
      tracer->Begin(batch_track, "batch", batch_start_seconds,
                    {{"batch", static_cast<double>(batch_index)},
                     {"workload", workload},
                     {"rounds", static_cast<double>(batch.rounds)},
                     {"messages", batch.messages},
                     {"peak_memory_bytes", batch.peak_memory_bytes}});
      tracer->End(batch_track, report.total_seconds);
      tracer->Add("runner.batches", 1.0);
      tracer->Add("runner.seconds", batch.seconds);
      tracer->Add("runner.messages", batch.messages);
      tracer->Add("runner.rounds", static_cast<double>(batch.rounds));
    }

    if (options_.batch_observer) options_.batch_observer(*program);

    if (batch.overloaded ||
        report.total_seconds > options_.cost.overload_cutoff_seconds) {
      report.overloaded = true;
      break;  // The paper stops overloaded runs at the cut-off.
    }

    // Residual memory of this batch persists into the next ones: results
    // the program recorded through MessageSink::AddResidualBytes (folded
    // per machine by the engine) plus any program-side accounting.
    for (uint32_t machine = 0; machine < carryover.size(); ++machine) {
      carryover[machine] += program->ResidualBytes(machine);
      if (machine < result.residual_bytes_per_machine.size()) {
        carryover[machine] += result.residual_bytes_per_machine[machine];
      }
    }
    if (options_.residual_observer || tracer != nullptr) {
      std::vector<double> paper_scale(carryover.size());
      double max_carryover = 0.0;
      for (uint32_t machine = 0; machine < carryover.size(); ++machine) {
        paper_scale[machine] = carryover[machine] * dataset_.scale;
        max_carryover = std::max(max_carryover, paper_scale[machine]);
      }
      if (tracer != nullptr) {
        // The mid-workload observation point the online batcher inverts
        // the memory models against, now visible per batch boundary.
        tracer->Gauge(batch_track, "carryover_residual_bytes",
                      report.total_seconds, max_carryover);
      }
      if (options_.residual_observer) {
        options_.residual_observer(batch_index, paper_scale);
      }
    }
  }

  if (report.overloaded) {
    report.total_seconds = std::max(
        report.total_seconds, options_.cost.overload_cutoff_seconds);
  }
  if (options_.cluster.cloud) {
    MonetaryModel billing;
    report.monetary_cost =
        billing.Cost(options_.cluster, report.total_seconds,
                     report.overloaded,
                     options_.cost.overload_cutoff_seconds);
  }
  return report;
}

}  // namespace vcmp
